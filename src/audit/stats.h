// Statistics core for the neutrality auditor (PR 9).
//
// The regulator story needs verdicts that survive cross-examination:
// "the baseline flows are slower" is only evidence when the observed
// FCT/throughput distributions differ by more than sampling noise.
// This module supplies the two-sample Kolmogorov-Smirnov machinery
// FairNet/Wehe-style detectors use (PAPERS.md): the KS statistic
// (sup-distance between empirical CDFs), its asymptotic p-value, and a
// seeded permutation calibrator that makes no distributional
// assumptions — the null is simulated by re-splitting the pooled
// samples, so the reported p-value is honest for the small, skewed,
// discretized samples a replay run actually produces.
//
// Everything here is deterministic: same samples + same seed => same
// p-value, on every platform (the permutation shuffle runs on
// util::Rng, which is mt19937_64 + rejection sampling, not
// std::shuffle whose draw order is implementation-defined).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nnn::audit {

/// Two-sample KS statistic: sup_x |F_a(x) - F_b(x)| over the empirical
/// CDFs. Takes copies because it sorts. Returns 0 when either sample
/// is empty.
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Same, over already-ascending-sorted samples (no copy).
double ks_statistic_sorted(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Asymptotic two-sided p-value for an observed KS statistic `d` with
/// sample sizes n and m: Q_KS((sqrt(n_e) + 0.12 + 0.11/sqrt(n_e)) * d)
/// with n_e = n*m/(n+m) and Q_KS(l) = 2 * sum_{j>=1} (-1)^{j-1}
/// exp(-2 j^2 l^2) (Numerical Recipes form of the Kolmogorov
/// distribution). Accurate for n_e >= ~8; the auditor uses it as a
/// cross-check against the permutation p-value.
double ks_asymptotic_p(double d, size_t n, size_t m);

/// Permutation (re-randomization) p-value for the two-sample KS test:
/// pool a and b, re-split `rounds` times into sizes |a| and |b| by a
/// seeded Fisher-Yates shuffle, and report
///   (1 + #{D_perm >= D_obs}) / (rounds + 1)
/// — the add-one form, so the p-value is never exactly 0 and the test
/// is exact-level under the null. Deterministic per seed.
double ks_permutation_p(const std::vector<double>& a,
                        const std::vector<double>& b, size_t rounds,
                        uint64_t seed);

/// Exact quantile of an ascending-sorted sample with linear
/// interpolation between order statistics (the R type-7 estimator).
/// q in [0, 1]; returns 0 on an empty sample. The golden tests compare
/// telemetry::Histogram::value_at_quantile against this.
double exact_quantile(const std::vector<double>& sorted, double q);

/// Convenience: median of an unsorted sample (copies and sorts).
double median(std::vector<double> samples);

}  // namespace nnn::audit
