#include "audit/auditor.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "audit/stats.h"
#include "util/fmt.h"

namespace nnn::audit {

namespace {

/// Completed-flow FCT samples (seconds), in flow order.
std::vector<double> fct_samples(const std::vector<FlowSample>& flows) {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const FlowSample& f : flows) {
    if (f.completed) out.push_back(f.fct);
  }
  return out;
}

std::vector<double> tput_samples(const std::vector<FlowSample>& flows) {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const FlowSample& f : flows) {
    if (f.completed) out.push_back(f.throughput_bps);
  }
  return out;
}

LaneSummary summarize(const std::vector<FlowSample>& flows,
                      telemetry::Histogram& cumulative) {
  LaneSummary s;
  s.flows = flows.size();
  // Per-run histogram for the report's quantiles; the cumulative cell
  // keeps the cross-run distribution for /metrics.
  telemetry::Histogram hist;
  double tput_sum = 0;
  for (const FlowSample& f : flows) {
    if (!f.completed) continue;
    ++s.completed;
    const auto micros = static_cast<uint64_t>(f.fct * 1e6);
    hist.record(micros);
    cumulative.record(micros);
    tput_sum += f.throughput_bps;
  }
  if (s.completed > 0) {
    s.fct_p50 = static_cast<double>(hist.value_at_quantile(0.50)) / 1e6;
    s.fct_p95 = static_cast<double>(hist.value_at_quantile(0.95)) / 1e6;
    s.fct_p99 = static_cast<double>(hist.value_at_quantile(0.99)) / 1e6;
    s.mean_throughput_bps = tput_sum / static_cast<double>(s.completed);
  }
  return s;
}

}  // namespace

json::Value LaneSummary::to_json() const {
  json::Object o;
  o["flows"] = static_cast<uint64_t>(flows);
  o["completed"] = static_cast<uint64_t>(completed);
  o["fct_p50_s"] = fct_p50;
  o["fct_p95_s"] = fct_p95;
  o["fct_p99_s"] = fct_p99;
  o["mean_throughput_bps"] = mean_throughput_bps;
  return json::Value(std::move(o));
}

json::Value AuditReport::to_json() const {
  json::Object o;
  o["seed"] = seed;
  o["pairs"] = static_cast<uint64_t>(pairs);
  o["verdict"] = std::string(to_string(verdict));
  o["boosted"] = boosted.to_json();
  o["baseline"] = baseline.to_json();
  json::Object fct;
  fct["ks"] = fct_ks;
  fct["p"] = fct_p;
  fct["p_asymptotic"] = fct_p_asymptotic;
  o["fct"] = json::Value(std::move(fct));
  json::Object tput;
  tput["ks"] = tput_ks;
  tput["p"] = tput_p;
  o["throughput"] = json::Value(std::move(tput));
  o["median_fct_delta"] = median_fct_delta;
  return json::Value(std::move(o));
}

std::string AuditReport::summary() const {
  return util::fmt("{} seed={} pairs={} D={} p={} delta={}%",
                   to_string(verdict), seed, pairs, fct_ks, fct_p,
                   median_fct_delta * 100.0);
}

Auditor::Auditor(AuditorConfig config)
    : Auditor(std::move(config), telemetry::Registry::global()) {}

Auditor::Auditor(AuditorConfig config, telemetry::Registry& registry)
    : config_(std::move(config)) {
  registration_ = registry.add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void Auditor::collect(telemetry::SampleBuilder& builder) const {
  builder.counter("nnn_audit_runs_total", "Completed audit runs", {},
                  runs_.value());
  builder.counter("nnn_audit_pairs_total",
                  "Matched flow pairs replayed across runs", {},
                  pairs_replayed_.value());
  verdicts_.collect(
      builder, "nnn_audit_verdicts_total", "Audit verdicts, by kind",
      [](AuditVerdict v) { return to_string(v); }, "verdict");
  builder.gauge("nnn_audit_last_p_micro",
                "Last report's FCT permutation p-value, in 1e-6 units", {},
                last_p_micro_.value());
  builder.gauge("nnn_audit_last_ks_milli",
                "Last report's FCT KS statistic, in 1e-3 units", {},
                last_ks_milli_.value());
  builder.gauge("nnn_audit_last_delta_milli",
                "Last report's relative median-FCT delta, in 1e-3 units",
                {}, last_delta_milli_.value());
  telemetry::LabelSet boosted;
  boosted.add("lane", "boosted");
  builder.histogram("nnn_audit_fct_micros",
                    "Per-flow FCT of replayed audit flows, microseconds",
                    std::move(boosted), fct_boosted_micros_);
  telemetry::LabelSet baseline;
  baseline.add("lane", "baseline");
  builder.histogram("nnn_audit_fct_micros",
                    "Per-flow FCT of replayed audit flows, microseconds",
                    std::move(baseline), fct_baseline_micros_);
}

AuditReport Auditor::run(uint64_t seed, const fault::Injector* injector) {
  const PairedSamples samples =
      replay_matched_pairs(config_.replay, seed, injector);
  return analyze(seed, samples);
}

AuditReport Auditor::analyze(uint64_t seed, const PairedSamples& samples) {
  AuditReport report;
  report.seed = seed;
  report.pairs = std::min(samples.boosted.size(), samples.baseline.size());
  report.boosted = summarize(samples.boosted, fct_boosted_micros_);
  report.baseline = summarize(samples.baseline, fct_baseline_micros_);

  const std::vector<double> fct_boost = fct_samples(samples.boosted);
  const std::vector<double> fct_base = fct_samples(samples.baseline);

  if (fct_boost.size() < config_.min_samples ||
      fct_base.size() < config_.min_samples) {
    report.verdict = AuditVerdict::kInconclusive;
  } else {
    report.fct_ks = ks_statistic(fct_boost, fct_base);
    // The permutation seed derives from the run seed so the whole
    // report is a pure function of (config, seed, samples).
    report.fct_p = ks_permutation_p(fct_boost, fct_base,
                                    config_.permutation_rounds,
                                    seed ^ 0x4b5f'7e57ull);
    report.fct_p_asymptotic =
        ks_asymptotic_p(report.fct_ks, fct_boost.size(), fct_base.size());

    const std::vector<double> tp_boost = tput_samples(samples.boosted);
    const std::vector<double> tp_base = tput_samples(samples.baseline);
    report.tput_ks = ks_statistic(tp_boost, tp_base);
    report.tput_p = ks_permutation_p(tp_boost, tp_base,
                                     config_.permutation_rounds,
                                     seed ^ 0x7e57'4b5full);

    const double m_boost = median(fct_boost);
    const double m_base = median(fct_base);
    report.median_fct_delta =
        m_boost > 0 ? (m_base - m_boost) / m_boost : 0.0;

    // VIOLATION needs both significance (the split is not noise) and
    // effect (non-cookie traffic is materially slower). A detectable
    // but negligible — or favorable — difference is CLEAN.
    if (report.fct_p < config_.alpha &&
        report.median_fct_delta > config_.min_effect) {
      report.verdict = AuditVerdict::kViolation;
    } else {
      report.verdict = AuditVerdict::kClean;
    }
  }

  runs_.inc();
  pairs_replayed_.inc(report.pairs);
  verdicts_.inc(report.verdict);
  last_p_micro_.set(static_cast<int64_t>(report.fct_p * 1e6));
  last_ks_milli_.set(static_cast<int64_t>(report.fct_ks * 1e3));
  last_delta_milli_.set(static_cast<int64_t>(report.median_fct_delta * 1e3));
  {
    std::lock_guard<std::mutex> lock(last_mutex_);
    last_ = report;
  }
  return report;
}

std::optional<AuditReport> Auditor::last_report() const {
  std::lock_guard<std::mutex> lock(last_mutex_);
  return last_;
}

}  // namespace nnn::audit
