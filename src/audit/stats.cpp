#include "audit/stats.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace nnn::audit {

double ks_statistic_sorted(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t i = 0;
  size_t j = 0;
  double d = 0.0;
  // Merge walk: at every distinct sample value, both empirical CDFs
  // step to their post-value level; the sup distance is attained at
  // one of these points. Ties advance both cursors before comparing,
  // so equal values never contribute a spurious gap.
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  // Once one sample is exhausted its CDF is pinned at 1; the remaining
  // gap only shrinks as the other catches up, so d is final.
  return d;
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return ks_statistic_sorted(a, b);
}

double ks_asymptotic_p(double d, size_t n, size_t m) {
  if (n == 0 || m == 0 || d <= 0.0) return 1.0;
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  // Q_KS(lambda): alternating series, converges in a handful of terms
  // for lambda > ~0.3; below that the p-value saturates at 1.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

double ks_permutation_p(const std::vector<double>& a,
                        const std::vector<double>& b, size_t rounds,
                        uint64_t seed) {
  if (a.empty() || b.empty()) return 1.0;
  const double observed = ks_statistic(a, b);
  std::vector<double> pool;
  pool.reserve(a.size() + b.size());
  pool.insert(pool.end(), a.begin(), a.end());
  pool.insert(pool.end(), b.begin(), b.end());

  util::Rng rng(seed);
  std::vector<double> pa(a.size());
  std::vector<double> pb(b.size());
  size_t at_least = 0;
  for (size_t r = 0; r < rounds; ++r) {
    rng.shuffle(pool);
    std::copy(pool.begin(), pool.begin() + static_cast<long>(a.size()),
              pa.begin());
    std::copy(pool.begin() + static_cast<long>(a.size()), pool.end(),
              pb.begin());
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    // Tolerance guards the >= against FP noise in the CDF arithmetic:
    // a permutation reproducing the observed split must count.
    if (ks_statistic_sorted(pa, pb) >= observed - 1e-12) ++at_least;
  }
  return static_cast<double>(1 + at_least) /
         static_cast<double>(rounds + 1);
}

double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return exact_quantile(samples, 0.5);
}

}  // namespace nnn::audit
