#include "audit/replay.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/service_registry.h"
#include "fault/injector.h"
#include "net/http.h"
#include "net/packet.h"
#include "runtime/dataplane.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "workload/packet_gen.h"
#include "workload/samplers.h"

namespace nnn::audit {

namespace {

/// SplitMix64 finalizer — derives lane-local impairment sub-seeds from
/// the run seed so the two lanes see equal-in-distribution but
/// independent noise (same trick as fault::Injector's draw hashing).
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PairSchedule PairSchedule::generate(const ReplayConfig& config,
                                    uint64_t seed) {
  util::Rng rng(seed);
  const workload::StableLogNormal sizes(config.size_mu, config.size_sigma);
  PairSchedule schedule;
  schedule.flows.reserve(config.pairs);
  util::Timestamp start = 0;
  const uint64_t spacing_span = static_cast<uint64_t>(
      std::max<util::Timestamp>(1, 2 * config.mean_spacing));
  for (size_t i = 0; i < config.pairs; ++i) {
    Entry entry;
    entry.bytes = std::clamp(static_cast<uint64_t>(sizes.next(rng)),
                             config.min_flow_bytes, config.max_flow_bytes);
    start += static_cast<util::Timestamp>(rng.next_u64(spacing_span));
    entry.start = start;
    schedule.flows.push_back(entry);
  }
  return schedule;
}

std::vector<FlowSample> replay_lane(const ReplayConfig& config,
                                    const PairSchedule& schedule, Lane lane,
                                    uint64_t seed,
                                    const fault::Injector* injector) {
  sim::EventLoop loop;

  // One descriptor covers the whole audit run; each flow mints its own
  // fresh cookie against it (unique uuid, so the verifier's replay
  // cache accepts every flow exactly once).
  cookies::CookieVerifier verifier(loop.clock());
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 0xa0d1'7000 + seed % 1000;
  descriptor.key.assign(32, static_cast<uint8_t>(seed * 7 + 3));
  descriptor.service_data = "Boost";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator cookie_gen(descriptor, loop.clock(),
                                      mix(seed ^ 0xc00c1e));

  sim::Host client(net::IpAddress::v4(10, 0, 0, 2), "audit-client");
  sim::Host server(net::IpAddress::v4(203, 0, 113, 1), "audit-server");

  // The audited bottleneck (server -> client). Lane-local impairment
  // sub-seed: matched pairs must be equal in DISTRIBUTION under the
  // null, not byte-equal — otherwise D degenerates to 0 and the KS
  // test calibrates against nothing.
  sim::Link::Config down_cfg;
  down_cfg.rate_bps = config.link_rate_bps;
  down_cfg.prop_delay = config.prop_delay;
  down_cfg.bands = 2;
  down_cfg.band_capacity_bytes = 256 * 1024;
  down_cfg.loss_rate = config.loss_rate;
  down_cfg.delay_jitter = config.delay_jitter;
  down_cfg.impairment_seed =
      mix(seed ^ (lane == Lane::kBoosted ? 0x600575ull : 0xba5e11ull));
  sim::Link downlink(loop, down_cfg,
                     [&](net::Packet p) { client.receive(p); });
  downlink.set_fault_injector(injector, config.audited_link_id);

  // Reverse path (requests + ACKs): ample and clean, so the only
  // treatment difference the measurement can pick up lives on the
  // audited link.
  sim::Link::Config up_cfg;
  up_cfg.rate_bps = config.link_rate_bps * 10;
  up_cfg.prop_delay = config.prop_delay;
  up_cfg.bands = 2;
  sim::Link uplink(loop, up_cfg, [&](net::Packet p) { server.receive(p); });

  // Head-end classifier: REAL cookie verification on the request path.
  // A verified cookie maps the data-direction tuple into band 0; all
  // other downstream traffic rides band 1. This is the §4.2 middlebox
  // contract in miniature — a failed match "behaves as if the cookie
  // was not there".
  std::unordered_set<net::FiveTuple> boosted_flows;
  client.set_uplink([&](net::Packet p) {
    if (const auto extracted = cookies::extract(p)) {
      if (!extracted->stack.empty() &&
          verifier.verify(extracted->stack.front()).ok()) {
        boosted_flows.insert(p.tuple.reversed());
      }
    }
    uplink.send(std::move(p), 1);
  });
  server.set_uplink([&](net::Packet p) {
    const size_t band = boosted_flows.contains(p.tuple) ? 0 : 1;
    downlink.send(std::move(p), band);
  });

  const size_t n = schedule.flows.size();
  std::vector<FlowSample> samples(n);
  std::vector<std::unique_ptr<sim::TcpSource>> sources;
  std::vector<std::unique_ptr<sim::TcpSink>> sinks;
  sources.reserve(n);
  sinks.reserve(n);
  size_t remaining = n;

  for (size_t i = 0; i < n; ++i) {
    const PairSchedule::Entry& entry = schedule.flows[i];
    samples[i].bytes = entry.bytes;

    net::FiveTuple flow;
    flow.src_ip = server.address();
    flow.dst_ip = client.address();
    flow.src_port = 443;
    // One ephemeral client port per flow; the sim backend is sized for
    // hundreds of pairs per run (the Dataplane backend covers the
    // thousands-of-pairs scale).
    flow.dst_port = static_cast<uint16_t>(20000 + i);
    flow.proto = net::L4Proto::kTcp;

    auto source = std::make_unique<sim::TcpSource>(
        loop, server, flow, entry.bytes, sim::TcpSource::Config{}, nullptr);
    auto sink = std::make_unique<sim::TcpSink>(
        loop, client, flow,
        [&samples, &remaining, i, start = entry.start](util::Timestamp t) {
          FlowSample& s = samples[i];
          s.completed = true;
          s.fct = static_cast<double>(t - start) / util::kSecond;
          if (s.fct > 0) {
            s.throughput_bps = static_cast<double>(s.bytes) * 8.0 / s.fct;
          }
          --remaining;
        });
    server.register_handler(flow.reversed(),
                            [src = source.get()](const net::Packet& p) {
                              if (p.ack) {
                                src->on_ack(p);
                              } else if (!src->complete()) {
                                src->start();  // the request arrived
                              }
                            });
    client.register_handler(flow, [snk = sink.get()](const net::Packet& p) {
      snk->on_data(p);
    });

    // The request: an HTTP GET, carrying a fresh cookie in the boosted
    // lane only. Minted inside the event so its timestamp is current
    // (NCT-fresh) when the head-end verifies it.
    loop.at(entry.start, [&client, &cookie_gen, flow, lane] {
      net::Packet request;
      request.tuple = flow.reversed();
      net::http::Request http("GET", "/replay", "audit.example");
      const std::string text = http.serialize();
      request.payload.assign(text.begin(), text.end());
      if (lane == Lane::kBoosted) {
        cookies::attach(request, cookie_gen.generate(),
                        cookies::Transport::kHttpHeader);
      }
      client.send(std::move(request));
    });
    sources.push_back(std::move(source));
    sinks.push_back(std::move(sink));
  }

  while (remaining > 0 && loop.now() < config.horizon &&
         loop.pending() > 0) {
    loop.step();
  }
  return samples;
}

PairedSamples replay_matched_pairs(const ReplayConfig& config, uint64_t seed,
                                   const fault::Injector* injector) {
  const PairSchedule schedule = PairSchedule::generate(config, seed);
  PairedSamples out;
  out.boosted =
      replay_lane(config, schedule, Lane::kBoosted, seed, injector);
  out.baseline =
      replay_lane(config, schedule, Lane::kBaseline, seed, injector);
  return out;
}

DataplaneReplayResult replay_through_dataplane(
    const DataplaneReplayConfig& config) {
  util::SystemClock clock;
  dataplane::ServiceRegistry services;
  services.bind("Boost", dataplane::PriorityAction{0});

  workload::PacketGenerator::Config wl;
  wl.packet_size = config.packet_size;
  wl.packets_per_flow = config.packets_per_flow;
  wl.descriptors = config.descriptors;
  cookies::CookieVerifier staging(clock);
  workload::PacketGenerator generator(wl, clock, staging, config.seed);

  runtime::Dataplane::Config plane_cfg;
  plane_cfg.pool.workers = config.workers;
  plane_cfg.pool.ring_capacity = 4096;
  plane_cfg.pool.batch_size = 32;
  runtime::Dataplane plane(clock, services, plane_cfg);
  for (const auto& d : generator.descriptors()) plane.add_descriptor(d);

  // Pre-build the matched pairs outside the timed region: the cookie
  // member of each pair comes from the generator (first packet signed
  // against a real descriptor), the baseline member mirrors its sizes
  // and packet count on a disjoint tuple with no cookie.
  const uint64_t per_flow = config.packets_per_flow;
  std::vector<net::Packet> cookie_pkts =
      generator.make_batch(config.pairs);
  std::vector<net::Packet> baseline_pkts;
  baseline_pkts.reserve(cookie_pkts.size());
  for (size_t f = 0; f < config.pairs; ++f) {
    for (uint64_t k = 0; k < per_flow; ++k) {
      const net::Packet& twin = cookie_pkts[f * per_flow + k];
      net::Packet p;
      p.tuple = twin.tuple;
      // Disjoint port space keeps baseline twins as distinct flows.
      p.tuple.src_port = static_cast<uint16_t>(twin.tuple.src_port ^ 0x8000);
      p.wire_size = twin.wire_size;
      baseline_pkts.push_back(std::move(p));
    }
  }

  DataplaneReplayResult result;
  result.pairs = config.pairs;

  plane.start();
  const uint64_t t0 = telemetry::monotonic_nanos();
  // Interleave the pair members packet-by-packet, the way a tap would
  // see a synchronized replay on the wire.
  for (size_t f = 0; f < config.pairs; ++f) {
    for (uint64_t k = 0; k < per_flow; ++k) {
      for (net::Packet* src : {&cookie_pkts[f * per_flow + k],
                               &baseline_pkts[f * per_flow + k]}) {
        runtime::PacketHandle h = plane.make_packet();
        while (!h) h = plane.make_packet();  // workers are draining
        *h = std::move(*src);
        plane.ingest_blocking(std::move(h));
        ++result.packets_ingested;
      }
    }
  }
  plane.drain();
  const uint64_t t1 = telemetry::monotonic_nanos();
  plane.stop();

  const auto snap = plane.snapshot();
  const auto totals = snap.totals();
  result.processed = totals.processed;
  result.shed = totals.shed;
  result.verified_ok = plane.total_verified();
  result.wall_nanos = t1 - t0;
  result.pairs_per_sec =
      result.wall_nanos > 0
          ? static_cast<double>(config.pairs) * 1e9 /
                static_cast<double>(result.wall_nanos)
          : 0.0;
  result.ledger_ok = (result.processed + result.shed ==
                      result.packets_ingested) &&
                     plane.arena().outstanding() == 0;
  return result;
}

}  // namespace nnn::audit
