// The auditor's verdict taxonomy (PR 9). Kept in its own tiny header
// so telemetry/labels.cpp (the process-wide to_string home) can name
// the enum without pulling the replay engine in.
#pragma once

#include <cstdint>

namespace nnn::audit {

/// What a statistical audit run concluded. The decision rule combines
/// statistical significance (permutation KS p-value below alpha) with
/// practical significance (relative median-FCT delta above a floor):
/// a distribution shift that is detectable but negligible is not
/// discrimination, and a large-looking delta that noise explains is
/// not evidence.
enum class AuditVerdict : uint8_t {
  /// No statistically supported degradation of non-cookie traffic.
  kClean = 0,
  /// Non-cookie flows are degraded: p < alpha AND the baseline lane's
  /// median FCT exceeds the boosted lane's by more than min_effect.
  kViolation,
  /// Not enough completed samples to call either way.
  kInconclusive,
};

}  // namespace nnn::audit
