// Matched-pair replay engine for the neutrality auditor (PR 9).
//
// The auditor's measurement design is the FairNet/Wehe one (PAPERS.md):
// replay the SAME flow schedule twice — once with every flow carrying
// a valid network cookie (the "boosted" lane), once with no cookies at
// all (the "baseline" lane) — and compare the observed per-flow
// FCT/throughput distributions. Sizes and start times are drawn once
// from the run seed (workload::StableLogNormal flow sizes, uniform
// staggered arrivals), so the two lanes are matched by construction;
// the only differences are (a) which QoS band the head-end classifier
// steers each flow into and (b) independent impairment noise
// (per-lane impairment sub-seeds — equal in distribution, not equal
// samples, so a clean link yields KS p-values uniform under the null
// instead of a degenerate D = 0).
//
// Two backends:
//   - replay_matched_pairs: discrete-event sim (sim::EventLoop, TCP
//     sources/sinks over a 2-band bottleneck Link). Each request
//     crosses a head-end classifier that runs REAL cookie
//     verification (cookies::extract + CookieVerifier) and maps
//     verified flows to band 0; everything else rides band 1. This is
//     where FCT distributions — and an injected kThrottleNonCookie —
//     live.
//   - replay_through_dataplane: drives matched cookie/baseline packet
//     pairs through the production runtime::Dataplane::ingest path at
//     scale (thousands of pairs), checking the verdict ledger and
//     measuring pairs/s. This is the "at scale" half the bench gates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::audit {

/// Which treatment a replay run applies to the shared schedule.
enum class Lane : uint8_t { kBoosted = 0, kBaseline = 1 };

/// One replayed flow's measurements.
struct FlowSample {
  uint64_t bytes = 0;
  /// Request-to-last-byte flow completion time, seconds. < 0 when the
  /// flow did not complete within the horizon.
  double fct = -1.0;
  /// bytes * 8 / fct, 0 when incomplete.
  double throughput_bps = 0.0;
  bool completed = false;
};

struct ReplayConfig {
  /// Matched flow pairs per run (one boosted + one baseline flow per
  /// pair, identical size and start time).
  size_t pairs = 150;

  // --- bottleneck link (the audited last mile) ---
  double link_rate_bps = 20e6;
  util::Timestamp prop_delay = 5 * util::kMillisecond;
  /// Sampling noise: small loss + jitter give the FCT distributions
  /// real width, so the KS test works against an honest null instead
  /// of comparing deterministic replicas.
  double loss_rate = 0.002;
  util::Timestamp delay_jitter = 2 * util::kMillisecond;
  /// Link id the audited bottleneck registers with the fault injector
  /// (a kThrottleNonCookie event targeting it is what the auditor
  /// must catch).
  uint32_t audited_link_id = 0;

  // --- flow schedule (drawn once per seed, shared by both lanes) ---
  /// Log-normal flow sizes (workload::StableLogNormal), clamped to
  /// [min_flow_bytes, max_flow_bytes]. Defaults: median ~40 KB,
  /// sigma 0.8 — a short-flow heavy-tail mix.
  double size_mu = 10.6;
  double size_sigma = 0.8;
  uint64_t min_flow_bytes = 4 * 1024;
  uint64_t max_flow_bytes = 400 * 1024;
  /// Flow k starts at a uniform draw in [0, 2*mean_spacing) after
  /// flow k-1 (mean inter-arrival = mean_spacing, ~55% offered load
  /// at the defaults).
  util::Timestamp mean_spacing = 40 * util::kMillisecond;

  /// Hard stop for one lane's sim run.
  util::Timestamp horizon = 300 * util::kSecond;
};

/// The seed-derived schedule both lanes replay.
struct PairSchedule {
  struct Entry {
    uint64_t bytes = 0;
    util::Timestamp start = 0;
  };
  std::vector<Entry> flows;

  /// Deterministic per (config, seed), platform-stable (only
  /// StableLogNormal + next_u64 draws).
  static PairSchedule generate(const ReplayConfig& config, uint64_t seed);
};

/// Replay one lane of the schedule through the sim topology. The
/// injector (nullable) is attached to the bottleneck link as
/// `config.audited_link_id`; lane-local sim time starts at 0, so
/// fault events are expressed in schedule-relative time.
std::vector<FlowSample> replay_lane(const ReplayConfig& config,
                                    const PairSchedule& schedule, Lane lane,
                                    uint64_t seed,
                                    const fault::Injector* injector);

struct PairedSamples {
  std::vector<FlowSample> boosted;
  std::vector<FlowSample> baseline;
};

/// Generate the schedule for `seed` and replay both lanes.
PairedSamples replay_matched_pairs(const ReplayConfig& config, uint64_t seed,
                                   const fault::Injector* injector);

// ---------------------------------------------------------------------------
// Dataplane backend
// ---------------------------------------------------------------------------

struct DataplaneReplayConfig {
  /// Matched pairs (one cookie-bearing flow + one bare flow each).
  size_t pairs = 5000;
  size_t workers = 4;
  uint32_t packets_per_flow = 8;
  uint32_t packet_size = 512;
  size_t descriptors = 4096;
  uint64_t seed = 1;
};

struct DataplaneReplayResult {
  size_t pairs = 0;
  uint64_t packets_ingested = 0;
  uint64_t processed = 0;
  uint64_t shed = 0;
  uint64_t verified_ok = 0;
  uint64_t wall_nanos = 0;
  double pairs_per_sec = 0.0;
  /// attempts == processed + shed after drain (the pool's ledger) AND
  /// zero arena slots outstanding after stop.
  bool ledger_ok = false;
};

/// Push `pairs` matched cookie/baseline flows through the zero-copy
/// Dataplane::ingest path (closed loop, loss-free) and report
/// throughput + ledger health. Every cookie flow's first packet
/// carries a fresh signed cookie (workload::PacketGenerator); its
/// baseline twin has identical tuple shape, sizes, and packet count,
/// minus the cookie.
DataplaneReplayResult replay_through_dataplane(
    const DataplaneReplayConfig& config);

}  // namespace nnn::audit
