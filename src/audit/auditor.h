// The neutrality auditor: verdicts with p-values (PR 9 tentpole).
//
// An Auditor owns the end-to-end regulator measurement: replay a
// matched-pair schedule through the sim (replay.h), run the KS
// machinery over the observed FCT/throughput distributions (stats.h),
// and emit an AuditReport whose verdict carries statistical weight —
// VIOLATION means "the probability a neutral network produces this
// split is below alpha AND the effect is large enough to matter",
// not "two table dumps differ". Reports are exported through the
// telemetry registry (nnn_audit_*) and, via JsonApi::set_auditor,
// over the JSON control plane (GET /audit.json).
//
// Threading: run()/analyze() are single-caller at a time (they write
// the single-writer telemetry cells); last_report() is safe from any
// thread (mutex-guarded copy) — that is what the JsonApi route reads
// while an audit loop runs elsewhere.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "audit/replay.h"
#include "audit/verdict.h"
#include "json/json.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"

namespace nnn::audit {

/// Per-lane distribution summary. Quantiles come from a
/// telemetry::Histogram over FCT microseconds via the log-linear
/// interpolated value_at_quantile accessor — the same estimator the
/// metrics surface exposes, so the report and /metrics agree.
struct LaneSummary {
  size_t flows = 0;
  size_t completed = 0;
  /// Seconds; histogram-estimated p50/p95/p99 of completed flows.
  double fct_p50 = 0;
  double fct_p95 = 0;
  double fct_p99 = 0;
  double mean_throughput_bps = 0;

  json::Value to_json() const;
};

struct AuditReport {
  uint64_t seed = 0;
  size_t pairs = 0;
  LaneSummary boosted;
  LaneSummary baseline;

  /// Two-sample KS over per-flow FCT: statistic, permutation p-value
  /// (the decision input), and the asymptotic p-value cross-check.
  double fct_ks = 0;
  double fct_p = 1.0;
  double fct_p_asymptotic = 1.0;
  /// Same over per-flow throughput (corroborating view).
  double tput_ks = 0;
  double tput_p = 1.0;

  /// Relative median-FCT delta, (baseline - boosted) / boosted:
  /// positive = non-cookie traffic is slower. Computed from exact
  /// sample medians (the decision must not inherit bucket error).
  double median_fct_delta = 0;

  AuditVerdict verdict = AuditVerdict::kInconclusive;

  json::Value to_json() const;
  /// One line for logs/tests: "VIOLATION p=0.0009 D=0.41 delta=+62%".
  std::string summary() const;
};

struct AuditorConfig {
  ReplayConfig replay;
  /// Permutation rounds for the p-value (floor = 1/(rounds+1)).
  size_t permutation_rounds = 1000;
  /// Significance level for VIOLATION.
  double alpha = 0.01;
  /// Practical-significance floor on median_fct_delta: shifts smaller
  /// than this are CLEAN even when statistically detectable (a 5%
  /// median difference is not a throttle).
  double min_effect = 0.05;
  /// Minimum completed flows per lane before any verdict besides
  /// INCONCLUSIVE.
  size_t min_samples = 30;
};

class Auditor {
 public:
  /// Registers nnn_audit_* with the registry; pinned (the collector
  /// holds `this`).
  explicit Auditor(AuditorConfig config = {});
  Auditor(AuditorConfig config, telemetry::Registry& registry);
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Replay matched pairs for `seed` (injector optional — that is the
  /// device under audit) and analyze. Stores and returns the report.
  AuditReport run(uint64_t seed, const fault::Injector* injector = nullptr);

  /// The statistics/verdict half, split out so tests can audit
  /// synthetic sample sets without a sim run.
  AuditReport analyze(uint64_t seed, const PairedSamples& samples);

  /// Latest report, if any run completed. Safe from any thread.
  std::optional<AuditReport> last_report() const;

  const AuditorConfig& config() const { return config_; }
  uint64_t runs() const { return runs_.value(); }

 private:
  void collect(telemetry::SampleBuilder& builder) const;

  AuditorConfig config_;

  mutable std::mutex last_mutex_;
  std::optional<AuditReport> last_;

  // Telemetry cells (single writer: the run()/analyze() caller).
  telemetry::StatusCounters<AuditVerdict, kAuditVerdictCount> verdicts_;
  telemetry::Counter runs_;
  telemetry::Counter pairs_replayed_;
  /// Last report, scaled into integer gauges: p-value in micro-units,
  /// KS statistic and median delta in milli-units.
  telemetry::Gauge last_p_micro_;
  telemetry::Gauge last_ks_milli_;
  telemetry::Gauge last_delta_milli_;
  /// Cumulative per-lane FCT distributions (microseconds).
  telemetry::Histogram fct_boosted_micros_;
  telemetry::Histogram fct_baseline_micros_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::audit
