#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nnn::json {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth || eof()) return std::nullopt;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Value(true);
        return std::nullopt;
      case 'f':
        if (consume_literal("false")) return Value(false);
        return std::nullopt;
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        return std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      obj[std::move(*key)] = std::move(*value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(obj));
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(arr));
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (true) {
      if (eof()) return std::nullopt;
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp) return std::nullopt;
          uint32_t code = *cp;
          // Surrogate pair handling.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume('\\') || !consume('u')) return std::nullopt;
            auto lo = parse_hex4();
            if (!lo || *lo < 0xDC00 || *lo > 0xDFFF) return std::nullopt;
            code = 0x10000 + ((code - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return std::nullopt;  // unpaired low surrogate
          }
          append_utf8(out, code);
          break;
        }
        default:
          return std::nullopt;
      }
    }
  }

  std::optional<uint32_t> parse_hex4() {
    if (text_.size() - pos_ < 4) return std::nullopt;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::optional<Value> parse_number() {
    const size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return std::nullopt;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return std::nullopt;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return std::nullopt;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void escape_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void format_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    out += "null";  // NaN / Inf are not representable in JSON
  }
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(v_);
}

int64_t Value::as_int() const {
  return static_cast<int64_t>(as_number());
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(v_);
}

Array& Value::as_array() {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(v_);
}

Object& Value::as_object() {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->as_string() : std::string(fallback);
}

int64_t Value::get_int(std::string_view key, int64_t fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v && v->is_bool() ? v->as_bool() : fallback;
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, -1, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(v_) ? "true" : "false";
  } else if (is_number()) {
    format_number(out, std::get<double>(v_));
  } else if (is_string()) {
    escape_string(out, std::get<std::string>(v_));
  } else if (is_array()) {
    const auto& arr = std::get<Array>(v_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(depth);
    out.push_back(']');
  } else {
    const auto& obj = std::get<Object>(v_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(depth + 1);
      escape_string(out, key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(depth);
    out.push_back('}');
  }
}

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace nnn::json
