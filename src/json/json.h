// Minimal JSON value / parser / serializer.
//
// The paper's cookie server exposes "a JSON API for users to acquire
// [descriptors]" (§5.2) and the Boost agent "issues a boost request to
// a well-known server using a JSON message" (§5.1). This is a small,
// standards-conforming (RFC 8259) implementation sufficient for that
// control-plane traffic: object, array, string (with \uXXXX escapes,
// encoded as UTF-8), number (stored as double, with integer fast-path
// formatting), bool, null.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace nnn::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps key order deterministic, which keeps serialized API
/// messages and audit records byte-stable across runs.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(int64_t i) : v_(static_cast<double>(i)) {}
  Value(uint64_t i) : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Checked accessors: throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Convenience typed getters with defaults (for API handlers).
  std::string get_string(std::string_view key,
                         std::string_view fallback = "") const;
  int64_t get_int(std::string_view key, int64_t fallback = 0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;

  /// Serialize compactly (no whitespace).
  std::string dump() const;
  /// Serialize with 2-space indentation.
  std::string dump_pretty() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document. nullopt on any syntax error or
/// trailing garbage. Nesting depth is limited (protects the recursive
/// parser from adversarial control-plane input).
std::optional<Value> parse(std::string_view text);

}  // namespace nnn::json
