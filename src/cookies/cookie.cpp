#include "cookies/cookie.h"

#include "util/base64.h"

namespace nnn::cookies {

namespace {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;

constexpr uint8_t kMagic[3] = {'N', 'C', 'K'};
constexpr uint8_t kVersion = 0x01;

void encode_one(ByteWriter& w, const Cookie& c, uint8_t followers) {
  w.raw(BytesView(kMagic, 3));
  w.u8(kVersion);
  w.u64(c.cookie_id);
  w.raw(BytesView(c.uuid.bytes().data(), c.uuid.bytes().size()));
  w.u64(c.timestamp);
  w.raw(BytesView(c.signature.data(), c.signature.size()));
  w.u8(followers);
}

/// Decode one cookie entry; returns the follower count via out-param.
std::optional<Cookie> decode_one(ByteReader& r, uint8_t& followers) {
  auto magic = r.view(3);
  auto version = r.u8();
  if (!magic || !version || !util::equal(*magic, BytesView(kMagic, 3)) ||
      *version != kVersion) {
    return std::nullopt;
  }
  auto id = r.u64();
  auto uuid_bytes = r.view(crypto::Uuid::kSize);
  auto timestamp = r.u64();
  auto tag = r.view(crypto::kCookieTagSize);
  auto follower_count = r.u8();
  if (!id || !uuid_bytes || !timestamp || !tag || !follower_count) {
    return std::nullopt;
  }
  Cookie c;
  c.cookie_id = *id;
  std::array<uint8_t, crypto::Uuid::kSize> ub;
  std::copy(uuid_bytes->begin(), uuid_bytes->end(), ub.begin());
  c.uuid = crypto::Uuid(ub);
  c.timestamp = *timestamp;
  std::copy(tag->begin(), tag->end(), c.signature.begin());
  followers = *follower_count;
  return c;
}

}  // namespace

CookieTime to_cookie_time(util::Timestamp t) {
  return static_cast<CookieTime>(t / util::kSecond);
}

util::Bytes Cookie::signed_value() const {
  const SignedValue fixed = signed_value_fixed();
  return Bytes(fixed.begin(), fixed.end());
}

Cookie::SignedValue Cookie::signed_value_fixed() const {
  SignedValue out;
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(cookie_id >> (56 - 8 * i));
  }
  std::memcpy(out.data() + 8, uuid.bytes().data(), crypto::Uuid::kSize);
  for (int i = 0; i < 8; ++i) {
    out[8 + crypto::Uuid::kSize + i] =
        static_cast<uint8_t>(timestamp >> (56 - 8 * i));
  }
  return out;
}

crypto::CookieTag Cookie::compute_tag(util::BytesView key) const {
  const SignedValue value = signed_value_fixed();
  return crypto::cookie_tag(key, BytesView(value.data(), value.size()));
}

crypto::CookieTag Cookie::compute_tag(
    const crypto::HmacKeySchedule& schedule) const {
  const SignedValue value = signed_value_fixed();
  return schedule.tag(BytesView(value.data(), value.size()));
}

util::Bytes Cookie::encode() const {
  Bytes out;
  out.reserve(kCookieWireSize);
  ByteWriter w(out);
  encode_one(w, *this, 0);
  return out;
}

std::string Cookie::encode_text() const {
  return util::base64_encode(BytesView(encode()));
}

std::optional<Cookie> Cookie::decode(util::BytesView wire) {
  ByteReader r(wire);
  uint8_t followers = 0;
  auto c = decode_one(r, followers);
  if (!c || followers != 0 || !r.done()) return std::nullopt;
  return c;
}

std::optional<Cookie> Cookie::decode_text(std::string_view text) {
  const auto bytes = util::base64_decode(text);
  if (!bytes) return std::nullopt;
  return decode(BytesView(*bytes));
}

std::optional<CookieId> peek_cookie_id(util::BytesView wire) {
  ByteReader r(wire);
  const auto magic = r.view(3);
  const auto version = r.u8();
  if (!magic || !version || !util::equal(*magic, BytesView(kMagic, 3)) ||
      *version != kVersion) {
    return std::nullopt;
  }
  return r.u64();
}

util::Bytes encode_stack(const std::vector<Cookie>& cookies) {
  Bytes out;
  out.reserve(kCookieWireSize * cookies.size());
  ByteWriter w(out);
  for (size_t i = 0; i < cookies.size(); ++i) {
    const uint8_t followers =
        i == 0 ? static_cast<uint8_t>(cookies.size() - 1) : 0;
    encode_one(w, cookies[i], followers);
  }
  return out;
}

std::optional<std::vector<Cookie>> decode_stack(util::BytesView wire) {
  ByteReader r(wire);
  uint8_t followers = 0;
  auto first = decode_one(r, followers);
  if (!first) return std::nullopt;
  std::vector<Cookie> out;
  out.push_back(std::move(*first));
  for (uint8_t i = 0; i < followers; ++i) {
    uint8_t nested = 0;
    auto next = decode_one(r, nested);
    if (!next || nested != 0) return std::nullopt;
    out.push_back(std::move(*next));
  }
  if (!r.done()) return std::nullopt;
  return out;
}

std::string encode_stack_text(const std::vector<Cookie>& cookies) {
  return util::base64_encode(BytesView(encode_stack(cookies)));
}

std::optional<std::vector<Cookie>> decode_stack_text(std::string_view text) {
  const auto bytes = util::base64_decode(text);
  if (!bytes) return std::nullopt;
  return decode_stack(BytesView(*bytes));
}

}  // namespace nnn::cookies
