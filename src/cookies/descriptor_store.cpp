#include "cookies/descriptor_store.h"

#include <cstring>
#include <utility>

namespace nnn::cookies {

void DescriptorStore::upsert(const CookieDescriptor& descriptor) {
  Record& record = insert_record(descriptor.cookie_id);
  set_key(record, util::BytesView(descriptor.key));
  record.profile = intern_profile(descriptor);
  if (descriptor.attributes.expires_at.has_value()) {
    record.has_expiry = true;
    record.expires_at = *descriptor.attributes.expires_at;
  } else {
    record.has_expiry = false;
    record.expires_at = 0;
  }
  record.revoked = false;
}

void DescriptorStore::revoke(CookieId id) {
  if (Record* record = find_mut(id)) {
    record->revoked = true;
    return;
  }
  // Revoke-before-sync tombstone: no key, no profile — the id just
  // verifies as revoked rather than unknown.
  insert_record(id).revoked = true;
}

bool DescriptorStore::erase(CookieId id) {
  uint32_t* slot_entry = index_.find(hash_id(id), index_matcher(id));
  if (slot_entry == nullptr) return false;
  const uint32_t slot = *slot_entry;
  release_spill(records_[slot]);
  index_.erase_element(slot_entry);
  const uint32_t last = static_cast<uint32_t>(records_.size() - 1);
  if (slot != last) {
    records_[slot] = std::move(records_[last]);
    // Re-point the moved record's index entry at its new slot.
    uint32_t* moved = index_.find(hash_id(records_[slot].id),
                                  index_matcher(records_[slot].id));
    *moved = slot;
  }
  records_.pop_back();
  return true;
}

const DescriptorStore::Record* DescriptorStore::find(CookieId id) const {
  const uint32_t* slot = index_.find(hash_id(id), index_matcher(id));
  return slot == nullptr ? nullptr : &records_[*slot];
}

DescriptorStore::Record* DescriptorStore::find_mut(CookieId id) {
  uint32_t* slot = index_.find(hash_id(id), index_matcher(id));
  return slot == nullptr ? nullptr : &records_[*slot];
}

util::BytesView DescriptorStore::key_of(const Record& record) const {
  if (record.spill != kNoSpill) {
    return util::BytesView(spill_keys_[record.spill]);
  }
  return util::BytesView(record.key, record.key_len);
}

CookieDescriptor DescriptorStore::materialize(const Record& record) const {
  CookieDescriptor descriptor;
  descriptor.cookie_id = record.id;
  const util::BytesView key = key_of(record);
  descriptor.key.assign(key.begin(), key.end());
  if (record.profile != kNoProfile) {
    const Profile& profile = profiles_[record.profile];
    descriptor.service_data = profile.service_data;
    descriptor.attributes = profile.attributes;
  }
  if (record.has_expiry) {
    descriptor.attributes.expires_at = record.expires_at;
  }
  return descriptor;
}

void DescriptorStore::clear() {
  records_.clear();
  index_.clear();
  profiles_.clear();
  intern_.clear();
  spill_keys_.clear();
  spill_free_.clear();
}

void DescriptorStore::reserve(size_t n) {
  records_.reserve(n);
  index_.reserve(n, index_hasher());
}

size_t DescriptorStore::memory_bytes() const {
  size_t bytes = records_.capacity() * sizeof(Record) +
                 index_.memory_bytes() + intern_.memory_bytes();
  for (const util::Bytes& key : spill_keys_) bytes += key.capacity();
  bytes += spill_keys_.capacity() * sizeof(util::Bytes);
  // Interned profiles: count the string payloads, attribute vectors
  // and extras approximately (they are shared across all records).
  for (const Profile& profile : profiles_) {
    bytes += sizeof(Profile) + profile.service_data.capacity() +
             profile.attributes.transports.capacity() * sizeof(Transport);
    for (const auto& [k, v] : profile.attributes.extra) {
      bytes += k.capacity() + v.capacity() + 64;
    }
  }
  return bytes;
}

state::ProbeStats DescriptorStore::probe_stats(size_t max_samples) const {
  return index_.probe_stats(index_hasher(), max_samples);
}

DescriptorStore::Record& DescriptorStore::insert_record(CookieId id) {
  const auto [slot_entry, inserted] = index_.find_or_insert(
      hash_id(id), index_matcher(id), index_hasher(), [&] {
        records_.emplace_back();
        return static_cast<uint32_t>(records_.size() - 1);
      });
  Record& record = records_[*slot_entry];
  if (!inserted) {
    // Replacing in place: drop old spill before the caller overwrites.
    release_spill(record);
    record = Record{};
  }
  record.id = id;
  return record;
}

void DescriptorStore::set_key(Record& record, util::BytesView key) {
  if (key.size() <= kInlineKeyBytes) {
    std::memcpy(record.key, key.data(), key.size());
    record.key_len = static_cast<uint8_t>(key.size());
    record.spill = kNoSpill;
    return;
  }
  record.key_len = 0;
  if (!spill_free_.empty()) {
    record.spill = spill_free_.back();
    spill_free_.pop_back();
  } else {
    record.spill = static_cast<uint32_t>(spill_keys_.size());
    spill_keys_.emplace_back();
  }
  spill_keys_[record.spill].assign(key.begin(), key.end());
}

void DescriptorStore::release_spill(Record& record) {
  if (record.spill == kNoSpill) return;
  spill_keys_[record.spill].clear();
  spill_free_.push_back(record.spill);
  record.spill = kNoSpill;
}

uint32_t DescriptorStore::intern_profile(const CookieDescriptor& descriptor) {
  // Identity = service_data + attributes with expires_at stripped
  // (expiry lives per record). The serialized form is deterministic
  // (json::Object is an ordered map).
  Attributes shared = descriptor.attributes;
  shared.expires_at.reset();
  std::string identity = descriptor.service_data;
  identity.push_back('\0');
  identity += shared.to_json().dump();
  const auto [item, inserted] = intern_.try_emplace(identity);
  if (inserted) {
    profiles_.push_back(Profile{descriptor.service_data, std::move(shared)});
    item->value = static_cast<uint32_t>(profiles_.size() - 1);
  }
  return item->value;
}

}  // namespace nnn::cookies
