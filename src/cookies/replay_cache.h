// Replay protection (§4.2, match_cookie's is_unique_uuid).
//
// "To verify uniqueness, we keep a list of recently seen cookies
// (within NCT)." This cache stores uuids with an expiry horizon and
// purges expired entries on every insert *before* the duplicate check,
// so a uuid past its horizon is always re-insertable. In the steady
// state memory is bounded by (cookie arrival rate x NCT); a flood of
// unique uuids is additionally clamped by an explicit capacity with
// oldest-first eviction, so an attacker cannot grow the cache without
// bound (the trade-off — an evicted uuid could be replayed — only
// arises under a flood that is itself the anomaly).
//
// Ownership (§4.6 scale-out): a ReplayCache is single-threaded state
// owned by exactly one verifier, which in the threaded runtime means
// exactly one worker. Use-once is therefore only *locally* verifiable;
// cross-worker soundness requires routing each descriptor's cookies to
// one worker (DispatchPolicy::kDescriptorAffinity). Sharing one cache
// between workers is deliberately unsupported — it would put a lock on
// the per-packet hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "crypto/uuid.h"
#include "util/clock.h"

namespace nnn::cookies {

class ReplayCache {
 public:
  /// Default entry clamp: at 53 bytes of uuid+bookkeeping apiece this
  /// is a few tens of MB per descriptor worst-case, far above any
  /// legitimate (rate x NCT) working set.
  static constexpr size_t kDefaultCapacity = 1 << 20;

  /// `horizon` is how long a uuid is remembered — the NCT window (a
  /// cookie older than NCT fails the timestamp check anyway, so
  /// remembering it longer buys nothing). `capacity` clamps the entry
  /// count against uuid floods; oldest entries are evicted first.
  explicit ReplayCache(util::Timestamp horizon,
                       size_t capacity = kDefaultCapacity);

  /// Record `uuid` as seen at `now`. Returns false if it was already
  /// present (i.e., this is a replay), true if newly inserted.
  bool insert(const crypto::Uuid& uuid, util::Timestamp now);

  /// Whether `uuid` is currently remembered.
  bool contains(const crypto::Uuid& uuid) const;

  /// Drop entries that expired before `now`. insert() calls this
  /// automatically; exposed for tests and for idle-time maintenance.
  void purge(util::Timestamp now);

  size_t size() const { return set_.size(); }
  size_t capacity() const { return capacity_; }
  util::Timestamp horizon() const { return horizon_; }
  /// Entries evicted by the capacity clamp (not by expiry) — nonzero
  /// means the cache saw a uuid flood and use-once was best-effort.
  uint64_t capacity_evictions() const { return capacity_evictions_; }

 private:
  struct Entry {
    util::Timestamp expires;
    crypto::Uuid uuid;
  };

  util::Timestamp horizon_;
  size_t capacity_;
  uint64_t capacity_evictions_ = 0;
  std::deque<Entry> queue_;  // in insertion (≈ expiry) order
  std::unordered_set<crypto::Uuid> set_;
};

}  // namespace nnn::cookies
