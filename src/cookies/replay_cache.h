// Replay protection (§4.2, match_cookie's is_unique_uuid).
//
// "To verify uniqueness, we keep a list of recently seen cookies
// (within NCT)." This cache remembers uuids for an expiry horizon; a
// uuid past its horizon is always re-insertable (a cookie that old
// fails the timestamp check anyway, so forgetting is safe and bounds
// memory). Steady-state memory is (cookie arrival rate x NCT); a
// flood of unique uuids is additionally clamped by an explicit
// capacity with oldest-first eviction, so an attacker cannot grow the
// cache without bound (the trade-off — an evicted uuid could be
// replayed — only arises under a flood that is itself the anomaly).
//
// ISP-scale internals (src/state): uuids live in a pooled entry array
// indexed by an open-addressing state::FlatTable of u32 handles (one
// flat probe per lookup, no per-entry heap node), and expiry runs
// through a state::ExpiryWheel — entries hash into NCT-bucketed time
// slots, so purging touches only due entries, O(1) amortized. The
// insert path is gated on a next-expiry watermark (the exact minimum
// outstanding expiry): when now is before it, nothing can have
// expired and purge() returns without touching the wheel at all,
// instead of the historical scan-per-insert.
//
// Ownership (§4.6 scale-out): a ReplayCache is single-threaded state
// owned by exactly one verifier, which in the threaded runtime means
// exactly one worker. Use-once is therefore only *locally* verifiable;
// cross-worker soundness requires routing each descriptor's cookies to
// one worker (DispatchPolicy::kDescriptorAffinity). Sharing one cache
// between workers is deliberately unsupported — it would put a lock on
// the per-packet hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/uuid.h"
#include "state/expiry_wheel.h"
#include "state/flat_table.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace nnn::cookies {

class ReplayCache {
 public:
  /// Default entry clamp: at ~40 bytes of uuid+bookkeeping apiece this
  /// is a few tens of MB per cache worst-case, far above any
  /// legitimate (rate x NCT) working set.
  static constexpr size_t kDefaultCapacity = 1 << 20;

  /// Timer-wheel shape: 256 slots, tick = horizon/64 — the wheel
  /// period is 4x the horizon, so one revolution can never mix entries
  /// from different horizons even when the watermark lets the cursor
  /// lag a full horizon behind.
  static constexpr size_t kWheelSlots = 256;

  /// `horizon` is how long a uuid is remembered — the NCT window.
  /// `capacity` clamps the entry count against uuid floods; oldest
  /// entries are evicted first.
  explicit ReplayCache(util::Timestamp horizon,
                       size_t capacity = kDefaultCapacity);

  /// Record `uuid` as seen at `now`. Returns false if it was already
  /// present (i.e., this is a replay), true if newly inserted.
  bool insert(const crypto::Uuid& uuid, util::Timestamp now);

  /// Whether `uuid` is currently remembered.
  bool contains(const crypto::Uuid& uuid) const;

  /// Drop entries that expired at or before `now`. insert() calls this
  /// automatically (watermark-gated); exposed for tests and for
  /// idle-time maintenance.
  void purge(util::Timestamp now);

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  util::Timestamp horizon() const { return horizon_; }
  /// Entries evicted by the capacity clamp (not by expiry) — nonzero
  /// means the cache saw a uuid flood and use-once was best-effort.
  uint64_t capacity_evictions() const { return capacity_evictions_; }

  /// Earliest instant at which any entry can expire; ExpiryWheel's
  /// kNever when empty. purge() calls before this are no-ops.
  util::Timestamp watermark() const { return watermark_; }
  /// Number of purge calls that actually advanced the wheel (i.e.,
  /// passed the watermark gate). The regression the watermark fixes is
  /// this growing with every insert.
  uint64_t purge_scans() const { return purge_scans_; }

  /// Wheel occupancy for telemetry (slots holding >= 1 entry).
  size_t wheel_slots() const { return wheel_.slot_count(); }
  size_t wheel_occupied_slots() const { return wheel_.occupied_slots(); }

  /// Bytes held by the entry pool, handle index, and wheel slots.
  size_t memory_bytes() const;
  /// Offline probe-length distribution over the handle index.
  state::ProbeStats probe_stats(size_t max_samples) const;
  /// When set, insert probes are sampled (1 in 64) into `hist`. The
  /// histogram must outlive the cache. Left unset on the per-descriptor
  /// caches of local-mode verifiers, which keeps them allocation-lean.
  void set_probe_histogram(telemetry::Histogram* hist) {
    probe_hist_ = hist;
  }

 private:
  struct Entry {
    crypto::Uuid uuid;
    util::Timestamp expires = 0;
    uint32_t next = state::ExpiryWheel::kNil;  // wheel chain link
  };

  static uint64_t hash_of(const crypto::Uuid& uuid) {
    return state::mix_hash(std::hash<crypto::Uuid>{}(uuid));
  }
  auto wheel_next() {
    return [this](uint32_t h) -> uint32_t& { return pool_[h].next; };
  }

  uint32_t alloc_entry();
  void evict_oldest();
  void erase_handle(uint32_t handle);
  void sample_probe(uint32_t probes) {
    if (probe_hist_ != nullptr && (probe_tick_++ & 63u) == 0) {
      probe_hist_->record(probes);
    }
  }

  util::Timestamp horizon_;
  size_t capacity_;
  uint64_t capacity_evictions_ = 0;
  uint64_t purge_scans_ = 0;
  util::Timestamp watermark_ = state::ExpiryWheel::kNever;
  std::vector<Entry> pool_;
  std::vector<uint32_t> free_;
  state::FlatTable<uint32_t> index_;  // handle per live uuid
  state::ExpiryWheel wheel_;
  telemetry::Histogram* probe_hist_ = nullptr;
  uint32_t probe_tick_ = 0;
};

}  // namespace nnn::cookies
