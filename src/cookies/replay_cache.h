// Replay protection (§4.2, match_cookie's is_unique_uuid).
//
// "To verify uniqueness, we keep a list of recently seen cookies
// (within NCT)." This cache stores uuids with an expiry horizon and
// evicts lazily; memory is bounded by (cookie arrival rate x NCT).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

#include "crypto/uuid.h"
#include "util/clock.h"

namespace nnn::cookies {

class ReplayCache {
 public:
  /// `horizon` is how long a uuid is remembered — the NCT window (a
  /// cookie older than NCT fails the timestamp check anyway, so
  /// remembering it longer buys nothing).
  explicit ReplayCache(util::Timestamp horizon);

  /// Record `uuid` as seen at `now`. Returns false if it was already
  /// present (i.e., this is a replay), true if newly inserted.
  bool insert(const crypto::Uuid& uuid, util::Timestamp now);

  /// Whether `uuid` is currently remembered.
  bool contains(const crypto::Uuid& uuid) const;

  /// Drop entries that expired before `now`. insert() calls this
  /// automatically; exposed for tests and for idle-time maintenance.
  void purge(util::Timestamp now);

  size_t size() const { return set_.size(); }
  util::Timestamp horizon() const { return horizon_; }

 private:
  struct Entry {
    util::Timestamp expires;
    crypto::Uuid uuid;
  };

  util::Timestamp horizon_;
  std::deque<Entry> queue_;  // in insertion (≈ expiry) order
  std::unordered_set<crypto::Uuid> set_;
};

}  // namespace nnn::cookies
