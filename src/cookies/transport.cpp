#include "cookies/transport.h"

#include "net/http.h"
#include "net/tls.h"
#include "util/base64.h"
#include "util/bytes.h"

namespace nnn::cookies {

namespace {

using util::Bytes;
using util::BytesView;

bool attach_http(net::Packet& packet, const std::vector<Cookie>& cookies) {
  const std::string text(packet.payload.begin(), packet.payload.end());
  auto request = net::http::Request::parse(text);
  if (!request) return false;
  request->remove_header(net::http::kCookieHeader);
  request->add_header(std::string(net::http::kCookieHeader),
                      encode_stack_text(cookies));
  const std::string out = request->serialize();
  packet.payload.assign(out.begin(), out.end());
  packet.wire_size = 0;  // recompute from payload
  return true;
}

bool attach_tls(net::Packet& packet, const std::vector<Cookie>& cookies) {
  auto hello = net::tls::ClientHello::parse_record(BytesView(packet.payload));
  if (!hello) return false;
  hello->set_cookie(BytesView(encode_stack(cookies)));
  packet.payload = hello->serialize_record();
  packet.wire_size = 0;
  return true;
}

bool attach_ipv6(net::Packet& packet, const std::vector<Cookie>& cookies) {
  if (!packet.ipv6) return false;
  packet.l3_cookie = encode_stack(cookies);
  return true;
}

bool attach_tcp_option(net::Packet& packet,
                       const std::vector<Cookie>& cookies) {
  if (!packet.is_tcp()) return false;
  packet.l4_cookie = encode_stack(cookies);
  return true;
}

bool attach_udp(net::Packet& packet, const std::vector<Cookie>& cookies) {
  if (!packet.is_udp()) return false;
  // Shim layout: magic(4) | length u16 | stack bytes | original payload.
  const Bytes stack = encode_stack(cookies);
  Bytes shim;
  util::ByteWriter w(shim);
  w.raw(BytesView(kUdpShimMagic, 4));
  w.u16(static_cast<uint16_t>(stack.size()));
  w.raw(BytesView(stack));
  shim.insert(shim.end(), packet.payload.begin(), packet.payload.end());
  packet.payload = std::move(shim);
  packet.wire_size = 0;
  return true;
}

bool attach_quic_tp(net::Packet& packet,
                    const std::vector<Cookie>& cookies) {
  // Only the long-header handshake flight can carry transport
  // parameters; short-header packets are past the handshake.
  if (!packet.quic || !packet.quic->long_header) return false;
  packet.quic->tp_cookie = encode_stack(cookies);
  packet.wire_size = 0;
  return true;
}

std::optional<ExtractedCookie> extract_quic_tp(const net::Packet& packet) {
  if (!packet.quic || !packet.quic->long_header ||
      packet.quic->tp_cookie.empty()) {
    return std::nullopt;
  }
  auto stack = decode_stack(BytesView(packet.quic->tp_cookie));
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kQuicTransportParam};
}

std::optional<ExtractedCookie> extract_http(const net::Packet& packet) {
  if (packet.payload.empty()) return std::nullopt;
  const std::string text(packet.payload.begin(), packet.payload.end());
  const auto request = net::http::Request::parse(text);
  if (!request) return std::nullopt;
  const auto header = request->header(net::http::kCookieHeader);
  if (!header) return std::nullopt;
  auto stack = decode_stack_text(*header);
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kHttpHeader};
}

std::optional<ExtractedCookie> extract_tls(const net::Packet& packet) {
  const auto hello =
      net::tls::ClientHello::parse_record(BytesView(packet.payload));
  if (!hello) return std::nullopt;
  const auto blob = hello->cookie();
  if (!blob) return std::nullopt;
  auto stack = decode_stack(BytesView(*blob));
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kTlsExtension};
}

std::optional<ExtractedCookie> extract_ipv6(const net::Packet& packet) {
  if (!packet.l3_cookie) return std::nullopt;
  auto stack = decode_stack(BytesView(*packet.l3_cookie));
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kIpv6Extension};
}

std::optional<ExtractedCookie> extract_tcp_option(
    const net::Packet& packet) {
  if (!packet.l4_cookie) return std::nullopt;
  auto stack = decode_stack(BytesView(*packet.l4_cookie));
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kTcpOption};
}

std::optional<ExtractedCookie> extract_udp(const net::Packet& packet) {
  if (!packet.is_udp() || packet.payload.size() < 6) return std::nullopt;
  if (!util::equal(BytesView(packet.payload.data(), 4),
                   BytesView(kUdpShimMagic, 4))) {
    return std::nullopt;
  }
  util::ByteReader r(BytesView(packet.payload));
  r.skip(4);
  const auto len = r.u16();
  if (!len || *len > r.remaining()) return std::nullopt;
  const auto blob = r.view(*len);
  auto stack = decode_stack(*blob);
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), Transport::kUdpHeader};
}

}  // namespace

bool attach(net::Packet& packet, const std::vector<Cookie>& cookies,
            Transport transport) {
  if (cookies.empty()) return false;
  switch (transport) {
    case Transport::kHttpHeader:
      return attach_http(packet, cookies);
    case Transport::kTlsExtension:
      return attach_tls(packet, cookies);
    case Transport::kIpv6Extension:
      return attach_ipv6(packet, cookies);
    case Transport::kUdpHeader:
      return attach_udp(packet, cookies);
    case Transport::kTcpOption:
      return attach_tcp_option(packet, cookies);
    case Transport::kQuicTransportParam:
      return attach_quic_tp(packet, cookies);
  }
  return false;
}

bool attach(net::Packet& packet, const Cookie& cookie, Transport transport) {
  return attach(packet, std::vector<Cookie>{cookie}, transport);
}

std::optional<ExtractedCookie> extract(const net::Packet& packet,
                                       Transport transport) {
  switch (transport) {
    case Transport::kHttpHeader:
      return extract_http(packet);
    case Transport::kTlsExtension:
      return extract_tls(packet);
    case Transport::kIpv6Extension:
      return extract_ipv6(packet);
    case Transport::kUdpHeader:
      return extract_udp(packet);
    case Transport::kTcpOption:
      return extract_tcp_option(packet);
    case Transport::kQuicTransportParam:
      return extract_quic_tp(packet);
  }
  return std::nullopt;
}

Transport to_transport(net::CookieCarrier carrier) {
  switch (carrier) {
    case net::CookieCarrier::kIpv6Option:
      return Transport::kIpv6Extension;
    case net::CookieCarrier::kTcpOption:
      return Transport::kTcpOption;
    case net::CookieCarrier::kQuicTransportParam:
      return Transport::kQuicTransportParam;
    case net::CookieCarrier::kUdpShim:
      return Transport::kUdpHeader;
    case net::CookieCarrier::kTlsExtension:
      return Transport::kTlsExtension;
    case net::CookieCarrier::kHttpHeader:
      return Transport::kHttpHeader;
  }
  return Transport::kHttpHeader;
}

std::optional<ExtractedCookie> extract(const net::Packet& packet) {
  // The carrier precedence (cheapest first) is owned by
  // net::Packet::cookie_bytes — one search shared with the hardware
  // pre-filter and the RX demux peek; this layer only decodes.
  const auto raw = packet.cookie_bytes();
  if (!raw) return std::nullopt;
  auto stack = decode_stack(raw->bytes());
  if (!stack) return std::nullopt;
  return ExtractedCookie{std::move(*stack), to_transport(raw->carrier)};
}

bool strip(net::Packet& packet) {
  bool removed = false;
  if (packet.l3_cookie) {
    packet.l3_cookie.reset();
    removed = true;
  }
  if (packet.l4_cookie) {
    packet.l4_cookie.reset();
    removed = true;
  }
  if (packet.quic && !packet.quic->tp_cookie.empty()) {
    packet.quic->tp_cookie.clear();
    packet.wire_size = 0;
    removed = true;
  }
  if (packet.is_udp() && packet.payload.size() >= 6 &&
      util::equal(BytesView(packet.payload.data(), 4),
                  BytesView(kUdpShimMagic, 4))) {
    util::ByteReader r(BytesView(packet.payload));
    r.skip(4);
    const auto len = r.u16();
    if (len && *len <= r.remaining()) {
      packet.payload.erase(packet.payload.begin(),
                           packet.payload.begin() + 6 + *len);
      packet.wire_size = 0;
      removed = true;
    }
  }
  if (auto hello =
          net::tls::ClientHello::parse_record(BytesView(packet.payload))) {
    if (hello->clear_cookie()) {
      packet.payload = hello->serialize_record();
      packet.wire_size = 0;
      removed = true;
    }
  }
  const std::string text(packet.payload.begin(), packet.payload.end());
  if (auto request = net::http::Request::parse(text)) {
    if (request->remove_header(net::http::kCookieHeader) > 0) {
      const std::string out = request->serialize();
      packet.payload.assign(out.begin(), out.end());
      packet.wire_size = 0;
      removed = true;
    }
  }
  return removed;
}

}  // namespace nnn::cookies
