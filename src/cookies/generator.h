// Client-side cookie generation (Listing 3, generate_cookie).
//
// The generator is the user-agent half of the mechanism: bound to one
// descriptor, a clock, and an RNG, it mints fresh signed cookies on
// demand. "Instead [of asking the network per packet], the user
// requests a cookie descriptor which is then used to locally generate
// multiple cookies" (§4.1).
#pragma once

#include "cookies/cookie.h"
#include "cookies/descriptor.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::cookies {

class CookieGenerator {
 public:
  /// The clock must outlive the generator.
  CookieGenerator(CookieDescriptor descriptor, const util::Clock& clock,
                  uint64_t rng_seed);

  /// Mint a fresh cookie: new uuid, current timestamp, valid signature.
  Cookie generate();

  /// True once the underlying descriptor has expired; callers should
  /// renew the descriptor from the cookie server (§4.1).
  bool descriptor_expired() const;

  const CookieDescriptor& descriptor() const { return descriptor_; }

  /// Replace the descriptor (renewal) keeping clock and RNG state.
  void renew(CookieDescriptor descriptor);

 private:
  CookieDescriptor descriptor_;
  const util::Clock& clock_;
  util::Rng rng_;
};

}  // namespace nnn::cookies
