// Client-side half of network delivery guarantees (§4.3).
//
// "When the network detects a cookie, it generates an 'acknowledgment'
// cookie from the same descriptor, and attaches it to the response.
// If the client doesn't receive an acknowledgement cookie, it shows an
// alert to the user asking whether she wants to continue nevertheless
// with best effort service." (§4.5)
//
// The AckMonitor tracks outstanding expectations: after sending a
// cookie on a flow, the agent registers the flow here; reverse-path
// packets are run through on_packet(); anything unacknowledged past
// the timeout is surfaced by overdue() — that's the "you will be
// charged / you are on best effort" alert hook.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cookies/cookie.h"
#include "net/five_tuple.h"
#include "net/packet.h"
#include "util/clock.h"

namespace nnn::cookies {

struct AckExpectation {
  net::FiveTuple forward_flow;
  CookieId cookie_id = 0;
  util::Timestamp deadline = 0;
};

class AckMonitor {
 public:
  /// The clock must outlive the monitor.
  AckMonitor(const util::Clock& clock, util::Timestamp timeout);

  /// Register that a cookie from descriptor `id` was sent on
  /// `forward_flow`; an ack is expected on the reverse flow before
  /// now + timeout.
  void expect(const net::FiveTuple& forward_flow, CookieId id);

  /// Inspect a received packet for an ack cookie. Returns true when it
  /// satisfied an outstanding expectation.
  bool on_packet(const net::Packet& packet);

  /// Has the flow's expectation been satisfied? (False both for
  /// pending and unknown flows.)
  bool acked(const net::FiveTuple& forward_flow) const;

  /// Expectations past their deadline and still unacknowledged — the
  /// alert list. Pending (not yet due) expectations are not included.
  std::vector<AckExpectation> overdue() const;

  size_t pending() const;

 private:
  struct State {
    AckExpectation expectation;
    bool acked = false;
  };

  const util::Clock& clock_;
  util::Timestamp timeout_;
  std::unordered_map<net::FiveTuple, State> expectations_;
};

}  // namespace nnn::cookies
