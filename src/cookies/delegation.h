// Delegation and acknowledgment cookies (§4.3, §4.5).
//
// "Users can choose to share their cookie descriptors with their
// desired content providers who in turn can generate cookies on their
// behalf and apply them to the downlink content."
//
// Delegation is modeled explicitly: a DelegatedDescriptor wraps the
// shared descriptor and remembers the delegator, so audit trails can
// show who handed a descriptor to whom; the content-provider side uses
// a plain CookieGenerator over the shared descriptor. Ack cookies
// (server echoes the user's cookie, or mints a fresh one from the
// delegated descriptor) are helpers over the same machinery.
#pragma once

#include <optional>
#include <string>

#include "cookies/cookie.h"
#include "cookies/descriptor.h"
#include "cookies/generator.h"

namespace nnn::cookies {

struct DelegatedDescriptor {
  CookieDescriptor descriptor;
  /// Who delegated (user/account id) and to whom (provider name) —
  /// audit metadata, not part of the crypto.
  std::string delegated_by;
  std::string delegated_to;
};

/// Share `descriptor` with a provider. Requires the descriptor's
/// `shared` attribute; returns nullopt otherwise (the mechanism refuses
/// to delegate a descriptor the issuer marked non-shareable).
std::optional<DelegatedDescriptor> delegate_descriptor(
    const CookieDescriptor& descriptor, std::string delegated_by,
    std::string delegated_to);

/// Build the acknowledgment for a received cookie (§4.3): either echo
/// the original ("a server could just playback the original cookie") or
/// mint a fresh one from a delegated descriptor.
Cookie ack_by_echo(const Cookie& received);
Cookie ack_by_mint(CookieGenerator& delegated_generator);

}  // namespace nnn::cookies
