// Hot/cold descriptor tiering: midstates only for descriptors in use.
//
// Precomputing the HMAC key schedule (ipad/opad SHA-256 midstates,
// 72 bytes plus the materialized descriptor around it) per table entry
// was the right call at household scale — every descriptor is hot. At
// a million descriptors it is ~100 MB of midstates for a working set
// that heavy-tailed traffic keeps at a few percent of the table, and
// it puts the build cost of two SHA-256 compressions per entry on
// every table publish.
//
// The HotTier is a verifier-local cache over the published table's
// cold records: descriptors actually hit get a resident entry holding
// the materialized CookieDescriptor and its ready-to-resume key
// schedule; everything else stays a 64-byte cold Record. A cold hit
// "rehydrates" — two SHA-256 compressions off the record's raw key —
// and CLOCK (second-chance) eviction keeps residency inside a fixed
// budget, so the sliding window of hot descriptors sizes memory, not
// the table.
//
// Correctness across table swaps: entries are stamped with the table
// epoch they were validated against. A lookup only trusts an entry
// whose stamp matches the current table's epoch; on mismatch the
// caller re-resolves from the table and admit() revalidates — same
// key, keep the schedule; rotated key, rebuild it — so a swap can
// revoke, expire, or re-key a hot descriptor and the tier can never
// serve stale crypto state. Eviction recycles slots through a limbo
// list drained at burst boundaries, so descriptor pointers handed out
// in this burst's VerifyResults stay valid until the next burst.
//
// Threading: owned by one CookieVerifier and covered by its
// single-writer contract; nothing here is shared or atomic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cookies/descriptor.h"
#include "cookies/descriptor_store.h"
#include "crypto/hmac.h"
#include "state/flat_table.h"
#include "telemetry/metrics.h"

namespace nnn::cookies {

class HotTier {
 public:
  /// Resident-entry budget: ~64K hot descriptors is a generous
  /// working set for one worker (at ~400 B apiece, ~25 MB).
  static constexpr size_t kDefaultBudget = 1 << 16;

  struct Entry {
    CookieDescriptor descriptor;
    crypto::HmacKeySchedule schedule;
    CookieId id = 0;
    /// Table epoch this entry was last validated against.
    uint64_t epoch = 0;
    bool referenced = false;  // CLOCK second-chance bit
    bool live = false;
  };

  explicit HotTier(size_t budget = kDefaultBudget)
      : budget_(budget == 0 ? 1 : budget) {}

  /// Applies to future admissions; residency shrinks toward a smaller
  /// budget through normal eviction.
  void set_budget(size_t budget) { budget_ = budget == 0 ? 1 : budget; }
  size_t budget() const { return budget_; }
  size_t resident() const { return live_count_; }
  uint64_t hits() const { return hits_; }
  /// Key-schedule builds (cold hits + re-keyed revalidations).
  uint64_t rehydrations() const { return rehydrations_; }
  uint64_t evictions() const { return evictions_; }

  /// Recycle slots evicted during the previous burst. Call at the top
  /// of each verify burst; descriptor pointers returned before the
  /// call may afterwards be overwritten.
  void begin_burst();

  /// Fast path: the entry for `id` validated against table epoch
  /// `epoch`, or nullptr when absent/stale (caller re-resolves).
  const Entry* lookup(CookieId id, uint64_t epoch);

  /// lookup() without the side effects (no hit count, no CLOCK
  /// reference bit, no probe sample) — tests and introspection.
  const Entry* peek(CookieId id, uint64_t epoch) const {
    const uint32_t* slot = index_.find(
        hash_id(id), [this, id](const uint32_t& s) {
          return pool_[s].id == id && pool_[s].live;
        });
    if (slot == nullptr) return nullptr;
    const Entry& entry = pool_[*slot];
    return entry.epoch == epoch ? &entry : nullptr;
  }

  /// Slow path: admit or revalidate `record` (must not be revoked)
  /// against `store`, stamping `epoch`.
  const Entry* admit(const DescriptorStore::Record& record,
                     const DescriptorStore& store, uint64_t epoch);

  void clear();
  size_t memory_bytes() const;
  /// Sampled (1 in 64) lookup probe lengths; `hist` must outlive the
  /// tier.
  void set_probe_histogram(telemetry::Histogram* hist) {
    probe_hist_ = hist;
  }

 private:
  static uint64_t hash_id(CookieId id) {
    return state::mix_hash(static_cast<uint64_t>(id));
  }
  auto index_matcher(CookieId id) {
    return [this, id](const uint32_t& slot) {
      return pool_[slot].id == id && pool_[slot].live;
    };
  }
  auto index_hasher() {
    return [this](const uint32_t& slot) { return hash_id(pool_[slot].id); };
  }

  uint32_t acquire_slot();
  void evict_one();
  void sample_probe(uint32_t probes) {
    if (probe_hist_ != nullptr && (probe_tick_++ & 63u) == 0) {
      probe_hist_->record(probes);
    }
  }

  size_t budget_;
  size_t live_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t rehydrations_ = 0;
  uint64_t evictions_ = 0;
  state::FlatTable<uint32_t> index_;  // pool slot by CookieId
  /// Deque for pointer stability: Entry addresses never move, so
  /// VerifyResult descriptor pointers survive pool growth.
  std::deque<Entry> pool_;
  std::vector<uint32_t> free_;
  /// Slots evicted mid-burst; reusable only from the next burst.
  std::vector<uint32_t> limbo_;
  uint32_t clock_hand_ = 0;
  telemetry::Histogram* probe_hist_ = nullptr;
  uint32_t probe_tick_ = 0;
};

}  // namespace nnn::cookies
