#include "cookies/delegation.h"

namespace nnn::cookies {

std::optional<DelegatedDescriptor> delegate_descriptor(
    const CookieDescriptor& descriptor, std::string delegated_by,
    std::string delegated_to) {
  if (!descriptor.attributes.shared) return std::nullopt;
  return DelegatedDescriptor{descriptor, std::move(delegated_by),
                             std::move(delegated_to)};
}

Cookie ack_by_echo(const Cookie& received) {
  return received;
}

Cookie ack_by_mint(CookieGenerator& delegated_generator) {
  return delegated_generator.generate();
}

}  // namespace nnn::cookies
