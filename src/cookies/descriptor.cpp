#include "cookies/descriptor.h"

#include <algorithm>
#include <cstdlib>

#include "util/base64.h"

namespace nnn::cookies {

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kHttpHeader:
      return "http";
    case Transport::kTlsExtension:
      return "tls";
    case Transport::kIpv6Extension:
      return "ipv6";
    case Transport::kUdpHeader:
      return "udp";
    case Transport::kTcpOption:
      return "tcp-edo";
    case Transport::kQuicTransportParam:
      return "quic-tp";
  }
  return "?";
}

std::optional<Transport> transport_from_string(std::string_view s) {
  if (s == "http") return Transport::kHttpHeader;
  if (s == "tls") return Transport::kTlsExtension;
  if (s == "ipv6") return Transport::kIpv6Extension;
  if (s == "udp") return Transport::kUdpHeader;
  if (s == "tcp-edo") return Transport::kTcpOption;
  if (s == "quic-tp") return Transport::kQuicTransportParam;
  return std::nullopt;
}

bool Attributes::allows_transport(Transport t) const {
  if (transports.empty()) return true;
  return std::find(transports.begin(), transports.end(), t) !=
         transports.end();
}

json::Value Attributes::to_json() const {
  json::Object obj;
  obj["granularity"] =
      granularity == Granularity::kFlow ? "flow" : "packet";
  obj["reverse_flow"] = reverse_flow;
  obj["shared"] = shared;
  obj["ack_cookie"] = ack_cookie;
  obj["delivery_guarantee"] = delivery_guarantee;
  if (!transports.empty()) {
    json::Array arr;
    for (const Transport t : transports) {
      arr.emplace_back(cookies::to_string(t));
    }
    obj["transports"] = std::move(arr);
  }
  if (expires_at) obj["expires_at"] = static_cast<int64_t>(*expires_at);
  if (mapping_ttl) obj["mapping_ttl"] = static_cast<int64_t>(*mapping_ttl);
  if (!extra.empty()) {
    json::Object e;
    for (const auto& [k, v] : extra) e[k] = v;
    obj["extra"] = std::move(e);
  }
  return json::Value(std::move(obj));
}

std::optional<Attributes> Attributes::from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  Attributes a;
  const std::string gran = v.get_string("granularity", "flow");
  if (gran == "flow") {
    a.granularity = Granularity::kFlow;
  } else if (gran == "packet") {
    a.granularity = Granularity::kPacket;
  } else {
    return std::nullopt;
  }
  a.reverse_flow = v.get_bool("reverse_flow", true);
  a.shared = v.get_bool("shared", false);
  a.ack_cookie = v.get_bool("ack_cookie", false);
  a.delivery_guarantee = v.get_bool("delivery_guarantee", false);
  if (const json::Value* t = v.find("transports")) {
    if (!t->is_array()) return std::nullopt;
    for (const auto& item : t->as_array()) {
      if (!item.is_string()) return std::nullopt;
      const auto parsed = transport_from_string(item.as_string());
      if (!parsed) return std::nullopt;
      a.transports.push_back(*parsed);
    }
  }
  if (const json::Value* e = v.find("expires_at")) {
    if (!e->is_number()) return std::nullopt;
    a.expires_at = e->as_int();
  }
  if (const json::Value* e = v.find("mapping_ttl")) {
    if (!e->is_number()) return std::nullopt;
    a.mapping_ttl = e->as_int();
  }
  if (const json::Value* e = v.find("extra")) {
    if (!e->is_object()) return std::nullopt;
    for (const auto& [k, val] : e->as_object()) {
      if (!val.is_string()) return std::nullopt;
      a.extra[k] = val.as_string();
    }
  }
  return a;
}

bool CookieDescriptor::expired(util::Timestamp now) const {
  return attributes.expires_at && now >= *attributes.expires_at;
}

json::Value CookieDescriptor::to_json(bool include_key) const {
  json::Object obj;
  // 64-bit ids do not fit a JSON double faithfully; use a string.
  obj["cookie_id"] = std::to_string(cookie_id);
  if (include_key) obj["key"] = util::base64_encode(util::BytesView(key));
  obj["service_data"] = service_data;
  obj["attributes"] = attributes.to_json();
  return json::Value(std::move(obj));
}

std::optional<CookieDescriptor> CookieDescriptor::from_json(
    const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  CookieDescriptor d;
  const json::Value* id = v.find("cookie_id");
  if (!id) return std::nullopt;
  if (id->is_string()) {
    const std::string& text = id->as_string();
    char* end = nullptr;
    d.cookie_id = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || text.empty()) {
      return std::nullopt;
    }
  } else if (id->is_number()) {
    d.cookie_id = static_cast<CookieId>(id->as_number());
  } else {
    return std::nullopt;
  }
  if (const json::Value* key = v.find("key")) {
    if (!key->is_string()) return std::nullopt;
    auto decoded = util::base64_decode(key->as_string());
    if (!decoded) return std::nullopt;
    d.key = std::move(*decoded);
  }
  d.service_data = v.get_string("service_data");
  if (const json::Value* attrs = v.find("attributes")) {
    auto parsed = Attributes::from_json(*attrs);
    if (!parsed) return std::nullopt;
    d.attributes = std::move(*parsed);
  }
  return d;
}

}  // namespace nnn::cookies
