#include "cookies/verifier.h"

#include <cstdlib>

#include "crypto/constant_time.h"

namespace nnn::cookies {

std::string to_string(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk:
      return "ok";
    case VerifyStatus::kUnknownId:
      return "unknown-id";
    case VerifyStatus::kBadSignature:
      return "bad-signature";
    case VerifyStatus::kStaleTimestamp:
      return "stale-timestamp";
    case VerifyStatus::kReplayed:
      return "replayed";
    case VerifyStatus::kDescriptorExpired:
      return "descriptor-expired";
    case VerifyStatus::kDescriptorRevoked:
      return "descriptor-revoked";
  }
  return "?";
}

CookieVerifier::CookieVerifier(const util::Clock& clock, util::Timestamp nct)
    : clock_(clock), nct_(nct) {}

void CookieVerifier::add_descriptor(CookieDescriptor descriptor) {
  const CookieId id = descriptor.cookie_id;
  auto it = table_.find(id);
  if (it != table_.end()) {
    it->second.descriptor = std::move(descriptor);
    it->second.revoked = false;
    return;
  }
  table_.emplace(id, Entry{std::move(descriptor), ReplayCache(nct_), false});
}

bool CookieVerifier::revoke(CookieId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return false;
  it->second.revoked = true;
  return true;
}

bool CookieVerifier::remove(CookieId id) {
  return table_.erase(id) > 0;
}

bool CookieVerifier::knows(CookieId id) const {
  return table_.contains(id);
}

const CookieDescriptor* CookieVerifier::find(CookieId id) const {
  const auto it = table_.find(id);
  if (it == table_.end() || it->second.revoked) return nullptr;
  return &it->second.descriptor;
}

VerifyResult CookieVerifier::verify(const Cookie& cookie) {
  const auto it = table_.find(cookie.cookie_id);
  if (it == table_.end()) {
    ++stats_.unknown_id;
    return VerifyResult{VerifyStatus::kUnknownId, nullptr};
  }
  Entry& entry = it->second;
  if (entry.revoked) {
    ++stats_.revoked;
    return VerifyResult{VerifyStatus::kDescriptorRevoked, nullptr};
  }
  const util::Timestamp now = clock_.now();
  if (entry.descriptor.expired(now)) {
    ++stats_.expired;
    return VerifyResult{VerifyStatus::kDescriptorExpired, nullptr};
  }
  // (ii) MAC check, constant-time over the tag. Run before the
  // timestamp/replay checks so an attacker cannot probe table state
  // with unsigned cookies.
  const crypto::CookieTag expected =
      cookie.compute_tag(util::BytesView(entry.descriptor.key));
  if (!crypto::constant_time_equal(
          util::BytesView(expected.data(), expected.size()),
          util::BytesView(cookie.signature.data(),
                          cookie.signature.size()))) {
    ++stats_.bad_signature;
    return VerifyResult{VerifyStatus::kBadSignature, nullptr};
  }
  // (iii) |cookie.timestamp - now| <= NCT, at cookie (seconds)
  // resolution, matching Listing 3's abs(cookie.timestamp - now) > NCT.
  const int64_t now_sec = static_cast<int64_t>(to_cookie_time(now));
  const int64_t delta =
      std::abs(now_sec - static_cast<int64_t>(cookie.timestamp));
  if (delta > nct_ / util::kSecond) {
    ++stats_.stale_timestamp;
    return VerifyResult{VerifyStatus::kStaleTimestamp, nullptr};
  }
  // (iv) use-once.
  if (!entry.replays.insert(cookie.uuid, now)) {
    ++stats_.replayed;
    return VerifyResult{VerifyStatus::kReplayed, nullptr};
  }
  ++stats_.verified;
  return VerifyResult{VerifyStatus::kOk, &entry.descriptor};
}

VerifyResult CookieVerifier::verify_wire(util::BytesView wire) {
  const auto cookie = Cookie::decode(wire);
  if (!cookie) {
    ++stats_.unknown_id;
    return VerifyResult{VerifyStatus::kUnknownId, nullptr};
  }
  return verify(*cookie);
}

VerifyResult CookieVerifier::verify_text(std::string_view text) {
  const auto cookie = Cookie::decode_text(text);
  if (!cookie) {
    ++stats_.unknown_id;
    return VerifyResult{VerifyStatus::kUnknownId, nullptr};
  }
  return verify(*cookie);
}

}  // namespace nnn::cookies
