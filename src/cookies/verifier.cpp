#include "cookies/verifier.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "crypto/constant_time.h"

namespace nnn::cookies {

#ifndef NDEBUG
CookieVerifier::WriterCheck::WriterCheck(const CookieVerifier& v) : v_(&v) {
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  outermost_ = v.writer_.compare_exchange_strong(
      expected, self, std::memory_order_acq_rel);
  // Not outermost is fine only when *this thread* already holds the
  // verifier (verify_wire -> verify). Another thread inside it is the
  // single-writer violation the header documents.
  assert((outermost_ || expected == self) &&
         "CookieVerifier single-writer contract violated: two threads "
         "are inside mutating/verifying members at once");
}

CookieVerifier::WriterCheck::~WriterCheck() {
  if (outermost_) {
    v_->writer_.store(std::thread::id{}, std::memory_order_release);
  }
}
#endif

CookieVerifier::CookieVerifier(const util::Clock& clock, util::Timestamp nct)
    : clock_(clock), nct_(nct), external_replay_(nct) {
  hot_.set_probe_histogram(&probe_len_);
  external_replay_.set_probe_histogram(&probe_len_);
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void CookieVerifier::collect(telemetry::SampleBuilder& builder) const {
  status_.collect(builder, "nnn_verify_total",
                  "Cookie verification outcomes by status",
                  [](VerifyStatus s) { return to_string(s); });
  builder.gauge("nnn_verifier_descriptors",
                "Cookie descriptors currently installed", {},
                descriptors_.value());
  builder.histogram("nnn_verify_batch_nanos",
                    "verify_batch wall time per burst in nanoseconds", {},
                    batch_nanos_);
  builder.gauge("nnn_state_hot_midstates",
                "Hot-tier entries resident with HMAC midstates", {},
                hot_resident_.value());
  builder.counter("nnn_state_rehydrations_total",
                  "Key-schedule rebuilds for cold or re-keyed descriptors",
                  {}, hot_rehydrations_.value());
  builder.counter("nnn_state_hot_evictions_total",
                  "Hot-tier CLOCK evictions", {}, hot_evictions_.value());
  builder.gauge("nnn_state_replay_entries",
                "Outstanding uuids in the external replay cache", {},
                replay_entries_.value());
  builder.gauge("nnn_state_replay_wheel_occupied",
                "Non-empty expiry-wheel slots in the external replay cache",
                {}, replay_wheel_occupied_.value());
  builder.counter("nnn_state_replay_capacity_evictions_total",
                  "Replay entries evicted early because the cache was full",
                  {}, replay_capacity_evictions_.value());
  builder.histogram("nnn_state_probe_len",
                    "Sampled open-addressing probe lengths (group steps)",
                    {}, probe_len_);
}

void CookieVerifier::sync_state_metrics() {
  hot_resident_.set(static_cast<int64_t>(hot_.resident()));
  hot_rehydrations_.set(hot_.rehydrations());
  hot_evictions_.set(hot_.evictions());
  replay_entries_.set(static_cast<int64_t>(external_replay_.size()));
  replay_wheel_occupied_.set(
      static_cast<int64_t>(external_replay_.wheel_occupied_slots()));
  replay_capacity_evictions_.set(external_replay_.capacity_evictions());
}

void CookieVerifier::add_descriptor(CookieDescriptor descriptor) {
  const WriterCheck check(*this);
  const CookieId id = descriptor.cookie_id;
  crypto::HmacKeySchedule schedule{util::BytesView(descriptor.key)};
  auto it = table_.find(id);
  if (it != table_.end()) {
    it->second.descriptor = std::move(descriptor);
    it->second.schedule = schedule;
    it->second.revoked = false;
    return;
  }
  table_.emplace(id, Entry{std::move(descriptor), schedule,
                           ReplayCache(nct_), false});
  if (!external_mode_) descriptors_.set(static_cast<int64_t>(table_.size()));
}

void CookieVerifier::set_external_table(const DescriptorTable* table) {
  const WriterCheck check(*this);
  external_ = table;
  external_mode_ = true;
  descriptors_.set(static_cast<int64_t>(table ? table->size() : 0));
  sync_state_metrics();
}

void CookieVerifier::configure_external_replay(size_t capacity) {
  const WriterCheck check(*this);
  external_replay_ = ReplayCache(nct_, capacity);
  external_replay_.set_probe_histogram(&probe_len_);
}

bool CookieVerifier::revoke(CookieId id) {
  const WriterCheck check(*this);
  auto it = table_.find(id);
  if (it == table_.end()) return false;
  it->second.revoked = true;
  return true;
}

bool CookieVerifier::remove(CookieId id) {
  const WriterCheck check(*this);
  const bool removed = table_.erase(id) > 0;
  if (!external_mode_) descriptors_.set(static_cast<int64_t>(table_.size()));
  return removed;
}

bool CookieVerifier::knows(CookieId id) const {
  if (external_mode_) return external_ != nullptr && external_->find(id);
  return table_.contains(id);
}

const CookieDescriptor* CookieVerifier::find(CookieId id) const {
  if (external_mode_) {
    if (external_ == nullptr) return nullptr;
    const uint64_t epoch = external_->epoch();
    if (const HotTier::Entry* hot = hot_.lookup(id, epoch)) {
      return &hot->descriptor;
    }
    const DescriptorStore::Record* record = external_->find(id);
    if (record == nullptr || record->revoked) return nullptr;
    return &hot_.admit(*record, external_->store(), epoch)->descriptor;
  }
  const auto it = table_.find(id);
  if (it == table_.end() || it->second.revoked) return nullptr;
  return &it->second.descriptor;
}

bool CookieVerifier::resolve(CookieId id, Resolved& out) {
  if (external_mode_) {
    if (external_ == nullptr) return false;
    const uint64_t epoch = external_->epoch();
    // Fast path: a hot entry stamped with the current epoch is known
    // valid (revoked records are never admitted, and a swap bumps the
    // epoch, forcing re-resolution below).
    if (const HotTier::Entry* hot = hot_.lookup(id, epoch)) {
      out.descriptor = &hot->descriptor;
      out.schedule = &hot->schedule;
      out.replays = &external_replay_;
      out.revoked = false;
      return true;
    }
    const DescriptorStore::Record* record = external_->find(id);
    if (record == nullptr) return false;
    if (record->revoked) {
      // Tombstones stay cold: verify_resolved checks `revoked` before
      // touching descriptor/schedule, so those stay null.
      out = Resolved{nullptr, nullptr, nullptr, true};
      return true;
    }
    const HotTier::Entry* hot = hot_.admit(*record, external_->store(), epoch);
    out.descriptor = &hot->descriptor;
    out.schedule = &hot->schedule;
    out.replays = &external_replay_;
    out.revoked = false;
    return true;
  }
  const auto it = table_.find(id);
  if (it == table_.end()) return false;
  Entry& entry = it->second;
  out.descriptor = &entry.descriptor;
  out.schedule = &entry.schedule;
  out.revoked = entry.revoked;
  out.replays = &entry.replays;
  return true;
}

VerifyResult CookieVerifier::verify_resolved(const Resolved& match,
                                             const Cookie& cookie,
                                             util::Timestamp now) {
  if (match.revoked) {
    status_.inc(VerifyStatus::kDescriptorRevoked);
    return VerifyResult{VerifyStatus::kDescriptorRevoked, nullptr};
  }
  if (match.descriptor->expired(now)) {
    status_.inc(VerifyStatus::kDescriptorExpired);
    return VerifyResult{VerifyStatus::kDescriptorExpired, nullptr};
  }
  // (ii) MAC check, constant-time over the tag, resuming from the
  // entry's precomputed ipad/opad midstates. Run before the
  // timestamp/replay checks so an attacker cannot probe table state
  // with unsigned cookies.
  const crypto::CookieTag expected = cookie.compute_tag(*match.schedule);
  if (!crypto::constant_time_equal(
          util::BytesView(expected.data(), expected.size()),
          util::BytesView(cookie.signature.data(),
                          cookie.signature.size()))) {
    status_.inc(VerifyStatus::kBadSignature);
    return VerifyResult{VerifyStatus::kBadSignature, nullptr};
  }
  // (iii) |cookie.timestamp - now| <= NCT, at cookie (seconds)
  // resolution, matching Listing 3's abs(cookie.timestamp - now) > NCT.
  const int64_t now_sec = static_cast<int64_t>(to_cookie_time(now));
  const int64_t delta =
      std::abs(now_sec - static_cast<int64_t>(cookie.timestamp));
  if (delta > nct_ / util::kSecond) {
    status_.inc(VerifyStatus::kStaleTimestamp);
    return VerifyResult{VerifyStatus::kStaleTimestamp, nullptr};
  }
  // (iv) use-once.
  if (!match.replays->insert(cookie.uuid, now)) {
    status_.inc(VerifyStatus::kReplayed);
    return VerifyResult{VerifyStatus::kReplayed, nullptr};
  }
  status_.inc(VerifyStatus::kOk);
  return VerifyResult{VerifyStatus::kOk, match.descriptor};
}

VerifyResult CookieVerifier::verify(const Cookie& cookie) {
  const WriterCheck check(*this);
  if (external_mode_) hot_.begin_burst();
  Resolved match;
  if (!resolve(cookie.cookie_id, match)) {
    status_.inc(VerifyStatus::kUnknownId);
    return VerifyResult{VerifyStatus::kUnknownId, nullptr};
  }
  const VerifyResult result = verify_resolved(match, cookie, clock_.now());
  if (external_mode_) sync_state_metrics();
  return result;
}

void CookieVerifier::verify_batch(std::span<const Cookie> cookies,
                                  std::span<VerifyResult> results) {
  assert(results.size() >= cookies.size());
  const WriterCheck check(*this);
  const size_t n = cookies.size();
  if (n == 0) return;
  if (external_mode_) hot_.begin_burst();
  // Batch-level timing: two clock reads per burst, never per cookie.
  // A 32-cookie burst is >=10 us of MAC work, so the ~86 ns timer pair
  // stays under 1% there; smaller bursts (a trickling dispatcher can
  // hand down a single cookie) are sampled 1-in-32 so the reads can
  // never dominate.
  const telemetry::ScopedTimer timer(batch_nanos_,
                                     n >= 32 || burst_sample_.next());
  // One clock read for the burst (see header for why this is sound).
  const util::Timestamp now = clock_.now();
  // Visit in descriptor-id order, stable within each id: one table
  // lookup per run of equal ids, and the entry's key schedule and
  // replay cache stay cache-hot across the run. Stability preserves
  // the sequential replay semantics for duplicate uuids in one batch.
  batch_order_.resize(n);
  for (uint32_t i = 0; i < n; ++i) batch_order_[i] = i;
  std::stable_sort(batch_order_.begin(), batch_order_.end(),
                   [&cookies](uint32_t a, uint32_t b) {
                     return cookies[a].cookie_id < cookies[b].cookie_id;
                   });

  Resolved match;
  bool have_match = false;
  CookieId current_id = 0;
  bool have_id = false;
  for (const uint32_t idx : batch_order_) {
    const Cookie& cookie = cookies[idx];
    if (!have_id || cookie.cookie_id != current_id) {
      current_id = cookie.cookie_id;
      have_id = true;
      have_match = resolve(current_id, match);
    }
    if (!have_match) {
      status_.inc(VerifyStatus::kUnknownId);
      results[idx] = VerifyResult{VerifyStatus::kUnknownId, nullptr};
      continue;
    }
    results[idx] = verify_resolved(match, cookie, now);
  }
  if (external_mode_) sync_state_metrics();
}

VerifyResult CookieVerifier::verify_wire(util::BytesView wire) {
  const WriterCheck check(*this);
  const auto cookie = Cookie::decode(wire);
  if (!cookie) {
    status_.inc(VerifyStatus::kMalformed);
    return VerifyResult{VerifyStatus::kMalformed, nullptr};
  }
  return verify(*cookie);
}

VerifyResult CookieVerifier::verify_text(std::string_view text) {
  const WriterCheck check(*this);
  const auto cookie = Cookie::decode_text(text);
  if (!cookie) {
    status_.inc(VerifyStatus::kMalformed);
    return VerifyResult{VerifyStatus::kMalformed, nullptr};
  }
  return verify(*cookie);
}

VerifierStats CookieVerifier::stats() const {
  VerifierStats s;
  s.verified = status_.count(VerifyStatus::kOk);
  s.unknown_id = status_.count(VerifyStatus::kUnknownId);
  s.bad_signature = status_.count(VerifyStatus::kBadSignature);
  s.stale_timestamp = status_.count(VerifyStatus::kStaleTimestamp);
  s.replayed = status_.count(VerifyStatus::kReplayed);
  s.expired = status_.count(VerifyStatus::kDescriptorExpired);
  s.revoked = status_.count(VerifyStatus::kDescriptorRevoked);
  s.malformed = status_.count(VerifyStatus::kMalformed);
  return s;
}

void CookieVerifier::reset_stats() {
  const WriterCheck check(*this);
  status_.reset();
  batch_nanos_.reset();
}

}  // namespace nnn::cookies
