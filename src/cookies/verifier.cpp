#include "cookies/verifier.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "crypto/constant_time.h"

namespace nnn::cookies {

#ifndef NDEBUG
CookieVerifier::WriterCheck::WriterCheck(const CookieVerifier& v) : v_(&v) {
  std::thread::id expected{};
  const std::thread::id self = std::this_thread::get_id();
  outermost_ = v.writer_.compare_exchange_strong(
      expected, self, std::memory_order_acq_rel);
  // Not outermost is fine only when *this thread* already holds the
  // verifier (verify_wire -> verify). Another thread inside it is the
  // single-writer violation the header documents.
  assert((outermost_ || expected == self) &&
         "CookieVerifier single-writer contract violated: two threads "
         "are inside mutating/verifying members at once");
}

CookieVerifier::WriterCheck::~WriterCheck() {
  if (outermost_) {
    v_->writer_.store(std::thread::id{}, std::memory_order_release);
  }
}
#endif

CookieVerifier::CookieVerifier(const util::Clock& clock, util::Timestamp nct)
    : clock_(clock), nct_(nct) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void CookieVerifier::collect(telemetry::SampleBuilder& builder) const {
  status_.collect(builder, "nnn_verify_total",
                  "Cookie verification outcomes by status",
                  [](VerifyStatus s) { return to_string(s); });
  builder.gauge("nnn_verifier_descriptors",
                "Cookie descriptors currently installed", {},
                descriptors_.value());
  builder.histogram("nnn_verify_batch_nanos",
                    "verify_batch wall time per burst in nanoseconds", {},
                    batch_nanos_);
}

void CookieVerifier::add_descriptor(CookieDescriptor descriptor) {
  const WriterCheck check(*this);
  const CookieId id = descriptor.cookie_id;
  crypto::HmacKeySchedule schedule{util::BytesView(descriptor.key)};
  auto it = table_.find(id);
  if (it != table_.end()) {
    it->second.descriptor = std::move(descriptor);
    it->second.schedule = schedule;
    it->second.revoked = false;
    return;
  }
  table_.emplace(id, Entry{std::move(descriptor), schedule,
                           ReplayCache(nct_), false});
  if (!external_mode_) descriptors_.set(static_cast<int64_t>(table_.size()));
}

void CookieVerifier::set_external_table(const DescriptorTable* table) {
  const WriterCheck check(*this);
  external_ = table;
  external_mode_ = true;
  descriptors_.set(static_cast<int64_t>(table ? table->size() : 0));
}

bool CookieVerifier::revoke(CookieId id) {
  const WriterCheck check(*this);
  auto it = table_.find(id);
  if (it == table_.end()) return false;
  it->second.revoked = true;
  return true;
}

bool CookieVerifier::remove(CookieId id) {
  const WriterCheck check(*this);
  const bool removed = table_.erase(id) > 0;
  if (!external_mode_) descriptors_.set(static_cast<int64_t>(table_.size()));
  return removed;
}

bool CookieVerifier::knows(CookieId id) const {
  if (external_mode_) return external_ != nullptr && external_->find(id);
  return table_.contains(id);
}

const CookieDescriptor* CookieVerifier::find(CookieId id) const {
  if (external_mode_) {
    if (external_ == nullptr) return nullptr;
    const TableEntry* entry = external_->find(id);
    if (entry == nullptr || entry->revoked) return nullptr;
    return &entry->descriptor;
  }
  const auto it = table_.find(id);
  if (it == table_.end() || it->second.revoked) return nullptr;
  return &it->second.descriptor;
}

bool CookieVerifier::resolve(CookieId id, Resolved& out) {
  if (external_mode_) {
    if (external_ == nullptr) return false;
    const TableEntry* entry = external_->find(id);
    if (entry == nullptr) return false;
    out.descriptor = &entry->descriptor;
    out.schedule = &entry->schedule;
    out.revoked = entry->revoked;
    // The replay cache is keyed by descriptor id and survives table
    // swaps; first sight of an id allocates it.
    out.replays =
        &external_replays_.try_emplace(id, nct_).first->second;
    return true;
  }
  const auto it = table_.find(id);
  if (it == table_.end()) return false;
  Entry& entry = it->second;
  out.descriptor = &entry.descriptor;
  out.schedule = &entry.schedule;
  out.revoked = entry.revoked;
  out.replays = &entry.replays;
  return true;
}

VerifyResult CookieVerifier::verify_resolved(const Resolved& match,
                                             const Cookie& cookie,
                                             util::Timestamp now) {
  if (match.revoked) {
    status_.inc(VerifyStatus::kDescriptorRevoked);
    return VerifyResult{VerifyStatus::kDescriptorRevoked, nullptr};
  }
  if (match.descriptor->expired(now)) {
    status_.inc(VerifyStatus::kDescriptorExpired);
    return VerifyResult{VerifyStatus::kDescriptorExpired, nullptr};
  }
  // (ii) MAC check, constant-time over the tag, resuming from the
  // entry's precomputed ipad/opad midstates. Run before the
  // timestamp/replay checks so an attacker cannot probe table state
  // with unsigned cookies.
  const crypto::CookieTag expected = cookie.compute_tag(*match.schedule);
  if (!crypto::constant_time_equal(
          util::BytesView(expected.data(), expected.size()),
          util::BytesView(cookie.signature.data(),
                          cookie.signature.size()))) {
    status_.inc(VerifyStatus::kBadSignature);
    return VerifyResult{VerifyStatus::kBadSignature, nullptr};
  }
  // (iii) |cookie.timestamp - now| <= NCT, at cookie (seconds)
  // resolution, matching Listing 3's abs(cookie.timestamp - now) > NCT.
  const int64_t now_sec = static_cast<int64_t>(to_cookie_time(now));
  const int64_t delta =
      std::abs(now_sec - static_cast<int64_t>(cookie.timestamp));
  if (delta > nct_ / util::kSecond) {
    status_.inc(VerifyStatus::kStaleTimestamp);
    return VerifyResult{VerifyStatus::kStaleTimestamp, nullptr};
  }
  // (iv) use-once.
  if (!match.replays->insert(cookie.uuid, now)) {
    status_.inc(VerifyStatus::kReplayed);
    return VerifyResult{VerifyStatus::kReplayed, nullptr};
  }
  status_.inc(VerifyStatus::kOk);
  return VerifyResult{VerifyStatus::kOk, match.descriptor};
}

VerifyResult CookieVerifier::verify(const Cookie& cookie) {
  const WriterCheck check(*this);
  Resolved match;
  if (!resolve(cookie.cookie_id, match)) {
    status_.inc(VerifyStatus::kUnknownId);
    return VerifyResult{VerifyStatus::kUnknownId, nullptr};
  }
  return verify_resolved(match, cookie, clock_.now());
}

void CookieVerifier::verify_batch(std::span<const Cookie> cookies,
                                  std::span<VerifyResult> results) {
  assert(results.size() >= cookies.size());
  const WriterCheck check(*this);
  const size_t n = cookies.size();
  if (n == 0) return;
  // Batch-level timing: two clock reads per burst, never per cookie.
  // A 32-cookie burst is >=10 us of MAC work, so the ~86 ns timer pair
  // stays under 1% there; smaller bursts (a trickling dispatcher can
  // hand down a single cookie) are sampled 1-in-32 so the reads can
  // never dominate.
  const telemetry::ScopedTimer timer(batch_nanos_,
                                     n >= 32 || burst_sample_.next());
  // One clock read for the burst (see header for why this is sound).
  const util::Timestamp now = clock_.now();
  // Visit in descriptor-id order, stable within each id: one table
  // lookup per run of equal ids, and the entry's key schedule and
  // replay cache stay cache-hot across the run. Stability preserves
  // the sequential replay semantics for duplicate uuids in one batch.
  batch_order_.resize(n);
  for (uint32_t i = 0; i < n; ++i) batch_order_[i] = i;
  std::stable_sort(batch_order_.begin(), batch_order_.end(),
                   [&cookies](uint32_t a, uint32_t b) {
                     return cookies[a].cookie_id < cookies[b].cookie_id;
                   });

  Resolved match;
  bool have_match = false;
  CookieId current_id = 0;
  bool have_id = false;
  for (const uint32_t idx : batch_order_) {
    const Cookie& cookie = cookies[idx];
    if (!have_id || cookie.cookie_id != current_id) {
      current_id = cookie.cookie_id;
      have_id = true;
      have_match = resolve(current_id, match);
    }
    if (!have_match) {
      status_.inc(VerifyStatus::kUnknownId);
      results[idx] = VerifyResult{VerifyStatus::kUnknownId, nullptr};
      continue;
    }
    results[idx] = verify_resolved(match, cookie, now);
  }
}

VerifyResult CookieVerifier::verify_wire(util::BytesView wire) {
  const WriterCheck check(*this);
  const auto cookie = Cookie::decode(wire);
  if (!cookie) {
    status_.inc(VerifyStatus::kMalformed);
    return VerifyResult{VerifyStatus::kMalformed, nullptr};
  }
  return verify(*cookie);
}

VerifyResult CookieVerifier::verify_text(std::string_view text) {
  const WriterCheck check(*this);
  const auto cookie = Cookie::decode_text(text);
  if (!cookie) {
    status_.inc(VerifyStatus::kMalformed);
    return VerifyResult{VerifyStatus::kMalformed, nullptr};
  }
  return verify(*cookie);
}

VerifierStats CookieVerifier::stats() const {
  VerifierStats s;
  s.verified = status_.count(VerifyStatus::kOk);
  s.unknown_id = status_.count(VerifyStatus::kUnknownId);
  s.bad_signature = status_.count(VerifyStatus::kBadSignature);
  s.stale_timestamp = status_.count(VerifyStatus::kStaleTimestamp);
  s.replayed = status_.count(VerifyStatus::kReplayed);
  s.expired = status_.count(VerifyStatus::kDescriptorExpired);
  s.revoked = status_.count(VerifyStatus::kDescriptorRevoked);
  s.malformed = status_.count(VerifyStatus::kMalformed);
  return s;
}

void CookieVerifier::reset_stats() {
  const WriterCheck check(*this);
  status_.reset();
  batch_nanos_.reset();
}

}  // namespace nnn::cookies
