// Cookie descriptors (§4.1, Listing 1).
//
// A descriptor is the control-plane object a user acquires from the
// cookie server: a lookup id, a shared HMAC key, opaque service data,
// and optional attributes. From one descriptor the client locally mints
// many one-shot cookies; "a cookie descriptor typically lasts hours or
// days, and is renewed by the user as needed."
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace nnn::cookies {

using CookieId = uint64_t;

/// Granularity of the service mapping established by a cookie (§4.3).
/// By default "a cookie characterizes the flow (5-tuple) that a packet
/// belongs to"; it can be narrowed to the single packet.
enum class Granularity : uint8_t { kFlow = 0, kPacket = 1 };

/// Transports a cookie may be carried over (§4.2 "where to add the
/// cookie"). Used both as an attribute (which carriers the network
/// accepts) and by the transport codec.
enum class Transport : uint8_t {
  kHttpHeader = 0,   // X-Network-Cookie request header
  kTlsExtension = 1, // ClientHello extension
  kIpv6Extension = 2,// hop-by-hop option
  kUdpHeader = 3,    // custom UDP payload prefix
  kTcpOption = 4,    // TCP long option (EDO-extended header)
  /// QUIC handshake transport parameter (appended last: the values
  /// above ride the descriptor sync wire format and must not move).
  kQuicTransportParam = 5,
};

std::string to_string(Transport t);
std::optional<Transport> transport_from_string(std::string_view s);

/// Typed view of the paper's well-known attributes (§4.3), plus a
/// free-form map for service-specific extras. All fields have the
/// paper's defaults.
struct Attributes {
  Granularity granularity = Granularity::kFlow;
  /// Apply the service to the reverse flow too (default matches Boost,
  /// whose daemon "adds this and the reverse flow to the fast lane").
  bool reverse_flow = true;
  /// Descriptor may be shared between endpoints (home-router cache).
  bool shared = false;
  /// Remote server is expected to echo/mint an acknowledgment cookie.
  bool ack_cookie = false;
  /// Network acknowledges receipt of cookies on reverse traffic.
  bool delivery_guarantee = false;
  /// Carriers this descriptor's cookies may use; empty = any.
  std::vector<Transport> transports;
  /// Absolute expiry of the descriptor; nullopt = no expiry.
  std::optional<util::Timestamp> expires_at;
  /// How long a verified cookie's flow mapping lasts before the flow
  /// reverts to best effort; nullopt = for the flow's lifetime. This
  /// is what makes "a short burst of high bandwidth" (§1) and the
  /// one-hour boost expiry (§5.1) service policies rather than client
  /// promises.
  std::optional<util::Timestamp> mapping_ttl;
  /// Free-form extras ("region=us", "ssid=HomeWifi", ...).
  std::map<std::string, std::string> extra;

  bool allows_transport(Transport t) const;

  json::Value to_json() const;
  static std::optional<Attributes> from_json(const json::Value& v);

  friend bool operator==(const Attributes&, const Attributes&) = default;
};

/// Listing 1 of the paper. The key is secret; everything else is
/// control-plane metadata. Value type, cheap to copy (key is 32 bytes).
struct CookieDescriptor {
  /// 64-bit lookup key for the verifier's descriptor table.
  CookieId cookie_id = 0;
  /// Shared HMAC key used to sign cookies.
  util::Bytes key;
  /// Identifies the network service the packet should receive — "just
  /// the name of the service (e.g., 'Boost'), or any other information".
  /// Opaque to the cookie layer (mechanism/policy separation).
  std::string service_data;
  Attributes attributes;

  /// True once the descriptor's expiry (if any) has passed.
  bool expired(util::Timestamp now) const;

  /// JSON form used by the cookie-server API. Includes the key: the
  /// API response is the secret-bearing message. `audit` form strips
  /// the key for public audit records.
  json::Value to_json(bool include_key = true) const;
  static std::optional<CookieDescriptor> from_json(const json::Value& v);

  friend bool operator==(const CookieDescriptor&,
                         const CookieDescriptor&) = default;
};

}  // namespace nnn::cookies
