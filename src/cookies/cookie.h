// Cookies (§4.1, Listing 2) and their wire form.
//
// A cookie is {cookie_id, uuid, timestamp, signature}. The signature
// is HMAC-SHA256(descriptor.key, id || uuid || timestamp), truncated
// to 128 bits — exactly Listing 3's
//   value = descriptor.id + uuid() + now(); digest = hmac(key, value).
//
// Wire form (big-endian, 53 bytes):
//   magic   "NCK" + version 0x01            4 bytes
//   cookie_id                               8 bytes
//   uuid                                   16 bytes
//   timestamp (seconds)                     8 bytes
//   hmac tag                               16 bytes
//   attachment count                        1 byte (composition, §4.5)
// Composed cookie stacks concatenate entries after the first; the
// count byte on the first entry says how many follow.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cookies/descriptor.h"
#include "crypto/hmac.h"
#include "crypto/uuid.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace nnn::cookies {

/// Seconds-resolution timestamp carried inside cookies. The NCT check
/// operates at this resolution (NCT is 5 seconds).
using CookieTime = uint64_t;

CookieTime to_cookie_time(util::Timestamp t);

struct Cookie {
  CookieId cookie_id = 0;
  crypto::Uuid uuid;
  CookieTime timestamp = 0;
  crypto::CookieTag signature{};

  /// Size of the signed byte string: id (8) || uuid (16) || ts (8).
  static constexpr size_t kSignedValueSize = 8 + crypto::Uuid::kSize + 8;
  using SignedValue = std::array<uint8_t, kSignedValueSize>;

  /// The byte string that is HMAC'd: id || uuid || timestamp.
  util::Bytes signed_value() const;

  /// Allocation-free form of signed_value() for the verify hot path.
  SignedValue signed_value_fixed() const;

  /// Compute the correct tag for this cookie under `key`.
  crypto::CookieTag compute_tag(util::BytesView key) const;

  /// Hot-path form: tag under a precomputed HMAC key schedule.
  crypto::CookieTag compute_tag(const crypto::HmacKeySchedule& schedule) const;

  /// Binary wire form of this single cookie (no stack followers).
  util::Bytes encode() const;

  /// Base64 text form, used over HTTP and TLS (§5.1).
  std::string encode_text() const;

  static std::optional<Cookie> decode(util::BytesView wire);
  static std::optional<Cookie> decode_text(std::string_view text);

  friend bool operator==(const Cookie&, const Cookie&) = default;
};

/// Composition (§4.5: "users can combine multiple services ... by
/// composing multiple cookies together"). A stack is one blob carrying
/// several cookies; each network matches the ones it knows.
util::Bytes encode_stack(const std::vector<Cookie>& cookies);
std::optional<std::vector<Cookie>> decode_stack(util::BytesView wire);

/// Cheap no-HMAC, no-copy peek at the leading cookie id of an encoded
/// stack — the RX demux steering key and the hardware pre-filter's
/// id-table lookup. Validates only magic + version + length; a packet
/// that peeks must still go through decode_stack + verify before any
/// service mapping.
std::optional<CookieId> peek_cookie_id(util::BytesView wire);
std::string encode_stack_text(const std::vector<Cookie>& cookies);
std::optional<std::vector<Cookie>> decode_stack_text(std::string_view text);

/// Size in bytes of one encoded cookie.
inline constexpr size_t kCookieWireSize = 4 + 8 + 16 + 8 + 16 + 1;

}  // namespace nnn::cookies
