#include "cookies/generator.h"

namespace nnn::cookies {

CookieGenerator::CookieGenerator(CookieDescriptor descriptor,
                                 const util::Clock& clock, uint64_t rng_seed)
    : descriptor_(std::move(descriptor)), clock_(clock), rng_(rng_seed) {}

Cookie CookieGenerator::generate() {
  Cookie c;
  c.cookie_id = descriptor_.cookie_id;
  c.uuid = crypto::Uuid::generate(rng_);
  c.timestamp = to_cookie_time(clock_.now());
  c.signature = c.compute_tag(util::BytesView(descriptor_.key));
  return c;
}

bool CookieGenerator::descriptor_expired() const {
  return descriptor_.expired(clock_.now());
}

void CookieGenerator::renew(CookieDescriptor descriptor) {
  descriptor_ = std::move(descriptor);
}

}  // namespace nnn::cookies
