// Compact descriptor storage for ISP-scale tables.
//
// A full CookieDescriptor is a control-plane object: ~200+ bytes of
// strings, vectors and maps, most of it identical across the millions
// of descriptors a cookie server mints for one service tier. Storing
// it per-entry (as the old unordered_map<CookieId, TableEntry> did,
// plus a 72-byte HMAC key schedule each) blows the per-descriptor
// memory budget and drags cold heap nodes through the verify path.
//
// DescriptorStore splits the descriptor into what the hot path needs
// per id and what can be shared:
//
//   Record (one 64-byte cache line per descriptor): id, the 32-byte
//   HMAC key inline (longer keys spill to a side table), expiry,
//   revocation tombstone flag, and a profile index.
//
//   Profile (interned): service_data + attributes minus expires_at,
//   deduplicated by serialized identity. A million "Boost" descriptors
//   share one profile entry.
//
// HMAC key schedules are deliberately NOT stored per record — that is
// the hot/cold tiering boundary. The verifier keeps midstates only for
// descriptors that are actually hit (cookies::HotTier); a cold hit
// rehydrates from the record's raw key (two SHA-256 compressions).
//
// Records sit in a dense vector (stable order: insertion order, with
// erase doing swap-remove) indexed by a state::FlatTable of u32
// handles keyed on CookieId. Lookup is one flat probe plus one
// cache-line read. The store is a value type: TableMirror mutates its
// working copy and build() snapshots it into an immutable
// DescriptorTable by plain copy.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cookies/descriptor.h"
#include "state/flat_table.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace nnn::cookies {

class DescriptorStore {
 public:
  static constexpr size_t kInlineKeyBytes = 32;
  static constexpr uint32_t kNoProfile =
      std::numeric_limits<uint32_t>::max();
  static constexpr uint32_t kNoSpill = std::numeric_limits<uint32_t>::max();

  struct Record {
    CookieId id = 0;
    /// Valid only when has_expiry (std::optional would cost 8 bytes).
    util::Timestamp expires_at = 0;
    uint32_t profile = kNoProfile;
    uint32_t spill = kNoSpill;
    uint8_t key[kInlineKeyBytes] = {};
    uint8_t key_len = 0;  // inline length; spilled keys keep 0 here
    bool revoked = false;
    bool has_expiry = false;

    bool expired(util::Timestamp now) const {
      return has_expiry && now >= expires_at;
    }
  };

  /// Insert or replace the descriptor for its id; clears any
  /// revocation tombstone.
  void upsert(const CookieDescriptor& descriptor);

  /// Mark `id` revoked, inserting a bare tombstone if unknown.
  void revoke(CookieId id);

  /// Remove entirely (descriptor and tombstone). Returns whether the
  /// id was present.
  bool erase(CookieId id);

  const Record* find(CookieId id) const;

  /// The record's HMAC key bytes (inline or spilled).
  util::BytesView key_of(const Record& record) const;

  /// Reconstruct the full control-plane descriptor (checkpointing,
  /// hot-tier admission, find()). Exact round trip of what upsert saw.
  CookieDescriptor materialize(const Record& record) const;

  /// Visit records in insertion order (erase perturbs order by
  /// swap-remove, deterministically).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Record& record : records_) fn(record);
  }

  void clear();
  void reserve(size_t n);
  size_t size() const { return records_.size(); }
  size_t profile_count() const { return profiles_.size(); }

  /// Bytes held by records, index, interned profiles, and spill keys.
  size_t memory_bytes() const;
  state::ProbeStats probe_stats(size_t max_samples) const;
  /// Index occupancy in percent (live entries over slots; max ~87).
  unsigned index_load_pct() const {
    return index_.slot_count() == 0
               ? 0
               : static_cast<unsigned>(index_.size() * 100 /
                                       index_.slot_count());
  }

 private:
  struct Profile {
    std::string service_data;
    Attributes attributes;  // expires_at always nullopt here
  };

  static uint64_t hash_id(CookieId id) {
    return state::mix_hash(static_cast<uint64_t>(id));
  }
  auto index_matcher(CookieId id) const {
    return [this, id](const uint32_t& slot) {
      return records_[slot].id == id;
    };
  }
  auto index_hasher() const {
    return [this](const uint32_t& slot) {
      return hash_id(records_[slot].id);
    };
  }

  Record* find_mut(CookieId id);
  Record& insert_record(CookieId id);
  void set_key(Record& record, util::BytesView key);
  void release_spill(Record& record);
  uint32_t intern_profile(const CookieDescriptor& descriptor);

  std::vector<Record> records_;
  state::FlatTable<uint32_t> index_;  // record slot by CookieId
  std::vector<Profile> profiles_;
  /// Serialized profile identity -> profiles_ slot. Never shrinks: a
  /// profile outlives the records that reference it (the dedup set is
  /// tiny next to the record array).
  state::FlatMap<std::string, uint32_t> intern_;
  std::vector<util::Bytes> spill_keys_;
  std::vector<uint32_t> spill_free_;
};

}  // namespace nnn::cookies
