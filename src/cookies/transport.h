// Cookie transports: attaching cookies to real traffic (§4.2 step 2).
//
// "We suggest supporting multiple choices; we can add it at the
// application layer (as an http header for unencrypted traffic or a
// TLS handshake extension for https traffic); at the transport layer
// (... a custom UDP-based header); or at the network layer (IPv6
// extension header)."
//
// Each carrier here is implemented against the real codec for that
// layer:
//   kHttpHeader    -> X-Network-Cookie header in the HTTP/1.1 request
//   kTlsExtension  -> network-cookie extension in the TLS ClientHello
//   kIpv6Extension -> hop-by-hop option in the IPv6 header
//   kUdpHeader     -> magic-prefixed header at the start of the UDP
//                     payload (SPUD/QUIC-style shim)
//   kTcpOption     -> experimental TCP option; the 53-byte cookie
//                     exceeds the classic 40-byte option space, so the
//                     codec emits an Extended-Data-Offset option (the
//                     paper's "TCP long options" citation)
//   kQuicTransportParam -> transport parameter in the QUIC long-header
//                     handshake (net::QuicHeader::tp_cookie) — the
//                     encrypted-transport carrier, readable on path
//                     like a real Initial flight (PR 10, DESIGN §5i)
// attach() mutates the packet; extract() is what a middlebox runs on
// the wire and must tolerate arbitrary payloads.
#pragma once

#include <optional>

#include "cookies/cookie.h"
#include "cookies/descriptor.h"
#include "net/packet.h"

namespace nnn::cookies {

/// Magic prefix for the UDP payload shim. The constant itself is wire
/// format and lives with the packet model (net::kCookieShimMagic, so
/// net::Packet::cookie_bytes can find the shim without a cookies
/// dependency); this alias keeps existing call sites working.
inline constexpr auto& kUdpShimMagic = net::kCookieShimMagic;

/// Carrier <-> transport mapping: net::Packet::cookie_bytes reports
/// where it found the blob in packet-model terms; the cookie layer
/// names the same five carriers Transport.
Transport to_transport(net::CookieCarrier carrier);

/// Where a cookie was found in a packet.
struct ExtractedCookie {
  std::vector<Cookie> stack;  // one or more composed cookies
  Transport transport;
};

/// Attach `cookies` (a stack of >= 1) to the packet over `transport`.
/// Returns false when the carrier does not apply to this packet (e.g.
/// kIpv6Extension on an IPv4 packet, kHttpHeader on a payload that is
/// not an HTTP request). On false the packet is unchanged.
bool attach(net::Packet& packet, const std::vector<Cookie>& cookies,
            Transport transport);

/// Convenience for the common single-cookie case.
bool attach(net::Packet& packet, const Cookie& cookie, Transport transport);

/// Search the packet for a cookie on any carrier (the middlebox path:
/// "search for a potential cookie"). Checks carriers from cheapest to
/// most expensive: IPv6 option, UDP shim, TLS extension, HTTP header.
std::optional<ExtractedCookie> extract(const net::Packet& packet);

/// Extract from a specific carrier only.
std::optional<ExtractedCookie> extract(const net::Packet& packet,
                                       Transport transport);

/// Remove any cookie the packet carries (all carriers). Returns true
/// if something was removed. Used to model middleboxes that strip
/// unknown headers, and by tests.
bool strip(net::Packet& packet);

}  // namespace nnn::cookies
