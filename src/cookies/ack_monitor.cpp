#include "cookies/ack_monitor.h"

#include "cookies/transport.h"

namespace nnn::cookies {

AckMonitor::AckMonitor(const util::Clock& clock, util::Timestamp timeout)
    : clock_(clock), timeout_(timeout) {}

void AckMonitor::expect(const net::FiveTuple& forward_flow, CookieId id) {
  State state;
  state.expectation =
      AckExpectation{forward_flow, id, clock_.now() + timeout_};
  expectations_[forward_flow] = state;
}

bool AckMonitor::on_packet(const net::Packet& packet) {
  // The ack arrives on the reverse flow of the registered forward flow.
  const auto it = expectations_.find(packet.tuple.reversed());
  if (it == expectations_.end() || it->second.acked) return false;
  const auto extracted = extract(packet);
  if (!extracted) return false;
  for (const Cookie& cookie : extracted->stack) {
    if (cookie.cookie_id == it->second.expectation.cookie_id) {
      it->second.acked = true;
      return true;
    }
  }
  return false;
}

bool AckMonitor::acked(const net::FiveTuple& forward_flow) const {
  const auto it = expectations_.find(forward_flow);
  return it != expectations_.end() && it->second.acked;
}

std::vector<AckExpectation> AckMonitor::overdue() const {
  std::vector<AckExpectation> out;
  const util::Timestamp now = clock_.now();
  for (const auto& [flow, state] : expectations_) {
    if (!state.acked && state.expectation.deadline <= now) {
      out.push_back(state.expectation);
    }
  }
  return out;
}

size_t AckMonitor::pending() const {
  size_t n = 0;
  for (const auto& [flow, state] : expectations_) {
    if (!state.acked) ++n;
  }
  return n;
}

}  // namespace nnn::cookies
