// Network-side cookie verification (Listing 3, match_cookie).
//
// The verifier owns the descriptor state a cookie-enabled switch or
// middlebox matches against, replay protection, and the four checks
// of §4.2: (i) the cookie ID is known, (ii) the MAC digest matches
// (constant-time), (iii) the timestamp is within the network
// coherency time, (iv) the cookie has not been seen before.
//
// Hot-path shape (§4.6, Fig. 4): MAC verification resumes from
// precomputed ipad/opad SHA-256 midstates instead of re-deriving the
// key schedule — half the compressions per cookie. In local
// (household) mode every installed descriptor carries its schedule.
// In external-table mode (ISP scale) schedules live in a bounded
// cookies::HotTier keyed by table epoch: descriptors actually hit
// stay resident with midstates, cold ones are 64-byte table records
// rehydrated on first hit, so a million-descriptor table does not
// mean a million midstates. verify_batch() amortizes the remaining
// per-call costs (clock read, descriptor lookup) across a burst, the
// unit of work the runtime's rings hand to a worker.
//
// Replay scope: local mode keeps one ReplayCache per descriptor. In
// external-table mode the verifier keeps ONE uuid-keyed ReplayCache
// for all descriptors — uuids are 128-bit randoms minted per cookie,
// so cross-descriptor uuid reuse is adversarial and rejecting it is
// strictly more conservative; in exchange replay state is O(outstanding
// cookies), not O(descriptors), at ISP scale. Use-once state still
// survives table swaps.
//
// A failed match never drops traffic: "If it fails to match, it
// behaves as if the cookie was not there, offering default services."
// Callers therefore receive a VerifyResult and decide nothing more
// severe than best-effort treatment.
//
// ## Threading: the single-writer contract
//
// A CookieVerifier is NOT thread-safe. Exactly one thread at a time
// may call any mutating, verifying, or resolving member
// (add_descriptor, revoke, remove, verify*, find, reset_stats,
// set_external_table): verification mutates replay caches, the hot
// tier, and status counters, and a concurrent add/remove rehashes the
// descriptor map that an in-flight verify_batch is iterating — a data
// race and potential use-after-free with no diagnostic. Debug builds
// enforce the contract with an atomic owner check that aborts on a
// cross-thread overlap; release builds compile the check out. To feed
// descriptor updates to a verifier that another thread is running
// hot, do not call add_descriptor/revoke across threads — publish an
// immutable DescriptorTable through controlplane::TablePublisher and
// hand it to the verifying thread via set_external_table (the
// runtime's WorkerPool::bind_table_publisher does exactly this; the
// pool's legacy add_descriptor/revoke path instead waits for the
// worker to quiesce before touching its shard).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cookies/cookie.h"
#include "cookies/descriptor.h"
#include "cookies/descriptor_table.h"
#include "cookies/hot_tier.h"
#include "cookies/replay_cache.h"
#include "crypto/hmac.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"
#include "util/clock.h"
#include "util/error.h"

namespace nnn::cookies {

/// Network coherency time: "the maximum time we expect a packet to
/// live within the network, and is set to 5 seconds" (§4.2).
inline constexpr util::Timestamp kNetworkCoherencyTime =
    5 * util::kSecond;

enum class VerifyStatus : uint8_t {
  kOk = 0,
  kUnknownId,        // check (i) failed
  kBadSignature,     // check (ii) failed
  kStaleTimestamp,   // check (iii) failed (too old or too far in future)
  kReplayed,         // check (iv) failed
  kDescriptorExpired,
  kDescriptorRevoked,
  kMalformed,        // wire/text blob did not decode to a cookie at all
};

// to_string(VerifyStatus) lives in telemetry/labels.h (included above):
// one header home, std::string_view return, no per-sample allocation.

/// VerifyStatus viewed through the unified error taxonomy (PR 5): the
/// enum stays the hot-path result type (one byte, StatusCounters
/// indexes it directly); this adapter is for call sites that speak
/// nnn::Error — logs, Expected-returning wrappers, nnn_errors_total.
constexpr Error to_error(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk:
      return Error{};
    case VerifyStatus::kUnknownId:
      return Error{ErrorDomain::kVerify, ErrorCode::kUnknownId};
    case VerifyStatus::kBadSignature:
      return Error{ErrorDomain::kVerify, ErrorCode::kBadSignature};
    case VerifyStatus::kStaleTimestamp:
      return Error{ErrorDomain::kVerify, ErrorCode::kStaleTimestamp};
    case VerifyStatus::kReplayed:
      return Error{ErrorDomain::kVerify, ErrorCode::kReplayed};
    case VerifyStatus::kDescriptorExpired:
      return Error{ErrorDomain::kVerify, ErrorCode::kExpired};
    case VerifyStatus::kDescriptorRevoked:
      return Error{ErrorDomain::kVerify, ErrorCode::kRevoked};
    case VerifyStatus::kMalformed:
      return Error{ErrorDomain::kVerify, ErrorCode::kMalformed};
  }
  return Error{ErrorDomain::kVerify, ErrorCode::kMalformed};
}

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kUnknownId;
  /// Set when status == kOk. In local mode it points at the
  /// verifier's installed descriptor and is valid until the
  /// descriptor is removed; in external-table mode it points into the
  /// verifier's hot tier and is valid until the next verify call
  /// (which may recycle evicted slots).
  const CookieDescriptor* descriptor = nullptr;

  bool ok() const { return status == VerifyStatus::kOk; }
};

/// Counters the verifier keeps; the Fig. 4 bench and audit surfaces
/// read these. Legacy materialized form: the live state is one
/// telemetry cell per VerifyStatus (stats() builds this struct on
/// demand, so existing call sites keep working unchanged).
struct VerifierStats {
  uint64_t verified = 0;
  uint64_t unknown_id = 0;
  uint64_t bad_signature = 0;
  uint64_t stale_timestamp = 0;
  uint64_t replayed = 0;
  uint64_t expired = 0;
  uint64_t revoked = 0;
  /// Blobs that failed to decode (verify_wire / verify_text). Distinct
  /// from unknown_id so wire-format fuzz noise is distinguishable from
  /// cookies signed against descriptors this network never saw.
  uint64_t malformed = 0;

  uint64_t total() const {
    return verified + unknown_id + bad_signature + stale_timestamp +
           replayed + expired + revoked + malformed;
  }

  friend bool operator==(const VerifierStats&,
                         const VerifierStats&) = default;
};

class CookieVerifier {
 public:
  /// The clock must outlive the verifier. Construction registers the
  /// verifier's metric families (nnn_verify_total{status=...},
  /// nnn_verifier_descriptors, nnn_verify_batch_nanos, nnn_state_*)
  /// with the process registry; destruction deregisters them. Pinned
  /// in memory (non-copyable/movable) because the registry collector
  /// holds `this` — place instances in stable storage (member, deque,
  /// unique_ptr), never in a relocating vector.
  explicit CookieVerifier(const util::Clock& clock,
                          util::Timestamp nct = kNetworkCoherencyTime);
  CookieVerifier(const CookieVerifier&) = delete;
  CookieVerifier& operator=(const CookieVerifier&) = delete;

  /// Install a descriptor (the network side learned it when issuing).
  /// Replaces any existing descriptor with the same id. Precomputes
  /// the HMAC key schedule the verify hot path resumes from.
  void add_descriptor(CookieDescriptor descriptor);

  /// External-table mode: verify against an immutable DescriptorTable
  /// published by the control plane instead of the verifier's own map.
  /// The caller (the verifying thread) re-acquires and re-installs the
  /// current table before each burst; the table must stay valid until
  /// the next set_external_table call (the epoch reclamation in
  /// controlplane::TablePublisher guarantees this). nullptr means "no
  /// table yet" and verifies everything as kUnknownId. Replay and
  /// hot-tier state stay local to the verifier, so use-once memory and
  /// warm midstates survive table swaps (the hot tier revalidates
  /// epoch-stamped entries lazily). External mode is one-way for the
  /// lifetime of the verifier (add_descriptor/revoke/remove keep
  /// editing the local map, but verification ignores it), which keeps
  /// the hot-path branch predictable.
  void set_external_table(const DescriptorTable* table);
  bool external_mode() const { return external_mode_; }

  /// Revocation (§4.5): "the network can similarly stop matching
  /// against a cookie to stop offering a service." Returns true if the
  /// id was known. Revoked ids keep a tombstone so verification
  /// reports kDescriptorRevoked rather than kUnknownId.
  bool revoke(CookieId id);

  /// Remove entirely (descriptor and tombstone).
  bool remove(CookieId id);

  bool knows(CookieId id) const;
  /// The live descriptor for `id`, or nullptr (unknown or revoked). In
  /// external mode this admits the record into the hot tier; the
  /// pointer is valid until the next verify call.
  const CookieDescriptor* find(CookieId id) const;

  /// Run the §4.2 checks on a cookie. A kOk result records the uuid in
  /// the replay cache, so verifying the same cookie twice yields
  /// kReplayed the second time.
  VerifyResult verify(const Cookie& cookie);

  /// Batched verify: results[i] is the verdict for cookies[i]
  /// (results.size() >= cookies.size()). Reads the clock once and
  /// visits cookies grouped by descriptor (stable within a group), so
  /// the table lookup and key-schedule entry stay hot across a burst.
  /// Verdicts and stats match running verify() sequentially over the
  /// batch, up to the single clock read (a burst spans microseconds;
  /// the NCT check has 1 s resolution and a 5 s budget).
  void verify_batch(std::span<const Cookie> cookies,
                    std::span<VerifyResult> results);

  /// Decode-and-verify convenience for wire blobs. Undecodable blobs
  /// count as kMalformed.
  VerifyResult verify_wire(util::BytesView wire);
  VerifyResult verify_text(std::string_view text);

  /// Materialized from the live status cells (by value; binding to a
  /// const reference at call sites keeps working via lifetime
  /// extension).
  VerifierStats stats() const;
  void reset_stats();
  size_t descriptor_count() const {
    return external_mode_ ? (external_ ? external_->size() : 0)
                          : table_.size();
  }
  util::Timestamp nct() const { return nct_; }

  /// External-mode state knobs and introspection (bench/tests).
  /// set_hot_budget bounds resident midstates; configure_external_replay
  /// RESETS the external replay cache with a new capacity (use before
  /// traffic, e.g. to size for tens of millions of outstanding uuids).
  void set_hot_budget(size_t budget) { hot_.set_budget(budget); }
  const HotTier& hot_tier() const { return hot_; }
  void configure_external_replay(size_t capacity);
  const ReplayCache& external_replay() const { return external_replay_; }

 private:
  struct Entry {
    CookieDescriptor descriptor;
    /// ipad/opad midstates for descriptor.key, built at install time.
    crypto::HmacKeySchedule schedule;
    ReplayCache replays;
    bool revoked = false;
  };

  /// A descriptor match independent of where it came from (local map
  /// entry or hot-tier slot backed by the external table).
  struct Resolved {
    const CookieDescriptor* descriptor = nullptr;
    const crypto::HmacKeySchedule* schedule = nullptr;
    ReplayCache* replays = nullptr;
    bool revoked = false;
  };

  /// Debug-only single-writer enforcement (see the class comment).
  /// Reentrancy on the owning thread is fine — verify_wire calls
  /// verify — so ownership is per-thread, not per-call.
  class WriterCheck {
   public:
#ifndef NDEBUG
    explicit WriterCheck(const CookieVerifier& v);
    ~WriterCheck();

   private:
    const CookieVerifier* v_;
    bool outermost_;
#else
    explicit WriterCheck(const CookieVerifier&) {}
#endif
  };

  /// Looks `id` up in whichever table is active. False when unknown.
  bool resolve(CookieId id, Resolved& out);
  /// Checks (ii)-(iv) + revocation/expiry against a resolved match.
  VerifyResult verify_resolved(const Resolved& match, const Cookie& cookie,
                               util::Timestamp now);
  /// Mirror plain hot-tier/replay counters into atomic telemetry
  /// cells, once per burst (cells are what collect() may read from
  /// another thread).
  void sync_state_metrics();
  void collect(telemetry::SampleBuilder& builder) const;

  const util::Clock& clock_;
  util::Timestamp nct_;
  std::unordered_map<CookieId, Entry> table_;
  /// External-table mode state (set_external_table).
  const DescriptorTable* external_ = nullptr;
  bool external_mode_ = false;
  /// Midstate working set over the external table (mutable: find() is
  /// logically const but admits records on a cold hit).
  mutable HotTier hot_;
  /// Verifier-wide use-once memory for external mode (see the class
  /// comment on replay scope).
  ReplayCache external_replay_;
#ifndef NDEBUG
  /// Thread currently inside a mutating/verifying member, or default
  /// (empty) id when none. See WriterCheck.
  mutable std::atomic<std::thread::id> writer_{};
#endif
  /// One cell per VerifyStatus outcome — the single source of truth
  /// the legacy VerifierStats mirrors materialized from.
  telemetry::StatusCounters<VerifyStatus, kVerifyStatusCount> status_;
  telemetry::Gauge descriptors_;
  /// Nanoseconds per verify_batch burst; bursts under 32 cookies are
  /// timed 1-in-32 so the clock reads can't dominate tiny batches.
  telemetry::Histogram batch_nanos_;
  telemetry::SampleStride burst_sample_{32};
  /// nnn_state_* cells (external mode): synced from the hot tier and
  /// replay cache at burst boundaries; sampled probe lengths recorded
  /// inline by both.
  telemetry::Gauge hot_resident_;
  telemetry::Counter hot_rehydrations_;
  telemetry::Counter hot_evictions_;
  telemetry::Gauge replay_entries_;
  telemetry::Gauge replay_wheel_occupied_;
  telemetry::Counter replay_capacity_evictions_;
  telemetry::Histogram probe_len_;
  /// Scratch index permutation for verify_batch (no per-batch alloc).
  std::vector<uint32_t> batch_order_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::cookies
