// Network-side cookie verification (Listing 3, match_cookie).
//
// The verifier owns the descriptor table a cookie-enabled switch or
// middlebox matches against, one replay cache per descriptor, and the
// four checks of §4.2: (i) the cookie ID is known, (ii) the MAC digest
// matches (constant-time), (iii) the timestamp is within the network
// coherency time, (iv) the cookie has not been seen before.
//
// Hot-path shape (§4.6, Fig. 4): each table entry carries a
// precomputed crypto::HmacKeySchedule (built once at add_descriptor
// time), so per-cookie MAC verification resumes from the ipad/opad
// SHA-256 midstates instead of re-deriving the key schedule — half the
// compressions per cookie. verify_batch() amortizes the remaining
// per-call costs (clock read, descriptor lookup) across a burst, the
// unit of work the runtime's rings hand to a worker.
//
// A failed match never drops traffic: "If it fails to match, it
// behaves as if the cookie was not there, offering default services."
// Callers therefore receive a VerifyResult and decide nothing more
// severe than best-effort treatment.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cookies/cookie.h"
#include "cookies/descriptor.h"
#include "cookies/replay_cache.h"
#include "crypto/hmac.h"
#include "util/clock.h"

namespace nnn::cookies {

/// Network coherency time: "the maximum time we expect a packet to
/// live within the network, and is set to 5 seconds" (§4.2).
inline constexpr util::Timestamp kNetworkCoherencyTime =
    5 * util::kSecond;

enum class VerifyStatus : uint8_t {
  kOk = 0,
  kUnknownId,        // check (i) failed
  kBadSignature,     // check (ii) failed
  kStaleTimestamp,   // check (iii) failed (too old or too far in future)
  kReplayed,         // check (iv) failed
  kDescriptorExpired,
  kDescriptorRevoked,
  kMalformed,        // wire/text blob did not decode to a cookie at all
};

std::string to_string(VerifyStatus s);

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kUnknownId;
  /// Set when status == kOk; points into the verifier's table and is
  /// valid until the descriptor is removed.
  const CookieDescriptor* descriptor = nullptr;

  bool ok() const { return status == VerifyStatus::kOk; }
};

/// Counters the verifier keeps; the Fig. 4 bench and audit surfaces
/// read these.
struct VerifierStats {
  uint64_t verified = 0;
  uint64_t unknown_id = 0;
  uint64_t bad_signature = 0;
  uint64_t stale_timestamp = 0;
  uint64_t replayed = 0;
  uint64_t expired = 0;
  uint64_t revoked = 0;
  /// Blobs that failed to decode (verify_wire / verify_text). Distinct
  /// from unknown_id so wire-format fuzz noise is distinguishable from
  /// cookies signed against descriptors this network never saw.
  uint64_t malformed = 0;

  uint64_t total() const {
    return verified + unknown_id + bad_signature + stale_timestamp +
           replayed + expired + revoked + malformed;
  }

  friend bool operator==(const VerifierStats&,
                         const VerifierStats&) = default;
};

class CookieVerifier {
 public:
  /// The clock must outlive the verifier.
  explicit CookieVerifier(const util::Clock& clock,
                          util::Timestamp nct = kNetworkCoherencyTime);

  /// Install a descriptor (the network side learned it when issuing).
  /// Replaces any existing descriptor with the same id. Precomputes
  /// the HMAC key schedule the verify hot path resumes from.
  void add_descriptor(CookieDescriptor descriptor);

  /// Revocation (§4.5): "the network can similarly stop matching
  /// against a cookie to stop offering a service." Returns true if the
  /// id was known. Revoked ids keep a tombstone so verification
  /// reports kDescriptorRevoked rather than kUnknownId.
  bool revoke(CookieId id);

  /// Remove entirely (descriptor and tombstone).
  bool remove(CookieId id);

  bool knows(CookieId id) const;
  const CookieDescriptor* find(CookieId id) const;

  /// Run the §4.2 checks on a cookie. A kOk result records the uuid in
  /// the replay cache, so verifying the same cookie twice yields
  /// kReplayed the second time.
  VerifyResult verify(const Cookie& cookie);

  /// Batched verify: results[i] is the verdict for cookies[i]
  /// (results.size() >= cookies.size()). Reads the clock once and
  /// visits cookies grouped by descriptor (stable within a group), so
  /// the table lookup and key-schedule entry stay hot across a burst.
  /// Verdicts and stats match running verify() sequentially over the
  /// batch, up to the single clock read (a burst spans microseconds;
  /// the NCT check has 1 s resolution and a 5 s budget).
  void verify_batch(std::span<const Cookie> cookies,
                    std::span<VerifyResult> results);

  /// Decode-and-verify convenience for wire blobs. Undecodable blobs
  /// count as kMalformed.
  VerifyResult verify_wire(util::BytesView wire);
  VerifyResult verify_text(std::string_view text);

  const VerifierStats& stats() const { return stats_; }
  void reset_stats() { stats_ = VerifierStats{}; }
  size_t descriptor_count() const { return table_.size(); }
  util::Timestamp nct() const { return nct_; }

 private:
  struct Entry {
    CookieDescriptor descriptor;
    /// ipad/opad midstates for descriptor.key, built at install time.
    crypto::HmacKeySchedule schedule;
    ReplayCache replays;
    bool revoked = false;
  };

  /// Checks (ii)-(iv) + revocation/expiry against a resolved entry.
  VerifyResult verify_in_entry(Entry& entry, const Cookie& cookie,
                               util::Timestamp now);

  const util::Clock& clock_;
  util::Timestamp nct_;
  std::unordered_map<CookieId, Entry> table_;
  VerifierStats stats_;
  /// Scratch index permutation for verify_batch (no per-batch alloc).
  std::vector<uint32_t> batch_order_;
};

}  // namespace nnn::cookies
