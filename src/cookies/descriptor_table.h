// Immutable descriptor tables for the epoch-swapped verify hot path.
//
// The control plane builds a complete DescriptorTable off the hot
// path, publishes it through controlplane::TablePublisher with an
// atomic pointer swap, and reclaims the previous table only after
// every reader passed a quiescent point. Once constructed a table is
// never mutated (the publisher stamps `epoch` exactly once, before the
// table becomes visible to any reader), so any number of worker
// threads may read it with no locks in verify_batch.
//
// Contents are a cookies::DescriptorStore snapshot: one 64-byte
// Record per descriptor (key inline, revocation tombstone, expiry)
// behind an open-addressing id index, with service profiles interned.
// Unlike the historical unordered_map<CookieId, TableEntry>, the
// table carries no per-entry HMAC key schedules — midstates are a
// verifier-local working set (cookies::HotTier) sized to the hot
// descriptors, not to the table.
#pragma once

#include <cstdint>
#include <utility>

#include "cookies/descriptor.h"
#include "cookies/descriptor_store.h"

namespace nnn::cookies {

class DescriptorTable {
 public:
  DescriptorTable() = default;
  DescriptorTable(uint64_t version, DescriptorStore store)
      : version_(version), store_(std::move(store)) {}

  /// The compact record for `id` (live or tombstoned), or nullptr.
  const DescriptorStore::Record* find(CookieId id) const {
    return store_.find(id);
  }

  const DescriptorStore& store() const { return store_; }

  size_t size() const { return store_.size(); }

  /// DescriptorLog version this table reflects.
  uint64_t version() const { return version_; }

  /// Publish sequence number, stamped by the TablePublisher before the
  /// swap makes the table visible.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

 private:
  uint64_t version_ = 0;
  uint64_t epoch_ = 0;
  DescriptorStore store_;
};

}  // namespace nnn::cookies
