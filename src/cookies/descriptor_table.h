// Immutable descriptor tables for the epoch-swapped verify hot path.
//
// A CookieVerifier in local mode owns a mutable descriptor map, which
// forces a single-writer contract on the whole object. The control
// plane instead builds a complete DescriptorTable off the hot path
// (descriptors, revocation tombstones, and the precomputed
// crypto::HmacKeySchedule each entry's MAC check resumes from),
// publishes it through controlplane::TablePublisher with an atomic
// pointer swap, and reclaims the previous table only after every
// reader passed a quiescent point. Once constructed a table is never
// mutated (the publisher stamps `epoch` exactly once, before the
// table becomes visible to any reader), so any number of worker
// threads may read it with no locks in verify_batch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "cookies/descriptor.h"
#include "crypto/hmac.h"

namespace nnn::cookies {

/// One table slot: the descriptor, its ready-to-resume HMAC midstates,
/// and the §4.5 revocation tombstone (revoked ids keep an entry so
/// verification reports kDescriptorRevoked rather than kUnknownId).
struct TableEntry {
  CookieDescriptor descriptor;
  crypto::HmacKeySchedule schedule;
  bool revoked = false;
};

class DescriptorTable {
 public:
  DescriptorTable() = default;
  DescriptorTable(uint64_t version,
                  std::unordered_map<CookieId, TableEntry> entries)
      : version_(version), entries_(std::move(entries)) {}

  const TableEntry* find(CookieId id) const {
    const auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
  }

  size_t size() const { return entries_.size(); }

  /// DescriptorLog version this table reflects.
  uint64_t version() const { return version_; }

  /// Publish sequence number, stamped by the TablePublisher before the
  /// swap makes the table visible.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

 private:
  uint64_t version_ = 0;
  uint64_t epoch_ = 0;
  std::unordered_map<CookieId, TableEntry> entries_;
};

}  // namespace nnn::cookies
