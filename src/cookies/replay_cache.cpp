#include "cookies/replay_cache.h"

namespace nnn::cookies {

ReplayCache::ReplayCache(util::Timestamp horizon, size_t capacity)
    : horizon_(horizon), capacity_(capacity == 0 ? 1 : capacity) {}

bool ReplayCache::insert(const crypto::Uuid& uuid, util::Timestamp now) {
  // Purge first so an expired copy of `uuid` cannot shadow the
  // duplicate check (and the common case shrinks before we grow).
  purge(now);
  const auto [it, inserted] = set_.insert(uuid);
  if (!inserted) return false;
  while (queue_.size() >= capacity_) {
    // Capacity clamp: evict oldest-first. Only reachable under a
    // unique-uuid flood; counted so operators can see it happened.
    set_.erase(queue_.front().uuid);
    queue_.pop_front();
    ++capacity_evictions_;
  }
  queue_.push_back(Entry{now + horizon_, uuid});
  return true;
}

bool ReplayCache::contains(const crypto::Uuid& uuid) const {
  return set_.contains(uuid);
}

void ReplayCache::purge(util::Timestamp now) {
  while (!queue_.empty() && queue_.front().expires <= now) {
    set_.erase(queue_.front().uuid);
    queue_.pop_front();
  }
}

}  // namespace nnn::cookies
