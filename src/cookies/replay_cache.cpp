#include "cookies/replay_cache.h"

#include <algorithm>

namespace nnn::cookies {

namespace {

util::Timestamp tick_for(util::Timestamp horizon) {
  return std::max<util::Timestamp>(1, horizon / 64);
}

}  // namespace

ReplayCache::ReplayCache(util::Timestamp horizon, size_t capacity)
    : horizon_(horizon), capacity_(capacity == 0 ? 1 : capacity) {}

bool ReplayCache::insert(const crypto::Uuid& uuid, util::Timestamp now) {
  // Purge first so an expired copy of `uuid` cannot shadow the
  // duplicate check, and so expiry (not the capacity clamp) reclaims
  // slots when the cache is full of dead entries. The watermark gate
  // inside purge() makes this free when nothing can have expired.
  purge(now);
  const uint64_t hash = hash_of(uuid);
  uint32_t probes = 0;
  const uint32_t* existing = index_.find(
      hash, [&](const uint32_t& h) { return pool_[h].uuid == uuid; },
      &probes);
  sample_probe(probes);
  if (existing != nullptr) return false;
  while (index_.size() >= capacity_) {
    // Capacity clamp: evict oldest-first. Only reachable under a
    // unique-uuid flood; counted so operators can see it happened.
    evict_oldest();
    ++capacity_evictions_;
  }
  if (!wheel_.ready()) {
    wheel_.init(tick_for(horizon_), kWheelSlots, now);
  } else if (index_.empty()) {
    // A drained wheel's cursor only moves on purge walks, and those
    // stop once nothing is left; re-seat it so this entry lands within
    // one revolution.
    wheel_.reseat(now);
  }
  const uint32_t handle = alloc_entry();
  pool_[handle] =
      Entry{uuid, now + horizon_, state::ExpiryWheel::kNil};
  index_.find_or_insert(
      hash, [](const uint32_t&) { return false; },
      [this](const uint32_t& h) { return hash_of(pool_[h].uuid); },
      [&] { return handle; });
  wheel_.schedule(handle, pool_[handle].expires, wheel_next());
  if (pool_[handle].expires < watermark_) {
    watermark_ = pool_[handle].expires;
  }
  return true;
}

bool ReplayCache::contains(const crypto::Uuid& uuid) const {
  return index_.find(hash_of(uuid), [&](const uint32_t& h) {
           return pool_[h].uuid == uuid;
         }) != nullptr;
}

void ReplayCache::purge(util::Timestamp now) {
  // The watermark is the exact minimum outstanding expiry: before it,
  // no entry can be due and the wheel is not touched at all.
  if (now < watermark_ || !wheel_.ready()) return;
  ++purge_scans_;
  const auto result = wheel_.advance(
      now, wheel_next(),
      [this](uint32_t h) { return pool_[h].expires; },
      [this](uint32_t h) { erase_handle(h); });
  watermark_ = result.next_due_bound;
}

size_t ReplayCache::memory_bytes() const {
  return pool_.capacity() * sizeof(Entry) +
         free_.capacity() * sizeof(uint32_t) + index_.memory_bytes() +
         wheel_.memory_bytes();
}

state::ProbeStats ReplayCache::probe_stats(size_t max_samples) const {
  return index_.probe_stats(
      [this](const uint32_t& h) { return hash_of(pool_[h].uuid); },
      max_samples);
}

uint32_t ReplayCache::alloc_entry() {
  if (!free_.empty()) {
    const uint32_t handle = free_.back();
    free_.pop_back();
    return handle;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void ReplayCache::evict_oldest() {
  const uint32_t handle = wheel_.pop_front(wheel_next());
  erase_handle(handle);
}

void ReplayCache::erase_handle(uint32_t handle) {
  index_.erase(hash_of(pool_[handle].uuid),
               [&](const uint32_t& h) { return h == handle; });
  free_.push_back(handle);
}

}  // namespace nnn::cookies
