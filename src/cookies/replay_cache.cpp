#include "cookies/replay_cache.h"

namespace nnn::cookies {

ReplayCache::ReplayCache(util::Timestamp horizon) : horizon_(horizon) {}

bool ReplayCache::insert(const crypto::Uuid& uuid, util::Timestamp now) {
  purge(now);
  const auto [it, inserted] = set_.insert(uuid);
  if (!inserted) return false;
  queue_.push_back(Entry{now + horizon_, uuid});
  return true;
}

bool ReplayCache::contains(const crypto::Uuid& uuid) const {
  return set_.contains(uuid);
}

void ReplayCache::purge(util::Timestamp now) {
  while (!queue_.empty() && queue_.front().expires <= now) {
    set_.erase(queue_.front().uuid);
    queue_.pop_front();
  }
}

}  // namespace nnn::cookies
