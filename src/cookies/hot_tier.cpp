#include "cookies/hot_tier.h"

#include <cassert>

#include "util/bytes.h"

namespace nnn::cookies {

void HotTier::begin_burst() {
  if (limbo_.empty()) return;
  free_.insert(free_.end(), limbo_.begin(), limbo_.end());
  limbo_.clear();
}

const HotTier::Entry* HotTier::lookup(CookieId id, uint64_t epoch) {
  uint32_t probes = 0;
  const uint32_t* slot =
      index_.find(hash_id(id), index_matcher(id), &probes);
  sample_probe(probes);
  if (slot == nullptr) return nullptr;
  Entry& entry = pool_[*slot];
  if (entry.epoch != epoch) return nullptr;  // table swapped: revalidate
  entry.referenced = true;
  ++hits_;
  return &entry;
}

const HotTier::Entry* HotTier::admit(const DescriptorStore::Record& record,
                                     const DescriptorStore& store,
                                     uint64_t epoch) {
  assert(!record.revoked && "revoked records are never admitted");
  const util::BytesView key = store.key_of(record);
  if (uint32_t* slot = index_.find(hash_id(record.id),
                                   index_matcher(record.id))) {
    // Present but stamped with an older epoch: revalidate. The
    // descriptor metadata is re-materialized (profile or expiry may
    // have changed); the schedule survives unless the key rotated.
    Entry& entry = pool_[*slot];
    const bool same_key = util::equal(util::BytesView(entry.descriptor.key),
                                      key);
    entry.descriptor = store.materialize(record);
    if (!same_key) {
      entry.schedule = crypto::HmacKeySchedule{key};
      ++rehydrations_;
    }
    entry.epoch = epoch;
    entry.referenced = true;
    return &entry;
  }
  if (live_count_ >= budget_) evict_one();
  const uint32_t slot = acquire_slot();
  Entry& entry = pool_[slot];
  entry.descriptor = store.materialize(record);
  entry.schedule = crypto::HmacKeySchedule{key};
  entry.id = record.id;
  entry.epoch = epoch;
  entry.referenced = true;
  entry.live = true;
  ++rehydrations_;
  ++live_count_;
  index_.find_or_insert(
      hash_id(record.id), [](const uint32_t&) { return false; },
      index_hasher(), [&] { return slot; });
  return &entry;
}

void HotTier::clear() {
  index_.clear();
  pool_.clear();
  free_.clear();
  limbo_.clear();
  live_count_ = 0;
  clock_hand_ = 0;
}

size_t HotTier::memory_bytes() const {
  size_t bytes = pool_.size() * sizeof(Entry) + index_.memory_bytes() +
                 (free_.capacity() + limbo_.capacity()) * sizeof(uint32_t);
  for (const Entry& entry : pool_) {
    if (!entry.live) continue;
    bytes += entry.descriptor.key.capacity() +
             entry.descriptor.service_data.capacity();
  }
  return bytes;
}

uint32_t HotTier::acquire_slot() {
  if (!free_.empty()) {
    const uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  // Mid-burst evictions park slots in limbo, so the pool can crest the
  // budget by at most one burst's distinct admissions; begin_burst
  // folds limbo back into the free list.
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void HotTier::evict_one() {
  assert(live_count_ > 0);
  // CLOCK: first lap strips referenced bits, second lap must find a
  // victim.
  for (;;) {
    clock_hand_ =
        (clock_hand_ + 1) % static_cast<uint32_t>(pool_.size());
    Entry& entry = pool_[clock_hand_];
    if (!entry.live) continue;
    if (entry.referenced) {
      entry.referenced = false;
      continue;
    }
    index_.erase(hash_id(entry.id), index_matcher(entry.id));
    entry.live = false;
    limbo_.push_back(clock_hand_);
    --live_count_;
    ++evictions_;
    return;
  }
}

}  // namespace nnn::cookies
