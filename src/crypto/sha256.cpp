#include "crypto/sha256.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace nnn::crypto {

namespace {

constexpr std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t x, int n) {
  return std::rotr(x, n);
}

constexpr std::array<uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

struct Dispatch {
  detail::Sha256CompressFn fn = &detail::sha256_compress_scalar;
  Sha256Backend backend = Sha256Backend::kScalar;
};

Dispatch& dispatch() {
  // Selected once, at first use (thread-safe static init); the SHA-NI
  // backend is preferred whenever the CPU can run it.
  static Dispatch d = [] {
    Dispatch init;
    if (sha256_shani_supported()) {
      init.fn = &detail::sha256_compress_shani;
      init.backend = Sha256Backend::kShaNi;
    }
    return init;
  }();
  return d;
}

}  // namespace

const char* to_string(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::kScalar:
      return "scalar";
    case Sha256Backend::kShaNi:
      return "sha-ni";
  }
  return "?";
}

bool sha256_shani_supported() {
#if defined(NNN_HAVE_SHANI)
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

Sha256Backend sha256_backend() {
  return dispatch().backend;
}

bool sha256_set_backend(Sha256Backend backend) {
  if (backend == Sha256Backend::kShaNi && !sha256_shani_supported()) {
    return false;
  }
  Dispatch& d = dispatch();
  d.backend = backend;
#if defined(NNN_HAVE_SHANI)
  d.fn = backend == Sha256Backend::kShaNi ? &detail::sha256_compress_shani
                                          : &detail::sha256_compress_scalar;
#else
  d.fn = &detail::sha256_compress_scalar;
#endif
  return true;
}

namespace detail {

Sha256CompressFn sha256_compress() {
  return dispatch().fn;
}

void sha256_compress_scalar(uint32_t state[8], const uint8_t* blocks,
                            size_t nblocks) {
  while (nblocks-- > 0) {
    const uint8_t* block = blocks;
    blocks += Sha256::kBlockSize;

    std::array<uint32_t, 64> w;
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
             static_cast<uint32_t>(block[4 * i + 1]) << 16 |
             static_cast<uint32_t>(block[4 * i + 2]) << 8 |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if !defined(NNN_HAVE_SHANI)
// Never called (dispatch only selects it when supported); defined so
// the declaration does not dangle on non-x86 builds.
void sha256_compress_shani(uint32_t state[8], const uint8_t* blocks,
                           size_t nblocks) {
  sha256_compress_scalar(state, blocks, nblocks);
}
#endif

}  // namespace detail

Sha256::Sha256() : state_(kInitialState) {}

void Sha256::update(util::BytesView data) {
  const detail::Sha256CompressFn compress = detail::sha256_compress();
  total_len_ += data.size();
  size_t offset = 0;
  // Fill a partially filled buffer first.
  if (buffer_len_ > 0) {
    const size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  // Bulk path: hand all whole blocks to the backend in one call so the
  // hardware implementation keeps its state in registers across blocks.
  const size_t nblocks = (data.size() - offset) / kBlockSize;
  if (nblocks > 0) {
    compress(state_.data(), data.data() + offset, nblocks);
    offset += nblocks * kBlockSize;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

void Sha256::update(std::string_view data) {
  update(util::BytesView(reinterpret_cast<const uint8_t*>(data.data()),
                         data.size()));
}

void Sha256::do_finish() {
  const uint64_t bit_len = total_len_ * 8;
  // Append 0x80 then zero pad to 56 mod 64, then the 64-bit length.
  const uint8_t pad80 = 0x80;
  update(util::BytesView(&pad80, 1));
  total_len_ -= 1;  // padding does not count
  static constexpr std::array<uint8_t, kBlockSize> kZeros{};
  while (buffer_len_ != 56) {
    const size_t want = buffer_len_ < 56 ? 56 - buffer_len_
                                         : kBlockSize - buffer_len_ + 56;
    const size_t take = std::min(want, kZeros.size());
    update(util::BytesView(kZeros.data(), take));
    total_len_ -= take;
  }
  std::array<uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(util::BytesView(len_bytes.data(), len_bytes.size()));
}

Sha256::Digest Sha256::finish() {
  do_finish();
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

void Sha256::finish_into(uint8_t* out, size_t n) {
  assert(n <= kDigestSize);
  do_finish();
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(state_[i / 4] >> (24 - 8 * (i % 4)));
  }
}

Sha256State Sha256::save_state() const {
  assert(buffer_len_ == 0 && "midstate snapshots only at block boundaries");
  return Sha256State{state_, total_len_};
}

void Sha256::restore(const Sha256State& state) {
  state_ = state.h;
  total_len_ = state.bytes_compressed;
  buffer_len_ = 0;
}

Sha256::Digest Sha256::hash(util::BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Sha256::Digest Sha256::hash(std::string_view data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace nnn::crypto
