// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Network cookies carry an HMAC-SHA256 signature (truncatable) so the
// network can verify that a cookie was minted by a holder of the
// descriptor key. This is the only hash the library needs, and it is
// the dataplane's hottest instruction stream: every cookie the
// middlebox verifies compresses SHA-256 blocks (§4.6, Fig. 4).
//
// Two implementations of the compression function sit behind a
// function pointer selected once at startup:
//   - scalar   (sha256.cpp)        — portable FIPS reference, always
//                                    built, the correctness anchor;
//   - sha-ni   (sha256_sha_ni.cpp) — x86 SHA extensions, built on
//                                    x86-64 unless -DNNN_DISABLE_SHANI,
//                                    used when CPUID reports support.
// Both produce identical digests; tests assert the RFC/NIST vectors
// against every compiled backend.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace nnn::crypto {

/// Which SHA-256 compression implementation backs new Sha256 objects.
enum class Sha256Backend : uint8_t { kScalar = 0, kShaNi = 1 };

const char* to_string(Sha256Backend backend);

/// True when the SHA-NI backend was compiled in AND this CPU supports
/// the SHA + SSE4.1 extensions.
bool sha256_shani_supported();

/// The backend newly constructed hashers will use.
Sha256Backend sha256_backend();

/// Force a backend process-wide (test hook; affects hashers
/// constructed afterwards). Returns false — leaving the selection
/// unchanged — when the requested backend is unavailable. Not safe to
/// call concurrently with hashing on other threads.
bool sha256_set_backend(Sha256Backend backend);

/// A compression-state snapshot taken at a 64-byte block boundary.
/// The HMAC key schedule stores two of these per descriptor key (the
/// ipad/opad midstates) so per-cookie verification resumes here
/// instead of re-compressing the key blocks.
struct Sha256State {
  std::array<uint32_t, 8> h;
  /// Bytes compressed so far; always a multiple of the block size.
  uint64_t bytes_compressed = 0;

  friend bool operator==(const Sha256State&, const Sha256State&) = default;
};

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto digest = h.finish();
/// finish() may be called once; the object is then exhausted.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  void update(util::BytesView data);
  void update(std::string_view data);

  /// Finalize and return the digest.
  Digest finish();

  /// Finalize, writing only the first `n` (<= kDigestSize) digest
  /// bytes into `out`. The truncated-tag path: no intermediate full
  /// digest is materialized.
  void finish_into(uint8_t* out, size_t n);

  /// Snapshot the midstate. Precondition: the bytes absorbed so far
  /// are a multiple of kBlockSize (nothing buffered); HMAC pads are
  /// exactly one block, so the key-schedule path always qualifies.
  Sha256State save_state() const;

  /// Reset this hasher to continue from a previously saved midstate.
  void restore(const Sha256State& state);

  /// One-shot convenience.
  static Digest hash(util::BytesView data);
  static Digest hash(std::string_view data);

 private:
  void do_finish();

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

namespace detail {

/// Fold `nblocks` consecutive 64-byte blocks into `state`.
using Sha256CompressFn = void (*)(uint32_t state[8], const uint8_t* blocks,
                                  size_t nblocks);

void sha256_compress_scalar(uint32_t state[8], const uint8_t* blocks,
                            size_t nblocks);
// Defined only when the SHA-NI translation unit is compiled
// (x86-64 and not NNN_DISABLE_SHANI); never referenced otherwise.
void sha256_compress_shani(uint32_t state[8], const uint8_t* blocks,
                           size_t nblocks);

/// The active compression function (reflects sha256_set_backend).
Sha256CompressFn sha256_compress();

}  // namespace detail

}  // namespace nnn::crypto
