// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Network cookies carry an HMAC-SHA256 signature (truncatable) so the
// network can verify that a cookie was minted by a holder of the
// descriptor key. This is the only hash the library needs.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace nnn::crypto {

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto digest = h.finish();
/// finish() may be called once; the object is then exhausted.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  void update(util::BytesView data);
  void update(std::string_view data);

  /// Finalize and return the digest.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(util::BytesView data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace nnn::crypto
