#include "crypto/hmac.h"

#include <cstring>

namespace nnn::crypto {

Sha256::Digest hmac_sha256(util::BytesView key, util::BytesView data) {
  std::array<uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<uint8_t, Sha256::kBlockSize> ipad;
  std::array<uint8_t, Sha256::kBlockSize> opad;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(util::BytesView(ipad.data(), ipad.size()));
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(util::BytesView(opad.data(), opad.size()));
  outer.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

CookieTag cookie_tag(util::BytesView key, util::BytesView data) {
  const auto digest = hmac_sha256(key, data);
  CookieTag tag;
  std::memcpy(tag.data(), digest.data(), tag.size());
  return tag;
}

}  // namespace nnn::crypto
