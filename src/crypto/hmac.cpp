#include "crypto/hmac.h"

#include <cstring>

namespace nnn::crypto {

HmacKeySchedule::HmacKeySchedule(util::BytesView key) {
  std::array<uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto hashed = Sha256::hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {  // memcpy from a null data() is UB even at size 0
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<uint8_t, Sha256::kBlockSize> pad;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    pad[i] = block_key[i] ^ 0x36;
  }
  Sha256 inner;
  inner.update(util::BytesView(pad.data(), pad.size()));
  inner_ = inner.save_state();

  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    pad[i] = block_key[i] ^ 0x5c;
  }
  Sha256 outer;
  outer.update(util::BytesView(pad.data(), pad.size()));
  outer_ = outer.save_state();
}

Sha256::Digest HmacKeySchedule::digest(util::BytesView data) const {
  Sha256 h;
  h.restore(inner_);
  h.update(data);
  const auto inner_digest = h.finish();

  h.restore(outer_);
  h.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  return h.finish();
}

CookieTag HmacKeySchedule::tag(util::BytesView data) const {
  Sha256 h;
  h.restore(inner_);
  h.update(data);
  const auto inner_digest = h.finish();

  h.restore(outer_);
  h.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  CookieTag out;
  h.finish_into(out.data(), out.size());
  return out;
}

Sha256::Digest hmac_sha256(util::BytesView key, util::BytesView data) {
  return HmacKeySchedule(key).digest(data);
}

CookieTag cookie_tag(util::BytesView key, util::BytesView data) {
  return HmacKeySchedule(key).tag(data);
}

}  // namespace nnn::crypto
