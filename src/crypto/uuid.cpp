#include "crypto/uuid.h"

#include <algorithm>

#include "util/hex.h"

namespace nnn::crypto {

Uuid Uuid::generate(util::Rng& rng) {
  std::array<uint8_t, kSize> b;
  for (size_t i = 0; i < kSize; i += 8) {
    const uint64_t v = rng.next_u64();
    for (size_t j = 0; j < 8; ++j) {
      b[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  b[6] = static_cast<uint8_t>((b[6] & 0x0f) | 0x40);  // version 4
  b[8] = static_cast<uint8_t>((b[8] & 0x3f) | 0x80);  // variant 10xx
  return Uuid(b);
}

std::optional<Uuid> Uuid::parse(std::string_view s) {
  if (s.size() != 36) return std::nullopt;
  if (s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-') {
    return std::nullopt;
  }
  std::string hex;
  hex.reserve(32);
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) continue;
    hex.push_back(s[i]);
  }
  const auto bytes = util::hex_decode(hex);
  if (!bytes || bytes->size() != kSize) return std::nullopt;
  std::array<uint8_t, kSize> b;
  std::copy(bytes->begin(), bytes->end(), b.begin());
  return Uuid(b);
}

std::string Uuid::to_string() const {
  const std::string hex =
      util::hex_encode(util::BytesView(bytes_.data(), bytes_.size()));
  std::string out;
  out.reserve(36);
  out.append(hex, 0, 8);
  out.push_back('-');
  out.append(hex, 8, 4);
  out.push_back('-');
  out.append(hex, 12, 4);
  out.push_back('-');
  out.append(hex, 16, 4);
  out.push_back('-');
  out.append(hex, 20, 12);
  return out;
}

bool Uuid::is_nil() const {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](uint8_t b) { return b == 0; });
}

}  // namespace nnn::crypto
