// Constant-time comparison for signature verification.
//
// Cookie verification happens on a middlebox exposed to arbitrary
// senders; comparing MACs with memcmp would leak a timing oracle that
// lets an attacker forge tags byte by byte.
#pragma once

#include "util/bytes.h"

namespace nnn::crypto {

/// Constant-time equality. Runs in time dependent only on the lengths.
bool constant_time_equal(util::BytesView a, util::BytesView b);

}  // namespace nnn::crypto
