// HMAC-SHA256 (RFC 2104 / RFC 4231 test vectors).
//
// Listing 3 of the paper signs cookies with
//   digest = hmac.digest(descriptor.key, value)
// where value = id || uuid || timestamp. Cookies embed a truncated tag
// (kCookieTagSize) to keep the on-wire overhead small; verification is
// constant-time over the tag.
#pragma once

#include <array>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nnn::crypto {

/// Full-length HMAC-SHA256 of `data` under `key`.
Sha256::Digest hmac_sha256(util::BytesView key, util::BytesView data);

/// Truncated tag size used by cookie signatures (128 bits, the common
/// HMAC truncation that preserves collision margin at half the bytes).
inline constexpr size_t kCookieTagSize = 16;
using CookieTag = std::array<uint8_t, kCookieTagSize>;

/// Truncated HMAC tag for cookie signing.
CookieTag cookie_tag(util::BytesView key, util::BytesView data);

}  // namespace nnn::crypto
