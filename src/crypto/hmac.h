// HMAC-SHA256 (RFC 2104 / RFC 4231 test vectors).
//
// Listing 3 of the paper signs cookies with
//   digest = hmac.digest(descriptor.key, value)
// where value = id || uuid || timestamp. Cookies embed a truncated tag
// (kCookieTagSize) to keep the on-wire overhead small; verification is
// constant-time over the tag.
//
// The verifier's hot path never calls the one-shot functions: a
// descriptor key is fixed for hours or days (§4.1), so the ipad/opad
// key blocks are compressed once into an HmacKeySchedule whose
// midstates every per-cookie MAC resumes from. That halves the SHA-256
// compressions per verification (2 instead of 4 for a one-block
// message) and skips the key XOR loop entirely.
#pragma once

#include <array>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nnn::crypto {

/// Truncated tag size used by cookie signatures (128 bits, the common
/// HMAC truncation that preserves collision margin at half the bytes).
inline constexpr size_t kCookieTagSize = 16;
using CookieTag = std::array<uint8_t, kCookieTagSize>;

/// Precomputed HMAC-SHA256 state for one key: the inner (key ^ ipad)
/// and outer (key ^ opad) blocks already compressed. Cheap to copy
/// (72 bytes), no heap. Build once per descriptor, MAC many times.
class HmacKeySchedule {
 public:
  /// Empty schedule; digest()/tag() must not be called until a keyed
  /// schedule is assigned.
  HmacKeySchedule() = default;

  explicit HmacKeySchedule(util::BytesView key);

  /// Full-length HMAC of `data`, resuming from the midstates.
  Sha256::Digest digest(util::BytesView data) const;

  /// Truncated cookie tag of `data`, written directly from the outer
  /// hash's final state — no intermediate full digest copy.
  CookieTag tag(util::BytesView data) const;

  friend bool operator==(const HmacKeySchedule&,
                         const HmacKeySchedule&) = default;

 private:
  Sha256State inner_;  // after compressing key ^ ipad
  Sha256State outer_;  // after compressing key ^ opad
};

/// Full-length HMAC-SHA256 of `data` under `key` (one-shot; derives
/// the key schedule each call — control-plane use only).
Sha256::Digest hmac_sha256(util::BytesView key, util::BytesView data);

/// Truncated HMAC tag for cookie signing (one-shot).
CookieTag cookie_tag(util::BytesView key, util::BytesView data);

}  // namespace nnn::crypto
