// 128-bit UUIDs (RFC 4122 v4 layout).
//
// Every cookie carries a universally unique id; the verifier's replay
// cache stores recently seen uuids to enforce the use-once property.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/rng.h"

namespace nnn::crypto {

class Uuid {
 public:
  static constexpr size_t kSize = 16;

  Uuid() : bytes_{} {}
  explicit Uuid(std::array<uint8_t, kSize> bytes) : bytes_(bytes) {}

  /// Generate a v4 UUID from the given RNG (deterministic under seed).
  static Uuid generate(util::Rng& rng);

  /// Parse the canonical 8-4-4-4-12 form. nullopt on bad input.
  static std::optional<Uuid> parse(std::string_view s);

  /// Canonical lowercase 8-4-4-4-12 text form.
  std::string to_string() const;

  const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  bool is_nil() const;

  friend auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::array<uint8_t, kSize> bytes_;
};

}  // namespace nnn::crypto

template <>
struct std::hash<nnn::crypto::Uuid> {
  size_t operator()(const nnn::crypto::Uuid& u) const noexcept {
    // The bytes are uniformly random; fold the first words.
    uint64_t hi = 0;
    uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) hi = hi << 8 | u.bytes()[i];
    for (int i = 8; i < 16; ++i) lo = lo << 8 | u.bytes()[i];
    return static_cast<size_t>(hi ^ (lo * 0x9e3779b97f4a7c15ULL));
  }
};
