#include "crypto/constant_time.h"

namespace nnn::crypto {

bool constant_time_equal(util::BytesView a, util::BytesView b) {
  if (a.size() != b.size()) return false;
  volatile uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = acc | static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace nnn::crypto
