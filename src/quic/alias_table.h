// Connection-ID alias resolution for the encrypted transport (PR 10
// tentpole).
//
// A QUIC connection is named by many connection IDs over its lifetime:
// the client's initial SCID, the server's handshake SCID, and every
// fresh CID a rotation announces. Flow state must not fragment across
// them — "the cookie need only be presented once" (§4.1) is a claim
// about the CONNECTION, not about whichever CID the current packet
// happens to carry. The CidAliasTable is the structure that collapses
// the many names into one: every CID maps to the connection's
// canonical CID (the first one seen, by convention the client's
// initial SCID) plus a steering key fixed at bind time.
//
// The steering key is what lets a migrated flow keep hitting the shard
// that owns its descriptor: the dataplane binds it to the cookie id
// seen in the handshake, so util::steer_shard(steer) names the same
// worker for every packet of the connection — across CID rotations AND
// NAT rebinds, which is exactly what tuple-hash steering cannot do
// (the rebind changes the tuple, the tuple hash, and therefore the
// shard, orphaning the per-worker descriptor and replay state).
//
// Shape: one FlatTable keyed by CID whose elements are u32 indices
// into a connection pool (the FlowTable handle-table idiom), so a
// rotation costs one flat-hash insert and resolution is one probe.
// Connections record their outstanding CIDs; eviction — explicit on
// flow death, or FIFO once `max_connections` is exceeded — removes
// every alias with the connection, so a dead connection cannot leak
// index entries (the alias-eviction test pins this).
//
// Thread-compatibility matches FlatTable: single mutator; concurrent
// readers only on a table no thread mutates.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "state/flat_table.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"
#include "util/expected.h"

namespace nnn::net {
struct Packet;
}  // namespace nnn::net

namespace nnn::quic {

/// What a CID resolves to.
struct CidBinding {
  /// The connection's one stable name (its first CID).
  uint64_t canonical = 0;
  /// Shard-steering key fixed when the connection was bound — the
  /// cookie id for cookie-bearing connections, a flow-key hash for
  /// cookie-less ones.
  uint64_t steer = 0;
};

struct CidAliasStats {
  uint64_t connections_bound = 0;
  uint64_t aliases_added = 0;
  uint64_t resolve_misses = 0;
  uint64_t connections_evicted = 0;

  friend bool operator==(const CidAliasStats&, const CidAliasStats&) = default;
};

}  // namespace nnn::quic

namespace nnn::telemetry {

template <>
struct ViewTraits<quic::CidAliasStats> {
  using S = quic::CidAliasStats;
  static constexpr std::array fields{
      ViewField<S>{&S::connections_bound, MetricType::kCounter,
                   "nnn_quic_connections_bound_total",
                   "QUIC connections registered in the CID alias table", "",
                   ""},
      ViewField<S>{&S::aliases_added, MetricType::kCounter,
                   "nnn_quic_aliases_added_total",
                   "CID rotations recorded (fresh CID aliased to a "
                   "connection)",
                   "", ""},
      ViewField<S>{&S::resolve_misses, MetricType::kCounter,
                   "nnn_quic_resolve_misses_total",
                   "CID resolutions that found no binding", "", ""},
      ViewField<S>{&S::connections_evicted, MetricType::kCounter,
                   "nnn_quic_connections_evicted_total",
                   "Connections evicted (explicit death or capacity FIFO)",
                   "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::quic {

struct CidAliasConfig {
  /// Connection capacity; binding past it FIFO-evicts the oldest
  /// connection (and all its aliases). 0 = unbounded.
  size_t max_connections = 1 << 20;
};

class CidAliasTable {
 public:
  using Config = CidAliasConfig;

  /// Registers the nnn_quic_* families; pinned (collector holds this).
  explicit CidAliasTable(Config config = {});
  CidAliasTable(const CidAliasTable&) = delete;
  CidAliasTable& operator=(const CidAliasTable&) = delete;

  /// Register a connection: `canonical` becomes its stable name (and
  /// its first resolvable CID), `steer` its steering key. Idempotent
  /// for an already-bound canonical (returns false); a CID already
  /// aliased to a DIFFERENT connection also returns false (collision,
  /// first binding wins).
  bool bind(uint64_t canonical, uint64_t steer);

  /// Record a rotation: `fresh_cid` joins the connection that
  /// `existing_cid` resolves to. Returns the canonical CID, or
  /// Error{kFlow, kUnknownId} when `existing_cid` is not bound —
  /// a rotation marker for a connection never seen (restart, eviction)
  /// cannot be linked and the caller falls back to tuple keying.
  Expected<uint64_t> alias(uint64_t fresh_cid, uint64_t existing_cid);

  /// The binding behind a CID, or nullopt. Misses are counted — a
  /// miss on the dataplane path means a short-header packet whose
  /// connection the table does not know.
  std::optional<CidBinding> find(uint64_t cid) const;

  /// Canonical CID for `cid`, or `cid` itself when unknown (an unknown
  /// CID is its own connection as far as keying is concerned).
  uint64_t resolve(uint64_t cid) const;

  /// Steering key for `cid`, if bound.
  std::optional<uint64_t> steer_key(uint64_t cid) const;

  /// Drop the connection `canonical` names and every alias pointing at
  /// it; returns the number of CIDs removed (0 = unknown connection).
  size_t evict(uint64_t canonical);

  size_t connections() const { return live_connections_; }
  size_t cids() const { return index_.size(); }

  CidAliasStats stats() const { return stats_.snapshot(); }

 private:
  struct Entry {
    uint64_t cid = 0;
    uint32_t conn = 0;  // index into pool_
  };
  struct Conn {
    uint64_t canonical = 0;
    uint64_t steer = 0;
    /// Every CID resolving to this connection, canonical included —
    /// the eviction walk that keeps index_ leak-free.
    std::vector<uint64_t> cids;
    bool live = false;
    /// Bumped on every bind into this slot, so a stale FIFO entry for
    /// a slot that died and was reused never evicts the newcomer.
    uint64_t gen = 0;
  };

  static uint64_t hash_cid(uint64_t cid) { return state::mix_hash(cid); }
  auto index_matcher(uint64_t cid) const {
    return [cid](const Entry& e) { return e.cid == cid; };
  }
  static auto index_hasher() {
    return [](const Entry& e) { return hash_cid(e.cid); };
  }

  const Entry* find_entry(uint64_t cid) const;
  void evict_slot(uint32_t slot);
  void enforce_capacity();

  Config config_;
  state::FlatTable<Entry> index_;  // cid -> pool slot
  std::deque<Conn> pool_;
  std::vector<uint32_t> free_;
  /// Bind-order queue for FIFO capacity eviction (lazily skips slots
  /// already evicted explicitly or since rebound).
  struct FifoEntry {
    uint32_t slot;
    uint64_t gen;
  };
  std::deque<FifoEntry> fifo_;
  size_t live_connections_ = 0;
  mutable telemetry::View<CidAliasStats> stats_;
  telemetry::Registration registration_;  // last: deregisters first
};

/// Balancer-side steering education: feed every packet through on the
/// dispatch path. A long header binds the connection under the
/// client's SCID with the cookie id (the no-HMAC peek) as the steering
/// key — or the SCID itself for cookie-less connections — and aliases
/// the server's CID; a short header carrying a prev_cid rotation
/// marker aliases the fresh DCID. Non-QUIC packets are ignored.
/// Fail-open throughout: an unlinkable marker simply leaves the fresh
/// CID unknown, and steer_key_for() falls back to the flow key.
void learn_steering(CidAliasTable& table, const net::Packet& packet);

/// The key to feed util::steer_shard for this packet: the connection's
/// learned steering key when the table knows the packet's CID,
/// otherwise the packet's FlowKey steer key (platform-stable tuple
/// hash). This is what makes affinity survive rotation AND migration —
/// the learned key is fixed at handshake, while the tuple fallback
/// changes with every NAT rebind.
uint64_t steer_key_for(const CidAliasTable& table, const net::Packet& packet);

}  // namespace nnn::quic
