#include "quic/workload.h"

#include <array>
#include <cassert>
#include <limits>
#include <string_view>

#include "cookies/transport.h"
#include "net/tls.h"
#include "util/hash.h"

namespace nnn::quic {

namespace {

/// The application catalog. Six services is enough to make random
/// guessing useless (a blind classifier sits at ~17%) while keeping
/// the DPI rule set the size a real provisioning team would maintain.
constexpr std::array<std::string_view, 6> kApps = {
    "streamly", "vidora", "cloudbox", "gamegrid", "newsly", "musicast",
};

/// Apps front through a shared CDN edge: four addresses serve all six
/// services, so (realistically) no server-prefix DPI rule can tell
/// them apart and classification must come from names or payloads.
net::IpAddress cdn_edge(uint32_t conn_index) {
  return net::IpAddress::v4(203, 0, 113, static_cast<uint8_t>(
                                             1 + conn_index % 4));
}

}  // namespace

QuicTraceGenerator::QuicTraceGenerator(Config config, const util::Clock& clock,
                                       cookies::CookieVerifier* verifier,
                                       uint64_t seed)
    : config_(config),
      clock_(clock),
      rng_(seed),
      cid_counter_(seed ^ 0x9e3779b97f4a7c15ull) {
  generators_.reserve(config_.descriptors);
  for (size_t i = 0; i < config_.descriptors; ++i) {
    cookies::CookieDescriptor descriptor;
    descriptor.cookie_id = i + 1;
    descriptor.key.resize(32);
    for (size_t b = 0; b < descriptor.key.size(); ++b) {
      descriptor.key[b] = static_cast<uint8_t>(rng_.next_u64());
    }
    descriptor.service_data = "Boost";
    if (verifier != nullptr) verifier->add_descriptor(descriptor);
    generators_.emplace_back(std::move(descriptor), clock_, rng_.next_u64());
  }

  conns_.resize(config_.connections);
  live_.reserve(config_.connections);
  for (size_t i = 0; i < config_.connections; ++i) {
    Conn& conn = conns_[i];
    conn.tuple.src_ip =
        net::IpAddress::v4(0x0a000000u | static_cast<uint32_t>(i + 1));
    conn.tuple.dst_ip = cdn_edge(static_cast<uint32_t>(i));
    conn.tuple.src_port = static_cast<uint16_t>(32768 + i % 28000);
    conn.tuple.dst_port = 443;
    conn.tuple.proto =
        config_.cleartext ? net::L4Proto::kTcp : net::L4Proto::kUdp;
    conn.client_cid = fresh_cid();
    conn.server_cid = fresh_cid();
    conn.next_rotation = config_.rotate_every == 0
                             ? std::numeric_limits<uint32_t>::max()
                             : 1 + rotation_gap(conn);
    conn.generator =
        static_cast<uint32_t>(rng_.next_u64(generators_.size()));
    conn.info.app = std::string(kApps[rng_.next_u64(kApps.size())]);
    conn.info.canonical_cid = conn.client_cid;
    conn.info.has_cookie = rng_.chance(config_.cookie_fraction);
    conn.info.cookie_id = conn.info.has_cookie
                              ? generators_[conn.generator]
                                    .descriptor()
                                    .cookie_id
                              : 0;
    live_.push_back(static_cast<uint32_t>(i));
  }
}

std::vector<cookies::CookieDescriptor> QuicTraceGenerator::descriptors()
    const {
  std::vector<cookies::CookieDescriptor> out;
  out.reserve(generators_.size());
  for (const auto& generator : generators_) {
    out.push_back(generator.descriptor());
  }
  return out;
}

std::vector<baselines::DpiRule> QuicTraceGenerator::dpi_rules() {
  std::vector<baselines::DpiRule> rules;
  rules.reserve(kApps.size());
  for (const std::string_view app : kApps) {
    baselines::DpiRule rule;
    rule.app = std::string(app);
    rule.host_suffixes = {std::string(app) + ".example"};
    rule.payload_substrings = {std::string(app)};
    // No port or server-prefix matchers on purpose: every app shares
    // port 443 and the same four CDN edges, so those rule classes
    // cannot discriminate — which is the realistic provisioning, and
    // what forces classification through names and payloads.
    rules.push_back(std::move(rule));
  }
  return rules;
}

uint64_t QuicTraceGenerator::fresh_cid() {
  // mix64 is a bijection on u64: distinct counter values can never
  // produce colliding CIDs within one trace.
  return util::mix64(++cid_counter_);
}

uint32_t QuicTraceGenerator::rotation_gap(Conn&) {
  const uint32_t base = config_.rotate_every;
  const uint32_t jitter = static_cast<uint32_t>(rng_.next_u64(base));
  return std::max<uint32_t>(2, base / 2 + jitter);
}

void QuicTraceGenerator::maybe_migrate(size_t index, Conn& conn) {
  if (injector_ == nullptr) return;
  const util::Timestamp now = clock_.now();
  if (!injector_->nat_rebind(static_cast<uint64_t>(index), now,
                             conn.last_migration)) {
    return;
  }
  conn.last_migration = now;
  // The classic rebind: the NAT forgets the mapping and the next
  // outbound packet gets a fresh public port. CIDs continue unchanged.
  conn.tuple.src_port = static_cast<uint16_t>(2048 + rng_.next_u64(60000));
  ++conn.info.migrations;
}

void QuicTraceGenerator::rotate(Conn& conn) {
  conn.client_prev = conn.client_cid;
  conn.server_prev = conn.server_cid;
  conn.client_cid = fresh_cid();
  conn.server_cid = fresh_cid();
  ++conn.info.rotations;
  const uint32_t gap = rotation_gap(conn);
  conn.next_rotation =
      conn.next_rotation > std::numeric_limits<uint32_t>::max() - gap
          ? std::numeric_limits<uint32_t>::max()
          : conn.next_rotation + gap;
}

void QuicTraceGenerator::fill_opaque(net::Packet& out) {
  // Opaque ciphertext stand-in. Pseudo-random bytes are exactly as
  // inscrutable to a payload matcher as real AEAD output.
  out.payload.resize(config_.payload_bytes);
  for (size_t i = 0; i < out.payload.size(); ++i) {
    out.payload[i] = static_cast<uint8_t>(rng_.next_u64());
  }
}

uint32_t QuicTraceGenerator::fill_next(net::Packet& out) {
  assert(!live_.empty() && "fill_next past done()");
  const size_t pick = rng_.next_u64(live_.size());
  const uint32_t index = live_[pick];
  Conn& conn = conns_[index];

  maybe_migrate(index, conn);
  if (config_.cleartext) {
    emit_cleartext(conn, out);
  } else {
    emit_quic(conn, out);
  }
  // Connection index riding in seq: UDP ignores it, the middlebox
  // never reads it, and VerdictRecord carries it back out of the
  // worker pool — the bench's per-connection survival ledger.
  out.seq = index;

  if (++conn.sent >= config_.packets_per_connection) {
    live_[pick] = live_.back();
    live_.pop_back();
  }
  return index;
}

void QuicTraceGenerator::emit_quic(Conn& conn, net::Packet& out) {
  const bool handshake = conn.sent == 0;
  // Even `sent` travels client -> server (the handshake included),
  // odd travels back, so both CID families see traffic and both
  // rotation markers reach the middlebox.
  const bool to_server = handshake || conn.sent % 2 == 0;
  if (!handshake && config_.rotate_every != 0 &&
      conn.sent >= conn.next_rotation) {
    rotate(conn);
  }

  net::QuicHeader header;
  if (handshake) {
    header.long_header = true;
    header.scid = conn.client_cid;
    header.dcid = conn.server_cid;
  } else if (to_server) {
    header.dcid = conn.server_cid;
    if (conn.server_prev) {
      header.prev_cid = conn.server_prev;
      conn.server_prev.reset();
    }
  } else {
    header.dcid = conn.client_cid;
    if (conn.client_prev) {
      header.prev_cid = conn.client_prev;
      conn.client_prev.reset();
    }
  }
  out.quic = std::move(header);
  out.tuple = to_server ? conn.tuple : conn.tuple.reversed();
  fill_opaque(out);
  out.wire_size = config_.wire_size;
  if (handshake && conn.info.has_cookie) {
    const cookies::Cookie cookie = generators_[conn.generator].generate();
    cookies::attach(out, cookie, cookies::Transport::kQuicTransportParam);
    out.wire_size = config_.wire_size;
  }
}

void QuicTraceGenerator::emit_cleartext(Conn& conn, net::Packet& out) {
  const bool handshake = conn.sent == 0;
  const bool to_server = handshake || conn.sent % 2 == 0;
  out.tuple = to_server ? conn.tuple : conn.tuple.reversed();
  if (handshake) {
    net::tls::ClientHello hello;
    hello.set_server_name("cdn." + conn.info.app + ".example");
    out.payload = hello.serialize_record();
    if (conn.info.has_cookie) {
      const cookies::Cookie cookie = generators_[conn.generator].generate();
      cookies::attach(out, cookie, cookies::Transport::kTlsExtension);
    }
  } else {
    // Post-handshake TLS is ciphertext too; only the ClientHello ever
    // shows DPI a name.
    fill_opaque(out);
  }
  out.wire_size = config_.wire_size;
}

}  // namespace nnn::quic
