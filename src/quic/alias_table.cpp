#include "quic/alias_table.h"

#include "cookies/cookie.h"
#include "net/packet.h"

namespace nnn::quic {

CidAliasTable::CidAliasTable(Config config) : config_(config) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        stats_.collect(builder);
        builder.gauge("nnn_quic_connections",
                      "QUIC connections resident in the CID alias table", {},
                      static_cast<int64_t>(live_connections_));
        builder.gauge("nnn_quic_cids",
                      "Connection IDs resolvable (canonical + aliases)", {},
                      static_cast<int64_t>(index_.size()));
      });
}

const CidAliasTable::Entry* CidAliasTable::find_entry(uint64_t cid) const {
  return index_.find(hash_cid(cid), index_matcher(cid));
}

bool CidAliasTable::bind(uint64_t canonical, uint64_t steer) {
  if (find_entry(canonical) != nullptr) return false;
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    pool_.emplace_back();
    slot = static_cast<uint32_t>(pool_.size() - 1);
  }
  Conn& conn = pool_[slot];
  conn.canonical = canonical;
  conn.steer = steer;
  conn.cids.clear();
  conn.cids.push_back(canonical);
  conn.live = true;
  ++conn.gen;
  index_.find_or_insert(hash_cid(canonical), index_matcher(canonical),
                        index_hasher(), [&] { return Entry{canonical, slot}; });
  fifo_.push_back(FifoEntry{slot, conn.gen});
  ++live_connections_;
  stats_.cell<&CidAliasStats::connections_bound>().inc();
  enforce_capacity();
  return true;
}

Expected<uint64_t> CidAliasTable::alias(uint64_t fresh_cid,
                                        uint64_t existing_cid) {
  const Entry* existing = find_entry(existing_cid);
  if (existing == nullptr) {
    stats_.cell<&CidAliasStats::resolve_misses>().inc();
    return unexpected(Error{ErrorDomain::kFlow, ErrorCode::kUnknownId,
                            "cid alias target unknown"});
  }
  const uint32_t slot = existing->conn;
  Conn& conn = pool_[slot];
  const auto [entry, inserted] =
      index_.find_or_insert(hash_cid(fresh_cid), index_matcher(fresh_cid),
                            index_hasher(), [&] { return Entry{fresh_cid, slot}; });
  if (inserted) {
    conn.cids.push_back(fresh_cid);
    stats_.cell<&CidAliasStats::aliases_added>().inc();
  }
  // Not inserted + different connection: collision; the first binding
  // wins and the caller's rotation marker is ignored.
  return pool_[entry->conn].canonical;
}

std::optional<CidBinding> CidAliasTable::find(uint64_t cid) const {
  const Entry* entry = find_entry(cid);
  if (entry == nullptr) {
    stats_.cell<&CidAliasStats::resolve_misses>().inc();
    return std::nullopt;
  }
  const Conn& conn = pool_[entry->conn];
  return CidBinding{conn.canonical, conn.steer};
}

uint64_t CidAliasTable::resolve(uint64_t cid) const {
  const Entry* entry = find_entry(cid);
  if (entry == nullptr) {
    stats_.cell<&CidAliasStats::resolve_misses>().inc();
    return cid;
  }
  return pool_[entry->conn].canonical;
}

std::optional<uint64_t> CidAliasTable::steer_key(uint64_t cid) const {
  const Entry* entry = find_entry(cid);
  if (entry == nullptr) {
    stats_.cell<&CidAliasStats::resolve_misses>().inc();
    return std::nullopt;
  }
  return pool_[entry->conn].steer;
}

void CidAliasTable::evict_slot(uint32_t slot) {
  Conn& conn = pool_[slot];
  if (!conn.live) return;
  for (uint64_t cid : conn.cids) {
    index_.erase(hash_cid(cid), index_matcher(cid));
  }
  conn.cids.clear();
  conn.cids.shrink_to_fit();
  conn.live = false;
  free_.push_back(slot);
  --live_connections_;
  stats_.cell<&CidAliasStats::connections_evicted>().inc();
}

size_t CidAliasTable::evict(uint64_t canonical) {
  const Entry* entry = find_entry(canonical);
  if (entry == nullptr) return 0;
  const uint32_t slot = entry->conn;
  const size_t removed = pool_[slot].cids.size();
  evict_slot(slot);
  return removed;
}

void learn_steering(CidAliasTable& table, const net::Packet& packet) {
  if (!packet.is_quic()) return;
  const net::QuicHeader& q = *packet.quic;
  if (q.long_header) {
    // The handshake is the one packet where the balancer can see the
    // cookie: pin the connection to its descriptor's shard. Cookie-less
    // connections steer by their canonical CID — arbitrary but fixed,
    // which is all migration survival needs.
    uint64_t steer = q.scid;
    if (const auto raw = packet.cookie_bytes()) {
      if (const auto id = cookies::peek_cookie_id(raw->bytes())) steer = *id;
    }
    table.bind(q.scid, steer);
    table.alias(q.dcid, q.scid);
    return;
  }
  if (q.prev_cid) table.alias(q.dcid, *q.prev_cid);
}

uint64_t steer_key_for(const CidAliasTable& table, const net::Packet& packet) {
  if (packet.is_quic()) {
    const net::QuicHeader& q = *packet.quic;
    const uint64_t cid = q.long_header ? q.scid : q.dcid;
    if (const auto steer = table.steer_key(cid)) return *steer;
  }
  return packet.flow_key().steer_key();
}

void CidAliasTable::enforce_capacity() {
  if (config_.max_connections == 0) return;
  while (live_connections_ > config_.max_connections && !fifo_.empty()) {
    const FifoEntry head = fifo_.front();
    fifo_.pop_front();
    // Entries for slots evicted explicitly (flow death) — or evicted
    // and since rebound to a newer connection — are stale; skip them.
    if (!pool_[head.slot].live || pool_[head.slot].gen != head.gen) continue;
    evict_slot(head.slot);
  }
}

}  // namespace nnn::quic
