// Seeded QUIC-shaped encrypted workload (PR 10 tentpole).
//
// The paper's carriers (§5.1: IPv6 options, TCP long options, TLS
// extensions, HTTP headers) all predate the traffic mix actually
// winning today: QUIC, where everything after the short header is
// ciphertext and the flow's very name — the connection ID — rotates
// mid-life. This generator produces that traffic shape so the rest of
// the stack can be measured against it:
//
//   * a long-header handshake flight per connection, carrying the
//     cookie as a transport parameter (readable on-path, like a real
//     Initial) for `cookie_fraction` of connections;
//   * short-header packets whose payloads are opaque pseudo-random
//     bytes — nothing for DPI to match;
//   * CID rotations on a jittered cadence, announced by the
//     cooperative `prev_cid` marker (net::QuicHeader);
//   * NAT-rebind migrations driven through fault::Injector::nat_rebind,
//     so chaos schedules compose migration with loss and outages and
//     every migration reproduces from (plan, seed).
//
// A `cleartext` mode emits the control trace for the DPI-collapse
// table: the same connections and apps as classic TCP+TLS with a
// readable SNI (and the cookie in the TLS extension), which DPI
// classifies easily — the collapse is the delta between the two runs,
// measured, not asserted.
//
// Determinism: same (config, seed, injector arm) => bit-identical
// packet stream, the PacketGenerator contract fill_next tests lean on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/dpi.h"
#include "cookies/descriptor.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "fault/injector.h"
#include "net/packet.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::quic {

class QuicTraceGenerator {
 public:
  struct Config {
    size_t connections = 64;
    uint32_t packets_per_connection = 120;
    /// Mean short-header packets between CID rotations (each interval
    /// is jittered per connection; 0 disables rotation).
    uint32_t rotate_every = 24;
    /// Fraction of connections presenting a cookie in the handshake.
    double cookie_fraction = 1.0;
    /// Descriptors minted (connections draw uniformly).
    size_t descriptors = 16;
    /// Materialized opaque payload bytes per short-header packet.
    uint32_t payload_bytes = 64;
    /// Modeled on-wire size.
    uint32_t wire_size = 1200;
    /// Emit the TCP+TLS control trace instead (same connections and
    /// apps, readable SNI, cookie via TLS extension, no QUIC headers).
    bool cleartext = false;
  };

  /// Ground truth per connection, for accuracy/survival measurement.
  struct ConnectionInfo {
    std::string app;            // application label DPI should name
    uint64_t canonical_cid = 0; // client's initial SCID (c0)
    cookies::CookieId cookie_id = 0;
    bool has_cookie = false;
    uint32_t rotations = 0;     // CID rotations performed so far
    uint32_t migrations = 0;    // NAT rebinds performed so far
  };

  /// Mints `config.descriptors` descriptors; installs them into
  /// `verifier` when non-null (the DPI-only differential run passes
  /// null). The clock must outlive the generator — cookie timestamps
  /// and injector polls read it per packet.
  QuicTraceGenerator(Config config, const util::Clock& clock,
                     cookies::CookieVerifier* verifier, uint64_t seed);

  /// Route migration decisions through a fault plan (kNatRebind
  /// events). Null = no migrations. Install before generating.
  void set_fault_injector(const fault::Injector* injector) {
    injector_ = injector;
  }

  /// Write the next packet of the interleaved stream in place (arena
  /// slot or stack packet; must arrive reset). Returns the connection
  /// index the packet belongs to. The index is also stamped into
  /// Packet::seq so runtime::VerdictRecord carries it back out of the
  /// worker pool for per-connection survival accounting.
  uint32_t fill_next(net::Packet& out);

  /// True once every connection emitted packets_per_connection.
  bool done() const { return live_.empty(); }
  size_t total_packets() const {
    return config_.connections * config_.packets_per_connection;
  }

  const ConnectionInfo& connection(size_t i) const { return conns_[i].info; }
  const Config& config() const { return config_; }

  /// For replicating descriptor tables across workers.
  std::vector<cookies::CookieDescriptor> descriptors() const;

  /// The application catalog the traces draw from, as a DPI rule set
  /// (host suffix + payload token per app) — what a deployed DPI box
  /// would have provisioned for exactly this traffic.
  static std::vector<baselines::DpiRule> dpi_rules();

 private:
  struct Conn {
    net::FiveTuple tuple;     // client -> server orientation
    uint64_t client_cid = 0;  // c_k (server -> client packets' dcid)
    uint64_t server_cid = 0;  // s_k (client -> server packets' dcid)
    /// Set at rotation; attached as prev_cid on the next packet of the
    /// matching direction, then cleared.
    std::optional<uint64_t> client_prev;
    std::optional<uint64_t> server_prev;
    uint32_t sent = 0;
    uint32_t next_rotation = 0;  // `sent` index of the next rotation
    util::Timestamp last_migration = 0;
    uint32_t generator = 0;  // index into generators_
    ConnectionInfo info;
  };

  uint64_t fresh_cid();
  uint32_t rotation_gap(Conn& conn);
  void maybe_migrate(size_t index, Conn& conn);
  void rotate(Conn& conn);
  void emit_quic(Conn& conn, net::Packet& out);
  void emit_cleartext(Conn& conn, net::Packet& out);
  void fill_opaque(net::Packet& out);

  Config config_;
  const util::Clock& clock_;
  const fault::Injector* injector_ = nullptr;
  util::Rng rng_;
  /// CID uniqueness by construction: mix64 is a bijection on u64, so
  /// mixing a per-generator counter never collides within a trace.
  uint64_t cid_counter_;
  std::vector<cookies::CookieGenerator> generators_;
  std::vector<Conn> conns_;
  /// Indices of connections with packets left; fill_next draws from
  /// it uniformly (swap-pop on exhaustion).
  std::vector<uint32_t> live_;
};

}  // namespace nnn::quic
