// Lock-free bounded multi-producer/single-consumer ring.
//
// Companion to spsc_ring.h for the paths where many threads write and
// one reads: worker threads publishing verdict records to whoever
// drains them, and application threads offering packets to the
// dispatcher's ingress queue.
//
// This is the classic Vyukov bounded queue: every slot carries a
// sequence number that encodes whose turn it is. A producer claims a
// slot with one CAS on the tail ticket, writes the value, then
// publishes by bumping the slot's sequence; the consumer waits for the
// sequence to say "written", reads, and recycles the slot one lap
// ahead. Producers never wait on each other beyond the CAS, and a slot
// claimed but not yet published only delays the consumer, not other
// producers' claims.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "runtime/spsc_ring.h"  // kCacheLineSize, ring_capacity_for

namespace nnn::runtime {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity)
      : mask_(ring_capacity_for(capacity) - 1),
        cells_(ring_capacity_for(capacity)) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Any thread. Returns false when the ring is full — callers treat
  /// that as fail-open (count and carry on), never as a wait.
  bool try_push(T&& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: `pos` was refreshed, retry with the new ticket.
      } else if (dif < 0) {
        return false;  // full (slot still holds last lap's value)
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer only (single thread).
  bool try_pop(T& out) { return pop_batch(&out, 1) == 1; }

  /// Consumer only: drain up to `max` elements, returns how many.
  size_t pop_batch(T* out, size_t max) {
    size_t n = 0;
    size_t pos = head_.load(std::memory_order_relaxed);
    while (n < max) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.sequence.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) != 0) {
        break;  // slot not yet published
      }
      out[n++] = std::move(cell.value);
      // Recycle the slot for the producer one lap ahead.
      cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
    }
    if (n != 0) head_.store(pos, std::memory_order_relaxed);
    return n;
  }

  /// Approximate under concurrency.
  bool empty() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const Cell& cell = cells_[head & mask_];
    return cell.sequence.load(std::memory_order_acquire) != head + 1;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  const size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};  // producers
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};  // consumer
};

}  // namespace nnn::runtime
