// Per-worker runtime counters with consistent snapshots.
//
// Once the dataplane is actually threaded, `MiddleboxStats` (plain
// uint64 fields mutated on the worker's hot path) can no longer be
// read from another thread — that is a data race. The runtime instead
// keeps one cache-line-aligned block of relaxed atomics per worker
// (written only by that worker, so the atomics never contend) and
// exposes:
//   - snapshot():   safe at any time, reads only the atomics;
//   - the worker's middlebox/verifier objects: safe only when the pool
//     is quiescent (after drain()/stop(), which establish the needed
//     happens-before edge through the `processed` counter).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/spsc_ring.h"  // kCacheLineSize

namespace nnn::runtime {

/// One block per worker; the owning worker is the only writer, so
/// every store can be relaxed. `processed` is the exception: it is
/// stored with release order after each batch and read with acquire by
/// drain(), which is what makes the non-atomic middlebox state safe to
/// read once the pool is quiescent.
struct alignas(kCacheLineSize) WorkerCounters {
  std::atomic<uint64_t> packets{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> cookie_packets{0};   // carried a cookie we checked
  std::atomic<uint64_t> verified{0};         // VerifyStatus::kOk
  std::atomic<uint64_t> replayed{0};         // VerifyStatus::kReplayed
  std::atomic<uint64_t> mapped{0};           // verdicts with mapped_now
  std::atomic<uint64_t> batches{0};          // ring bursts dequeued
  std::atomic<uint64_t> busy_micros{0};      // thread-CPU time processing
  std::atomic<uint64_t> processed{0};        // release-stored per batch
  std::atomic<uint64_t> verdicts_dropped{0}; // verdict ring was full
};

/// Plain-value copy of one worker's counters.
struct WorkerSnapshot {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t cookie_packets = 0;
  uint64_t verified = 0;
  uint64_t replayed = 0;
  uint64_t mapped = 0;
  uint64_t batches = 0;
  uint64_t busy_micros = 0;
  uint64_t processed = 0;
  uint64_t verdicts_dropped = 0;

  WorkerSnapshot& operator+=(const WorkerSnapshot& other);
  /// Mean packets per ring burst — how well batching amortizes.
  double avg_batch() const;
};

/// Snapshot of the whole pool, taken worker by worker.
struct RuntimeSnapshot {
  std::vector<WorkerSnapshot> workers;

  WorkerSnapshot totals() const;
  /// Busiest worker's CPU time — the parallel critical path. With one
  /// dedicated core per worker, elapsed time ≈ max busy time, so
  /// packets/max_busy is the throughput the pool sustains when the
  /// hardware actually provides the cores (robust to benchmarking on
  /// fewer physical cores than workers).
  uint64_t max_busy_micros() const;

  std::string summary() const;
};

WorkerSnapshot snapshot_of(const WorkerCounters& counters);

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID; falls back to a monotonic clock where
/// unavailable). Workers sample this around each batch.
uint64_t thread_cpu_micros();

}  // namespace nnn::runtime
