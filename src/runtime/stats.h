// Per-worker runtime counters with consistent snapshots.
//
// Once the dataplane is actually threaded, `MiddleboxStats` (plain
// uint64 fields mutated on the worker's hot path) can no longer be
// read from another thread — that is a data race. The runtime instead
// keeps one cache-line-aligned block of telemetry cells per worker
// (written only by that worker, so the atomics never contend) and
// exposes:
//   - snapshot():   safe at any time, reads only the atomics;
//   - the worker's middlebox/verifier objects: safe only when the pool
//     is quiescent (after drain()/stop(), which establish the needed
//     happens-before edge through the `processed` counter).
//
// The cells are telemetry::Counter instruments — the single-writer
// relaxed-store discipline this block pioneered is now the telemetry
// module's Counter contract, so the pool exports straight into the
// process-wide registry (nnn_pool_*{worker="i"}) with no extra
// bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/spsc_ring.h"  // kCacheLineSize
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"

namespace nnn::runtime {

/// One block per worker; the owning worker is the only writer, so
/// every store can be relaxed. `processed` is the exception: it is
/// stored with release order after each batch (Counter::inc_release)
/// and read with acquire by drain(), which is what makes the
/// non-atomic middlebox state safe to read once the pool is quiescent.
///
/// Per-VerifyStatus outcomes live in `statuses` — one cell per enum
/// value — replacing the old hand-mirrored `verified`/`replayed`
/// fields that silently dropped the other six outcomes.
struct alignas(kCacheLineSize) WorkerCounters {
  telemetry::Counter packets;
  telemetry::Counter bytes;
  telemetry::Counter cookie_packets;  // carried a cookie we checked
  telemetry::StatusCounters<cookies::VerifyStatus,
                            cookies::kVerifyStatusCount>
      statuses;                       // per-outcome counts for cookie packets
  telemetry::Counter mapped;          // verdicts with mapped_now
  telemetry::Counter batches;         // ring bursts dequeued
  telemetry::Counter busy_micros;     // thread-CPU time processing
  telemetry::Counter processed;       // release-stored per batch
  telemetry::Counter verdicts_dropped;  // verdict ring was full
  /// Packets refused admission (ring full, injected queue pressure, or
  /// pool stopping) plus ring leftovers reclaimed by stop(). TWO
  /// writers — the producer thread and stop() — so unlike every other
  /// cell in this block it is written with the shared (fetch_add)
  /// path. The load-shedding ledger: submit attempts == processed +
  /// shed once the pool has stopped.
  telemetry::Counter shed;
  telemetry::Histogram batch_nanos;   // wall nanos per ring burst

  /// Emit this block's cells under `base` labels (worker="i"):
  /// nnn_pool_*_total, nnn_pool_busy_micros, nnn_pool_verify_total
  /// {status=...} and the nnn_pool_batch_nanos histogram.
  void collect(telemetry::SampleBuilder& builder,
               const telemetry::LabelSet& base) const;
};

/// Plain-value copy of one worker's counters.
struct WorkerSnapshot {
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t cookie_packets = 0;
  uint64_t verified = 0;   // statuses[kOk]
  uint64_t replayed = 0;   // statuses[kReplayed]
  uint64_t malformed = 0;  // statuses[kMalformed]
  uint64_t mapped = 0;
  uint64_t batches = 0;
  uint64_t busy_micros = 0;
  uint64_t processed = 0;
  uint64_t verdicts_dropped = 0;
  uint64_t shed = 0;

  WorkerSnapshot& operator+=(const WorkerSnapshot& other);
  /// Mean packets per ring burst — how well batching amortizes.
  double avg_batch() const;
};

/// Snapshot of the whole pool, taken worker by worker.
struct RuntimeSnapshot {
  std::vector<WorkerSnapshot> workers;

  WorkerSnapshot totals() const;
  /// Busiest worker's CPU time — the parallel critical path. With one
  /// dedicated core per worker, elapsed time ≈ max busy time, so
  /// packets/max_busy is the throughput the pool sustains when the
  /// hardware actually provides the cores (robust to benchmarking on
  /// fewer physical cores than workers).
  uint64_t max_busy_micros() const;

  std::string summary() const;
};

WorkerSnapshot snapshot_of(const WorkerCounters& counters);

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID; falls back to a monotonic clock where
/// unavailable). Workers sample this around each batch.
uint64_t thread_cpu_micros();

}  // namespace nnn::runtime
