#include "runtime/worker_pool.h"

#include <array>
#include <chrono>
#include <span>
#include <string>

#include "fault/injector.h"
#include "util/logging.h"

namespace nnn::runtime {

namespace {

/// Idle backoff: spin briefly (another burst usually lands within a
/// few hundred cycles at line rate), then yield, then sleep. The sleep
/// keeps an idle pool near 0% CPU; the yield tier matters when workers
/// outnumber cores.
void idle_backoff(unsigned& idle_rounds) {
  ++idle_rounds;
  if (idle_rounds < 64) {
    // spin
  } else if (idle_rounds < 256) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

WorkerPool::Config normalize(WorkerPool::Config config) {
  if (config.workers == 0) config.workers = 1;
  if (config.batch_size == 0) config.batch_size = 1;
  if (config.arena_slots == 0) {
    // Every ring full + every worker's warm cache + a producer burst
    // in flight. Exhaustion under this sizing means the producer is
    // outrunning the rings anyway, and shedding is the right answer.
    config.arena_slots =
        config.workers * (ring_capacity_for(config.ring_capacity) +
                          2 * PacketArena::kChunk) +
        4 * config.batch_size;
  }
  return config;
}

}  // namespace

/// One shard: verifier + middlebox owned exclusively by one thread,
/// plus the SPSC ring feeding it. Declaration order matters — the
/// verifier must outlive the middlebox.
struct WorkerPool::Worker {
  cookies::CookieVerifier verifier;
  dataplane::Middlebox middlebox;
  /// Arena slot indices; the packets themselves never move.
  SpscRing<uint32_t> ring;
  /// Thread-private release stash: emitted slots splice back to the
  /// global freelist a chunk at a time. Touched only by this worker's
  /// thread; flushed at idle and exit so slots never idle in a stash.
  PacketArena::Cache cache;
  WorkerCounters counters;
  /// Epoch reader into the bound TablePublisher (detached when the
  /// pool runs standalone). Used only by this worker's thread.
  controlplane::TablePublisher::Reader table_reader;
  /// Ring bursts are timed 1-in-32. Even a full 32-packet burst is
  /// only ~3 us of work, so the ~86 ns timer pair would cost ~3%
  /// unsampled — over the 2% telemetry budget on its own.
  telemetry::SampleStride burst_sample{32};
  /// Incremented by the producer *before* the push so a quiescence
  /// check can never observe a pushed-but-uncounted packet.
  alignas(kCacheLineSize) std::atomic<uint64_t> submitted{0};
  std::thread thread;
  /// Deregisters before `counters` is destroyed (declared after it).
  telemetry::Registration registration;

  Worker(const util::Clock& clock, dataplane::ServiceRegistry& registry,
         PacketArena& arena, const Config& config)
      : verifier(clock),
        middlebox(clock, verifier, registry, config.middlebox),
        ring(config.ring_capacity),
        cache(arena) {}
};

WorkerPool::WorkerPool(const util::Clock& clock,
                       dataplane::ServiceRegistry& registry, Config config)
    : clock_(clock),
      registry_(registry),
      config_(normalize(std::move(config))),
      arena_(config_.arena_slots) {
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(clock_, registry_, arena_, config_));
    // Each worker's block exports under worker="i"; identical families
    // across workers merge into per-worker series of nnn_pool_*.
    Worker& w = *workers_.back();
    const std::string index = std::to_string(i);
    w.registration = telemetry::Registry::global().add_collector(
        [&w, labels = telemetry::LabelSet{{"worker", index}}](
            telemetry::SampleBuilder& builder) {
          w.counters.collect(builder, labels);
        });
  }
  if (config_.verdict_capacity > 0) {
    verdicts_ =
        std::make_unique<MpscRing<VerdictRecord>>(config_.verdict_capacity);
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::add_descriptor(const cookies::CookieDescriptor& descriptor) {
  if (publisher_ != nullptr) return;  // descriptor state owned by sync
  for (auto& worker : workers_) {
    worker->verifier.add_descriptor(descriptor);
  }
}

void WorkerPool::revoke(cookies::CookieId id) {
  if (publisher_ != nullptr) return;  // descriptor state owned by sync
  for (auto& worker : workers_) {
    worker->verifier.revoke(id);
  }
}

void WorkerPool::bind_table_publisher(
    controlplane::TablePublisher& publisher) {
  publisher_ = &publisher;
  for (auto& worker : workers_) {
    worker->table_reader = publisher.register_reader();
  }
}

void WorkerPool::set_fault_injector(const fault::Injector* injector) {
  injector_ = injector;
}

void WorkerPool::start() {
  if (running_) return;
  stop_.store(false, std::memory_order_release);
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
  running_ = true;
  util::log_debug_tagged(
      "runtime", "started {} workers (ring={}, batch={}, arena={})",
      workers_.size(), workers_[0]->ring.capacity(), config_.batch_size,
      arena_.capacity());
}

void WorkerPool::drain() {
  for (auto& worker : workers_) {
    unsigned idle = 0;
    for (;;) {
      const uint64_t submitted =
          worker->submitted.load(std::memory_order_acquire);
      const uint64_t processed = worker->counters.processed.value_acquire();
      if (processed >= submitted) break;
      if (!running_) {
        // Not started: nothing will ever drain the ring.
        break;
      }
      idle_backoff(idle);
    }
  }
}

void WorkerPool::stop() {
  if (!running_) return;
  // seq_cst: pairs with the submit_handle() re-check (see there).
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Reclaim leftovers into the shed ledger, releasing their arena
  // slots. Workers normally exit with empty rings, but a fault-paused
  // worker exits wedged, and a submit that passed the stop_ gate
  // before the store above may land its push after the join. Pop until
  // processed + reclaimed covers submitted; the residual gap
  // (count-first submit between its fetch_add and the push/rollback)
  // resolves in bounded time. After this loop every slot that entered
  // a ring is back on the freelist.
  for (auto& worker : workers_) {
    uint32_t slot = PacketHandle::kNil;
    uint64_t reclaimed = 0;
    for (;;) {
      while (worker->ring.try_pop(slot)) {
        arena_.release_raw(slot);
        ++reclaimed;
      }
      const uint64_t submitted =
          worker->submitted.load(std::memory_order_seq_cst);
      const uint64_t processed = worker->counters.processed.value_acquire();
      if (processed + reclaimed >= submitted) break;
      std::this_thread::yield();
    }
    if (reclaimed > 0) worker->counters.shed.add_shared(reclaimed);
  }
  running_ = false;
}

size_t WorkerPool::ring_capacity(size_t worker) const {
  return workers_[worker]->ring.capacity();
}

WorkerPool::EnqueueResult WorkerPool::try_enqueue(size_t worker,
                                                  uint32_t slot,
                                                  bool shed_on_full) {
  Worker& w = *workers_[worker];
  // Admission gate: shed before counting into `submitted`, so the
  // quiescence ledger only tracks packets that enter a ring. A pool
  // that is stopping sheds everything (nothing will drain the ring);
  // an armed injector models overload bursts the same way a full ring
  // does. Shed == fail-open: the caller forwards unverified.
  if (stop_.load(std::memory_order_seq_cst) ||
      (injector_ != nullptr &&
       injector_->reject_admission(static_cast<uint32_t>(worker),
                                   clock_.now()))) {
    w.counters.shed.add_shared();
    return EnqueueResult::kShed;
  }
  // Count first, push second: a drain() racing with this submit either
  // sees submitted > processed (waits, correct) or the push has not
  // happened yet and the decrement below undoes the count.
  w.submitted.fetch_add(1, std::memory_order_seq_cst);
  // Re-check the stop gate AFTER publishing the count. Store-buffer
  // pairing with stop() (both sides seq_cst): either this load sees
  // the stop and rolls back, or stop()'s reclaim loop sees our count
  // and waits for the push to land. Without it, a submit in flight
  // across stop() could strand a counted packet in a dead ring and
  // break attempts == processed + shed.
  if (stop_.load(std::memory_order_seq_cst)) {
    w.submitted.fetch_sub(1, std::memory_order_release);
    w.counters.shed.add_shared();
    return EnqueueResult::kShed;
  }
  if (w.ring.try_push(uint32_t{slot})) return EnqueueResult::kEnqueued;
  w.submitted.fetch_sub(1, std::memory_order_release);
  if (!shed_on_full) return EnqueueResult::kRingFull;
  w.counters.shed.add_shared();
  return EnqueueResult::kShed;
}

bool WorkerPool::submit_handle(size_t worker, PacketHandle&& handle) {
  if (!handle) {
    // Arena exhaustion upstream: count the shed here so the ledger has
    // one home (attempts == processed + shed holds per worker).
    workers_[worker]->counters.shed.add_shared();
    return false;
  }
  if (try_enqueue(worker, handle.slot(), /*shed_on_full=*/true) ==
      EnqueueResult::kEnqueued) {
    // The ring owns the slot now; the worker releases it at emit.
    handle.detach();
    return true;
  }
  return false;  // ~handle returns the slot to the freelist
}

bool WorkerPool::submit_handle_blocking(size_t worker,
                                        PacketHandle&& handle) {
  if (!handle) {
    workers_[worker]->counters.shed.add_shared();
    return false;
  }
  for (;;) {
    switch (try_enqueue(worker, handle.slot(), /*shed_on_full=*/false)) {
      case EnqueueResult::kEnqueued:
        handle.detach();
        return true;
      case EnqueueResult::kShed:
        return false;  // stopping/injected: ~handle releases the slot
      case EnqueueResult::kRingFull:
        // Closed loop: wait for the worker instead of shedding. Yield
        // so the worker actually runs when cores are scarce.
        std::this_thread::yield();
        break;
    }
  }
}

void WorkerPool::worker_main(size_t index) {
  Worker& w = *workers_[index];
  const bool synced = w.table_reader.attached();
  std::vector<uint32_t> slots(config_.batch_size);
  std::vector<net::Packet*> batch(config_.batch_size);
  std::vector<dataplane::Verdict> verdicts(config_.batch_size);
  unsigned idle = 0;
  for (;;) {
    // Injected pause: a wedged/descheduled process. Don't consume;
    // keep re-checking so the schedule's end resumes us. stop() still
    // wins — it reclaims whatever we leave in the ring — else a pause
    // outliving the test would wedge shutdown too.
    if (injector_ != nullptr &&
        injector_->paused(static_cast<uint32_t>(index), clock_.now())) {
      if (synced) w.table_reader.park();
      w.cache.flush();
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    const size_t n = w.ring.pop_batch(slots.data(), config_.batch_size);
    if (n == 0) {
      // Ring observed empty; exit only after stop so in-flight packets
      // are always processed (deterministic final counts). Park first
      // (an idle worker must not pin a retired table) and flush the
      // release stash (an idle worker must not starve the producer of
      // slots it is hoarding).
      if (synced) w.table_reader.park();
      w.cache.flush();
      if (stop_.load(std::memory_order_acquire)) break;
      idle_backoff(idle);
      continue;
    }
    idle = 0;
    // Run-to-completion burst: verify -> classify -> QoS-mark -> emit
    // in one pass over the arena-resident packets; the only per-packet
    // data this loop moves is the 4-byte slot index popped above.
    // Epoch swap point first: pin the control plane's current table
    // for this burst. Two uncontended atomic ops; the old table is
    // reclaimable the moment every worker has moved on or parked.
    if (synced) w.verifier.set_external_table(w.table_reader.acquire());
    for (size_t i = 0; i < n; ++i) batch[i] = &arena_.at(slots[i]);
    const telemetry::ScopedTimer batch_timer(w.counters.batch_nanos,
                                             w.burst_sample.next());
    const uint64_t t0 = thread_cpu_micros();
    // The whole burst goes through the middlebox batch path: one clock
    // read, and cookie MACs verified via the descriptor-grouped
    // CookieVerifier::verify_batch instead of per-packet calls.
    w.middlebox.process_batch(std::span<net::Packet* const>(batch.data(), n),
                              std::span(verdicts.data(), n));
    uint64_t bytes = 0, cookie = 0, mapped = 0;
    std::array<uint64_t, cookies::kVerifyStatusCount> statuses{};
    for (size_t i = 0; i < n; ++i) {
      const net::Packet& packet = *batch[i];
      const dataplane::Verdict& verdict = verdicts[i];
      bytes += packet.size();
      if (verdict.verify_status) {
        ++cookie;
        ++statuses[static_cast<size_t>(*verdict.verify_status)];
      }
      if (verdict.mapped_now) ++mapped;
      if (verdicts_) {
        VerdictRecord record;
        record.worker = static_cast<uint32_t>(index);
        record.seq = packet.seq;
        record.tuple = packet.tuple;
        record.has_action = verdict.action.has_value();
        record.mapped_now = verdict.mapped_now;
        record.verify_status = verdict.verify_status;
        if (!verdicts_->try_push(std::move(record))) {
          w.counters.verdicts_dropped.inc();
        }
      }
      // Emit: the packet leaves the cookie layer here; its slot goes
      // back to the freelist (stashed, spliced a chunk at a time).
      w.cache.release_raw(slots[i]);
    }
    const uint64_t busy = thread_cpu_micros() - t0;
    auto& c = w.counters;
    c.packets.inc(n);
    c.bytes.inc(bytes);
    c.cookie_packets.inc(cookie);
    for (size_t s = 0; s < statuses.size(); ++s) {
      if (statuses[s] != 0) {
        c.statuses.inc(static_cast<cookies::VerifyStatus>(s), statuses[s]);
      }
    }
    c.mapped.inc(mapped);
    c.batches.inc();
    c.busy_micros.inc(busy);
    // Release: publishes the middlebox/verifier mutations above to
    // whoever acquires `processed` (drain, snapshot readers).
    c.processed.inc_release(n);
  }
  if (synced) w.table_reader.park();
  w.cache.flush();
}

RuntimeSnapshot WorkerPool::snapshot() const {
  RuntimeSnapshot snap;
  snap.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    snap.workers.push_back(snapshot_of(worker->counters));
  }
  return snap;
}

uint64_t WorkerPool::total_verified() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->counters.statuses.count(cookies::VerifyStatus::kOk);
  }
  return total;
}

uint64_t WorkerPool::total_replays_detected() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    total +=
        worker->counters.statuses.count(cookies::VerifyStatus::kReplayed);
  }
  return total;
}

size_t WorkerPool::drain_verdicts(std::vector<VerdictRecord>& out) {
  if (!verdicts_) return 0;
  VerdictRecord record;
  size_t n = 0;
  while (verdicts_->try_pop(record)) {
    out.push_back(std::move(record));
    ++n;
  }
  return n;
}

const dataplane::Middlebox& WorkerPool::middlebox(size_t worker) const {
  return workers_[worker]->middlebox;
}

const cookies::CookieVerifier& WorkerPool::verifier(size_t worker) const {
  return workers_[worker]->verifier;
}

}  // namespace nnn::runtime
