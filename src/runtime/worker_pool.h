// Multi-threaded cookie-middlebox worker pool (§4.6 scale-out, for
// real this time) — zero-copy edition.
//
// "We can use multiple cores instead of one, and similarly add more
// than one middle-boxes to scale-out the deployment." Where
// dataplane::ShardedDataplane *models* that paragraph on one thread,
// this pool *executes* it: N worker threads, each owning a complete
// shard (its own CookieVerifier — descriptor table + replay caches —
// and its own Middlebox with flow table), fed through one SPSC ring
// per worker in the run-to-completion style of DPDK pipelines.
// Because a worker's verifier and replay cache are touched by exactly
// one thread, the §4.2 use-once check needs no locks; cross-worker
// soundness is the steering's job (descriptor affinity, §4.6).
//
// Since the arena rework the rings carry 4-byte PacketArena slot
// indices, not moved net::Packet structs: packets are built in place
// in the pool's arena (PacketGenerator::fill_packet, wire decode) and
// the worker verifies/classifies/QoS-marks/emits the same bytes — zero
// payload copies between ingest and emit. Each burst is run to
// completion: pop handles -> pin epoch table -> batch verify/classify
// -> mark -> emit (release slots), no intermediate queues.
//
// Threading contract (v2 — the Dataplane facade is the intended front
// end; see runtime/dataplane.h):
//   - submit_handle(worker, handle) — ONE producer thread only (the
//     facade's ingest thread or the dispatcher);
//   - arena().try_alloc() / PacketHandle release — any thread (the
//     freelist is lock-free MPMC); but building a packet in a slot and
//     submitting it must happen on the producer thread;
//   - control plane (add_descriptor / revoke / middlebox accessors) —
//     only while the pool is quiescent: before start(), or after
//     drain()/stop() returns;
//   - snapshot()/total_* — any thread, any time (atomics only);
//   - the injected Clock must be safe to read concurrently
//     (SystemClock is; a ManualClock must not be advanced while
//     workers run).
//
// Lifecycle: start() spawns the threads; drain() blocks until every
// submitted packet has been processed (quiescence = per-worker
// processed == submitted, with acquire/release pairing so the caller
// may then read non-atomic state); stop() lets workers finish what is
// already in their rings, then joins them and reclaims anything a
// fault-paused worker left behind into the shed ledger — so the books
// balance deterministically (attempts == processed + shed) whether or
// not drain() was called first, and every arena slot that entered a
// ring is back on the freelist when stop() returns
// (arena().outstanding() == 0 if the producer holds no handles).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "controlplane/epoch.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "net/packet.h"
#include "runtime/arena.h"
#include "runtime/mpsc_ring.h"
#include "runtime/spsc_ring.h"
#include "runtime/stats.h"
#include "util/clock.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::runtime {

/// Compact record a worker publishes per processed packet when verdict
/// collection is enabled — the cross-thread replacement for returning
/// dataplane::Verdict by value to the caller.
struct VerdictRecord {
  uint32_t worker = 0;
  uint32_t seq = 0;  // copied from Packet::seq; tests use it for ordering
  net::FiveTuple tuple;
  bool has_action = false;
  bool mapped_now = false;
  std::optional<cookies::VerifyStatus> verify_status;
};

class WorkerPool {
 public:
  struct Config {
    size_t workers = 1;
    /// Per-worker input ring capacity (rounded up to a power of two).
    size_t ring_capacity = 1024;
    /// Burst size for worker dequeue; ~32 amortizes ring overhead
    /// without hurting latency.
    size_t batch_size = 32;
    /// Capacity of the shared verdict ring; 0 disables collection.
    size_t verdict_capacity = 0;
    /// Packet-arena slots backing the rings. 0 = auto: enough for
    /// every ring to be full plus per-thread caches and a producer
    /// burst in flight.
    size_t arena_slots = 0;
    dataplane::Middlebox::Config middlebox{};
  };

  /// `clock` and `registry` must outlive the pool. The registry is
  /// read concurrently by all workers and must not be mutated while
  /// the pool runs.
  WorkerPool(const util::Clock& clock, dataplane::ServiceRegistry& registry,
             Config config);
  ~WorkerPool();  // stops and joins if still running

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The slab pool the rings index into. Producers build packets in
  /// slots allocated here; workers release the slots at emit.
  PacketArena& arena() { return arena_; }
  const PacketArena& arena() const { return arena_; }

  /// Install a descriptor into every worker's verifier (control-plane
  /// state is replicated; replay caches are not — see §4.6). Quiescent
  /// pool only. Ignored once a table publisher is bound — descriptor
  /// state then flows exclusively through the sync channel.
  void add_descriptor(const cookies::CookieDescriptor& descriptor);
  /// Revoke on every worker. Quiescent pool only; ignored once a table
  /// publisher is bound (see add_descriptor).
  void revoke(cookies::CookieId id);

  /// Bind the pool to a control-plane table publisher. Must be called
  /// before start(); the publisher must outlive the pool. Each worker
  /// registers an epoch reader and thereafter verifies every burst
  /// against the publisher's current table (re-acquired per burst — a
  /// swap costs the worker two uncontended atomic ops, never a lock),
  /// parking at idle and exit so retired tables reclaim promptly.
  void bind_table_publisher(controlplane::TablePublisher& publisher);

  /// Hook the pool into a fault injector (PR 5): admission consults
  /// reject_admission() and workers consult paused(). Quiescent pool
  /// only (before start()); the injector must outlive the pool. Null
  /// detaches. Workers pass their index as the injector's worker id.
  void set_fault_injector(const fault::Injector* injector);

  void start();
  /// Block until all submitted packets are processed. Callers must
  /// have stopped submitting; concurrent submit makes "drained" a
  /// moving target.
  void drain();
  /// Drain what is already in the rings, then join the threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_; }
  size_t worker_count() const { return workers_.size(); }
  size_t ring_capacity(size_t worker) const;

  /// Enqueue an arena-resident packet for `worker` — the zero-copy
  /// ingest path (Dataplane::ingest steers and calls this). Single
  /// producer thread. Returns false when the packet was SHED — ring
  /// full, injected queue pressure, or the pool is stopping — and
  /// counts it in the worker's shed ledger; the slot is released back
  /// to the arena either way (on success, by the worker at emit).
  /// Shedding is the overload valve with the paper's fail-open
  /// semantics: the caller forwards the packet unverified (best-effort
  /// band), it never drops it, and it never blocks the wire path.
  bool submit_handle(size_t worker, PacketHandle&& handle);

  /// Closed-loop variant of submit_handle: on a full ring, waits
  /// (yielding) for space instead of shedding — the caller keeps the
  /// slot across retries, so nothing is recopied. Still sheds (and
  /// returns false) for an empty handle, a stopping pool, or an
  /// injector rejection. Single producer thread.
  bool submit_handle_blocking(size_t worker, PacketHandle&& handle);

  /// Consistent counters, safe while running.
  RuntimeSnapshot snapshot() const;
  uint64_t total_verified() const;
  uint64_t total_replays_detected() const;

  /// Drain collected verdicts (single consumer). Returns how many were
  /// appended to `out`. No-op (0) unless verdict_capacity > 0.
  size_t drain_verdicts(std::vector<VerdictRecord>& out);

  /// Quiescent pool only (see threading contract).
  const dataplane::Middlebox& middlebox(size_t worker) const;
  const cookies::CookieVerifier& verifier(size_t worker) const;

 private:
  struct Worker;

  enum class EnqueueResult : uint8_t {
    kEnqueued,  // ring owns the slot
    kShed,      // shed counted; caller still owns (and releases) the slot
    kRingFull,  // only when !shed_on_full: no shed counted, caller retries
  };

  /// Shed-ledger enqueue of a raw slot. `shed_on_full` selects whether
  /// a full ring is terminal (shed counted) or retryable (kRingFull,
  /// nothing counted — the blocking path's packet is one attempt, not
  /// one per retry).
  EnqueueResult try_enqueue(size_t worker, uint32_t slot,
                            bool shed_on_full);

  void worker_main(size_t index);

  const util::Clock& clock_;
  dataplane::ServiceRegistry& registry_;
  Config config_;
  PacketArena arena_;
  controlplane::TablePublisher* publisher_ = nullptr;
  const fault::Injector* injector_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<MpscRing<VerdictRecord>> verdicts_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace nnn::runtime
