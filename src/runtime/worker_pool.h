// Multi-threaded cookie-middlebox worker pool (§4.6 scale-out, for
// real this time).
//
// "We can use multiple cores instead of one, and similarly add more
// than one middle-boxes to scale-out the deployment." Where
// dataplane::ShardedDataplane *models* that paragraph on one thread,
// this pool *executes* it: N worker threads, each owning a complete
// shard (its own CookieVerifier — descriptor table + replay caches —
// and its own Middlebox with flow table), fed through one SPSC packet
// ring per worker in the run-to-completion style of DPDK pipelines.
// Because a worker's verifier and replay cache are touched by exactly
// one thread, the §4.2 use-once check needs no locks; cross-worker
// soundness is the dispatcher's job (descriptor affinity, §4.6).
//
// Threading contract:
//   - submit(worker, pkt) — ONE producer thread only (the dispatcher);
//   - control plane (add_descriptor / revoke / middlebox accessors) —
//     only while the pool is quiescent: before start(), or after
//     drain()/stop() returns;
//   - snapshot()/total_* — any thread, any time (atomics only);
//   - the injected Clock must be safe to read concurrently
//     (SystemClock is; a ManualClock must not be advanced while
//     workers run).
//
// Lifecycle: start() spawns the threads; drain() blocks until every
// submitted packet has been processed (quiescence = per-worker
// processed == submitted, with acquire/release pairing so the caller
// may then read non-atomic state); stop() lets workers finish what is
// already in their rings, then joins them and reclaims anything a
// fault-paused worker left behind into the shed ledger — so the
// books balance deterministically (attempts == processed + shed)
// whether or not drain() was called first.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "controlplane/epoch.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "net/packet.h"
#include "runtime/mpsc_ring.h"
#include "runtime/spsc_ring.h"
#include "runtime/stats.h"
#include "util/clock.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::runtime {

/// Compact record a worker publishes per processed packet when verdict
/// collection is enabled — the cross-thread replacement for returning
/// dataplane::Verdict by value to the caller.
struct VerdictRecord {
  uint32_t worker = 0;
  uint32_t seq = 0;  // copied from Packet::seq; tests use it for ordering
  net::FiveTuple tuple;
  bool has_action = false;
  bool mapped_now = false;
  std::optional<cookies::VerifyStatus> verify_status;
};

class WorkerPool {
 public:
  struct Config {
    size_t workers = 1;
    /// Per-worker input ring capacity (rounded up to a power of two).
    size_t ring_capacity = 1024;
    /// Burst size for worker dequeue; ~32 amortizes ring overhead
    /// without hurting latency.
    size_t batch_size = 32;
    /// Capacity of the shared verdict ring; 0 disables collection.
    size_t verdict_capacity = 0;
    dataplane::Middlebox::Config middlebox{};
  };

  /// `clock` and `registry` must outlive the pool. The registry is
  /// read concurrently by all workers and must not be mutated while
  /// the pool runs.
  WorkerPool(const util::Clock& clock, dataplane::ServiceRegistry& registry,
             Config config);
  ~WorkerPool();  // stops and joins if still running

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Install a descriptor into every worker's verifier (control-plane
  /// state is replicated; replay caches are not — see §4.6). Quiescent
  /// pool only. Ignored once a table publisher is bound — descriptor
  /// state then flows exclusively through the sync channel.
  void add_descriptor(const cookies::CookieDescriptor& descriptor);
  /// Revoke on every worker. Quiescent pool only; ignored once a table
  /// publisher is bound (see add_descriptor).
  void revoke(cookies::CookieId id);

  /// Bind the pool to a control-plane table publisher. Must be called
  /// before start(); the publisher must outlive the pool. Each worker
  /// registers an epoch reader and thereafter verifies every burst
  /// against the publisher's current table (re-acquired per burst — a
  /// swap costs the worker two uncontended atomic ops, never a lock),
  /// parking at idle and exit so retired tables reclaim promptly.
  void bind_table_publisher(controlplane::TablePublisher& publisher);

  /// Hook the pool into a fault injector (PR 5): submit() consults
  /// reject_admission() and workers consult paused(). Quiescent pool
  /// only (before start()); the injector must outlive the pool. Null
  /// detaches. Workers pass their index as the injector's worker id.
  void set_fault_injector(const fault::Injector* injector);

  void start();
  /// Block until all submitted packets are processed. Callers must
  /// have stopped submitting; concurrent submit makes "drained" a
  /// moving target.
  void drain();
  /// Drain what is already in the rings, then join the threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_; }
  size_t worker_count() const { return workers_.size(); }
  size_t ring_capacity(size_t worker) const;

  /// Enqueue a packet for `worker`. Single producer thread. Returns
  /// false when the packet was SHED — ring full, injected queue
  /// pressure, or the pool is stopping — and counts it in the worker's
  /// shed ledger. Shedding is the overload valve with the paper's
  /// fail-open semantics: the caller forwards the packet unverified
  /// (best-effort band), it never drops it. After stop() every submit
  /// sheds; across the whole lifetime, submit attempts == processed +
  /// shed (stop() reclaims ring leftovers into shed).
  bool submit(size_t worker, net::Packet&& packet);

  /// Consistent counters, safe while running.
  RuntimeSnapshot snapshot() const;
  uint64_t total_verified() const;
  uint64_t total_replays_detected() const;

  /// Drain collected verdicts (single consumer). Returns how many were
  /// appended to `out`. No-op (0) unless verdict_capacity > 0.
  size_t drain_verdicts(std::vector<VerdictRecord>& out);

  /// Quiescent pool only (see threading contract).
  const dataplane::Middlebox& middlebox(size_t worker) const;
  const cookies::CookieVerifier& verifier(size_t worker) const;

 private:
  struct Worker;

  void worker_main(size_t index);

  const util::Clock& clock_;
  dataplane::ServiceRegistry& registry_;
  Config config_;
  controlplane::TablePublisher* publisher_ = nullptr;
  const fault::Injector* injector_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<MpscRing<VerdictRecord>> verdicts_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace nnn::runtime
