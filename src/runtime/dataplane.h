// Dataplane: the zero-copy ingestion facade (§4.6 deployment, PR 8
// API redesign).
//
// Before this facade, callers chose a worker themselves —
// `pool.submit(worker, std::move(packet))` — which spread the §4.6
// correctness argument ("all cookies from a specific descriptor always
// go through the same middle-box") across every call site, and moved
// a ~200-byte Packet struct per hop. The redesigned contract is one
// verb with the steering inside:
//
//     runtime::Dataplane plane(clock, registry, config);
//     plane.start();
//     auto h = plane.make_packet();       // arena slot, recycled
//     if (h) { build *h in place; plane.ingest(std::move(h)); }
//     plane.drain();  plane.stop();
//
// ingest() demuxes by cookie identity: a cookie-bearing packet is
// pinned to worker steer_shard(cookie_id) — the cheap no-HMAC peek +
// the shared steering hash — so each descriptor's replay window lives
// on exactly one worker and the use-once check stays locally
// verifiable (the paper's double-spend fix). Cookie-less traffic
// spreads by five-tuple hash, preserving load balance where uniqueness
// does not matter. DispatchPolicy::kFlowHash turns the peek off for
// A/B runs (tests assert the double-spend hole it opens).
//
// Failure semantics are fail-open at every edge, matching the paper:
// arena exhausted -> make_packet() returns an empty handle and
// ingest() of it counts a shed; worker ring full or pool stopping ->
// shed; in every case the slot is back on the freelist when ingest()
// returns false and the wire path never blocks. The pool's ledger
// (attempts == processed + shed) covers every handle passed in.
//
// Threading: make_packet()/ingest()/ingest_blocking() are single
// -producer (one ingest thread — put a Dispatcher or MPSC ring in
// front to fan in); control-plane calls follow WorkerPool's quiescence
// contract; snapshots are safe any time.
#pragma once

#include <cstdint>

#include "dataplane/sharding.h"
#include "runtime/arena.h"
#include "runtime/worker_pool.h"

namespace nnn::runtime {

class Dataplane {
 public:
  struct Config {
    WorkerPool::Config pool{};
    dataplane::DispatchPolicy policy =
        dataplane::DispatchPolicy::kDescriptorAffinity;
  };

  /// `clock` and `registry` must outlive the dataplane (they back the
  /// owned WorkerPool).
  Dataplane(const util::Clock& clock, dataplane::ServiceRegistry& registry,
            Config config);

  Dataplane(const Dataplane&) = delete;
  Dataplane& operator=(const Dataplane&) = delete;

  /// Allocate a recycled packet slot to build the next packet in
  /// (payload capacity is reused across occupants; cookie/flag fields
  /// are cleared). Empty handle when the arena is exhausted — pass it
  /// to ingest() anyway if you want the shed counted, or drop it.
  /// Producer thread only (slots come from a thread-local stash).
  PacketHandle make_packet();

  /// Steer by cookie identity and enqueue. Returns false when the
  /// packet was shed (fail-open: forward it unverified); the slot is
  /// back on the freelist either way. Producer thread only.
  bool ingest(PacketHandle&& handle);

  /// Closed-loop variant: waits (yielding) for ring space instead of
  /// shedding — for benches and tests that need loss-free delivery.
  /// An empty handle is still counted as shed (nothing to wait for).
  void ingest_blocking(PacketHandle&& handle);

  /// Which worker ingest() would steer this packet to. Pure query: it
  /// consults the CID steering state but never learns from the packet
  /// (ingest() does the learning), so repeated calls agree.
  size_t route(const net::Packet& packet) const {
    return dataplane::pick_shard(packet, config_.policy,
                                 pool_.worker_count(), &aliases_);
  }

  // ---- lifecycle (see WorkerPool for the contracts) ----
  void start() { pool_.start(); }
  void drain() { pool_.drain(); }
  void stop();
  bool running() const { return pool_.running(); }

  // ---- control plane (quiescent only) ----
  void add_descriptor(const cookies::CookieDescriptor& descriptor) {
    pool_.add_descriptor(descriptor);
  }
  void revoke(cookies::CookieId id) { pool_.revoke(id); }
  void bind_table_publisher(controlplane::TablePublisher& publisher) {
    pool_.bind_table_publisher(publisher);
  }
  void set_fault_injector(const fault::Injector* injector) {
    pool_.set_fault_injector(injector);
  }

  // ---- observability ----
  RuntimeSnapshot snapshot() const { return pool_.snapshot(); }
  uint64_t total_verified() const { return pool_.total_verified(); }
  uint64_t total_replays_detected() const {
    return pool_.total_replays_detected();
  }
  size_t drain_verdicts(std::vector<VerdictRecord>& out) {
    return pool_.drain_verdicts(out);
  }
  const dataplane::Middlebox& middlebox(size_t worker) const {
    return pool_.middlebox(worker);
  }
  const cookies::CookieVerifier& verifier(size_t worker) const {
    return pool_.verifier(worker);
  }
  dataplane::DispatchPolicy policy() const { return config_.policy; }
  size_t worker_count() const { return pool_.worker_count(); }
  PacketArena& arena() { return pool_.arena(); }
  const PacketArena& arena() const { return pool_.arena(); }
  /// Direct pool access for lifecycle control (start/stop/drain) and
  /// counters; packet entry goes through ingest(), not the pool.
  WorkerPool& pool() { return pool_; }
  const WorkerPool& pool() const { return pool_; }

 private:
  Config config_;
  WorkerPool pool_;
  /// Producer-side alloc stash (single producer thread).
  PacketArena::Cache cache_;
  /// CID -> steering-key state for the encrypted transport, learned on
  /// the ingest path (handshakes bind the cookie id, rotation markers
  /// alias fresh CIDs). Producer thread only, like the stash: the one
  /// ingest thread is the only mutator.
  quic::CidAliasTable aliases_;
};

}  // namespace nnn::runtime
