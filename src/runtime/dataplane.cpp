#include "runtime/dataplane.h"

namespace nnn::runtime {

Dataplane::Dataplane(const util::Clock& clock,
                     dataplane::ServiceRegistry& registry, Config config)
    : config_(config),
      pool_(clock, registry, config.pool),
      cache_(pool_.arena()) {}

PacketHandle Dataplane::make_packet() {
  PacketHandle handle = cache_.alloc();
  if (handle) reset_for_reuse(*handle);
  return handle;
}

bool Dataplane::ingest(PacketHandle&& handle) {
  if (!handle) {
    // Arena exhausted at make_packet(): record the shed on worker 0 so
    // the ledger keeps one home for every ingest attempt.
    return pool_.submit_handle(0, std::move(handle));
  }
  if (config_.policy == dataplane::DispatchPolicy::kDescriptorAffinity) {
    quic::learn_steering(aliases_, *handle);
  }
  const size_t worker = route(*handle);
  return pool_.submit_handle(worker, std::move(handle));
}

void Dataplane::ingest_blocking(PacketHandle&& handle) {
  if (!handle) {
    pool_.submit_handle(0, std::move(handle));
    return;
  }
  if (config_.policy == dataplane::DispatchPolicy::kDescriptorAffinity) {
    quic::learn_steering(aliases_, *handle);
  }
  const size_t worker = route(*handle);
  pool_.submit_handle_blocking(worker, std::move(handle));
}

void Dataplane::stop() {
  // Return the producer stash before stopping so the post-stop leak
  // gate (arena().outstanding() == 0) holds without caveats.
  cache_.flush();
  pool_.stop();
}

}  // namespace nnn::runtime
