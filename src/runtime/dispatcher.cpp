#include "runtime/dispatcher.h"

#include <chrono>
#include <vector>

namespace nnn::runtime {

Dispatcher::Dispatcher(WorkerPool& pool, Config config)
    : pool_(pool), config_(config), ingress_(config.ingress_capacity) {
  if (config_.burst == 0) config_.burst = 1;
}

Dispatcher::~Dispatcher() { stop(); }

size_t Dispatcher::route(const net::Packet& packet) const {
  return dataplane::pick_shard(packet, config_.policy, pool_.worker_count());
}

void Dispatcher::route_to_worker(net::Packet&& packet) {
  const size_t worker = route(packet);
  if (pool_.submit(worker, std::move(packet))) {
    routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Bounded queue, fail-open: the packet is forwarded best-effort
    // without cookie processing; it is counted, never dropped.
    ring_full_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Dispatcher::start() {
  if (pumping_) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { pump_main(); });
  pumping_ = true;
}

bool Dispatcher::offer(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (ingress_.try_push(std::move(packet))) return true;
  ingress_full_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Dispatcher::stop() {
  if (!pumping_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  pumping_ = false;
}

void Dispatcher::dispatch(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  route_to_worker(std::move(packet));
}

void Dispatcher::dispatch_blocking(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  const size_t worker = route(packet);
  while (!pool_.submit(worker, std::move(packet))) {
    // Closed loop: wait for the worker instead of bypassing. Yield so
    // the worker actually runs when cores are scarce.
    std::this_thread::yield();
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
}

void Dispatcher::pump_main() {
  std::vector<net::Packet> burst(config_.burst);
  unsigned idle = 0;
  for (;;) {
    const size_t n = ingress_.pop_batch(burst.data(), config_.burst);
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      ++idle;
      if (idle < 64) {
        // spin
      } else if (idle < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      continue;
    }
    idle = 0;
    for (size_t i = 0; i < n; ++i) {
      route_to_worker(std::move(burst[i]));
    }
  }
}

void Dispatcher::drain() {
  // Phase 1: everything offered has left the dispatcher (routed or
  // counted as a bypass).
  for (;;) {
    const Stats s = stats();
    if (s.forwarded() >= s.offered) break;
    std::this_thread::yield();
  }
  // Phase 2: everything routed has been processed by its worker.
  pool_.drain();
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats s;
  // Read `offered` last: monotonic counters, so this ordering can only
  // under-report in-flight work, never invent a negative gap.
  s.routed = routed_.load(std::memory_order_relaxed);
  s.ring_full_bypass = ring_full_.load(std::memory_order_relaxed);
  s.ingress_full_bypass = ingress_full_.load(std::memory_order_relaxed);
  s.offered = offered_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nnn::runtime
