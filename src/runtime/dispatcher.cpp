#include "runtime/dispatcher.h"

#include <chrono>
#include <vector>

#include "util/logging.h"

namespace nnn::runtime {

Dispatcher::Dispatcher(WorkerPool& pool, Config config)
    : pool_(pool), config_(config), ingress_(config.ingress_capacity) {
  if (config_.burst == 0) config_.burst = 1;
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        const telemetry::LabelSet base{
            {"policy", dataplane::to_string(config_.policy)}};
        builder.counter("nnn_dispatch_offered_total",
                        "Packets handed to the dispatcher", base,
                        offered_.load(std::memory_order_relaxed));
        builder.counter("nnn_dispatch_routed_total",
                        "Packets enqueued to a worker ring", base,
                        routed_.load(std::memory_order_relaxed));
        telemetry::LabelSet ring = base;
        ring.add("reason", "ring-full");
        builder.counter("nnn_dispatch_bypass_total",
                        "Packets that skipped cookie processing (fail-open)",
                        std::move(ring),
                        ring_full_.load(std::memory_order_relaxed));
        telemetry::LabelSet ingress = base;
        ingress.add("reason", "ingress-full");
        builder.counter("nnn_dispatch_bypass_total",
                        "Packets that skipped cookie processing (fail-open)",
                        std::move(ingress),
                        ingress_full_.load(std::memory_order_relaxed));
        builder.histogram("nnn_dispatch_batch_nanos",
                          "Wall-clock nanoseconds per pump burst", base,
                          batch_nanos_);
      });
}

Dispatcher::~Dispatcher() { stop(); }

size_t Dispatcher::route(const net::Packet& packet) const {
  return dataplane::pick_shard(packet, config_.policy, pool_.worker_count(),
                               &aliases_);
}

void Dispatcher::route_to_worker(net::Packet&& packet) {
  if (config_.policy == dataplane::DispatchPolicy::kDescriptorAffinity) {
    quic::learn_steering(aliases_, packet);
  }
  const size_t worker = route(packet);
  PacketHandle handle = pool_.arena().try_alloc();
  if (handle) *handle = std::move(packet);
  // An empty handle (arena exhausted) still goes through
  // submit_handle, which counts the shed — the ledger has one home.
  if (pool_.submit_handle(worker, std::move(handle))) {
    routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Bounded queue, fail-open: the packet is forwarded best-effort
    // without cookie processing; it is counted, never dropped. The
    // first bypass gets a warning — fail-open that only ever shows up
    // in a poll-it-yourself Stats struct is how discrimination goes
    // unnoticed (§6) — and the log counter keeps the total visible in
    // nnn_log_total even when warnings are filtered.
    if (ring_full_.fetch_add(1, std::memory_order_relaxed) == 0) {
      util::log_warn_tagged("dispatcher",
                            "worker ring full, packets bypassing cookie "
                            "processing (fail-open)");
    }
  }
}

void Dispatcher::start() {
  if (pumping_) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { pump_main(); });
  pumping_ = true;
}

bool Dispatcher::offer(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (ingress_.try_push(std::move(packet))) return true;
  if (ingress_full_.fetch_add(1, std::memory_order_relaxed) == 0) {
    util::log_warn_tagged("dispatcher",
                          "ingress ring full, packets bypassing cookie "
                          "processing (fail-open)");
  }
  return false;
}

void Dispatcher::stop() {
  if (!pumping_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  pumping_ = false;
}

void Dispatcher::dispatch(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  route_to_worker(std::move(packet));
}

void Dispatcher::dispatch_blocking(net::Packet&& packet) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (config_.policy == dataplane::DispatchPolicy::kDescriptorAffinity) {
    quic::learn_steering(aliases_, packet);
  }
  const size_t worker = route(packet);
  // Closed loop: wait for an arena slot instead of shedding — the
  // workers recycle slots as they emit, so one frees up as long as
  // the pool is consuming. Yield so the worker actually runs when
  // cores are scarce.
  PacketHandle handle;
  while (!(handle = pool_.arena().try_alloc())) {
    std::this_thread::yield();
  }
  *handle = std::move(packet);
  if (pool_.submit_handle_blocking(worker, std::move(handle))) {
    routed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Stopping pool or injected admission rejection: the pool shed
    // (and counted) the packet. Surface it as a bypass so the
    // offered == forwarded() identity holds, rather than the retired
    // copy-shim's unbounded retry against a pool that will never
    // accept.
    ring_full_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Dispatcher::pump_main() {
  std::vector<net::Packet> burst(config_.burst);
  unsigned idle = 0;
  for (;;) {
    const size_t n = ingress_.pop_batch(burst.data(), config_.burst);
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      ++idle;
      if (idle < 64) {
        // spin
      } else if (idle < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      continue;
    }
    idle = 0;
    const telemetry::ScopedTimer timer(batch_nanos_, burst_sample_.next());
    for (size_t i = 0; i < n; ++i) {
      route_to_worker(std::move(burst[i]));
    }
  }
}

void Dispatcher::drain() {
  // Phase 1: everything offered has left the dispatcher (routed or
  // counted as a bypass).
  for (;;) {
    const Stats s = stats();
    if (s.forwarded() >= s.offered) break;
    std::this_thread::yield();
  }
  // Phase 2: everything routed has been processed by its worker.
  pool_.drain();
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats s;
  // Read `offered` last: monotonic counters, so this ordering can only
  // under-report in-flight work, never invent a negative gap.
  s.routed = routed_.load(std::memory_order_relaxed);
  s.ring_full_bypass = ring_full_.load(std::memory_order_relaxed);
  s.ingress_full_bypass = ingress_full_.load(std::memory_order_relaxed);
  s.offered = offered_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nnn::runtime
