#include "runtime/stats.h"

#include <ctime>

#include "util/fmt.h"

#if !defined(CLOCK_THREAD_CPUTIME_ID)
#include <chrono>
#endif

namespace nnn::runtime {

WorkerSnapshot& WorkerSnapshot::operator+=(const WorkerSnapshot& other) {
  packets += other.packets;
  bytes += other.bytes;
  cookie_packets += other.cookie_packets;
  verified += other.verified;
  replayed += other.replayed;
  mapped += other.mapped;
  batches += other.batches;
  busy_micros += other.busy_micros;
  processed += other.processed;
  verdicts_dropped += other.verdicts_dropped;
  return *this;
}

double WorkerSnapshot::avg_batch() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(packets) / static_cast<double>(batches);
}

WorkerSnapshot snapshot_of(const WorkerCounters& counters) {
  WorkerSnapshot s;
  s.packets = counters.packets.load(std::memory_order_relaxed);
  s.bytes = counters.bytes.load(std::memory_order_relaxed);
  s.cookie_packets = counters.cookie_packets.load(std::memory_order_relaxed);
  s.verified = counters.verified.load(std::memory_order_relaxed);
  s.replayed = counters.replayed.load(std::memory_order_relaxed);
  s.mapped = counters.mapped.load(std::memory_order_relaxed);
  s.batches = counters.batches.load(std::memory_order_relaxed);
  s.busy_micros = counters.busy_micros.load(std::memory_order_relaxed);
  s.processed = counters.processed.load(std::memory_order_acquire);
  s.verdicts_dropped =
      counters.verdicts_dropped.load(std::memory_order_relaxed);
  return s;
}

WorkerSnapshot RuntimeSnapshot::totals() const {
  WorkerSnapshot total;
  for (const auto& w : workers) total += w;
  return total;
}

uint64_t RuntimeSnapshot::max_busy_micros() const {
  uint64_t max = 0;
  for (const auto& w : workers) {
    if (w.busy_micros > max) max = w.busy_micros;
  }
  return max;
}

std::string RuntimeSnapshot::summary() const {
  const WorkerSnapshot t = totals();
  return util::fmt(
      "workers={} packets={} cookie={} verified={} replayed={} "
      "avg_batch={} max_busy_us={}",
      workers.size(), t.packets, t.cookie_packets, t.verified, t.replayed,
      t.avg_batch(), max_busy_micros());
}

uint64_t thread_cpu_micros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

}  // namespace nnn::runtime
