#include "runtime/stats.h"

#include <ctime>

#include "cookies/verifier.h"  // full VerifyStatus definition
#include "util/fmt.h"

#if !defined(CLOCK_THREAD_CPUTIME_ID)
#include <chrono>
#endif

namespace nnn::runtime {

void WorkerCounters::collect(telemetry::SampleBuilder& builder,
                             const telemetry::LabelSet& base) const {
  builder.counter("nnn_pool_packets_total",
                  "Packets processed by pool workers", base, packets.value());
  builder.counter("nnn_pool_bytes_total", "Bytes processed by pool workers",
                  base, bytes.value());
  builder.counter("nnn_pool_cookie_packets_total",
                  "Packets that carried a cookie the worker checked", base,
                  cookie_packets.value());
  statuses.collect(
      builder, "nnn_pool_verify_total",
      "Cookie verification outcomes observed by pool workers",
      [](cookies::VerifyStatus s) { return to_string(s); }, "status", base);
  builder.counter("nnn_pool_mapped_total",
                  "Verdicts that mapped a new flow to a service", base,
                  mapped.value());
  builder.counter("nnn_pool_batches_total", "Ring bursts dequeued", base,
                  batches.value());
  builder.counter("nnn_pool_busy_micros",
                  "Worker thread-CPU time spent processing, in microseconds",
                  base, busy_micros.value());
  builder.counter("nnn_pool_processed_total",
                  "Packets fully processed (quiescence counter)", base,
                  processed.value_acquire());
  builder.counter("nnn_pool_verdicts_dropped_total",
                  "Verdict records dropped because the verdict ring was full",
                  base, verdicts_dropped.value());
  builder.counter("nnn_pool_shed_total",
                  "Packets shed at admission or reclaimed at stop "
                  "(fail-open: shed packets are forwarded unverified)",
                  base, shed.value());
  builder.histogram("nnn_pool_batch_nanos",
                    "Wall-clock nanoseconds per worker ring burst", base,
                    batch_nanos);
}

WorkerSnapshot& WorkerSnapshot::operator+=(const WorkerSnapshot& other) {
  packets += other.packets;
  bytes += other.bytes;
  cookie_packets += other.cookie_packets;
  verified += other.verified;
  replayed += other.replayed;
  malformed += other.malformed;
  mapped += other.mapped;
  batches += other.batches;
  busy_micros += other.busy_micros;
  processed += other.processed;
  verdicts_dropped += other.verdicts_dropped;
  shed += other.shed;
  return *this;
}

double WorkerSnapshot::avg_batch() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(packets) / static_cast<double>(batches);
}

WorkerSnapshot snapshot_of(const WorkerCounters& counters) {
  WorkerSnapshot s;
  s.packets = counters.packets.value();
  s.bytes = counters.bytes.value();
  s.cookie_packets = counters.cookie_packets.value();
  s.verified = counters.statuses.count(cookies::VerifyStatus::kOk);
  s.replayed = counters.statuses.count(cookies::VerifyStatus::kReplayed);
  s.malformed = counters.statuses.count(cookies::VerifyStatus::kMalformed);
  s.mapped = counters.mapped.value();
  s.batches = counters.batches.value();
  s.busy_micros = counters.busy_micros.value();
  s.processed = counters.processed.value_acquire();
  s.verdicts_dropped = counters.verdicts_dropped.value();
  s.shed = counters.shed.value();
  return s;
}

WorkerSnapshot RuntimeSnapshot::totals() const {
  WorkerSnapshot total;
  for (const auto& w : workers) total += w;
  return total;
}

uint64_t RuntimeSnapshot::max_busy_micros() const {
  uint64_t max = 0;
  for (const auto& w : workers) {
    if (w.busy_micros > max) max = w.busy_micros;
  }
  return max;
}

std::string RuntimeSnapshot::summary() const {
  const WorkerSnapshot t = totals();
  return util::fmt(
      "workers={} packets={} cookie={} verified={} replayed={} "
      "avg_batch={} max_busy_us={}",
      workers.size(), t.packets, t.cookie_packets, t.verified, t.replayed,
      t.avg_batch(), max_busy_micros());
}

uint64_t thread_cpu_micros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

}  // namespace nnn::runtime
