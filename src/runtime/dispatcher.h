// The load-balancer thread (§4.6) over real rings.
//
// "…along with a load-balancer that shares the traffic among servers."
// The dispatcher implements both DispatchPolicy values against a
// WorkerPool: descriptor affinity peeks the cookie id and pins each
// descriptor's cookies to one worker (making the use-once check
// locally verifiable — the double-spend fix), flow hash spreads
// everything by 5-tuple (fast, but a copied cookie can be spent once
// per worker; tests assert both behaviours).
//
// Backpressure is bounded-queue + fail-open, matching the paper's
// failure semantics ("if it fails to match … default services"): when
// a worker's ring is full the packet keeps forwarding on the wire —
// it just skips cookie processing and is *counted* (ring_full_bypass),
// never dropped and never a blocking wait on the wire path. The same
// applies to the ingress ring (ingress_full_bypass).
//
// Two driving modes:
//   - pump mode: start() spawns the balancer thread; any number of
//     producer threads offer() packets through the MPSC ingress ring;
//   - direct mode: a single caller thread invokes dispatch() (or
//     dispatch_blocking(), the closed-loop variant benches use) with
//     the pump not running — the caller *is* the balancer thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "dataplane/sharding.h"
#include "net/packet.h"
#include "runtime/mpsc_ring.h"
#include "runtime/worker_pool.h"
#include "telemetry/metrics.h"

namespace nnn::runtime {

class Dispatcher {
 public:
  struct Config {
    dataplane::DispatchPolicy policy =
        dataplane::DispatchPolicy::kDescriptorAffinity;
    /// Ingress (producers -> balancer) ring capacity, pump mode only.
    size_t ingress_capacity = 4096;
    /// Burst the pump pulls from ingress per wakeup.
    size_t burst = 32;
  };

  struct Stats {
    uint64_t offered = 0;             // packets handed to the dispatcher
    uint64_t routed = 0;              // enqueued to a worker ring
    uint64_t ring_full_bypass = 0;    // worker ring full -> best-effort
    uint64_t ingress_full_bypass = 0; // ingress ring full -> best-effort
    /// Every offered packet is accounted exactly once.
    uint64_t forwarded() const {
      return routed + ring_full_bypass + ingress_full_bypass;
    }
  };

  /// `pool` must outlive the dispatcher. Registers the
  /// nnn_dispatch_* families, labeled policy="flow-hash" /
  /// "descriptor-affinity"; bypass counts carry reason="ring-full" /
  /// "ingress-full" so the fail-open path (§4.6 backpressure) is
  /// visible to auditors, not just to callers that poll stats().
  Dispatcher(WorkerPool& pool, Config config);
  ~Dispatcher();  // stops the pump if running

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Which worker `packet` routes to under the configured policy.
  size_t route(const net::Packet& packet) const;

  /// Pump mode. offer() is safe from any thread. Returns false when
  /// the packet bypassed cookie processing (ingress full, fail-open).
  void start();
  bool offer(net::Packet&& packet);
  /// Stop the pump thread after it drains the ingress ring. Idempotent.
  void stop();

  /// Direct mode (pump not running, single caller thread). Fail-open
  /// on a full worker ring.
  void dispatch(net::Packet&& packet);
  /// Closed-loop variant: waits (yielding) for ring space instead of
  /// bypassing — for benches and tests that need loss-free delivery.
  void dispatch_blocking(net::Packet&& packet);

  /// Block until every offered packet is either processed by a worker
  /// or counted as a bypass. Producers must have stopped offering.
  void drain();

  Stats stats() const;
  dataplane::DispatchPolicy policy() const { return config_.policy; }

 private:
  void pump_main();
  void route_to_worker(net::Packet&& packet);

  WorkerPool& pool_;
  Config config_;
  MpscRing<net::Packet> ingress_;
  /// CID -> steering-key state for the encrypted transport. Mutated
  /// only by the balancer thread (route_to_worker); route() from
  /// other threads is only safe when the pump is not running, same as
  /// direct mode itself.
  quic::CidAliasTable aliases_;

  // `offered - forwarded` is the in-flight count inside the dispatcher
  // itself; drain() waits for it to reach zero before draining the pool.
  // These stay raw multi-writer atomics (offer() runs on any producer
  // thread), so the collector reads them directly instead of going
  // through single-writer Counter cells.
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> ring_full_{0};
  std::atomic<uint64_t> ingress_full_{0};
  /// Nanoseconds per pump burst (single writer: the pump thread),
  /// sampled 1-in-32 — routing a burst is far cheaper than the
  /// timer's two clock reads.
  telemetry::Histogram batch_nanos_;
  telemetry::SampleStride burst_sample_{32};

  std::atomic<bool> stop_{false};
  bool pumping_ = false;
  std::thread thread_;
  telemetry::Registration registration_;  // last: released first
};

}  // namespace nnn::runtime
