// PacketArena: the fixed-slab packet mempool behind the zero-copy
// dataplane (§4.6 scale-out, ndn-dpdk mempool shape).
//
// The copy-through runtime moved whole net::Packet structs through the
// worker rings — ~200 bytes of struct plus vector moves per hop, twice
// (push + pop). The arena inverts that: packets are built in place in
// a pre-sized slab and only a 4-byte slot index travels through rings,
// so the payload bytes a workload generator (or net::wire decode)
// wrote at ingest are the very bytes the worker verifies and emits.
// Slabs are recycled with their heap capacity intact, so a warm arena
// allocates nothing on the steady-state path.
//
// Concurrency design:
//   - the freelist is a lock-free Treiber stack of slot indices with a
//     32-bit ABA tag packed beside the index in one 64-bit head;
//   - the successful pop is an acquire CAS and the push a release CAS,
//     which carries the happens-before edge for the slot's *contents*:
//     whatever the releasing thread wrote into the Packet is visible
//     to the slot's next owner;
//   - Cache gives each thread a private stash of slots so the hot path
//     touches the shared head once per kChunk operations, and a flush
//     splices its whole chain in a single CAS;
//   - alloc/release counters are relaxed atomics: `outstanding()` is
//     exact whenever the arena is quiescent (the leak gate reads it
//     after WorkerPool::stop()), approximate while threads run.
//
// Exhaustion is fail-open by construction: try_alloc returns an empty
// handle and the caller sheds (forwards the packet unverified); no
// path ever blocks waiting for a slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace nnn::runtime {

class PacketArena;

/// Move-only smart reference to one arena slot. Destruction returns
/// the slot to the arena's global freelist; detach()/adopt() move the
/// raw index through a ring without touching refcounts (there are
/// none — a slot has exactly one owner at a time).
class PacketHandle {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  PacketHandle() = default;
  PacketHandle(PacketHandle&& other) noexcept
      : arena_(other.arena_), slot_(other.slot_) {
    other.arena_ = nullptr;
    other.slot_ = kNil;
  }
  PacketHandle& operator=(PacketHandle&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      slot_ = other.slot_;
      other.arena_ = nullptr;
      other.slot_ = kNil;
    }
    return *this;
  }
  PacketHandle(const PacketHandle&) = delete;
  PacketHandle& operator=(const PacketHandle&) = delete;
  ~PacketHandle() { reset(); }

  explicit operator bool() const { return slot_ != kNil; }
  net::Packet& operator*() const;
  net::Packet* operator->() const;

  uint32_t slot() const { return slot_; }

  /// Give up ownership and return the raw slot index (for pushing into
  /// a ring). The caller-side handle becomes empty.
  uint32_t detach() {
    const uint32_t s = slot_;
    arena_ = nullptr;
    slot_ = kNil;
    return s;
  }

  /// Release the slot now (no-op on an empty handle).
  void reset();

 private:
  friend class PacketArena;
  PacketHandle(PacketArena* arena, uint32_t slot)
      : arena_(arena), slot_(slot) {}

  PacketArena* arena_ = nullptr;
  uint32_t slot_ = kNil;
};

class PacketArena {
 public:
  /// Per-thread stash size. Refills pop one slot per CAS (uncontended
  /// in the steady state); flushes splice the whole chain in one CAS.
  static constexpr size_t kChunk = 32;

  /// `slots` is rounded up to a power of two (minimum 2). All packet
  /// slots are default-constructed up front.
  explicit PacketArena(size_t slots);
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Pop a free slot; empty handle when exhausted (caller sheds —
  /// never blocks). The returned packet holds whatever state its last
  /// occupant left; callers overwrite every field they care about
  /// (reset_for_reuse() clears the cookie/flag fields while keeping
  /// payload capacity).
  PacketHandle try_alloc();

  /// Return a slot to the freelist. Usually via ~PacketHandle.
  void release_raw(uint32_t slot);

  /// Re-own a raw index previously detach()ed into a ring.
  PacketHandle adopt(uint32_t slot) { return PacketHandle(this, slot); }

  net::Packet& at(uint32_t slot) { return slots_[slot]; }
  const net::Packet& at(uint32_t slot) const { return slots_[slot]; }

  size_t capacity() const { return slots_.size(); }

  /// allocs - releases. Exact at quiescence; the post-stop leak gate
  /// asserts it returns to zero.
  uint64_t outstanding() const {
    return allocs_.load(std::memory_order_acquire) -
           releases_.load(std::memory_order_acquire);
  }
  uint64_t total_allocs() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  /// try_alloc calls that found the freelist empty (exhaustion sheds).
  uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  /// Thread-private slot stash. One thread owns a Cache; alloc() and
  /// release() amortize freelist CAS traffic, flush() (and the
  /// destructor) return everything to the global list.
  class Cache {
   public:
    explicit Cache(PacketArena& arena) : arena_(&arena) {}
    Cache(const Cache&) = delete;
    Cache& operator=(const Cache&) = delete;
    ~Cache() { flush(); }

    PacketHandle alloc();
    /// Stash a slot locally; splices a full chain back when the stash
    /// hits 2*kChunk so one burst's worth always stays warm.
    void release(PacketHandle&& handle);
    void release_raw(uint32_t slot);
    void flush();

   private:
    PacketArena* arena_;
    std::vector<uint32_t> stash_;
  };

 private:
  friend class PacketHandle;

  /// Pop up to `max` slots into `out`; returns the count.
  size_t pop_many(uint32_t* out, size_t max);
  /// Push a pre-linked chain [first..last] (linked through next_).
  void push_chain(uint32_t first, uint32_t last, uint64_t count);

  std::vector<net::Packet> slots_;
  /// Freelist links, parallel to slots_. Only written while the slot
  /// is free (owned by the pusher pre-CAS), relaxed atomics to keep
  /// TSan precise about the publication edge living on head_.
  std::vector<std::atomic<uint32_t>> next_;
  /// tag(32) | index(32). Tag increments on every successful pop to
  /// defeat ABA.
  alignas(64) std::atomic<uint64_t> head_;
  alignas(64) std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> releases_{0};
  std::atomic<uint64_t> alloc_failures_{0};
};

/// Clear per-ingest fields (cookies, flags, sizes) while keeping the
/// payload's heap capacity — what generators and wire decode call on a
/// recycled slot before writing the next packet into it.
inline void reset_for_reuse(net::Packet& p) {
  p.dscp = 0;
  p.ttl = 64;
  p.ipv6 = false;
  p.seq = 0;
  p.ack_seq = 0;
  p.syn = p.ack = p.fin = p.rst = false;
  p.l3_cookie.reset();
  p.l4_cookie.reset();
  p.quic.reset();
  p.payload.clear();  // keeps capacity
  p.wire_size = 0;
}

inline net::Packet& PacketHandle::operator*() const {
  return arena_->at(slot_);
}
inline net::Packet* PacketHandle::operator->() const {
  return &arena_->at(slot_);
}
inline void PacketHandle::reset() {
  if (slot_ != kNil) {
    arena_->release_raw(slot_);
    arena_ = nullptr;
    slot_ = kNil;
  }
}

}  // namespace nnn::runtime
