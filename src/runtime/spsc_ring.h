// Lock-free single-producer/single-consumer ring (§4.6 scale-out).
//
// The dataplane runtime moves packets between the load-balancer thread
// and worker threads through these rings — the software analogue of
// the NIC RX queues an NDN-DPDK-style run-to-completion pipeline polls.
// Design points:
//   - fixed capacity, power-of-two, indices are free-running counters
//     masked on access (no modulo, no ABA);
//   - head and tail live on separate cache lines so the producer and
//     consumer never false-share;
//   - each side keeps a *cached* copy of the other side's index and
//     refreshes it only when the ring looks full/empty, which removes
//     most cross-core coherence traffic from the hot path;
//   - acquire/release pairs on the indices are the only synchronization:
//     the release store of `tail_` publishes the slots written before
//     it, the acquire load on the consumer side makes them visible
//     (and symmetrically for `head_` when slots are recycled).
//
// Exactly ONE thread may push and ONE thread may pop. For the
// many-producers case (verdict/stat collection) see mpsc_ring.h.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace nnn::runtime {

inline constexpr size_t kCacheLineSize = 64;

/// Round up to the next power of two (minimum 2).
constexpr size_t ring_capacity_for(size_t requested) {
  size_t cap = 2;
  while (cap < requested) cap <<= 1;
  return cap;
}

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two. Slots are
  /// default-constructed up front; push moves into them, pop moves out.
  explicit SpscRing(size_t capacity)
      : capacity_(ring_capacity_for(capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (the caller
  /// decides what backpressure means — the dispatcher counts the
  /// packet and forwards it best-effort, it never blocks the wire).
  bool try_push(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, single element.
  bool try_pop(T& out) { return pop_batch(&out, 1) == 1; }

  /// Consumer side, burst dequeue: moves up to `max` elements into
  /// `out`, returns how many. Batching amortizes the acquire load and
  /// the release store over the whole burst — the runtime's workers
  /// drain ~32 packets per wakeup for exactly this reason.
  size_t pop_batch(T* out, size_t max) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t available = tail_cache_ - head;
    if (available == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      available = tail_cache_ - head;
      if (available == 0) return 0;
    }
    const size_t n = available < max ? available : max;
    for (size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate (exact only when the opposite side is quiescent).
  size_t size() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: tail index + cached view of head.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;
  // Consumer-owned line: head index + cached view of tail.
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;
  // Pad so an adjacent allocation cannot share the consumer's line.
  char pad_[kCacheLineSize - sizeof(std::atomic<size_t>) - sizeof(size_t)];
};

}  // namespace nnn::runtime
