#include "runtime/arena.h"

#include "runtime/spsc_ring.h"  // ring_capacity_for

namespace nnn::runtime {

PacketArena::PacketArena(size_t slots)
    : slots_(ring_capacity_for(slots)), next_(slots_.size()) {
  // Seed the freelist with every slot, linked 0 -> 1 -> ... -> n-1.
  const uint32_t n = static_cast<uint32_t>(slots_.size());
  for (uint32_t i = 0; i + 1 < n; ++i) {
    next_[i].store(i + 1, std::memory_order_relaxed);
  }
  next_[n - 1].store(PacketHandle::kNil, std::memory_order_relaxed);
  head_.store(0, std::memory_order_release);  // tag 0, index 0
}

PacketHandle PacketArena::try_alloc() {
  uint32_t slot;
  if (pop_many(&slot, 1) == 0) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return PacketHandle{};
  }
  return PacketHandle(this, slot);
}

size_t PacketArena::pop_many(uint32_t* out, size_t max) {
  size_t n = 0;
  uint64_t head = head_.load(std::memory_order_acquire);
  while (n < max) {
    const uint32_t index = static_cast<uint32_t>(head);
    if (index == PacketHandle::kNil) break;
    // Safe to read even if another thread pops `index` first: slots
    // are never freed, and the CAS below fails in that case.
    const uint32_t next = next_[index].load(std::memory_order_relaxed);
    const uint64_t tag = (head >> 32) + 1;
    const uint64_t replacement = (tag << 32) | next;
    if (head_.compare_exchange_weak(head, replacement,
                                    std::memory_order_acquire,
                                    std::memory_order_acquire)) {
      out[n++] = index;
      head = replacement;
    }
    // On failure `head` was reloaded by the CAS.
  }
  if (n > 0) allocs_.fetch_add(n, std::memory_order_release);
  return n;
}

void PacketArena::release_raw(uint32_t slot) {
  push_chain(slot, slot, 1);
}

void PacketArena::push_chain(uint32_t first, uint32_t last,
                             uint64_t count) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  for (;;) {
    next_[last].store(static_cast<uint32_t>(head),
                      std::memory_order_relaxed);
    const uint64_t tag = (head >> 32) + 1;
    const uint64_t replacement = (tag << 32) | first;
    if (head_.compare_exchange_weak(head, replacement,
                                    std::memory_order_release,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  releases_.fetch_add(count, std::memory_order_release);
}

PacketHandle PacketArena::Cache::alloc() {
  if (stash_.empty()) {
    stash_.resize(PacketArena::kChunk);
    const size_t n = arena_->pop_many(stash_.data(), PacketArena::kChunk);
    stash_.resize(n);
    if (n == 0) {
      arena_->alloc_failures_.fetch_add(1, std::memory_order_relaxed);
      return PacketHandle{};
    }
  }
  const uint32_t slot = stash_.back();
  stash_.pop_back();
  return PacketHandle(arena_, slot);
}

void PacketArena::Cache::release(PacketHandle&& handle) {
  if (!handle) return;
  release_raw(handle.detach());
}

void PacketArena::Cache::release_raw(uint32_t slot) {
  stash_.push_back(slot);
  if (stash_.size() >= 2 * PacketArena::kChunk) {
    // Splice the overflow half back in one CAS, keep a burst warm.
    const size_t keep = PacketArena::kChunk;
    const size_t give = stash_.size() - keep;
    for (size_t i = keep; i + 1 < stash_.size(); ++i) {
      arena_->next_[stash_[i]].store(stash_[i + 1],
                                     std::memory_order_relaxed);
    }
    arena_->push_chain(stash_[keep], stash_.back(), give);
    stash_.resize(keep);
  }
}

void PacketArena::Cache::flush() {
  if (stash_.empty()) return;
  for (size_t i = 0; i + 1 < stash_.size(); ++i) {
    arena_->next_[stash_[i]].store(stash_[i + 1],
                                   std::memory_order_relaxed);
  }
  arena_->push_chain(stash_.front(), stash_.back(), stash_.size());
  stash_.clear();
}

}  // namespace nnn::runtime
