// Umbrella header for the Neutral Net Neutrality library.
//
// Pulls in the full public API. Fine-grained targets exist for every
// module (include "cookies/verifier.h" etc. and link the matching
// nnn_* library) — this header is for examples, prototypes, and
// downstream code that wants everything.
//
// Layering (lower layers never include higher ones):
//
//   util  ->  crypto, json, net  ->  cookies  ->  server, dataplane,
//   baselines, sim  ->  workload, boost_lane  ->  studies
#pragma once

// Foundations.
#include "util/base64.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/fmt.h"
#include "util/hex.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

// Crypto substrate.
#include "crypto/constant_time.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/uuid.h"

// Control-plane JSON.
#include "json/json.h"

// Packet substrate.
#include "net/five_tuple.h"
#include "net/http.h"
#include "net/ip.h"
#include "net/mctls.h"
#include "net/packet.h"
#include "net/tls.h"
#include "net/wire.h"

// The paper's core: network cookies.
#include "cookies/ack_monitor.h"
#include "cookies/cookie.h"
#include "cookies/delegation.h"
#include "cookies/descriptor.h"
#include "cookies/generator.h"
#include "cookies/replay_cache.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"

// The well-known cookie server and its control plane.
#include "server/audit.h"
#include "server/compliance.h"
#include "server/cookie_server.h"
#include "server/discovery.h"
#include "server/json_api.h"

// Dataplane.
#include "dataplane/flow_table.h"
#include "dataplane/hw_filter.h"
#include "dataplane/middlebox.h"
#include "dataplane/qos.h"
#include "dataplane/service_registry.h"
#include "dataplane/sharding.h"
#include "dataplane/zero_rating.h"

// Baseline mechanisms (§3).
#include "baselines/diffserv.h"
#include "baselines/dpi.h"
#include "baselines/oob.h"

// Simulator.
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/nat.h"
#include "sim/tcp.h"

// Workloads.
#include "workload/apps.h"
#include "workload/packet_gen.h"
#include "workload/page_load.h"
#include "workload/trace.h"
#include "workload/websites.h"

// The Boost / AnyLink services.
#include "boost_lane/agent.h"
#include "boost_lane/anylink.h"
#include "boost_lane/browser.h"
#include "boost_lane/capacity_probe.h"
#include "boost_lane/daemon.h"
#include "boost_lane/home_topology.h"

// The paper's studies and experiments.
#include "studies/accuracy.h"
#include "studies/deployment.h"
#include "studies/fct_experiment.h"
#include "studies/properties.h"
#include "studies/survey.h"
