#include "studies/properties.h"

#include "baselines/diffserv.h"
#include "baselines/dpi.h"
#include "baselines/oob.h"
#include "cookies/delegation.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "net/http.h"
#include "net/tls.h"
#include "sim/nat.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::studies {

namespace {

cookies::CookieDescriptor test_descriptor(uint64_t id, bool shared = false) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 37 + 1));
  d.service_data = "probe";
  d.attributes.shared = shared;
  return d;
}

}  // namespace

bool probe_cookie_replay_protection() {
  util::ManualClock clock(1000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  auto descriptor = test_descriptor(1);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 1);
  const cookies::Cookie cookie = generator.generate();
  const bool first = verifier.verify(cookie).ok();
  const bool second = verifier.verify(cookie).ok();  // replay
  return first && !second;
}

bool probe_cookie_spoof_protection() {
  util::ManualClock clock(1000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  auto descriptor = test_descriptor(2);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 2);
  cookies::Cookie cookie = generator.generate();
  cookie.signature[0] ^= 0x55;  // forged MAC
  return verifier.verify(cookie).status ==
         cookies::VerifyStatus::kBadSignature;
}

bool probe_diffserv_no_auth() {
  // Nothing stops an arbitrary application from requesting the
  // priority class: the marking is accepted as-is inside a preserving
  // domain. (This is the gaming-console scenario of §3.)
  net::Packet packet;
  packet.dscp = 46;  // EF, requested by an unauthorized app
  baselines::DiffServDomain domain("isp", baselines::BoundaryPolicy::kPreserve);
  domain.define_class(46, "low-latency");
  domain.ingress(packet);
  return domain.interior_class(packet.dscp) == "low-latency";
}

bool probe_oob_spoofable() {
  // A rule installed for a legitimate flow also matches packets a
  // third party crafts with the same (wildcarded) header fields.
  baselines::OobSwitch sw;
  net::FiveTuple legit;
  legit.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  legit.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  legit.src_port = 40000;
  legit.dst_port = 443;
  sw.install(baselines::OobRule{
      baselines::FlowDescription::server_only(legit), "boost"});
  net::Packet spoof;
  spoof.tuple = legit;
  spoof.tuple.src_ip = net::IpAddress::v4(10, 66, 66, 66);  // attacker
  spoof.tuple.src_port = 1234;
  return sw.match(spoof).has_value();
}

bool probe_cookie_revocation() {
  util::ManualClock clock(1000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  auto descriptor = test_descriptor(3);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 3);
  if (!verifier.verify(generator.generate()).ok()) return false;
  verifier.revoke(descriptor.cookie_id);
  return verifier.verify(generator.generate()).status ==
         cookies::VerifyStatus::kDescriptorRevoked;
}

bool probe_cookie_privacy() {
  // The cookie rides a UDP shim over an opaque (say, encrypted)
  // payload; the verifier maps it without any knowledge of the content.
  util::ManualClock clock(1000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  auto descriptor = test_descriptor(4);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 4);

  net::Packet packet;
  packet.tuple.proto = net::L4Proto::kUdp;
  packet.payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};  // opaque
  if (!cookies::attach(packet, generator.generate(),
                       cookies::Transport::kUdpHeader)) {
    return false;
  }
  const auto extracted = cookies::extract(packet);
  return extracted && verifier.verify(extracted->stack.front()).ok();
}

bool probe_dpi_needs_visibility() {
  baselines::DpiEngine dpi;
  baselines::DpiRule rule;
  rule.app = "video-service";
  rule.host_suffixes = {"video.example"};
  dpi.add_rule(rule);
  // Opaque payload, no SNI: DPI cannot classify.
  net::Packet packet;
  packet.tuple.dst_port = 443;
  packet.payload = {0x17, 0x03, 0x03, 0x00, 0x20};  // enc. record
  return !dpi.classify(packet).has_value();
}

bool probe_cookie_nat_independence() {
  util::ManualClock clock(1000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  auto descriptor = test_descriptor(5);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 5);

  net::Packet packet;
  packet.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 23);
  packet.tuple.src_port = 43210;
  packet.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  packet.tuple.dst_port = 80;
  net::http::Request request("GET", "/", "anything.example");
  const std::string text = request.serialize();
  packet.payload.assign(text.begin(), text.end());
  cookies::attach(packet, generator.generate(),
                  cookies::Transport::kHttpHeader);

  // Exact OOB description recorded before the NAT.
  baselines::OobSwitch sw;
  sw.install(baselines::OobRule{
      baselines::FlowDescription::exact(packet.tuple), "boost"});

  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  nat.translate_outbound(packet);

  const bool oob_survives = sw.match(packet).has_value();
  const auto extracted = cookies::extract(packet);
  const bool cookie_survives =
      extracted && verifier.verify(extracted->stack.front()).ok();
  return cookie_survives && !oob_survives;
}

bool probe_cookie_multi_transport() {
  util::ManualClock clock(1000 * util::kSecond);
  auto descriptor = test_descriptor(6);
  cookies::CookieGenerator generator(descriptor, clock, 6);

  int carriers = 0;
  {  // HTTP header
    net::Packet p;
    net::http::Request r("GET", "/", "h.example");
    const std::string text = r.serialize();
    p.payload.assign(text.begin(), text.end());
    if (cookies::attach(p, generator.generate(),
                        cookies::Transport::kHttpHeader) &&
        cookies::extract(p)) {
      ++carriers;
    }
  }
  {  // TLS extension
    net::Packet p;
    net::tls::ClientHello hello;
    hello.set_server_name("h.example");
    p.payload = hello.serialize_record();
    if (cookies::attach(p, generator.generate(),
                        cookies::Transport::kTlsExtension) &&
        cookies::extract(p)) {
      ++carriers;
    }
  }
  {  // IPv6 hop-by-hop option
    net::Packet p;
    p.ipv6 = true;
    if (cookies::attach(p, generator.generate(),
                        cookies::Transport::kIpv6Extension) &&
        cookies::extract(p)) {
      ++carriers;
    }
  }
  {  // UDP shim
    net::Packet p;
    p.tuple.proto = net::L4Proto::kUdp;
    if (cookies::attach(p, generator.generate(),
                        cookies::Transport::kUdpHeader) &&
        cookies::extract(p)) {
      ++carriers;
    }
  }
  return carriers >= 3;
}

bool probe_cookie_composition() {
  util::ManualClock clock(1000 * util::kSecond);
  // Two independent networks, each knowing only its own descriptor
  // (the video-call example of §4.5).
  cookies::CookieVerifier net_a(clock);
  cookies::CookieVerifier net_b(clock);
  auto descriptor_a = test_descriptor(7);
  auto descriptor_b = test_descriptor(8);
  net_a.add_descriptor(descriptor_a);
  net_b.add_descriptor(descriptor_b);
  cookies::CookieGenerator gen_a(descriptor_a, clock, 7);
  cookies::CookieGenerator gen_b(descriptor_b, clock, 8);

  net::Packet packet;
  packet.tuple.proto = net::L4Proto::kUdp;
  cookies::attach(packet, {gen_a.generate(), gen_b.generate()},
                  cookies::Transport::kUdpHeader);
  const auto extracted = cookies::extract(packet);
  if (!extracted || extracted->stack.size() != 2) return false;
  // Each network verifies the cookie it understands.
  bool a_ok = false;
  bool b_ok = false;
  for (const auto& cookie : extracted->stack) {
    if (net_a.verify(cookie).ok()) a_ok = true;
    if (net_b.verify(cookie).ok()) b_ok = true;
  }
  return a_ok && b_ok;
}

bool probe_cookie_delegation() {
  const auto shareable = test_descriptor(9, /*shared=*/true);
  const auto private_only = test_descriptor(10, /*shared=*/false);
  const auto granted =
      cookies::delegate_descriptor(shareable, "user-1", "cdn.example");
  const auto refused =
      cookies::delegate_descriptor(private_only, "user-1", "cdn.example");
  return granted.has_value() && !refused.has_value();
}

bool probe_diffserv_class_limit() {
  baselines::DiffServDomain domain("isp",
                                   baselines::BoundaryPolicy::kPreserve);
  int defined = 0;
  for (int dscp = 0; dscp < 200; ++dscp) {
    if (domain.define_class(static_cast<uint8_t>(dscp), "class")) {
      ++defined;
    }
  }
  return defined == 64;
}

std::vector<PropertyRow> evaluate_properties() {
  std::vector<PropertyRow> rows;
  const auto add = [&](std::string group, std::string property, bool c,
                       bool d, bool o, bool ds, bool probed,
                       std::string note) {
    rows.push_back(PropertyRow{std::move(group), std::move(property), c, d,
                               o, ds, probed, std::move(note)});
  };

  // --- Simple & Expressive ---
  add("Simple & Expressive", "arbitrary traffic <-> arbitrary state",
      probe_cookie_privacy(), false, true, false, true,
      "cookie mapped an opaque payload; DPI needs signatures; DiffServ "
      "is capped at 64 classes");
  add("Simple & Expressive", "low transaction cost", true, false, true,
      true, false,
      "DPI needs a manually curated rule per app (23/106 coverage)");
  add("Simple & Expressive", "high-level preferences", true, false, true,
      true, false, "a webpage/app is invisible to per-flow DPI rules");
  add("Simple & Expressive", "composable", probe_cookie_composition(),
      false, true, false, true,
      "two networks' cookies verified independently on one packet");
  add("Simple & Expressive", "delegatable", probe_cookie_delegation(),
      false, true, false, true,
      "shared descriptors delegate; non-shared refuse");

  // --- Tussle-Aware ---
  add("Tussle-Aware", "protection from replay, spoofing",
      probe_cookie_replay_protection() && probe_cookie_spoof_protection(),
      true, !probe_oob_spoofable(), !probe_diffserv_no_auth(), true,
      "replayed/forged cookies rejected; OOB rules and DSCP marks are "
      "spoofable");
  add("Tussle-Aware", "built-in authentication", true, false, true,
      !probe_diffserv_no_auth(), true,
      "descriptor acquisition authenticates; DSCP has no credential");
  add("Tussle-Aware", "respect privacy", probe_cookie_privacy(),
      !probe_dpi_needs_visibility(), true, true, true,
      "DPI must see hosts/content; cookies do not reveal them");
  add("Tussle-Aware", "revocable", probe_cookie_revocation(), false, true,
      false, true, "revoked descriptor stops matching immediately");

  // --- Deployable ---
  add("Deployable", "independent from headerspace, payload, path",
      probe_cookie_nat_independence(), false, false, false, true,
      "cookie survived NAT; exact OOB description did not");
  add("Deployable", "high accuracy", true, false, true, true, false,
      "Fig. 6: cookies >90% matched, 0% false");
  add("Deployable", "multiple transport mechanisms",
      probe_cookie_multi_transport(), false, false, false, true,
      "HTTP header, TLS extension, IPv6 option, UDP shim all carry it");
  add("Deployable", "low overhead", true, true, false, true, false,
      "OOB signals the control plane per flow (255 signals for one "
      "cnn.com page)");
  add("Deployable", "network delivery guarantees", true, false, true,
      false, false, "ack cookies (§4.3); DSCP marks vanish silently");

  return rows;
}

}  // namespace nnn::studies
