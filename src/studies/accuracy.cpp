#include "studies/accuracy.h"

#include <unordered_map>

#include "baselines/dpi.h"
#include "baselines/oob.h"
#include "boost_lane/agent.h"
#include "boost_lane/browser.h"
#include "controlplane/local_subscriber.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "sim/nat.h"
#include "util/clock.h"
#include "util/rng.h"
#include "workload/page_load.h"
#include "workload/websites.h"

namespace nnn::studies {

namespace {

using boost_lane::BrowserFlow;

/// One site's materialized traffic: flows plus their packet sequences.
struct SiteTraffic {
  std::string domain;
  std::vector<std::pair<BrowserFlow, std::vector<net::Packet>>> flows;
  uint64_t total_packets = 0;
};

std::vector<SiteTraffic> build_session(util::Rng& rng,
                                       net::IpAddress client) {
  boost_lane::Browser browser(rng, client);
  std::vector<SiteTraffic> session;
  const workload::WebsiteProfile sites[] = {
      workload::cnn_profile(), workload::youtube_profile(),
      workload::skai_profile()};
  for (const auto& site : sites) {
    const auto tab = browser.open_tab();
    auto load = browser.navigate(tab, site);
    SiteTraffic traffic;
    traffic.domain = site.domain;
    for (auto& bf : load.flows) {
      auto packets =
          workload::PageLoadGenerator::materialize_flow(bf.flow, rng);
      traffic.total_packets += packets.size();
      traffic.flows.emplace_back(bf, std::move(packets));
    }
    session.push_back(std::move(traffic));
  }
  return session;
}

struct BoostCount {
  std::unordered_map<std::string, uint64_t> boosted_per_site;
};

SiteAccuracy tally(const std::vector<SiteTraffic>& session,
                   const std::string& target, const BoostCount& count) {
  SiteAccuracy acc;
  acc.site = target;
  uint64_t target_total = 0;
  for (const auto& site : session) {
    if (site.domain == target) target_total = site.total_packets;
  }
  if (target_total == 0) return acc;
  uint64_t matched = 0;
  uint64_t false_pos = 0;
  for (const auto& [domain, boosted] : count.boosted_per_site) {
    if (domain == target) {
      matched += boosted;
    } else {
      false_pos += boosted;
    }
  }
  acc.target_total_packets = target_total;
  acc.matched_packets = matched;
  acc.false_packets = false_pos;
  acc.matched_pct = 100.0 * static_cast<double>(matched) / target_total;
  const uint64_t boosted_total = matched + false_pos;
  acc.false_pct = boosted_total == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(false_pos) /
                            static_cast<double>(boosted_total);
  return acc;
}

SiteAccuracy run_cookies(const std::vector<SiteTraffic>& session,
                         const std::string& target, uint64_t seed) {
  util::ManualClock clock(1'000'000'000);
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer server(clock, seed, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.service_data = "Boost";
  offer.descriptor_lifetime = 3600LL * util::kSecond;
  server.add_service(offer);
  server::JsonApi api(server);

  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 7));

  boost_lane::BoostAgent agent(clock, api, "home-1", seed + 1);
  agent.always_boost(target);

  BoostCount count;
  for (const auto& site : session) {
    for (const auto& [bf, packets] : site.flows) {
      uint64_t boosted_in_flow = 0;
      for (size_t i = 0; i < packets.size(); ++i) {
        net::Packet packet = packets[i];
        if (i == bf.flow.request_index &&
            bf.address_bar_domain == target) {
          agent.process_request(bf, packet);
        }
        nat.translate_outbound(packet);
        const auto verdict = middlebox.process(packet);
        if (verdict.action) ++boosted_in_flow;
      }
      count.boosted_per_site[site.domain] += boosted_in_flow;
    }
  }
  return tally(session, target, count);
}

// DpiEngine is pinned (its telemetry collector holds `this`), so the
// catalog is loaded into a caller-owned engine instead of returned.
void load_ndpi_catalog(baselines::DpiEngine& dpi) {
  // Popular-app signatures only; no rule exists for skai.gr ("it had
  // no rules for it", §5.4). The youtube rule includes the embedded-
  // player fingerprint that over-matches other sites.
  baselines::DpiRule cnn;
  cnn.app = "cnn.com";
  cnn.host_suffixes = {"cnn.com"};  // covers cdn.cnn.com too
  dpi.add_rule(cnn);
  baselines::DpiRule youtube;
  youtube.app = "youtube.com";
  youtube.host_suffixes = {"youtube.com", "googlevideo.com",
                           "ytimg.com"};
  youtube.payload_substrings = {"youtube.com/embed"};
  dpi.add_rule(youtube);
}

SiteAccuracy run_dpi(const std::vector<SiteTraffic>& session,
                     const std::string& target) {
  baselines::DpiEngine dpi;
  load_ndpi_catalog(dpi);
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 7));
  BoostCount count;
  for (const auto& site : session) {
    for (const auto& [bf, packets] : site.flows) {
      uint64_t boosted_in_flow = 0;
      for (net::Packet packet : packets) {
        nat.translate_outbound(packet);
        const auto app = dpi.classify(packet);
        if (app && *app == target) ++boosted_in_flow;
      }
      count.boosted_per_site[site.domain] += boosted_in_flow;
    }
  }
  return tally(session, target, count);
}

SiteAccuracy run_oob(const std::vector<SiteTraffic>& session,
                     const std::string& target, bool exact) {
  baselines::OobSwitch sw;
  baselines::OobController controller;
  controller.attach_switch(&sw);
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 7));

  // The user agent (browser vantage point, same as cookies) signals a
  // description for every flow of the target tab.
  for (const auto& site : session) {
    if (site.domain != target) continue;
    for (const auto& [bf, packets] : site.flows) {
      if (!bf.tab) continue;  // DNS/prefetch invisible to the agent
      const auto description =
          exact ? baselines::FlowDescription::exact(bf.flow.tuple)
                : baselines::FlowDescription::server_only(bf.flow.tuple);
      controller.request_service(description, "boost");
    }
  }

  BoostCount count;
  for (const auto& site : session) {
    for (const auto& [bf, packets] : site.flows) {
      uint64_t boosted_in_flow = 0;
      for (net::Packet packet : packets) {
        nat.translate_outbound(packet);
        if (sw.match(packet)) ++boosted_in_flow;
      }
      count.boosted_per_site[site.domain] += boosted_in_flow;
    }
  }
  return tally(session, target, count);
}

}  // namespace

AccuracyResult AccuracyExperiment::run() {
  util::Rng rng(seed_);
  const net::IpAddress client = net::IpAddress::v4(192, 168, 1, 10);
  const auto session = build_session(rng, client);

  AccuracyResult result;
  const std::string targets[] = {"cnn.com", "youtube.com", "skai.gr"};
  uint64_t mech_seed = seed_ + 100;
  for (const auto& target : targets) {
    result.cookies.push_back(run_cookies(session, target, mech_seed++));
    result.dpi.push_back(run_dpi(session, target));
    result.oob.push_back(run_oob(session, target, /*exact=*/false));
    result.oob_exact.push_back(run_oob(session, target, /*exact=*/true));
  }
  return result;
}

}  // namespace nnn::studies
