// The 1,000-user zero-rating survey model (Fig. 2, §2).
//
// "We asked 1,000 smartphone users their preferences on zero-rating
// through an online survey. 65% of users expressed interest ... But
// when we asked them to choose a particular application, responses
// were heavy-tailed [106 distinct apps]." Existing programs cover only
// slivers of those preferences: "Wikipedia Zero covers only 0.4% of
// our users' preferences, and Music Freedom just 11.5%."
//
// The model draws each interested respondent's choice from the app
// catalog's survey weights (the figure's y-axis) and reports the
// category/popularity tables and per-program coverage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/apps.h"

namespace nnn::studies {

struct SurveyResponse {
  uint32_t user = 0;
  bool interested = false;
  std::string app;  // empty when not interested
};

struct SurveySummary {
  size_t respondents = 0;
  size_t interested = 0;
  size_t distinct_apps = 0;
  std::map<std::string, size_t> per_app;
  std::vector<std::pair<workload::AppCategory, size_t>> category_table;
  std::vector<std::pair<workload::PopularityBucket, size_t>>
      popularity_table;
  /// Fraction of expressed preferences each program covers.
  std::map<std::string, double> program_coverage;
  /// Fraction of preferred apps a stock DPI catalog recognizes
  /// (paper: 23 of 106).
  size_t dpi_recognized_apps = 0;
};

class SurveyModel {
 public:
  struct Config {
    size_t respondents = 1000;
    double interest_rate = 0.65;
  };

  SurveyModel(Config config, uint64_t seed);

  std::vector<SurveyResponse> run();

  static SurveySummary summarize(const std::vector<SurveyResponse>& runs);

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace nnn::studies
