// Flow-completion-time experiment (Fig. 5b).
//
// "Figure 5(b) shows a scenario for a 6Mbps connection, where we
// throttle non-boosted traffic to 1Mbps", plotting the CDF of the
// completion time of a 300 KB flow under three treatments:
//   best-effort — Boost inactive; the flow shares the 6 Mb/s last
//                 mile FIFO-style with background traffic;
//   boosted     — the flow's request carried a cookie; the daemon put
//                 it in the fast lane and throttled everything else;
//   throttled   — somebody else boosted; this flow lives in the
//                 1 Mb/s-shaped best-effort band.
// Each trial builds a fresh simulated home (client, background
// clients, AP with the Boost daemon, 6 Mb/s WAN), randomizes the
// background load's phase, and measures one download.
#pragma once

#include <cstdint>
#include <vector>

namespace nnn::studies {

enum class Lane { kBestEffort = 0, kBoosted, kThrottled };

struct FctConfig {
  double wan_bps = 6e6;
  double throttle_bps = 1e6;
  uint64_t flow_bytes = 300 * 1024;
  int trials = 40;
  uint64_t seed = 42;
};

/// Flow completion times, in seconds, one per trial (unsorted).
std::vector<double> run_fct(Lane lane, const FctConfig& config);

/// CDF helper: sorted copies of the samples (x values for P = i/n).
std::vector<double> sorted_samples(std::vector<double> samples);

}  // namespace nnn::studies
