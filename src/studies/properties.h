// Table 1: property matrix of cookies vs DPI vs OOB vs DiffServ.
//
// The paper's Table 1 grades the four mechanisms on fourteen
// properties in three groups (Simple & Expressive, Tussle-Aware,
// Deployable). Where a property is demonstrable in code, the entry is
// backed by a probe that exercises the real implementation (e.g.,
// replay protection is checked by actually replaying a cookie against
// a verifier; DiffServ's missing authentication by marking a packet
// without any credential). Probes return the observed truth value and
// the bench asserts it equals the paper's cell.
#pragma once

#include <string>
#include <vector>

namespace nnn::studies {

struct PropertyRow {
  std::string group;     // "Simple & Expressive", ...
  std::string property;  // row label
  bool cookies = false;
  bool dpi = false;
  bool oob = false;
  bool diffserv = false;
  /// True when at least one cell of the row is validated by running
  /// code (the others are structural facts of the mechanism).
  bool probed = false;
  std::string note;
};

/// The Table 1 matrix, with probes executed where applicable.
std::vector<PropertyRow> evaluate_properties();

// --- individual probes (also exercised by the test suite) ---

/// A replayed cookie is rejected by the verifier.
bool probe_cookie_replay_protection();
/// A cookie with a forged signature is rejected.
bool probe_cookie_spoof_protection();
/// Any application can set DSCP bits with no credential whatsoever.
bool probe_diffserv_no_auth();
/// A third party that observed a 5-tuple can emit packets matching an
/// OOB rule (no replay/spoof protection in flow descriptions).
bool probe_oob_spoofable();
/// Revoking a descriptor stops service immediately.
bool probe_cookie_revocation();
/// The cookie mechanism works without revealing the content/host (the
/// middlebox maps a flow whose payload it cannot parse).
bool probe_cookie_privacy();
/// DPI needs the host/SNI visible: an opaque payload defeats it.
bool probe_dpi_needs_visibility();
/// Cookies survive NAT; exact OOB descriptions do not.
bool probe_cookie_nat_independence();
/// A cookie rides at least three different transports.
bool probe_cookie_multi_transport();
/// Two cookies from different networks compose on one packet.
bool probe_cookie_composition();
/// Descriptors marked shared can be delegated; unmarked cannot.
bool probe_cookie_delegation();
/// DiffServ cannot express more than 64 distinct classes.
bool probe_diffserv_class_limit();

}  // namespace nnn::studies
