// The 161-home Boost deployment model (Fig. 1, §5.3).
//
// The paper's numbers: Boost "was made available to 400 home users,
// during an internal dogfood test of the OnHub home WiFi router. 161
// users (40%) installed the extension"; of the expressed preferences
// "43% ... were unique, i.e., the preferred website was picked by only
// one user, while the median popularity index of prioritized websites
// was 223."
//
// We cannot re-run the deployment, so this model regenerates the
// preference distribution from its published shape: every installing
// user expresses 1-3 site preferences; each preference is, with
// probability `tail_share`, a personal niche site (deep in the rank
// tail — the VoIP service, the regional media site, the ticketing
// auction of §5.3) and otherwise a draw from a Zipf over the popular
// catalog. The default parameters land on the paper's aggregates; the
// bench prints paper-vs-measured.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/samplers.h"
#include "workload/websites.h"

namespace nnn::studies {

/// The heavy-tail samplers historically defined here now live in
/// workload:: (usable from benches/tests without the studies target);
/// thin aliases keep existing study/figure code building unchanged.
using PreferenceSampler = workload::PreferenceSampler;
using PreferenceDraw = workload::PreferenceDraw;
using ZipfAccess = workload::ZipfAccess;

struct PreferenceRecord {
  uint32_t user = 0;
  std::string domain;
  uint32_t alexa_rank = 0;
};

struct DeploymentSummary {
  size_t invited_users = 0;
  size_t installed_users = 0;
  size_t preferences = 0;
  size_t distinct_sites = 0;
  /// Preferences whose site no other user picked, as a fraction of all
  /// preferences (paper: 0.43).
  double unique_share = 0;
  /// Median Alexa rank over preferences (paper: 223).
  uint32_t median_rank = 0;
  /// Top sites by user count, for the Fig. 1 listing.
  std::vector<std::pair<std::string, size_t>> top_sites;
};

class DeploymentModel {
 public:
  struct Config {
    size_t invited_users = 400;
    double install_rate = 0.4025;  // -> 161 of 400
    double tail_share = 0.32;      // niche-preference probability
    double zipf_s = 1.4;           // popularity skew of head picks
    uint32_t min_prefs = 1;
    uint32_t max_prefs = 3;
  };

  DeploymentModel(Config config, uint64_t seed);

  /// Run the study once: who installs, what they boost.
  std::vector<PreferenceRecord> run();

  static DeploymentSummary summarize(
      const std::vector<PreferenceRecord>& prefs, size_t invited,
      size_t installed);

  size_t installed_users() const { return installed_users_; }

 private:
  Config config_;
  util::Rng rng_;
  size_t installed_users_ = 0;
};

}  // namespace nnn::studies
