#include "studies/fct_experiment.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "boost_lane/daemon.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "net/http.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"
#include "util/rng.h"

namespace nnn::studies {

namespace {

using boost_lane::kBestEffortBand;

/// One simulated trial; returns the measured FCT in seconds.
double run_trial(Lane lane, const FctConfig& config, uint64_t seed) {
  sim::EventLoop loop;
  util::Rng rng(seed);

  // Hosts. client = the measured household device; bg_client pulls the
  // competing background traffic; two servers on the WAN side.
  sim::Host client(net::IpAddress::v4(192, 168, 1, 10), "client");
  sim::Host bg_client(net::IpAddress::v4(192, 168, 1, 11), "bg-client");
  sim::Host server(net::IpAddress::v4(198, 51, 100, 1), "server");
  sim::Host bg_server(net::IpAddress::v4(198, 51, 100, 2), "bg-server");

  // The Boost machinery at the AP / head-end (one box, both
  // directions, as in §4.5).
  cookies::CookieVerifier verifier(loop.clock());
  boost_lane::BoostDaemon daemon(
      loop.clock(), verifier,
      {.wan_capacity_bps = config.wan_bps,
       .throttle_bps = config.throttle_bps});

  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 0xb005'7000 + seed % 1000;
  descriptor.key.assign(32, static_cast<uint8_t>(seed));
  descriptor.service_data = "Boost";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator cookie_gen(descriptor, loop.clock(), seed + 7);

  // Links. Downlink is the 6 Mb/s last mile where the contention is;
  // uplink is ample (ACK traffic).
  auto route_home = [&](net::Packet p) {
    if (p.tuple.dst_ip == client.address()) {
      client.receive(p);
    } else if (p.tuple.dst_ip == bg_client.address()) {
      bg_client.receive(p);
    }
  };
  auto route_wan = [&](net::Packet p) {
    if (p.tuple.dst_ip == server.address()) {
      server.receive(p);
    } else if (p.tuple.dst_ip == bg_server.address()) {
      bg_server.receive(p);
    }
  };
  sim::Link downlink(loop,
                     {.rate_bps = config.wan_bps,
                      .prop_delay = 15 * util::kMillisecond,
                      .bands = 2,
                      .band_capacity_bytes = 96 * 1024},
                     route_home);
  sim::Link uplink(loop,
                   {.rate_bps = config.wan_bps,
                    .prop_delay = 15 * util::kMillisecond,
                    .bands = 2,
                    .band_capacity_bytes = 96 * 1024},
                   route_wan);
  daemon.attach_links(&downlink, &uplink);

  // All traffic crosses the daemon's classifier on both directions.
  auto classify_up = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    uplink.send(std::move(p), band);
  };
  auto classify_down = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    downlink.send(std::move(p), band);
  };
  client.set_uplink(classify_up);
  bg_client.set_uplink(classify_up);
  server.set_uplink(classify_down);
  bg_server.set_uplink(classify_down);

  // --- background load: three staggered long downloads, never
  // boosted (they share whatever the best-effort class gets) ---
  std::vector<std::unique_ptr<sim::TcpSource>> bg_sources;
  std::vector<std::unique_ptr<sim::TcpSink>> bg_sinks;
  for (int i = 0; i < 2; ++i) {
    net::FiveTuple flow;
    flow.src_ip = bg_server.address();
    flow.dst_ip = bg_client.address();
    flow.src_port = static_cast<uint16_t>(8000 + i);
    flow.dst_port = static_cast<uint16_t>(52000 + i);
    flow.proto = net::L4Proto::kTcp;
    const uint64_t bytes = 600'000 + rng.next_u64(2'000'000);
    auto source = std::make_unique<sim::TcpSource>(
        loop, bg_server, flow, bytes, sim::TcpSource::Config{},
        nullptr);
    auto sink = std::make_unique<sim::TcpSink>(loop, bg_client, flow,
                                               nullptr);
    bg_server.register_handler(flow.reversed(),
                               [src = source.get()](const net::Packet& p) {
                                 if (p.ack) src->on_ack(p);
                               });
    bg_client.register_handler(flow, [snk = sink.get()](
                                         const net::Packet& p) {
      snk->on_data(p);
    });
    const util::Timestamp start =
        static_cast<util::Timestamp>(rng.next_u64(3000)) *
        util::kMillisecond;
    loop.at(start, [src = source.get()] { src->start(); });
    bg_sources.push_back(std::move(source));
    bg_sinks.push_back(std::move(sink));
  }

  // --- the throttled scenario's cause: another household member
  // boosted *their* long download, activating the 1 Mb/s throttle on
  // everything else (including the measured flow) ---
  std::unique_ptr<sim::TcpSource> boosted_member_source;
  std::unique_ptr<sim::TcpSink> boosted_member_sink;
  if (lane == Lane::kThrottled) {
    net::FiveTuple flow;
    flow.src_ip = bg_server.address();
    flow.dst_ip = bg_client.address();
    flow.src_port = 8100;
    flow.dst_port = 52100;
    flow.proto = net::L4Proto::kTcp;
    boosted_member_source = std::make_unique<sim::TcpSource>(
        loop, bg_server, flow, 40'000'000, sim::TcpSource::Config{},
        nullptr);
    boosted_member_sink =
        std::make_unique<sim::TcpSink>(loop, bg_client, flow, nullptr);
    bg_server.register_handler(
        flow.reversed(),
        [src = boosted_member_source.get()](const net::Packet& p) {
          if (p.ack) src->on_ack(p);
        });
    bg_client.register_handler(
        flow, [snk = boosted_member_sink.get()](const net::Packet& p) {
          snk->on_data(p);
        });
    loop.at(900 * util::kMillisecond, [&, flow] {
      net::Packet request;
      request.tuple = flow.reversed();
      net::http::Request http("GET", "/movie", "member.example");
      const std::string text = http.serialize();
      request.payload.assign(text.begin(), text.end());
      cookies::attach(request, cookie_gen.generate(),
                      cookies::Transport::kHttpHeader);
      bg_client.send(std::move(request));
    });
    loop.at(950 * util::kMillisecond,
            [src = boosted_member_source.get()] { src->start(); });
  }

  // --- the measured 300 KB flow ---
  net::FiveTuple flow;
  flow.src_ip = server.address();
  flow.dst_ip = client.address();
  flow.src_port = 443;
  flow.dst_port = 51000;
  flow.proto = net::L4Proto::kTcp;

  std::optional<util::Timestamp> request_sent;
  std::optional<util::Timestamp> completed;

  auto source = std::make_unique<sim::TcpSource>(
      loop, server, flow, config.flow_bytes, sim::TcpSource::Config{},
      nullptr);
  auto sink = std::make_unique<sim::TcpSink>(
      loop, client, flow,
      [&](util::Timestamp t) { completed = t; });
  server.register_handler(flow.reversed(),
                          [src = source.get()](const net::Packet& p) {
                            if (p.ack) {
                              src->on_ack(p);
                            } else if (!src->complete()) {
                              src->start();  // the HTTP request arrived
                            }
                          });
  client.register_handler(flow, [snk = sink.get()](const net::Packet& p) {
    snk->on_data(p);
  });
  // The server starts streaming when the request arrives.
  server.set_default_handler([&](const net::Packet&) {
    if (!source->complete()) source->start();
  });

  const util::Timestamp request_time =
      (2000 + static_cast<util::Timestamp>(rng.next_u64(1500))) *
      util::kMillisecond;
  loop.at(request_time, [&] {
    request_sent = loop.now();
    net::Packet request;
    request.tuple = flow.reversed();
    net::http::Request http("GET", "/video", "server.example");
    const std::string text = http.serialize();
    request.payload.assign(text.begin(), text.end());
    if (lane == Lane::kBoosted) {
      cookies::attach(request, cookie_gen.generate(),
                      cookies::Transport::kHttpHeader);
    }
    client.send(std::move(request));
  });

  // Run until the measured flow completes (cap at 10 simulated
  // minutes; background flows may still be active).
  const util::Timestamp deadline = 600LL * util::kSecond;
  while (!completed && loop.now() < deadline && loop.pending() > 0) {
    loop.step();
  }
  if (!completed || !request_sent) return -1.0;
  return static_cast<double>(*completed - *request_sent) / util::kSecond;
}

}  // namespace

std::vector<double> run_fct(Lane lane, const FctConfig& config) {
  std::vector<double> samples;
  samples.reserve(config.trials);
  for (int t = 0; t < config.trials; ++t) {
    samples.push_back(
        run_trial(lane, config, config.seed * 1000 + t));
  }
  return samples;
}

std::vector<double> sorted_samples(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples;
}

}  // namespace nnn::studies
