// Matching-accuracy experiment (Fig. 6, §5.4).
//
// "Our prototype lets us check if cookies will boost the correct
// websites; and whether they would have been correctly boosted by
// alternative implementations that do not use cookies. As an example,
// we examine three preferences from our users (youtube.com, cnn.com,
// and skai.gr)."
//
// For each target site, the experiment loads all three sites in a
// browser (so cross-site misattribution can show up), pushes every
// packet through a NAT, and asks each mechanism which packets it would
// boost:
//   cookies — the Boost agent inserts cookies on the target tab's
//             requests; the middlebox maps those flows (>90% matched:
//             the agent misses DNS/prefetch; 0% false);
//   nDPI    — a rule catalog with signatures for cnn and youtube, none
//             for skai; skai embeds YouTube's player, so the youtube
//             experiment falsely matches ~12% of skai's packets;
//   OOB     — flow descriptions from the same browser vantage point;
//             exact 5-tuples die at the NAT, so the deployable variant
//             wildcards to (server ip, port) and over-matches shared
//             CDN/ad servers (~40% false).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nnn::studies {

struct SiteAccuracy {
  std::string site;
  /// Raw counts.
  uint64_t target_total_packets = 0;  // packets in the target's load
  uint64_t matched_packets = 0;       // boosted & belonging to target
  uint64_t false_packets = 0;         // boosted but from another site
  /// Percent of the target site's packets the mechanism boosted.
  double matched_pct = 0;
  /// Share of all boosted packets that belong to *other* sites — the
  /// natural reading of the paper's "40% false positives".
  double false_pct = 0;
};

struct AccuracyResult {
  std::vector<SiteAccuracy> cookies;
  std::vector<SiteAccuracy> dpi;
  std::vector<SiteAccuracy> oob;          // server-only descriptions
  std::vector<SiteAccuracy> oob_exact;    // exact 5-tuples (die at NAT)
};

class AccuracyExperiment {
 public:
  explicit AccuracyExperiment(uint64_t seed) : seed_(seed) {}

  AccuracyResult run();

 private:
  uint64_t seed_;
};

}  // namespace nnn::studies
