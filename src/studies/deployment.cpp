#include "studies/deployment.h"

#include <algorithm>
#include <cmath>

#include "util/fmt.h"

namespace nnn::studies {

DeploymentModel::DeploymentModel(Config config, uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<PreferenceRecord> DeploymentModel::run() {
  // Catalog sorted by rank: head picks favor popular sites.
  std::vector<const workload::WebsiteProfile*> by_rank;
  for (const auto& site : workload::site_catalog()) by_rank.push_back(&site);
  std::sort(by_rank.begin(), by_rank.end(),
            [](const auto* a, const auto* b) {
              return a->alexa_rank < b->alexa_rank;
            });
  // Shared heavy-tail sampler (workload::PreferenceSampler); draw
  // order matches the historical inline sampling, so seeded runs
  // reproduce the same Fig. 1 aggregates.
  workload::PreferenceSampler::Config sampler_config;
  sampler_config.tail_share = config_.tail_share;
  sampler_config.zipf_s = config_.zipf_s;
  const workload::PreferenceSampler sampler(by_rank.size(), sampler_config);

  std::vector<PreferenceRecord> prefs;
  // The paper reports an exact outcome (161 of 400 installed, 40%);
  // the model reproduces the count exactly and randomizes everything
  // downstream of it.
  installed_users_ = static_cast<size_t>(
      std::llround(config_.invited_users * config_.install_rate));
  uint32_t niche_counter = 0;
  for (size_t u = 0; u < installed_users_; ++u) {
    const uint32_t user = static_cast<uint32_t>(u + 1);
    const int npref =
        rng_.uniform_int(static_cast<int>(config_.min_prefs),
                         static_cast<int>(config_.max_prefs));
    for (int p = 0; p < npref; ++p) {
      PreferenceRecord record;
      record.user = user;
      const workload::PreferenceDraw draw = sampler.next(rng_);
      if (draw.niche) {
        // A personal niche site nobody else visits: regional media,
        // a VoIP portal, a hobby forum. Rank deep in the tail.
        ++niche_counter;
        record.domain = util::fmt("user{}-niche{}.example", user,
                                  niche_counter);
        record.alexa_rank = draw.tail_rank;
      } else {
        const auto* site = by_rank[draw.head_rank - 1];
        record.domain = site->domain;
        record.alexa_rank = site->alexa_rank;
      }
      prefs.push_back(std::move(record));
    }
  }
  return prefs;
}

DeploymentSummary DeploymentModel::summarize(
    const std::vector<PreferenceRecord>& prefs, size_t invited,
    size_t installed) {
  DeploymentSummary s;
  s.invited_users = invited;
  s.installed_users = installed;
  s.preferences = prefs.size();

  std::map<std::string, std::vector<uint32_t>> users_per_site;
  for (const auto& p : prefs) users_per_site[p.domain].push_back(p.user);
  s.distinct_sites = users_per_site.size();

  size_t unique = 0;
  for (const auto& p : prefs) {
    auto users = users_per_site[p.domain];
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    if (users.size() == 1) ++unique;
  }
  s.unique_share =
      prefs.empty() ? 0 : static_cast<double>(unique) / prefs.size();

  std::vector<uint32_t> ranks;
  ranks.reserve(prefs.size());
  for (const auto& p : prefs) ranks.push_back(p.alexa_rank);
  if (!ranks.empty()) {
    const size_t mid = ranks.size() / 2;
    std::nth_element(ranks.begin(), ranks.begin() + mid, ranks.end());
    s.median_rank = ranks[mid];
  }

  std::vector<std::pair<std::string, size_t>> top;
  for (const auto& [domain, users] : users_per_site) {
    std::vector<uint32_t> uniq = users;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    top.emplace_back(domain, uniq.size());
  }
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > 16) top.resize(16);
  s.top_sites = std::move(top);
  return s;
}

}  // namespace nnn::studies
