#include "studies/survey.h"

#include <algorithm>

namespace nnn::studies {

SurveyModel::SurveyModel(Config config, uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<SurveyResponse> SurveyModel::run() {
  const auto& catalog = workload::app_catalog();
  // The catalog's survey weights ARE the observed histogram (the 106
  // apps were defined by the responses; Fig. 2's y-axis is the weight).
  // Expand the quotas into a pool of concrete answers and hand them to
  // interested respondents in random order. Interested users beyond
  // the pool expressed interest but named no usable single app.
  std::vector<std::string> answers;
  for (const auto& app : catalog) {
    for (uint32_t i = 0; i < app.survey_weight; ++i) {
      answers.push_back(app.name);
    }
  }
  rng_.shuffle(answers);

  std::vector<SurveyResponse> responses;
  responses.reserve(config_.respondents);
  size_t next_answer = 0;
  for (size_t u = 0; u < config_.respondents; ++u) {
    SurveyResponse r;
    r.user = static_cast<uint32_t>(u + 1);
    r.interested = rng_.chance(config_.interest_rate);
    if (r.interested && next_answer < answers.size()) {
      r.app = answers[next_answer++];
    }
    responses.push_back(std::move(r));
  }
  return responses;
}

SurveySummary SurveyModel::summarize(
    const std::vector<SurveyResponse>& responses) {
  SurveySummary s;
  s.respondents = responses.size();
  std::map<int, size_t> by_category;
  std::map<int, size_t> by_popularity;
  std::map<int, size_t> covered_weight;  // program -> preference count
  size_t preferences = 0;
  for (const auto& r : responses) {
    if (!r.interested) continue;
    ++s.interested;
    const auto* app = workload::find_app(r.app);
    if (!app) continue;
    ++preferences;
    ++s.per_app[r.app];
    ++by_category[static_cast<int>(app->category)];
    ++by_popularity[static_cast<int>(app->popularity)];
    for (const auto program : app->covered_by) {
      ++covered_weight[static_cast<int>(program)];
    }
  }
  s.distinct_apps = s.per_app.size();
  for (const auto& [cat, count] : by_category) {
    s.category_table.emplace_back(static_cast<workload::AppCategory>(cat),
                                  count);
  }
  for (const auto& [pop, count] : by_popularity) {
    s.popularity_table.emplace_back(
        static_cast<workload::PopularityBucket>(pop), count);
  }
  for (const auto& [program, count] : covered_weight) {
    s.program_coverage[workload::to_string(
        static_cast<workload::ZeroRatingProgram>(program))] =
        preferences == 0 ? 0 : static_cast<double>(count) / preferences;
  }
  // Apps named in this run that stock DPI recognizes.
  for (const auto& [name, count] : s.per_app) {
    const auto* app = workload::find_app(name);
    if (app && app->dpi_recognized) ++s.dpi_recognized_apps;
  }
  return s;
}

}  // namespace nnn::studies
