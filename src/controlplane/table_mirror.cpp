#include "controlplane/table_mirror.h"

#include <utility>

namespace nnn::controlplane {

void TableMirror::reset(uint64_t version,
                        std::vector<cookies::CookieDescriptor> live,
                        const std::vector<cookies::CookieId>& revoked) {
  store_.clear();
  store_.reserve(live.size() + revoked.size());
  for (const auto& descriptor : live) {
    store_.upsert(descriptor);
  }
  for (const cookies::CookieId id : revoked) {
    store_.revoke(id);
  }
  version_ = version;
}

bool TableMirror::apply(const Update& update) {
  if (update.version != version_ + 1) return false;
  switch (update.op) {
    case UpdateOp::kAdd:
      store_.upsert(update.descriptor);
      break;
    case UpdateOp::kRevoke:
      // Upgrades a live record in place, or plants a tombstone for an
      // id this mirror never saw granted (revoke-before-sync).
      store_.revoke(update.id);
      break;
    case UpdateOp::kRemove:
      store_.erase(update.id);
      break;
  }
  version_ = update.version;
  return true;
}

std::vector<cookies::CookieDescriptor> TableMirror::live() const {
  std::vector<cookies::CookieDescriptor> out;
  out.reserve(store_.size());
  store_.for_each([&](const cookies::DescriptorStore::Record& record) {
    if (!record.revoked) out.push_back(store_.materialize(record));
  });
  return out;
}

std::vector<cookies::CookieId> TableMirror::revoked() const {
  std::vector<cookies::CookieId> out;
  store_.for_each([&](const cookies::DescriptorStore::Record& record) {
    if (record.revoked) out.push_back(record.id);
  });
  return out;
}

std::unique_ptr<cookies::DescriptorTable> TableMirror::build() const {
  return std::make_unique<cookies::DescriptorTable>(version_, store_);
}

}  // namespace nnn::controlplane
