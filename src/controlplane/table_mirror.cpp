#include "controlplane/table_mirror.h"

#include <utility>

namespace nnn::controlplane {

namespace {

cookies::TableEntry make_entry(cookies::CookieDescriptor descriptor) {
  cookies::TableEntry entry;
  entry.schedule =
      crypto::HmacKeySchedule{util::BytesView(descriptor.key)};
  entry.descriptor = std::move(descriptor);
  return entry;
}

/// Tombstone for a revocation of an id this mirror never saw granted
/// (revoke-before-sync): no key, but the id verifies as revoked.
cookies::TableEntry make_tombstone(cookies::CookieId id) {
  cookies::TableEntry entry;
  entry.descriptor.cookie_id = id;
  entry.revoked = true;
  return entry;
}

}  // namespace

void TableMirror::reset(uint64_t version,
                        std::vector<cookies::CookieDescriptor> live,
                        const std::vector<cookies::CookieId>& revoked) {
  entries_.clear();
  entries_.reserve(live.size() + revoked.size());
  for (auto& descriptor : live) {
    const cookies::CookieId id = descriptor.cookie_id;
    entries_[id] = make_entry(std::move(descriptor));
  }
  for (const cookies::CookieId id : revoked) {
    entries_[id] = make_tombstone(id);
  }
  version_ = version;
}

bool TableMirror::apply(const Update& update) {
  if (update.version != version_ + 1) return false;
  switch (update.op) {
    case UpdateOp::kAdd:
      entries_[update.id] = make_entry(update.descriptor);
      break;
    case UpdateOp::kRevoke: {
      auto it = entries_.find(update.id);
      if (it != entries_.end()) {
        it->second.revoked = true;
      } else {
        entries_[update.id] = make_tombstone(update.id);
      }
      break;
    }
    case UpdateOp::kRemove:
      entries_.erase(update.id);
      break;
  }
  version_ = update.version;
  return true;
}

std::vector<cookies::CookieDescriptor> TableMirror::live() const {
  std::vector<cookies::CookieDescriptor> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (!entry.revoked) out.push_back(entry.descriptor);
  }
  return out;
}

std::vector<cookies::CookieId> TableMirror::revoked() const {
  std::vector<cookies::CookieId> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.revoked) out.push_back(id);
  }
  return out;
}

std::unique_ptr<cookies::DescriptorTable> TableMirror::build() const {
  return std::make_unique<cookies::DescriptorTable>(version_, entries_);
}

}  // namespace nnn::controlplane
