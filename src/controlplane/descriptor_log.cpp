#include "controlplane/descriptor_log.h"

#include <utility>

namespace nnn::controlplane {

DescriptorLog::DescriptorLog() {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void DescriptorLog::collect(telemetry::SampleBuilder& builder) const {
  builder.gauge("nnn_controlplane_log_version",
                "Latest version assigned by the descriptor log", {},
                version_gauge_.value());
  builder.gauge("nnn_controlplane_log_live",
                "Live (unrevoked, unremoved) descriptors in the log", {},
                live_gauge_.value());
  builder.counter("nnn_controlplane_updates_total",
                  "Descriptor log updates by operation", {{"op", "add"}},
                  adds_.value());
  builder.counter("nnn_controlplane_updates_total",
                  "Descriptor log updates by operation", {{"op", "revoke"}},
                  revokes_.value());
  builder.counter("nnn_controlplane_updates_total",
                  "Descriptor log updates by operation", {{"op", "remove"}},
                  removes_.value());
}

uint64_t DescriptorLog::version() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

uint64_t DescriptorLog::append(UpdateOp op, cookies::CookieId id,
                               cookies::CookieDescriptor descriptor) {
  Update update;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    update.version = ++version_;
    update.op = op;
    update.id = id;
    switch (op) {
      case UpdateOp::kAdd:
        live_[id] = descriptor;
        revoked_.erase(id);
        update.descriptor = std::move(descriptor);
        adds_.inc();
        break;
      case UpdateOp::kRevoke:
        live_.erase(id);
        revoked_.insert(id);
        revokes_.inc();
        break;
      case UpdateOp::kRemove:
        live_.erase(id);
        revoked_.erase(id);
        removes_.inc();
        break;
    }
    updates_.push_back(update);
    version_gauge_.set(static_cast<int64_t>(version_));
    live_gauge_.set(static_cast<int64_t>(live_.size()));
  }
  notify(update);
  return update.version;
}

uint64_t DescriptorLog::append_add(cookies::CookieDescriptor descriptor) {
  const cookies::CookieId id = descriptor.cookie_id;
  return append(UpdateOp::kAdd, id, std::move(descriptor));
}

uint64_t DescriptorLog::append_revoke(cookies::CookieId id) {
  return append(UpdateOp::kRevoke, id, {});
}

uint64_t DescriptorLog::append_remove(cookies::CookieId id) {
  return append(UpdateOp::kRemove, id, {});
}

size_t DescriptorLog::expire_due(util::Timestamp now) {
  std::vector<cookies::CookieId> due;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, descriptor] : live_) {
      if (descriptor.expired(now)) due.push_back(id);
    }
  }
  for (const cookies::CookieId id : due) append_remove(id);
  return due.size();
}

Snapshot DescriptorLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.version = version_;
  snap.live.reserve(live_.size());
  for (const auto& [id, descriptor] : live_) snap.live.push_back(descriptor);
  snap.revoked.assign(revoked_.begin(), revoked_.end());
  return snap;
}

std::optional<std::vector<Update>> DescriptorLog::delta_since(
    uint64_t from) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (from > version_) return std::nullopt;  // future version: nonsense
  if (from < tail_start_version_) return std::nullopt;  // compacted away
  std::vector<Update> out;
  out.reserve(static_cast<size_t>(version_ - from));
  for (const Update& update : updates_) {
    if (update.version > from) out.push_back(update);
  }
  return out;
}

void DescriptorLog::compact(size_t keep_updates) {
  const std::lock_guard<std::mutex> lock(mutex_);
  while (updates_.size() > keep_updates) {
    tail_start_version_ = updates_.front().version;
    updates_.pop_front();
  }
}

uint64_t DescriptorLog::subscribe(Observer observer) {
  const std::lock_guard<std::mutex> lock(observers_mutex_);
  const uint64_t token = next_token_++;
  observers_.emplace(token, std::move(observer));
  return token;
}

void DescriptorLog::unsubscribe(uint64_t token) {
  const std::lock_guard<std::mutex> lock(observers_mutex_);
  observers_.erase(token);
}

void DescriptorLog::notify(const Update& update) {
  // Copy the observer list so an observer may (un)subscribe reentrantly.
  std::vector<Observer> observers;
  {
    const std::lock_guard<std::mutex> lock(observers_mutex_);
    observers.reserve(observers_.size());
    for (const auto& [token, observer] : observers_) {
      observers.push_back(observer);
    }
  }
  for (const auto& observer : observers) observer(update);
}

size_t DescriptorLog::live_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

size_t DescriptorLog::retained_updates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return updates_.size();
}

}  // namespace nnn::controlplane
