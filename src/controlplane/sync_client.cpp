#include "controlplane/sync_client.h"

#include <algorithm>
#include <utility>

namespace nnn::controlplane {

SyncClient::SyncClient(const util::Clock& clock, TablePublisher& publisher,
                       Config config, SendFn send)
    : clock_(clock),
      publisher_(publisher),
      config_(config),
      send_(std::move(send)),
      rng_(config.rng_seed),
      client_label_(std::to_string(config.client_id)) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void SyncClient::collect(telemetry::SampleBuilder& builder) const {
  const telemetry::LabelSet labels{{"client", client_label_}};
  builder.gauge("nnn_controlplane_version_lag",
                "Versions the server is known to be ahead of this client",
                labels, version_lag_.value());
  builder.gauge("nnn_controlplane_applied_version",
                "DescriptorLog version this client has applied", labels,
                applied_gauge_.value());
  builder.gauge("nnn_controlplane_stale",
                "1 when no successful sync within stale_grace", labels,
                stale_gauge_.value());
  builder.gauge("nnn_controlplane_breaker_state",
                "Sync circuit breaker: 0 closed, 1 open, 2 half-open",
                labels, breaker_gauge_.value());
  builder.counter("nnn_controlplane_retries_total",
                  "Sync requests that timed out and were retried", labels,
                  retries_.value());
  builder.counter("nnn_controlplane_snapshots_applied_total",
                  "Full-table snapshots applied", labels,
                  snapshots_applied_.value());
  builder.counter("nnn_controlplane_deltas_applied_total",
                  "Incremental deltas applied", labels,
                  deltas_applied_.value());
  builder.counter("nnn_controlplane_breaker_opens_total",
                  "Times the sync circuit breaker tripped open", labels,
                  breaker_opens_.value());
  builder.counter("nnn_controlplane_restores_total",
                  "Cold starts recovered from a table checkpoint", labels,
                  restores_.value());
  builder.histogram("nnn_controlplane_sync_rtt_micros",
                    "Request-to-response round trip in microseconds",
                    labels, sync_rtt_micros_);
  // One gauge per degradation reason: "still enforcing, but on terms
  // an operator should know about". All read from atomic cells so the
  // exporter can run while the control thread mutates.
  static constexpr std::string_view kDegradedHelp =
      "1 while degraded for the labeled reason, else 0";
  builder.gauge("nnn_degraded", kDegradedHelp,
                telemetry::LabelSet{{"client", client_label_},
                                    {"reason", "stale"}},
                stale_gauge_.value());
  builder.gauge("nnn_degraded", kDegradedHelp,
                telemetry::LabelSet{{"client", client_label_},
                                    {"reason", "breaker-open"}},
                breaker_gauge_.value() != 0 ? 1 : 0);
  builder.gauge("nnn_degraded", kDegradedHelp,
                telemetry::LabelSet{{"client", client_label_},
                                    {"reason", "restored-table"}},
                restored_gauge_.value());
}

util::Timestamp SyncClient::with_jitter(util::Timestamp base) {
  const double factor =
      rng_.uniform_real(1.0 - config_.jitter, 1.0 + config_.jitter);
  return static_cast<util::Timestamp>(static_cast<double>(base) * factor);
}

void SyncClient::start() {
  if (started_) return;
  started_ = true;
  // The grace clock starts now: a client that never reaches the server
  // goes stale stale_grace after start, not at time zero.
  last_success_ = clock_.now();
  send_request(clock_.now());
}

void SyncClient::send_request(util::Timestamp now) {
  // An open breaker sends nothing until its backoff elapses; the first
  // request after that IS the half-open probe.
  if (breaker_ == BreakerState::kOpen) {
    breaker_ = BreakerState::kHalfOpen;
    breaker_gauge_.set(static_cast<int64_t>(breaker_));
  }
  awaiting_response_ = true;
  last_request_ = now;
  current_timeout_ = config_.response_timeout;
  send_(encode(SyncRequest{config_.client_id, mirror_.version()}));
}

void SyncClient::publish() {
  applied_gauge_.set(static_cast<int64_t>(mirror_.version()));
  publisher_.publish(mirror_.build());
}

util::Timestamp SyncClient::current_backoff() const {
  util::Timestamp backoff = config_.backoff_base;
  for (uint32_t i = 1;
       i < consecutive_failures_ && backoff < config_.backoff_max; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, config_.backoff_max);
}

void SyncClient::on_success(util::Timestamp now) {
  if (awaiting_response_) {
    sync_rtt_micros_.record(static_cast<uint64_t>(
        std::max<util::Timestamp>(0, now - last_request_)));
  }
  awaiting_response_ = false;
  last_success_ = now;
  stale_ = false;
  stale_gauge_.set(0);
  restored_active_ = false;
  restored_gauge_.set(0);
  if (breaker_ == BreakerState::kClosed) {
    consecutive_failures_ = 0;
  } else {
    // The regression this guards: a flapping link lets one response
    // through and the old code restarted backoff from the minimum,
    // hammering a server that is still down. A single success now only
    // decays the failure level by one; the breaker closes — and the
    // slate wipes clean — only after a genuine success streak.
    ++success_streak_;
    if (consecutive_failures_ > 0) --consecutive_failures_;
    if (success_streak_ >= config_.breaker_success_threshold) {
      breaker_ = BreakerState::kClosed;
      breaker_gauge_.set(0);
      consecutive_failures_ = 0;
    }
  }
  version_lag_.set(static_cast<int64_t>(
      server_version_ > mirror_.version()
          ? server_version_ - mirror_.version()
          : 0));
  // Behind the server (a delta gap forced a re-poll, or a heartbeat
  // reported a newer version): catch up immediately instead of waiting
  // out a poll interval.
  next_poll_ = server_version_ > mirror_.version()
                   ? now
                   : now + with_jitter(config_.poll_interval);
}

void SyncClient::on_failure(util::Timestamp now) {
  awaiting_response_ = false;
  ++consecutive_failures_;
  success_streak_ = 0;
  retries_.inc();
  count_error({ErrorDomain::kSync, ErrorCode::kTimeout, "sync response"});
  if (breaker_ == BreakerState::kHalfOpen) {
    // The probe died; back to open for another full backoff.
    breaker_ = BreakerState::kOpen;
    breaker_gauge_.set(static_cast<int64_t>(breaker_));
  } else if (breaker_ == BreakerState::kClosed &&
             consecutive_failures_ >= config_.breaker_failure_threshold) {
    breaker_ = BreakerState::kOpen;
    breaker_gauge_.set(static_cast<int64_t>(breaker_));
    breaker_opens_.inc();
    count_error({ErrorDomain::kSync, ErrorCode::kUnavailable,
                 "breaker open"});
  }
  // Back off exponentially (capped), jittered so a fleet of clients
  // does not re-converge on the recovering server in sync.
  next_poll_ = now + with_jitter(current_backoff());
}

SavedTable SyncClient::export_table() const {
  return SavedTable{mirror_.version(), clock_.now(), mirror_.live(),
                    mirror_.revoked()};
}

bool SyncClient::restore(const SavedTable& saved) {
  const util::Timestamp age =
      std::max<util::Timestamp>(0, clock_.now() - saved.saved_at);
  if (age > config_.restore_budget) {
    // Enforcing arbitrarily old revocation state is worse than an
    // empty table that fails open until the first snapshot lands.
    count_error({ErrorDomain::kSync, ErrorCode::kStale,
                 "restore checkpoint"});
    return false;
  }
  mirror_.reset(saved.version, saved.live, saved.revoked);
  publish();
  restored_active_ = true;
  restored_gauge_.set(1);
  restores_.inc();
  return true;
}

void SyncClient::on_datagram(util::BytesView datagram) {
  if (!started_) return;
  const auto message = decode_message(datagram);
  if (!message) {
    // The decoder tallied the failure; keep the typed detail for
    // operators and tests. A garbled response is not a success, but it
    // is also not a timeout — the timer decides that.
    last_error_ = message.error();
    return;
  }
  const util::Timestamp now = clock_.now();

  if (const auto* heartbeat = std::get_if<HeartbeatMessage>(&*message)) {
    server_version_ = std::max(server_version_, heartbeat->version);
    on_success(now);
    return;
  }
  if (const auto* snapshot = std::get_if<SnapshotMessage>(&*message)) {
    server_version_ = std::max(server_version_, snapshot->version);
    // A reordered older snapshot must not roll the table back.
    if (snapshot->version >= mirror_.version()) {
      mirror_.reset(snapshot->version, snapshot->live, snapshot->revoked);
      publish();
      snapshots_applied_.inc();
    }
    on_success(now);
    return;
  }
  if (const auto* delta = std::get_if<DeltaMessage>(&*message)) {
    server_version_ = std::max(server_version_, delta->to_version);
    if (delta->from_version == mirror_.version()) {
      bool changed = false;
      for (const Update& update : delta->updates) {
        changed = mirror_.apply(update) || changed;
      }
      if (changed) publish();
      deltas_applied_.inc();
    }
    // from_version > applied: a gap (a response for a poll we since
    // superseded). from_version < applied: a duplicate. Either way the
    // channel is alive; on_success re-polls immediately when the
    // server is known to be ahead.
    on_success(now);
    return;
  }
  // A SyncRequest echoed at a client: not ours to answer.
}

void SyncClient::tick() {
  if (!started_) return;
  const util::Timestamp now = clock_.now();
  if (awaiting_response_ && now - last_request_ >= current_timeout_) {
    on_failure(now);
  }
  if (!awaiting_response_ && now >= next_poll_) {
    send_request(now);
  }
  const bool stale_now = now - last_success_ > config_.stale_grace;
  if (stale_now != stale_) {
    stale_ = stale_now;
    stale_gauge_.set(stale_ ? 1 : 0);
  }
}

util::Timestamp SyncClient::next_wakeup() const {
  if (!started_) return 0;
  if (awaiting_response_) return last_request_ + current_timeout_;
  return next_poll_;
}

}  // namespace nnn::controlplane
