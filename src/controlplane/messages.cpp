#include "controlplane/messages.h"

#include <string>
#include <utility>

#include "net/wire.h"

namespace nnn::controlplane {

namespace {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;

constexpr uint8_t kFlagReverseFlow = 1u << 0;
constexpr uint8_t kFlagShared = 1u << 1;
constexpr uint8_t kFlagAckCookie = 1u << 2;
constexpr uint8_t kFlagDeliveryGuarantee = 1u << 3;

constexpr uint8_t kMaxTransport =
    static_cast<uint8_t>(cookies::Transport::kQuicTransportParam);

/// Build, tally, and wrap a messages-domain error (payload problems;
/// envelope problems keep their wire-domain Error from
/// net::read_sync_frame).
Unexpected<Error> msg_error(ErrorCode code, std::string_view detail = {}) {
  const Error error{ErrorDomain::kMessages, code, detail};
  count_error(error);
  return unexpected(error);
}

void encode_string(ByteWriter& w, const std::string& s) {
  w.u16(static_cast<uint16_t>(s.size()));
  w.raw(std::string_view(s));
}

std::optional<std::string> decode_string(ByteReader& r) {
  const auto len = r.u16();
  if (!len) return std::nullopt;
  const auto view = r.view(*len);
  if (!view) return std::nullopt;
  return util::to_string(*view);
}

void encode_update(ByteWriter& w, const Update& update) {
  w.u64(update.version);
  w.u8(static_cast<uint8_t>(update.op));
  w.u64(update.id);
  if (update.op == UpdateOp::kAdd) encode_descriptor(w, update.descriptor);
}

Expected<Update> decode_update(ByteReader& r) {
  Update update;
  const auto version = r.u64();
  const auto op = r.u8();
  const auto id = r.u64();
  if (!version || !op || !id) {
    return msg_error(ErrorCode::kTruncated, "update");
  }
  if (*op > static_cast<uint8_t>(UpdateOp::kRemove)) {
    return msg_error(ErrorCode::kMalformed, "update op");
  }
  update.version = *version;
  update.op = static_cast<UpdateOp>(*op);
  update.id = *id;
  if (update.op == UpdateOp::kAdd) {
    auto descriptor = decode_descriptor(r);
    if (!descriptor) return unexpected(descriptor.error());
    if (descriptor->cookie_id != update.id) {
      return msg_error(ErrorCode::kMalformed, "update id mismatch");
    }
    update.descriptor = std::move(*descriptor);
  }
  return update;
}

Bytes encode_payload(const SyncRequest& m) {
  Bytes out;
  ByteWriter w(out);
  w.u64(m.client_id);
  w.u64(m.have_version);
  return out;
}

Bytes encode_payload(const SnapshotMessage& m) {
  Bytes out;
  ByteWriter w(out);
  w.u64(m.version);
  w.u32(static_cast<uint32_t>(m.live.size()));
  for (const auto& descriptor : m.live) encode_descriptor(w, descriptor);
  w.u32(static_cast<uint32_t>(m.revoked.size()));
  for (const cookies::CookieId id : m.revoked) w.u64(id);
  return out;
}

Bytes encode_payload(const DeltaMessage& m) {
  Bytes out;
  ByteWriter w(out);
  w.u64(m.from_version);
  w.u64(m.to_version);
  w.u32(static_cast<uint32_t>(m.updates.size()));
  for (const Update& update : m.updates) encode_update(w, update);
  return out;
}

Bytes encode_payload(const HeartbeatMessage& m) {
  Bytes out;
  ByteWriter w(out);
  w.u64(m.version);
  return out;
}

Expected<Message> decode_payload(MessageType type, BytesView payload) {
  ByteReader r(payload);
  switch (type) {
    case MessageType::kSyncRequest: {
      const auto client_id = r.u64();
      const auto have_version = r.u64();
      if (!client_id || !have_version) {
        return msg_error(ErrorCode::kTruncated, "sync request");
      }
      return Message{SyncRequest{*client_id, *have_version}};
    }
    case MessageType::kSnapshot: {
      SnapshotMessage m;
      const auto version = r.u64();
      const auto live_count = r.u32();
      if (!version || !live_count) {
        return msg_error(ErrorCode::kTruncated, "snapshot header");
      }
      m.version = *version;
      m.live.reserve(*live_count);
      for (uint32_t i = 0; i < *live_count; ++i) {
        auto descriptor = decode_descriptor(r);
        if (!descriptor) return unexpected(descriptor.error());
        m.live.push_back(std::move(*descriptor));
      }
      const auto revoked_count = r.u32();
      if (!revoked_count) {
        return msg_error(ErrorCode::kTruncated, "snapshot revoked");
      }
      m.revoked.reserve(*revoked_count);
      for (uint32_t i = 0; i < *revoked_count; ++i) {
        const auto id = r.u64();
        if (!id) return msg_error(ErrorCode::kTruncated, "snapshot revoked");
        m.revoked.push_back(*id);
      }
      return Message{std::move(m)};
    }
    case MessageType::kDelta: {
      DeltaMessage m;
      const auto from_version = r.u64();
      const auto to_version = r.u64();
      const auto count = r.u32();
      if (!from_version || !to_version || !count) {
        return msg_error(ErrorCode::kTruncated, "delta header");
      }
      m.from_version = *from_version;
      m.to_version = *to_version;
      m.updates.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        auto update = decode_update(r);
        if (!update) return unexpected(update.error());
        m.updates.push_back(std::move(*update));
      }
      return Message{std::move(m)};
    }
    case MessageType::kHeartbeat: {
      const auto version = r.u64();
      if (!version) return msg_error(ErrorCode::kTruncated, "heartbeat");
      return Message{HeartbeatMessage{*version}};
    }
  }
  return msg_error(ErrorCode::kUnknownType);
}

}  // namespace

void encode_descriptor(ByteWriter& w,
                       const cookies::CookieDescriptor& descriptor) {
  w.u64(descriptor.cookie_id);
  w.u16(static_cast<uint16_t>(descriptor.key.size()));
  w.raw(BytesView(descriptor.key));
  encode_string(w, descriptor.service_data);
  const cookies::Attributes& a = descriptor.attributes;
  w.u8(static_cast<uint8_t>(a.granularity));
  uint8_t flags = 0;
  if (a.reverse_flow) flags |= kFlagReverseFlow;
  if (a.shared) flags |= kFlagShared;
  if (a.ack_cookie) flags |= kFlagAckCookie;
  if (a.delivery_guarantee) flags |= kFlagDeliveryGuarantee;
  w.u8(flags);
  w.u8(static_cast<uint8_t>(a.transports.size()));
  for (const cookies::Transport t : a.transports) {
    w.u8(static_cast<uint8_t>(t));
  }
  w.u8(a.expires_at.has_value() ? 1 : 0);
  w.u64(a.expires_at ? static_cast<uint64_t>(*a.expires_at) : 0);
  w.u8(a.mapping_ttl.has_value() ? 1 : 0);
  w.u64(a.mapping_ttl ? static_cast<uint64_t>(*a.mapping_ttl) : 0);
  w.u16(static_cast<uint16_t>(a.extra.size()));
  for (const auto& [key, value] : a.extra) {
    encode_string(w, key);
    encode_string(w, value);
  }
}

Expected<cookies::CookieDescriptor> decode_descriptor(ByteReader& r) {
  cookies::CookieDescriptor d;
  const auto id = r.u64();
  if (!id) return msg_error(ErrorCode::kTruncated, "descriptor id");
  d.cookie_id = *id;
  const auto key_len = r.u16();
  if (!key_len) return msg_error(ErrorCode::kTruncated, "descriptor key");
  auto key = r.raw(*key_len);
  if (!key) return msg_error(ErrorCode::kTruncated, "descriptor key");
  d.key = std::move(*key);
  auto service_data = decode_string(r);
  if (!service_data) {
    return msg_error(ErrorCode::kTruncated, "descriptor service data");
  }
  d.service_data = std::move(*service_data);

  cookies::Attributes& a = d.attributes;
  const auto granularity = r.u8();
  const auto flags = r.u8();
  if (!granularity || !flags) {
    return msg_error(ErrorCode::kTruncated, "descriptor attributes");
  }
  if (*granularity > static_cast<uint8_t>(cookies::Granularity::kPacket)) {
    return msg_error(ErrorCode::kMalformed, "descriptor granularity");
  }
  a.granularity = static_cast<cookies::Granularity>(*granularity);
  a.reverse_flow = *flags & kFlagReverseFlow;
  a.shared = *flags & kFlagShared;
  a.ack_cookie = *flags & kFlagAckCookie;
  a.delivery_guarantee = *flags & kFlagDeliveryGuarantee;

  const auto transport_count = r.u8();
  if (!transport_count) {
    return msg_error(ErrorCode::kTruncated, "descriptor transports");
  }
  a.transports.reserve(*transport_count);
  for (uint8_t i = 0; i < *transport_count; ++i) {
    const auto t = r.u8();
    if (!t) return msg_error(ErrorCode::kTruncated, "descriptor transports");
    if (*t > kMaxTransport) {
      return msg_error(ErrorCode::kMalformed, "descriptor transport");
    }
    a.transports.push_back(static_cast<cookies::Transport>(*t));
  }

  const auto has_expires = r.u8();
  const auto expires = r.u64();
  if (!has_expires || !expires) {
    return msg_error(ErrorCode::kTruncated, "descriptor expiry");
  }
  if (*has_expires) a.expires_at = static_cast<util::Timestamp>(*expires);
  const auto has_ttl = r.u8();
  const auto ttl = r.u64();
  if (!has_ttl || !ttl) {
    return msg_error(ErrorCode::kTruncated, "descriptor ttl");
  }
  if (*has_ttl) a.mapping_ttl = static_cast<util::Timestamp>(*ttl);

  const auto extra_count = r.u16();
  if (!extra_count) return msg_error(ErrorCode::kTruncated, "descriptor extra");
  for (uint16_t i = 0; i < *extra_count; ++i) {
    auto key_str = decode_string(r);
    if (!key_str) return msg_error(ErrorCode::kTruncated, "descriptor extra");
    auto value = decode_string(r);
    if (!value) return msg_error(ErrorCode::kTruncated, "descriptor extra");
    a.extra.emplace(std::move(*key_str), std::move(*value));
  }
  return d;
}

util::Bytes encode(const Message& message) {
  Bytes out;
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        MessageType type;
        if constexpr (std::is_same_v<T, SyncRequest>) {
          type = MessageType::kSyncRequest;
        } else if constexpr (std::is_same_v<T, SnapshotMessage>) {
          type = MessageType::kSnapshot;
        } else if constexpr (std::is_same_v<T, DeltaMessage>) {
          type = MessageType::kDelta;
        } else {
          type = MessageType::kHeartbeat;
        }
        const Bytes payload = encode_payload(m);
        net::append_sync_frame(out, static_cast<uint8_t>(type),
                               BytesView(payload));
      },
      message);
  return out;
}

Expected<Message> decode_message(ByteReader& r) {
  if (r.done()) return msg_error(ErrorCode::kTruncated, "empty datagram");
  while (!r.done()) {
    const auto frame = net::read_sync_frame(r);
    // Envelope failures keep their wire-domain Error (already tallied).
    if (!frame) return unexpected(frame.error());
    if (frame->type < static_cast<uint8_t>(MessageType::kSyncRequest) ||
        frame->type > static_cast<uint8_t>(MessageType::kHeartbeat)) {
      continue;  // unknown type: envelope told us how far to skip
    }
    return decode_payload(static_cast<MessageType>(frame->type),
                          frame->payload);
  }
  return msg_error(ErrorCode::kUnknownType, "no known frame");
}

Expected<Message> decode_message(BytesView datagram) {
  ByteReader r(datagram);
  return decode_message(r);
}

std::optional<Message> decode(ByteReader& r) {
  return decode_message(r).to_optional();
}

std::optional<Message> decode(BytesView datagram) {
  return decode_message(datagram).to_optional();
}

}  // namespace nnn::controlplane
