// Server endpoint of the snapshot/delta sync protocol.
//
// Stateless per request beyond remembering each client's last reported
// version (the regulator-facing lag signal): a SyncRequest at the
// current version gets a Heartbeat, a servable gap gets a Delta, and
// anything else — fresh client, compacted-away history, or a gap
// bigger than config.max_delta_updates — gets a full Snapshot.
// Transport-agnostic: handle() maps one request datagram to one
// response datagram; the caller moves the bytes (sim::Link, a real
// socket, or a plain function call in tests).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "controlplane/descriptor_log.h"
#include "controlplane/messages.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::controlplane {

class SyncServer {
 public:
  struct Config {
    /// Gaps larger than this are served as snapshots — shipping the
    /// whole table is cheaper than a delta that replays most of it.
    size_t max_delta_updates = 4096;
  };

  explicit SyncServer(DescriptorLog& log);
  SyncServer(DescriptorLog& log, Config config);
  SyncServer(const SyncServer&) = delete;
  SyncServer& operator=(const SyncServer&) = delete;

  /// Process one request datagram. nullopt when the datagram is not a
  /// well-formed SyncRequest (anything else is dropped, never answered
  /// — the client's timeout handles it).
  std::optional<util::Bytes> handle(util::BytesView datagram);

  /// Hook the server into a fault injector (PR 5): during an injected
  /// sync outage handle() swallows every request — exactly the nullopt
  /// a malformed datagram gets, so clients exercise their real timeout
  /// and breaker paths. Both pointers null-detach; `clock` is read
  /// only to evaluate the schedule and must outlive the server.
  void set_fault_injector(const fault::Injector* injector,
                          const util::Clock* clock) {
    injector_ = injector;
    fault_clock_ = clock;
  }

  /// Lowest version any known client has reported (the worst lag);
  /// nullopt before the first request.
  std::optional<uint64_t> min_client_version() const;

 private:
  void collect(telemetry::SampleBuilder& builder) const;

  DescriptorLog& log_;
  const Config config_;
  const fault::Injector* injector_ = nullptr;
  const util::Clock* fault_clock_ = nullptr;
  mutable std::mutex mutex_;
  std::map<uint64_t, uint64_t> client_versions_;

  telemetry::Counter requests_;
  telemetry::Counter snapshots_served_;
  telemetry::Counter deltas_served_;
  telemetry::Counter heartbeats_served_;
  telemetry::Gauge clients_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::controlplane
