// In-process descriptor distribution for co-located deployments.
//
// The examples and studies run the cookie server and one middlebox in
// a single process and thread. They still must not reach into the
// verifier with a back-pointer (the bug this subsystem removes);
// instead a LocalSubscriber replays the log's current snapshot into a
// verifier and then forwards every subsequent update — the same
// add/revoke/remove stream a remote SyncClient would deliver, minus
// the wire. Single-threaded: the observer runs on the thread that
// appends to the log, which must be the thread that owns the verifier.
#pragma once

#include "controlplane/descriptor_log.h"
#include "cookies/verifier.h"

namespace nnn::controlplane {

class LocalSubscriber {
 public:
  /// Replays log's snapshot into `verifier`, then tracks updates until
  /// destruction. Both must outlive the subscriber.
  LocalSubscriber(DescriptorLog& log, cookies::CookieVerifier& verifier);
  ~LocalSubscriber();
  LocalSubscriber(const LocalSubscriber&) = delete;
  LocalSubscriber& operator=(const LocalSubscriber&) = delete;

 private:
  void apply(const Update& update);

  DescriptorLog& log_;
  cookies::CookieVerifier& verifier_;
  uint64_t token_ = 0;
};

}  // namespace nnn::controlplane
