// The middlebox's working copy of the descriptor table.
//
// A SyncClient feeds snapshots and deltas into a TableMirror; build()
// materializes an immutable cookies::DescriptorTable ready for
// TablePublisher. The mirror keeps state in a cookies::DescriptorStore
// — compact 64-byte records behind an open-addressing index, profiles
// interned — so a million-descriptor mirror costs table bytes, not
// materialized descriptors, and build() is a store copy rather than a
// rehash. HMAC key schedules are NOT precomputed here anymore: they
// are a verifier-local working set (cookies::HotTier) built lazily for
// descriptors traffic actually hits. The mirror itself is plain
// single-threaded state owned by the client's control thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controlplane/descriptor_log.h"
#include "cookies/descriptor.h"
#include "cookies/descriptor_store.h"
#include "cookies/descriptor_table.h"

namespace nnn::controlplane {

class TableMirror {
 public:
  /// Replace everything with a snapshot's contents.
  void reset(uint64_t version,
             std::vector<cookies::CookieDescriptor> live,
             const std::vector<cookies::CookieId>& revoked);

  /// Apply one update; the caller has already checked version
  /// continuity. Returns false (and leaves the mirror unchanged) on an
  /// out-of-order version.
  bool apply(const Update& update);

  uint64_t version() const { return version_; }
  size_t size() const { return store_.size(); }

  /// Current contents for checkpointing (SyncClient cold-start
  /// restore): live descriptors and revoked ids, order unspecified.
  /// Feeding them back through reset() reproduces this mirror.
  std::vector<cookies::CookieDescriptor> live() const;
  std::vector<cookies::CookieId> revoked() const;

  /// Materialize the current state as an immutable table (copies the
  /// compact store, not N descriptors).
  std::unique_ptr<cookies::DescriptorTable> build() const;

 private:
  uint64_t version_ = 0;
  cookies::DescriptorStore store_;
};

}  // namespace nnn::controlplane
