// Epoch-based table publication: lock-free reads, safe reclamation.
//
// The packet path must never take a lock (§4.6 — verify_batch is the
// per-core budget), yet descriptor tables change underneath it. The
// contract here:
//
//   publisher (one control thread)          readers (worker threads)
//   ------------------------------          ------------------------
//   build DescriptorTable off hot path      t = reader.acquire()
//   stamp epoch, atomic swap current        verify a burst against t
//   retire previous table                   ... next burst: re-acquire
//   reclaim when no reader announces it     park() when idle/stopping
//
// Reader::acquire() announces the table it is about to use in a
// per-reader hazard slot and re-validates that the announced table is
// still current (the announce/validate loop closes the race where the
// publisher swaps and scans between a reader's load and its store).
// A worker passes a quiescent point by either announcing a *newer*
// table (its next acquire) or parking; the publisher frees a retired
// table once no slot announces it. Swap cost on the reader side is
// two seq_cst operations per *burst*, amortized to well under a
// nanosecond per packet at batch 32 — the "within 5% of steady state"
// acceptance bar comes from this shape.
//
// Threading: publish()/try_reclaim() are single-threaded (one control
// thread — the SyncClient's driver or the pool's owner);
// register_reader() may race with publishes but not with reclaim;
// acquire()/park() run on the reader's own thread. The publisher must
// outlive its readers' last acquire/park.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "cookies/descriptor_table.h"
#include "telemetry/metrics.h"

namespace nnn::controlplane {

class TablePublisher {
  struct Slot;

 public:
  /// A worker thread's handle into the publisher. Default-constructed
  /// readers are detached (acquire() returns nullptr); attach with
  /// TablePublisher::register_reader(). Copyable like a pointer — all
  /// copies share the one hazard slot, so only one thread may use them.
  class Reader {
   public:
    Reader() = default;

    bool attached() const { return slot_ != nullptr; }

    /// Pin and return the current table (nullptr before the first
    /// publish, or when detached). The table stays valid until the
    /// next acquire() or park() on this reader.
    const cookies::DescriptorTable* acquire() {
      if (slot_ == nullptr) return nullptr;
      const cookies::DescriptorTable* table =
          publisher_->current_.load(std::memory_order_seq_cst);
      // Announce-then-revalidate: if the publisher swapped (and maybe
      // scanned) between our load and our store, loop and re-announce.
      while (true) {
        slot_->hazard.store(table, std::memory_order_seq_cst);
        const cookies::DescriptorTable* again =
            publisher_->current_.load(std::memory_order_seq_cst);
        if (again == table) return table;
        table = again;
      }
    }

    /// Quiescent point: this reader holds no table. Call before
    /// blocking, idling, or thread exit.
    void park() {
      if (slot_ != nullptr) {
        slot_->hazard.store(nullptr, std::memory_order_seq_cst);
      }
    }

   private:
    friend class TablePublisher;
    Reader(TablePublisher* publisher, Slot* slot)
        : publisher_(publisher), slot_(slot) {}

    TablePublisher* publisher_ = nullptr;
    Slot* slot_ = nullptr;
  };

  TablePublisher();
  TablePublisher(const TablePublisher&) = delete;
  TablePublisher& operator=(const TablePublisher&) = delete;
  ~TablePublisher();

  /// Allocate a hazard slot for one reader thread. Slots are never
  /// recycled (a pool registers its workers once at bind time).
  Reader register_reader();

  /// Swap `table` in as current (stamping its epoch), retire the
  /// previous table, and opportunistically reclaim retired tables no
  /// reader still announces. Single control thread only.
  void publish(std::unique_ptr<cookies::DescriptorTable> table);

  /// Sweep retired tables again (publish() already does); exposed so a
  /// driver can reclaim after workers parked. Returns tables freed.
  size_t try_reclaim();

  /// Current table without pinning — for control-path inspection only
  /// (version display, tests); never verify against this.
  const cookies::DescriptorTable* peek() const {
    return current_.load(std::memory_order_seq_cst);
  }

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  size_t retired_count() const;

 private:
  /// One reader's hazard announcement, padded so neighbouring readers
  /// never share a cache line.
  struct alignas(64) Slot {
    std::atomic<const cookies::DescriptorTable*> hazard{nullptr};
  };

  void collect(telemetry::SampleBuilder& builder) const;

  std::atomic<const cookies::DescriptorTable*> current_{nullptr};
  /// Ownership of the table current_ points at.
  std::unique_ptr<const cookies::DescriptorTable> current_owner_;
  /// Swapped-out tables awaiting proof of quiescence.
  std::vector<std::unique_ptr<const cookies::DescriptorTable>> retired_;
  std::atomic<uint64_t> epoch_{0};

  /// Hazard slots; deque gives stable addresses as readers register.
  mutable std::mutex slots_mutex_;
  std::deque<Slot> slots_;

  telemetry::Counter swaps_;
  telemetry::Counter swap_stalls_;
  telemetry::Gauge retired_gauge_;
  telemetry::Gauge table_version_;
  /// Published-table state gauges, computed on the control thread in
  /// publish() just before the swap (a sampled probe scan over the
  /// store — off the hot path by construction).
  telemetry::Gauge table_entries_;
  telemetry::Gauge table_bytes_;
  telemetry::Gauge table_load_pct_;
  telemetry::Gauge table_probe_p99_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::controlplane
