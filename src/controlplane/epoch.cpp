#include "controlplane/epoch.h"

#include <algorithm>

namespace nnn::controlplane {

TablePublisher::TablePublisher() {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

TablePublisher::~TablePublisher() {
  // Readers are gone by contract; retired_ and current_owner_ free here.
}

void TablePublisher::collect(telemetry::SampleBuilder& builder) const {
  builder.counter("nnn_controlplane_swaps_total",
                  "Descriptor tables published (epoch swaps)", {},
                  swaps_.value());
  builder.counter("nnn_controlplane_swap_stalls_total",
                  "Reclaim sweeps that found a retired table still pinned",
                  {}, swap_stalls_.value());
  builder.gauge("nnn_controlplane_retired_tables",
                "Swapped-out tables awaiting reader quiescence", {},
                retired_gauge_.value());
  builder.gauge("nnn_controlplane_table_version",
                "DescriptorLog version of the currently published table",
                {}, table_version_.value());
  builder.gauge("nnn_state_descriptor_entries",
                "Descriptor records in the published table", {},
                table_entries_.value());
  builder.gauge("nnn_state_descriptor_bytes",
                "Bytes held by the published table's descriptor store", {},
                table_bytes_.value());
  builder.gauge("nnn_state_descriptor_load_pct",
                "Published table index occupancy in percent", {},
                table_load_pct_.value());
  builder.gauge("nnn_state_descriptor_probe_p99",
                "p99 sampled probe length (group steps) in the published "
                "table index",
                {}, table_probe_p99_.value());
}

TablePublisher::Reader TablePublisher::register_reader() {
  const std::lock_guard<std::mutex> lock(slots_mutex_);
  slots_.emplace_back();
  return Reader(this, &slots_.back());
}

void TablePublisher::publish(std::unique_ptr<cookies::DescriptorTable> table) {
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  table->set_epoch(epoch);
  table_version_.set(static_cast<int64_t>(table->version()));
  const cookies::DescriptorStore& store = table->store();
  table_entries_.set(static_cast<int64_t>(store.size()));
  table_bytes_.set(static_cast<int64_t>(store.memory_bytes()));
  table_load_pct_.set(static_cast<int64_t>(store.index_load_pct()));
  table_probe_p99_.set(
      static_cast<int64_t>(store.probe_stats(4096).p99));
  const cookies::DescriptorTable* raw = table.get();
  // seq_cst store pairs with the readers' announce/revalidate loop.
  current_.store(raw, std::memory_order_seq_cst);
  swaps_.inc();
  if (current_owner_ != nullptr) {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    retired_.push_back(std::move(current_owner_));
  }
  current_owner_ = std::move(table);
  try_reclaim();
}

size_t TablePublisher::try_reclaim() {
  const std::lock_guard<std::mutex> lock(slots_mutex_);
  size_t freed = 0;
  bool stalled = false;
  auto pinned = [this](const cookies::DescriptorTable* table) {
    for (const Slot& slot : slots_) {
      if (slot.hazard.load(std::memory_order_seq_cst) == table) return true;
    }
    return false;
  };
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (pinned(it->get())) {
      stalled = true;
      ++it;
    } else {
      it = retired_.erase(it);
      ++freed;
    }
  }
  if (stalled) swap_stalls_.inc();
  retired_gauge_.set(static_cast<int64_t>(retired_.size()));
  return freed;
}

size_t TablePublisher::retired_count() const {
  const std::lock_guard<std::mutex> lock(slots_mutex_);
  return retired_.size();
}

}  // namespace nnn::controlplane
