#include "controlplane/local_subscriber.h"

#include <utility>

namespace nnn::controlplane {

LocalSubscriber::LocalSubscriber(DescriptorLog& log,
                                 cookies::CookieVerifier& verifier)
    : log_(log), verifier_(verifier) {
  Snapshot snap = log.snapshot();
  for (auto& descriptor : snap.live) {
    verifier_.add_descriptor(std::move(descriptor));
  }
  for (const cookies::CookieId id : snap.revoked) {
    // Tombstone for a revocation that predates this subscriber: a
    // stub descriptor (no key) whose only job is to verify as revoked.
    cookies::CookieDescriptor stub;
    stub.cookie_id = id;
    verifier_.add_descriptor(std::move(stub));
    verifier_.revoke(id);
  }
  token_ = log.subscribe([this](const Update& update) { apply(update); });
}

LocalSubscriber::~LocalSubscriber() { log_.unsubscribe(token_); }

void LocalSubscriber::apply(const Update& update) {
  switch (update.op) {
    case UpdateOp::kAdd:
      verifier_.add_descriptor(update.descriptor);
      break;
    case UpdateOp::kRevoke:
      if (!verifier_.revoke(update.id)) {
        cookies::CookieDescriptor stub;
        stub.cookie_id = update.id;
        verifier_.add_descriptor(std::move(stub));
        verifier_.revoke(update.id);
      }
      break;
    case UpdateOp::kRemove:
      verifier_.remove(update.id);
      break;
  }
}

}  // namespace nnn::controlplane
