// Middlebox endpoint of the snapshot/delta sync protocol.
//
// The client owns the pull loop: poll the server at a steady interval,
// apply whatever comes back (snapshot -> mirror reset, delta -> mirror
// apply, heartbeat -> freshness only), and publish a rebuilt table
// through the TablePublisher whenever the mirror changed. Transport is
// a callback (send one request datagram); responses come back through
// on_datagram(). The loop is driven by tick(now) — callers (sim event
// loops, a thread, an example's main) decide the cadence, the client
// just reports when it next wants to run via next_wakeup().
//
// Failure behaviour, per the paper's fail-open stance:
//   - a request with no response within response_timeout counts as a
//     retry; the timeout then grows exponentially with +/-jitter so a
//     recovering server is not met by a synchronized client stampede;
//   - a single success during an outage DECAYS the backoff one level
//     instead of resetting it — a flapping link that lets one response
//     through must not restart the client at full poll rate against a
//     server that is still drowning (PR 5 regression fix);
//   - repeated failures trip a circuit breaker (kOpen). An open
//     breaker sends nothing until the current backoff elapses, then
//     sends exactly one probe (kHalfOpen); the breaker closes only
//     after breaker_success_threshold consecutive successes;
//   - while the channel is down the last published table keeps
//     enforcing (stale-while-revalidate) — dropping to "no table"
//     would turn a control-plane blip into a dataplane outage;
//   - past stale_grace without a successful exchange the client flags
//     itself stale (nnn_controlplane_stale gauge). It STILL keeps the
//     last table — fail-open stays the dispatcher's policy — but
//     monitoring (regulator_audit) can now see that this middlebox may
//     be enforcing revoked descriptors;
//   - a restarting middlebox can restore() the last exported table
//     checkpoint instead of cold-starting with no table at all, as
//     long as the checkpoint is within restore_budget (recovery stays
//     inside the stale-while-revalidate contract).
//
// Degraded operation is visible as nnn_degraded{reason=...} — one
// gauge per reason (stale / breaker-open / restored-table), so an
// operator can tell "enforcing on old state" apart from "cannot reach
// the server at all".
//
// Threading: single-threaded. tick()/on_datagram() run on one control
// thread; only the publisher hand-off crosses threads (and that is the
// epoch machinery's job).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "controlplane/epoch.h"
#include "controlplane/messages.h"
#include "controlplane/table_mirror.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/error.h"
#include "util/rng.h"

namespace nnn::controlplane {

/// Circuit-breaker state for the sync channel. Closed is healthy;
/// open stops polling until the backoff elapses; half-open is the
/// single in-flight probe deciding between the two.
enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

/// A checkpoint of the applied table, for cold-start recovery. The
/// timestamp lets restore() enforce the staleness budget.
struct SavedTable {
  uint64_t version = 0;
  util::Timestamp saved_at = 0;
  std::vector<cookies::CookieDescriptor> live;
  std::vector<cookies::CookieId> revoked;
};

class SyncClient {
 public:
  using SendFn = std::function<void(util::Bytes)>;

  struct Config {
    uint64_t client_id = 0;
    /// Steady-state poll cadence.
    util::Timestamp poll_interval = 100 * util::kMillisecond;
    /// A request unanswered this long is a loss; retry with backoff.
    util::Timestamp response_timeout = 250 * util::kMillisecond;
    /// First retry backoff; doubles per consecutive failure.
    util::Timestamp backoff_base = 250 * util::kMillisecond;
    util::Timestamp backoff_max = 5 * util::kSecond;
    /// +/- fraction applied to poll and backoff delays.
    double jitter = 0.2;
    /// No successful exchange for this long => stale (see header).
    util::Timestamp stale_grace = 10 * util::kSecond;
    /// Consecutive timeouts that trip the breaker open.
    uint32_t breaker_failure_threshold = 4;
    /// Consecutive successes (probe included) that close it again.
    uint32_t breaker_success_threshold = 3;
    /// Oldest checkpoint restore() accepts (see SavedTable).
    util::Timestamp restore_budget = 30 * util::kSecond;
    uint64_t rng_seed = 0x6e636f6f6b6965;  // distinct per client in prod
  };

  SyncClient(const util::Clock& clock, TablePublisher& publisher,
             Config config, SendFn send);
  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  /// Send the first poll immediately.
  void start();

  /// Feed one response datagram from the transport.
  void on_datagram(util::BytesView datagram);

  /// Drive timers: send the next poll when due, count a timeout when a
  /// request went unanswered, refresh the stale flag.
  void tick();

  /// When tick() next has work (absolute time). The driver may call
  /// tick() earlier or later; the client only compares against now().
  util::Timestamp next_wakeup() const;

  /// Checkpoint the applied table (persist across a process restart).
  SavedTable export_table() const;

  /// Seed the mirror from a checkpoint and publish it immediately, so
  /// workers verify against last-known-good state while the first sync
  /// is still in flight. Rejects (returns false, publishes nothing)
  /// when the checkpoint is older than restore_budget — enforcing
  /// arbitrarily old revocation state is worse than none. Call before
  /// start().
  bool restore(const SavedTable& saved);

  uint64_t applied_version() const { return mirror_.version(); }
  /// Latest version the server reported (>= applied until caught up).
  uint64_t server_version() const { return server_version_; }
  bool stale() const { return stale_; }
  uint64_t retries() const { return retries_.value(); }
  BreakerState breaker_state() const { return breaker_; }
  uint32_t consecutive_failures() const { return consecutive_failures_; }
  /// True from a successful restore() until the first live exchange.
  bool running_on_restored_table() const { return restored_active_; }
  /// Most recent datagram decode failure, if any (typed; also tallied
  /// into nnn_errors_total by the decoder).
  const std::optional<Error>& last_error() const { return last_error_; }

 private:
  void send_request(util::Timestamp now);
  void on_success(util::Timestamp now);
  void on_failure(util::Timestamp now);
  void publish();
  util::Timestamp current_backoff() const;
  util::Timestamp with_jitter(util::Timestamp base);
  void collect(telemetry::SampleBuilder& builder) const;

  const util::Clock& clock_;
  TablePublisher& publisher_;
  const Config config_;
  SendFn send_;
  TableMirror mirror_;
  util::Rng rng_;

  bool started_ = false;
  bool awaiting_response_ = false;
  uint64_t server_version_ = 0;
  uint32_t consecutive_failures_ = 0;
  uint32_t success_streak_ = 0;
  BreakerState breaker_ = BreakerState::kClosed;
  bool stale_ = false;
  bool restored_active_ = false;
  std::optional<Error> last_error_;
  util::Timestamp last_request_ = 0;
  util::Timestamp current_timeout_ = 0;
  util::Timestamp next_poll_ = 0;
  util::Timestamp last_success_ = 0;

  telemetry::Gauge version_lag_;
  telemetry::Gauge applied_gauge_;
  telemetry::Gauge stale_gauge_;
  telemetry::Gauge breaker_gauge_;
  telemetry::Gauge restored_gauge_;
  telemetry::Counter retries_;
  telemetry::Counter snapshots_applied_;
  telemetry::Counter deltas_applied_;
  telemetry::Counter breaker_opens_;
  telemetry::Counter restores_;
  telemetry::Histogram sync_rtt_micros_;
  std::string client_label_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::controlplane
