// Middlebox endpoint of the snapshot/delta sync protocol.
//
// The client owns the pull loop: poll the server at a steady interval,
// apply whatever comes back (snapshot -> mirror reset, delta -> mirror
// apply, heartbeat -> freshness only), and publish a rebuilt table
// through the TablePublisher whenever the mirror changed. Transport is
// a callback (send one request datagram); responses come back through
// on_datagram(). The loop is driven by tick(now) — callers (sim event
// loops, a thread, an example's main) decide the cadence, the client
// just reports when it next wants to run via next_wakeup().
//
// Failure behaviour, per the paper's fail-open stance:
//   - a request with no response within response_timeout counts as a
//     retry; the timeout then grows exponentially with +/-jitter so a
//     recovering server is not met by a synchronized client stampede;
//   - while the channel is down the last published table keeps
//     enforcing (stale-while-revalidate) — dropping to "no table"
//     would turn a control-plane blip into a dataplane outage;
//   - past stale_grace without a successful exchange the client flags
//     itself stale (nnn_controlplane_stale gauge). It STILL keeps the
//     last table — fail-open stays the dispatcher's policy — but
//     monitoring (regulator_audit) can now see that this middlebox may
//     be enforcing revoked descriptors.
//
// Threading: single-threaded. tick()/on_datagram() run on one control
// thread; only the publisher hand-off crosses threads (and that is the
// epoch machinery's job).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "controlplane/epoch.h"
#include "controlplane/messages.h"
#include "controlplane/table_mirror.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::controlplane {

class SyncClient {
 public:
  using SendFn = std::function<void(util::Bytes)>;

  struct Config {
    uint64_t client_id = 0;
    /// Steady-state poll cadence.
    util::Timestamp poll_interval = 100 * util::kMillisecond;
    /// A request unanswered this long is a loss; retry with backoff.
    util::Timestamp response_timeout = 250 * util::kMillisecond;
    /// First retry backoff; doubles per consecutive failure.
    util::Timestamp backoff_base = 250 * util::kMillisecond;
    util::Timestamp backoff_max = 5 * util::kSecond;
    /// +/- fraction applied to poll and backoff delays.
    double jitter = 0.2;
    /// No successful exchange for this long => stale (see header).
    util::Timestamp stale_grace = 10 * util::kSecond;
    uint64_t rng_seed = 0x6e636f6f6b6965;  // distinct per client in prod
  };

  SyncClient(const util::Clock& clock, TablePublisher& publisher,
             Config config, SendFn send);
  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  /// Send the first poll immediately.
  void start();

  /// Feed one response datagram from the transport.
  void on_datagram(util::BytesView datagram);

  /// Drive timers: send the next poll when due, count a timeout when a
  /// request went unanswered, refresh the stale flag.
  void tick();

  /// When tick() next has work (absolute time). The driver may call
  /// tick() earlier or later; the client only compares against now().
  util::Timestamp next_wakeup() const;

  uint64_t applied_version() const { return mirror_.version(); }
  /// Latest version the server reported (>= applied until caught up).
  uint64_t server_version() const { return server_version_; }
  bool stale() const { return stale_; }
  uint64_t retries() const { return retries_.value(); }

 private:
  void send_request(util::Timestamp now);
  void on_success(util::Timestamp now);
  void publish();
  util::Timestamp with_jitter(util::Timestamp base);
  void collect(telemetry::SampleBuilder& builder) const;

  const util::Clock& clock_;
  TablePublisher& publisher_;
  const Config config_;
  SendFn send_;
  TableMirror mirror_;
  util::Rng rng_;

  bool started_ = false;
  bool awaiting_response_ = false;
  uint64_t server_version_ = 0;
  uint32_t consecutive_failures_ = 0;
  bool stale_ = false;
  util::Timestamp last_request_ = 0;
  util::Timestamp current_timeout_ = 0;
  util::Timestamp next_poll_ = 0;
  util::Timestamp last_success_ = 0;

  telemetry::Gauge version_lag_;
  telemetry::Gauge applied_gauge_;
  telemetry::Gauge stale_gauge_;
  telemetry::Counter retries_;
  telemetry::Counter snapshots_applied_;
  telemetry::Counter deltas_applied_;
  telemetry::Histogram sync_rtt_micros_;
  std::string client_label_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::controlplane
