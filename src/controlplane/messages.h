// Typed control-plane messages: the snapshot/delta sync vocabulary.
//
// The cookie server and its middleboxes are separate entities (§4.1:
// "the network side learned it when issuing" is really a distribution
// problem), so descriptor state crosses a real wire. Four message
// types cover the protocol:
//
//   SyncRequest  client -> server   "I am <client> at version V"
//   Heartbeat    server -> client   "V is current, nothing changed"
//   Delta        server -> client   ordered updates (V, V']
//   Snapshot     server -> client   the full table at version V'
//
// Each message rides in one net::SyncFrame (see net/wire.h); the frame
// envelope carries the type byte and payload length, so a decoder can
// skip message types it does not know — newer servers can speak to
// older middleboxes. Decoding is defensive in the repo's wire idiom:
// truncation or a malformed known payload yields a typed Error
// (domain kMessages for payload problems, kWire for envelope
// problems), never UB. decode_message is the primary entry point
// (PR 5 API redesign); the std::optional decode() spellings survive
// as thin views.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "controlplane/descriptor_log.h"
#include "cookies/descriptor.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/expected.h"

namespace nnn::controlplane {

enum class MessageType : uint8_t {
  kSyncRequest = 1,
  kSnapshot = 2,
  kDelta = 3,
  kHeartbeat = 4,
};

/// Client poll: who is asking and how far they have applied. Version 0
/// means "nothing yet" (a fresh middlebox), which the server answers
/// with a full snapshot.
struct SyncRequest {
  uint64_t client_id = 0;
  uint64_t have_version = 0;

  friend bool operator==(const SyncRequest&, const SyncRequest&) = default;
};

/// Full table at `version`: every live descriptor plus the ids whose
/// revocation tombstones must survive (a middlebox that never saw the
/// grant still reports kDescriptorRevoked, not kUnknownId).
struct SnapshotMessage {
  uint64_t version = 0;
  std::vector<cookies::CookieDescriptor> live;
  std::vector<cookies::CookieId> revoked;

  friend bool operator==(const SnapshotMessage&,
                         const SnapshotMessage&) = default;
};

/// Ordered updates in (from_version, to_version]. A client applies a
/// delta only when from_version equals its applied version; otherwise
/// it re-polls (the server falls back to a snapshot for gaps it has
/// compacted away).
struct DeltaMessage {
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  std::vector<Update> updates;

  friend bool operator==(const DeltaMessage&, const DeltaMessage&) = default;
};

/// "Nothing changed since `version`" — refreshes the client's
/// staleness clock without shipping state.
struct HeartbeatMessage {
  uint64_t version = 0;

  friend bool operator==(const HeartbeatMessage&,
                         const HeartbeatMessage&) = default;
};

using Message =
    std::variant<SyncRequest, SnapshotMessage, DeltaMessage, HeartbeatMessage>;

/// Serialize one message as a sync frame (envelope + typed payload).
util::Bytes encode(const Message& message);

/// Decode the next sync frame at the reader. Unknown frame types are
/// skipped (the reader advances past them and decoding continues with
/// the next frame). Failure carries the rejecting layer: a wire-domain
/// Error for envelope problems (bad magic, truncated frame), a
/// messages-domain Error for a malformed known payload, and
/// kUnknownType when the input held only unknown frames. All failures
/// land in nnn_errors_total.
Expected<Message> decode_message(util::ByteReader& r);

/// Convenience for single-message datagrams.
Expected<Message> decode_message(util::BytesView datagram);

/// Legacy views over decode_message: drop the error detail.
std::optional<Message> decode(util::ByteReader& r);
std::optional<Message> decode(util::BytesView datagram);

/// Descriptor binary codec, exposed for tests. Field order: id, key,
/// service_data, attributes (granularity, flag bits, transports,
/// optional expiry/mapping_ttl, extras).
void encode_descriptor(util::ByteWriter& w,
                       const cookies::CookieDescriptor& descriptor);
Expected<cookies::CookieDescriptor> decode_descriptor(util::ByteReader& r);

}  // namespace nnn::controlplane
