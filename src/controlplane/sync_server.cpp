#include "controlplane/sync_server.h"

#include <algorithm>
#include <utility>

#include "fault/injector.h"

namespace nnn::controlplane {

SyncServer::SyncServer(DescriptorLog& log) : SyncServer(log, Config()) {}

SyncServer::SyncServer(DescriptorLog& log, Config config)
    : log_(log), config_(config) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void SyncServer::collect(telemetry::SampleBuilder& builder) const {
  builder.counter("nnn_controlplane_requests_total",
                  "Sync requests received", {}, requests_.value());
  builder.counter("nnn_controlplane_responses_total",
                  "Sync responses by kind", {{"kind", "snapshot"}},
                  snapshots_served_.value());
  builder.counter("nnn_controlplane_responses_total",
                  "Sync responses by kind", {{"kind", "delta"}},
                  deltas_served_.value());
  builder.counter("nnn_controlplane_responses_total",
                  "Sync responses by kind", {{"kind", "heartbeat"}},
                  heartbeats_served_.value());
  builder.gauge("nnn_controlplane_clients",
                "Distinct sync clients seen", {}, clients_.value());
}

std::optional<util::Bytes> SyncServer::handle(util::BytesView datagram) {
  // Injected outage: the server is dark. Swallow the request before
  // decoding so the client sees exactly what a dead server produces —
  // silence.
  if (injector_ != nullptr && fault_clock_ != nullptr &&
      injector_->sync_unavailable(fault_clock_->now())) {
    return std::nullopt;
  }
  // decode_message tallies failures into nnn_errors_total; a server
  // never answers garbage (the client's timeout handles it).
  const auto message = decode_message(datagram);
  if (!message) return std::nullopt;
  const auto* request = std::get_if<SyncRequest>(&*message);
  if (request == nullptr) return std::nullopt;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    requests_.inc();
    client_versions_[request->client_id] = request->have_version;
    clients_.set(static_cast<int64_t>(client_versions_.size()));
  }

  // Heartbeat / delta / snapshot, in order of preference. The log can
  // advance between these calls; that only makes the response slightly
  // stale, which the client's next poll repairs.
  const uint64_t version = log_.version();
  if (request->have_version == version) {
    const std::lock_guard<std::mutex> lock(mutex_);
    heartbeats_served_.inc();
    return encode(HeartbeatMessage{version});
  }
  // have_version 0 is a fresh client: a snapshot of the current table
  // beats a delta that replays its entire history.
  if (request->have_version > 0 && request->have_version < version) {
    const auto updates = log_.delta_since(request->have_version);
    if (updates && updates->size() <= config_.max_delta_updates) {
      DeltaMessage delta;
      delta.from_version = request->have_version;
      delta.to_version = updates->empty() ? request->have_version
                                          : updates->back().version;
      delta.updates = std::move(*updates);
      const std::lock_guard<std::mutex> lock(mutex_);
      deltas_served_.inc();
      return encode(delta);
    }
  }
  // Fresh client, compacted history, too-big gap, or a client claiming
  // a version from the future (restarted server): resync wholesale.
  Snapshot snap = log_.snapshot();
  SnapshotMessage message_out;
  message_out.version = snap.version;
  message_out.live = std::move(snap.live);
  message_out.revoked = std::move(snap.revoked);
  const std::lock_guard<std::mutex> lock(mutex_);
  snapshots_served_.inc();
  return encode(message_out);
}

std::optional<uint64_t> SyncServer::min_client_version() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (client_versions_.empty()) return std::nullopt;
  uint64_t lowest = UINT64_MAX;
  for (const auto& [client, version] : client_versions_) {
    lowest = std::min(lowest, version);
  }
  return lowest;
}

}  // namespace nnn::controlplane
