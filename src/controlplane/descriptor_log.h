// The server-side source of truth for descriptor distribution.
//
// Every grant, revocation, and expiry gets a monotonically increasing
// version number; middleboxes sync by version ("what changed since
// V?"). The log keeps a bounded tail of recent updates for delta
// service and can always materialize a full snapshot, so a client that
// fell behind a compaction gets the table wholesale instead of an
// unservable gap. This is the §4.5 story made operational: "the
// network can similarly stop matching against a cookie" requires the
// *stop* to reach every enforcement point, and the version number is
// what lets an auditor (examples/regulator_audit) measure how far any
// middlebox lags the authority.
//
// Thread safety: all members are safe to call from any thread (a
// mutex guards state — this is the control plane's cold path, not the
// packet path). Observers registered with subscribe() are invoked
// after the state mutex is released, on the appending thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cookies/descriptor.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace nnn::controlplane {

enum class UpdateOp : uint8_t {
  kAdd = 0,     // grant (or re-grant: un-revokes and replaces)
  kRevoke = 1,  // stop matching; tombstone survives
  kRemove = 2,  // forget entirely (expiry/garbage collection)
};

/// One versioned log record. `descriptor` is meaningful only for kAdd
/// (revoke/remove carry just the id).
struct Update {
  uint64_t version = 0;
  UpdateOp op = UpdateOp::kAdd;
  cookies::CookieId id = 0;
  cookies::CookieDescriptor descriptor;

  friend bool operator==(const Update&, const Update&) = default;
};

/// Materialized full table at one version.
struct Snapshot {
  uint64_t version = 0;
  std::vector<cookies::CookieDescriptor> live;
  std::vector<cookies::CookieId> revoked;
};

class DescriptorLog {
 public:
  using Observer = std::function<void(const Update&)>;

  DescriptorLog();
  DescriptorLog(const DescriptorLog&) = delete;
  DescriptorLog& operator=(const DescriptorLog&) = delete;

  /// Current (latest assigned) version; 0 before the first update.
  uint64_t version() const;

  /// Append a grant. Returns the assigned version.
  uint64_t append_add(cookies::CookieDescriptor descriptor);
  /// Append a revocation (id need not be live — the tombstone still
  /// propagates, covering revoke-before-sync races).
  uint64_t append_revoke(cookies::CookieId id);
  /// Append a removal (drops the live entry and any tombstone).
  uint64_t append_remove(cookies::CookieId id);

  /// Append kRemove for every live descriptor whose expiry has passed.
  /// Returns how many were expired. The cookie server calls this
  /// opportunistically so expiries propagate like any other update.
  size_t expire_due(util::Timestamp now);

  /// Full table at the current version.
  Snapshot snapshot() const;

  /// Updates in (from, version()], oldest first. nullopt when `from`
  /// predates the retained tail (compacted away) — the caller must
  /// fall back to a snapshot. An in-range `from` equal to version()
  /// yields an empty vector.
  std::optional<std::vector<Update>> delta_since(uint64_t from) const;

  /// Drop retained updates beyond the newest `keep_updates` (delta
  /// requests older than the tail then fall back to snapshots).
  void compact(size_t keep_updates);

  /// Observe every appended update (after version assignment). Returns
  /// a token for unsubscribe(). Observers run on the appending thread
  /// with no log mutex held; they may call back into the log.
  uint64_t subscribe(Observer observer);
  void unsubscribe(uint64_t token);

  size_t live_count() const;
  size_t retained_updates() const;

 private:
  uint64_t append(UpdateOp op, cookies::CookieId id,
                  cookies::CookieDescriptor descriptor);
  void notify(const Update& update);
  void collect(telemetry::SampleBuilder& builder) const;

  mutable std::mutex mutex_;
  uint64_t version_ = 0;
  /// Retained update tail; updates_.front().version ==
  /// tail_start_version_ + 1 when non-empty.
  std::deque<Update> updates_;
  uint64_t tail_start_version_ = 0;
  /// Current live table and tombstone set (snapshot source).
  std::unordered_map<cookies::CookieId, cookies::CookieDescriptor> live_;
  std::unordered_set<cookies::CookieId> revoked_;

  std::mutex observers_mutex_;
  std::map<uint64_t, Observer> observers_;
  uint64_t next_token_ = 1;

  telemetry::Gauge version_gauge_;
  telemetry::Gauge live_gauge_;
  telemetry::Counter adds_;
  telemetry::Counter revokes_;
  telemetry::Counter removes_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::controlplane
