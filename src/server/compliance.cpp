#include "server/compliance.h"

namespace nnn::server {

ComplianceMonitor::ComplianceMonitor(util::Timestamp grant_deadline)
    : grant_deadline_(grant_deadline) {}

void ComplianceMonitor::record_request(const std::string& provider,
                                       const std::string& program,
                                       util::Timestamp when) {
  requests_.push_back(EnrollmentRequest{provider, program, when,
                                        std::nullopt});
}

bool ComplianceMonitor::record_grant(const std::string& provider,
                                     const std::string& program,
                                     util::Timestamp when) {
  for (auto& request : requests_) {
    if (request.pending() && request.provider == provider &&
        request.program == program) {
      request.granted_at = when;
      return true;
    }
  }
  return false;
}

std::vector<Violation> ComplianceMonitor::violations(
    util::Timestamp now) const {
  std::vector<Violation> out;
  for (const auto& request : requests_) {
    const util::Timestamp due = request.requested_at + grant_deadline_;
    if (request.granted_at) {
      if (*request.granted_at > due) {
        out.push_back(Violation{request, *request.granted_at - due});
      }
    } else if (now > due) {
      out.push_back(Violation{request, now - due});
    }
  }
  return out;
}

std::vector<EnrollmentRequest> ComplianceMonitor::pending(
    util::Timestamp now) const {
  (void)now;
  std::vector<EnrollmentRequest> out;
  for (const auto& request : requests_) {
    if (request.pending()) out.push_back(request);
  }
  return out;
}

json::Value ComplianceMonitor::to_json() const {
  json::Array arr;
  for (const auto& request : requests_) {
    json::Object obj;
    obj["provider"] = request.provider;
    obj["program"] = request.program;
    obj["requested_at"] = static_cast<int64_t>(request.requested_at);
    if (request.granted_at) {
      obj["granted_at"] = static_cast<int64_t>(*request.granted_at);
    } else {
      obj["granted_at"] = nullptr;
    }
    arr.emplace_back(std::move(obj));
  }
  return json::Value(std::move(arr));
}

}  // namespace nnn::server
