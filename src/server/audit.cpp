#include "server/audit.h"

namespace nnn::server {

std::string to_string(AuditEvent e) {
  switch (e) {
    case AuditEvent::kGranted:
      return "granted";
    case AuditEvent::kDenied:
      return "denied";
    case AuditEvent::kRevoked:
      return "revoked";
    case AuditEvent::kDelegated:
      return "delegated";
  }
  return "?";
}

json::Value AuditRecord::to_json() const {
  json::Object obj;
  obj["when"] = static_cast<int64_t>(when);
  obj["event"] = to_string(event);
  obj["service"] = service;
  obj["user"] = user;
  if (cookie_id != 0) {
    // Ids travel as strings: 64-bit values do not fit JSON doubles.
    obj["cookie_id"] = std::to_string(cookie_id);
  }
  if (!detail.empty()) obj["detail"] = detail;
  return json::Value(std::move(obj));
}

void AuditLog::append(AuditRecord record) {
  records_.push_back(std::move(record));
}

std::vector<AuditRecord> AuditLog::for_user(const std::string& user) const {
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.user == user) out.push_back(r);
  }
  return out;
}

std::vector<AuditRecord> AuditLog::for_service(
    const std::string& service) const {
  std::vector<AuditRecord> out;
  for (const auto& r : records_) {
    if (r.service == service) out.push_back(r);
  }
  return out;
}

json::Value AuditLog::to_json() const {
  json::Array arr;
  arr.reserve(records_.size());
  for (const auto& r : records_) arr.push_back(r.to_json());
  return json::Value(std::move(arr));
}

}  // namespace nnn::server
