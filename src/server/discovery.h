// Service discovery (§4.2 step 1).
//
// "Users and their clients learn of network services through standard
// discovery protocols (DHCP, mDNS) or it can be hardcoded in the
// application." We model the discovery layer as a registry that maps a
// network (by name) to advertised cookie-server endpoints; the DHCP
// path corresponds to the home AP learning "that cookie descriptors
// are available at http://cookie-server.com through the DHCP lease
// from the user's ISP" (§4.4).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nnn::server {

enum class DiscoveryMethod : uint8_t { kDhcpOption = 0, kMdns = 1,
                                       kHardcoded = 2 };

std::string to_string(DiscoveryMethod m);

struct ServiceAdvertisement {
  std::string network;        // network the advert is visible on
  std::string endpoint;       // "http://cookie-server.example/api"
  DiscoveryMethod method = DiscoveryMethod::kDhcpOption;
};

class DiscoveryRegistry {
 public:
  void advertise(ServiceAdvertisement ad);
  /// What a client attached to `network` discovers, in advertisement
  /// order (DHCP first, then mDNS, then hardcoded fallbacks).
  std::vector<ServiceAdvertisement> discover(
      const std::string& network) const;
  /// First endpoint, if any — the common client path.
  std::optional<std::string> first_endpoint(
      const std::string& network) const;

 private:
  std::multimap<std::string, ServiceAdvertisement> ads_;
};

}  // namespace nnn::server
