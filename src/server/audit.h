// Public audit log (§6).
//
// "The FCC could demand that T-Mobile maintains a public database with
// the dates for all cookie descriptor requests." Every grant and
// revocation lands here with its timestamp; records never contain
// descriptor keys. The log is append-only and exportable as JSON so an
// external party can verify who got access to cookie descriptors and
// when — the paper's whole auditability story.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cookies/descriptor.h"
#include "json/json.h"
#include "util/clock.h"

namespace nnn::server {

enum class AuditEvent : uint8_t {
  kGranted = 0,
  kDenied = 1,
  kRevoked = 2,
  kDelegated = 3,
};

std::string to_string(AuditEvent e);

struct AuditRecord {
  util::Timestamp when = 0;
  AuditEvent event = AuditEvent::kGranted;
  std::string service;
  std::string user;
  cookies::CookieId cookie_id = 0;  // 0 when no descriptor involved
  std::string detail;               // deny reason, revocation reason, ...

  json::Value to_json() const;
};

class AuditLog {
 public:
  void append(AuditRecord record);

  const std::vector<AuditRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Records touching a given user / service (regulator queries).
  std::vector<AuditRecord> for_user(const std::string& user) const;
  std::vector<AuditRecord> for_service(const std::string& service) const;

  /// Export the whole log as a JSON array.
  json::Value to_json() const;

 private:
  std::vector<AuditRecord> records_;
};

}  // namespace nnn::server
