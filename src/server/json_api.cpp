#include "server/json_api.h"

#include <cstdlib>

#include "audit/auditor.h"
#include "telemetry/exposition.h"

namespace nnn::server {

namespace {

json::Value error_response(std::string_view error) {
  json::Object obj;
  obj["ok"] = false;
  obj["error"] = std::string(error);
  return json::Value(std::move(obj));
}

}  // namespace

std::string JsonApi::handle_text(std::string_view request_text) {
  const auto parsed = json::parse(request_text);
  if (!parsed) return error_response("bad-request").dump();
  return handle(*parsed).dump();
}

json::Value JsonApi::handle(const json::Value& request) {
  if (!request.is_object()) return error_response("bad-request");
  const std::string method = request.get_string("method");
  if (method == "list_services") return list_services();
  if (method == "acquire") return acquire(request);
  if (method == "revoke") return revoke(request);
  if (method == "metrics") return metrics();
  if (method == "audit_report") return audit_report();
  return error_response("unknown-method");
}

JsonApi::HttpResponse JsonApi::handle_http(std::string_view method,
                                           std::string_view path,
                                           std::string_view body) {
  if (method == "GET" && path == "/metrics") {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        telemetry::to_prometheus(registry_.snapshot())};
  }
  if (method == "GET" && path == "/metrics.json") {
    return HttpResponse{200, "application/json",
                        telemetry::to_json(registry_.snapshot()).dump()};
  }
  if (method == "GET" && path == "/audit.json") {
    json::Value response = audit_report();
    const bool ok = response.get_bool("ok");
    return HttpResponse{ok ? 200 : 404, "application/json", response.dump()};
  }
  if (method == "POST") {
    return HttpResponse{200, "application/json", handle_text(body)};
  }
  return HttpResponse{404, "application/json",
                      error_response("not-found").dump()};
}

json::Value JsonApi::metrics() const {
  json::Object obj;
  obj["ok"] = true;
  obj["metrics"] = telemetry::to_json(registry_.snapshot());
  return json::Value(std::move(obj));
}

json::Value JsonApi::audit_report() const {
  if (auditor_ == nullptr) return error_response("no-auditor");
  const std::optional<audit::AuditReport> report = auditor_->last_report();
  if (!report) return error_response("no-report");
  json::Object obj;
  obj["ok"] = true;
  obj["report"] = report->to_json();
  return json::Value(std::move(obj));
}

json::Value JsonApi::list_services() const {
  json::Array services;
  for (const auto& offer : server_.advertised_services()) {
    json::Object o;
    o["name"] = offer.name;
    o["description"] = offer.description;
    o["auth"] = offer.auth == AuthPolicy::kOpen ? "open" : "token";
    if (offer.monthly_quota > 0) {
      o["monthly_quota"] = static_cast<int64_t>(offer.monthly_quota);
    }
    services.emplace_back(std::move(o));
  }
  json::Object obj;
  obj["ok"] = true;
  obj["services"] = std::move(services);
  return json::Value(std::move(obj));
}

json::Value JsonApi::acquire(const json::Value& request) {
  const std::string service = request.get_string("service");
  const std::string user = request.get_string("user");
  const std::string token = request.get_string("token");
  if (service.empty() || user.empty()) return error_response("bad-request");
  AcquireResult result = server_.acquire(service, user, token);
  if (!result.ok()) return error_response(to_string(*result.error));
  json::Object obj;
  obj["ok"] = true;
  obj["descriptor"] = result.descriptor->to_json(/*include_key=*/true);
  return json::Value(std::move(obj));
}

json::Value JsonApi::revoke(const json::Value& request) {
  // Ids are accepted as strings (the faithful form — 64-bit values do
  // not fit JSON doubles) or numbers (small-id convenience).
  const json::Value* id = request.find("cookie_id");
  if (!id) return error_response("bad-request");
  cookies::CookieId cookie_id = 0;
  if (id->is_string()) {
    char* end = nullptr;
    const std::string& text = id->as_string();
    cookie_id = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) {
      return error_response("bad-request");
    }
  } else if (id->is_number()) {
    cookie_id = static_cast<cookies::CookieId>(id->as_number());
  } else {
    return error_response("bad-request");
  }
  const bool ok = server_.revoke(
      cookie_id, request.get_string("reason", "api"));
  if (!ok) return error_response("unknown-descriptor");
  json::Object obj;
  obj["ok"] = true;
  return json::Value(std::move(obj));
}

}  // namespace nnn::server
