// JSON control-plane API over the cookie server.
//
// The paper's agents talk JSON: "the agent issues a boost request to a
// well-known server using a JSON message. The server responds with a
// boost cookie descriptor" (§5.1); the descriptor is "downloaded over
// an (optionally authenticated) out-of-band mechanism (e.g., a JSON
// API)" (§4.2). We model that endpoint as request/response JSON
// documents (transport-agnostic: the sim delivers them as strings).
//
// Methods:
//   {"method":"list_services"}
//     -> {"ok":true,"services":[{name,description,auth,quota},...]}
//   {"method":"acquire","service":S,"user":U,"token":T?}
//     -> {"ok":true,"descriptor":{...Listing 1 fields...}}
//     -> {"ok":false,"error":"quota-exceeded"} on deny
//   {"method":"revoke","cookie_id":N,"reason":R?}
//     -> {"ok":true} / {"ok":false,"error":"unknown-descriptor"}
#pragma once

#include <string>

#include "server/cookie_server.h"

namespace nnn::server {

class JsonApi {
 public:
  explicit JsonApi(CookieServer& server) : server_(server) {}

  /// Handle one request document; always returns a response document.
  /// Malformed input yields {"ok":false,"error":"bad-request"}.
  std::string handle_text(std::string_view request_text);

  json::Value handle(const json::Value& request);

 private:
  json::Value list_services() const;
  json::Value acquire(const json::Value& request);
  json::Value revoke(const json::Value& request);

  CookieServer& server_;
};

}  // namespace nnn::server
