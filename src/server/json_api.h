// JSON control-plane API over the cookie server.
//
// The paper's agents talk JSON: "the agent issues a boost request to a
// well-known server using a JSON message. The server responds with a
// boost cookie descriptor" (§5.1); the descriptor is "downloaded over
// an (optionally authenticated) out-of-band mechanism (e.g., a JSON
// API)" (§4.2). We model that endpoint as request/response JSON
// documents (transport-agnostic: the sim delivers them as strings).
//
// Methods:
//   {"method":"list_services"}
//     -> {"ok":true,"services":[{name,description,auth,quota},...]}
//   {"method":"acquire","service":S,"user":U,"token":T?}
//     -> {"ok":true,"descriptor":{...Listing 1 fields...}}
//     -> {"ok":false,"error":"quota-exceeded"} on deny
//   {"method":"revoke","cookie_id":N,"reason":R?}
//     -> {"ok":true} / {"ok":false,"error":"unknown-descriptor"}
//   {"method":"metrics"}
//     -> {"ok":true,"metrics":{"families":[...]}} — the telemetry
//        registry snapshot (§6 auditability; same data as /metrics)
//   {"method":"audit_report"}
//     -> {"ok":true,"report":{...AuditReport...}} — the neutrality
//        auditor's latest verdict (set_auditor must be wired)
//     -> {"ok":false,"error":"no-auditor"} / "no-report"
//
// handle_http() adds the thin HTTP surface monitoring tools expect:
// GET /metrics (Prometheus text), GET /metrics.json, GET /audit.json
// (the regulator's one-stop verdict endpoint), and POST of a request
// document to any path.
#pragma once

#include <string>
#include <string_view>

#include "server/cookie_server.h"
#include "telemetry/metrics.h"

namespace nnn::audit {
class Auditor;
}  // namespace nnn::audit

namespace nnn::server {

class JsonApi {
 public:
  /// Uses `registry` for the metrics routes; defaults to the
  /// process-wide registry. Tests inject a local one.
  explicit JsonApi(CookieServer& server,
                   const telemetry::Registry& registry =
                       telemetry::Registry::global())
      : server_(server), registry_(registry) {}

  /// Handle one request document; always returns a response document.
  /// Malformed input yields {"ok":false,"error":"bad-request"}.
  std::string handle_text(std::string_view request_text);

  json::Value handle(const json::Value& request);

  /// Minimal HTTP response for the transport layer to frame.
  struct HttpResponse {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  /// Route one HTTP request:
  ///   GET /metrics       -> Prometheus text exposition 0.0.4
  ///   GET /metrics.json  -> registry snapshot as JSON
  ///   GET /audit.json    -> latest neutrality AuditReport (requires
  ///                         set_auditor; 404 "no-auditor" otherwise)
  ///   POST <any path>    -> handle_text(body) (the JSON API proper)
  /// Anything else is a 404 JSON error document.
  HttpResponse handle_http(std::string_view method, std::string_view path,
                           std::string_view body = "");

  /// Expose a neutrality auditor's reports over /audit.json and the
  /// "audit_report" method. The auditor must outlive this API (the
  /// route reads Auditor::last_report(), which is thread-safe against
  /// a concurrently running audit loop). Pass nullptr to unwire.
  void set_auditor(const audit::Auditor* auditor) { auditor_ = auditor; }

 private:
  json::Value list_services() const;
  json::Value acquire(const json::Value& request);
  json::Value revoke(const json::Value& request);
  json::Value metrics() const;
  json::Value audit_report() const;

  CookieServer& server_;
  const telemetry::Registry& registry_;
  const audit::Auditor* auditor_ = nullptr;
};

}  // namespace nnn::server
