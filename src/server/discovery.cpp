#include "server/discovery.h"

#include <algorithm>

namespace nnn::server {

std::string to_string(DiscoveryMethod m) {
  switch (m) {
    case DiscoveryMethod::kDhcpOption:
      return "dhcp";
    case DiscoveryMethod::kMdns:
      return "mdns";
    case DiscoveryMethod::kHardcoded:
      return "hardcoded";
  }
  return "?";
}

void DiscoveryRegistry::advertise(ServiceAdvertisement ad) {
  ads_.emplace(ad.network, std::move(ad));
}

std::vector<ServiceAdvertisement> DiscoveryRegistry::discover(
    const std::string& network) const {
  std::vector<ServiceAdvertisement> out;
  const auto [lo, hi] = ads_.equal_range(network);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::stable_sort(out.begin(), out.end(),
                   [](const ServiceAdvertisement& a,
                      const ServiceAdvertisement& b) {
                     return static_cast<int>(a.method) <
                            static_cast<int>(b.method);
                   });
  return out;
}

std::optional<std::string> DiscoveryRegistry::first_endpoint(
    const std::string& network) const {
  const auto found = discover(network);
  if (found.empty()) return std::nullopt;
  return found.front().endpoint;
}

}  // namespace nnn::server
