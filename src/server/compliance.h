// Regulatory compliance monitoring (§6).
//
// The paper's T-Mobile/Music-Freedom case study: SomaFM waited 18
// months to join the zero-rating program; RockRadio.gr never got an
// answer. Cookies make the technical step trivial ("all an ISP has to
// do is give each content provider a cookie descriptor"), so the
// remaining question is regulatory: "The FCC could demand that
// T-Mobile maintains a public database with the dates for all cookie
// descriptor requests, and it should be obliged to provide the
// descriptor to eligible parties within three days. This is similar to
// the FCC's local number portability rules."
//
// ComplianceMonitor is that public database plus the deadline check: a
// provider's enrollment request is recorded; a grant (observed in the
// cookie server's audit log or recorded directly) clears it; anything
// older than the deadline is a violation a regulator can read off.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/clock.h"

namespace nnn::server {

/// The paper's proposed deadline, mirroring number-portability rules.
inline constexpr util::Timestamp kDefaultGrantDeadline =
    3LL * 24 * 3600 * util::kSecond;

struct EnrollmentRequest {
  std::string provider;   // "somafm.example"
  std::string program;    // "MusicFreedom"
  util::Timestamp requested_at = 0;
  std::optional<util::Timestamp> granted_at;

  bool pending() const { return !granted_at.has_value(); }
};

struct Violation {
  EnrollmentRequest request;
  /// How far past the deadline the request is (or was, when granted
  /// late) at evaluation time.
  util::Timestamp overdue_by = 0;
};

class ComplianceMonitor {
 public:
  explicit ComplianceMonitor(
      util::Timestamp grant_deadline = kDefaultGrantDeadline);

  /// A content provider asked to join a program.
  void record_request(const std::string& provider,
                      const std::string& program, util::Timestamp when);

  /// The operator granted the request (issued the descriptor).
  /// Returns false when no matching pending request exists.
  bool record_grant(const std::string& provider,
                    const std::string& program, util::Timestamp when);

  /// Requests that, as of `now`, were not granted within the deadline —
  /// both still-pending ones and ones granted late.
  std::vector<Violation> violations(util::Timestamp now) const;

  /// Requests still awaiting a grant.
  std::vector<EnrollmentRequest> pending(util::Timestamp now) const;

  /// The public database, exportable for the regulator.
  json::Value to_json() const;

  size_t size() const { return requests_.size(); }
  util::Timestamp deadline() const { return grant_deadline_; }

 private:
  util::Timestamp grant_deadline_;
  std::vector<EnrollmentRequest> requests_;
};

}  // namespace nnn::server
