// The well-known cookie server (§4.2 component 2).
//
// "The network advertises the special services it is offering on a
// well-known server ... The user picks a cookie descriptor from the
// well-known server — the user might buy it, or be entitled to a
// certain number per month, via coupons, or on whatever terms the
// network owner decides."
//
// This class is the issuing authority: it owns the service catalog,
// authenticates users (token auth; a home AP may allow anonymous
// acquisition, a cellular network requires login — both are modeled as
// AuthPolicy), enforces per-account quotas, issues descriptors with
// fresh keys, supports revocation, and writes every grant to the audit
// log (§6: regulators "can efficiently audit if involved parties play
// fairly ... maintain a public database with the dates for all cookie
// descriptor requests").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "controlplane/descriptor_log.h"
#include "cookies/descriptor.h"
#include "server/audit.h"
#include "telemetry/labels.h"
#include "telemetry/view.h"
#include "util/clock.h"
#include "util/error.h"
#include "util/rng.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::server {

/// Who may acquire descriptors for a service.
enum class AuthPolicy : uint8_t {
  /// "In a home network anyone who can talk to the AP might get a
  /// cookie" — no credentials required.
  kOpen = 0,
  /// "A cellular network might require users to login first."
  kToken = 1,
};

/// A service the network advertises ("it may advertise that it has
/// cookies available to boost any website, or only cookies to boost
/// Amazon Prime video").
struct ServiceOffer {
  std::string name;           // e.g. "Boost"
  std::string description;    // human text shown by user agents
  std::string service_data;   // opaque tag descriptors will carry
  AuthPolicy auth = AuthPolicy::kOpen;
  /// Descriptor lifetime from grant; 0 = no expiry.
  util::Timestamp descriptor_lifetime = 0;
  /// Per-account grants per month; 0 = unlimited.
  uint32_t monthly_quota = 0;
  /// Attribute template stamped onto issued descriptors (expiry is
  /// filled in from descriptor_lifetime).
  cookies::Attributes attributes;
};

struct Account {
  std::string user;
  std::string token;  // bearer credential for AuthPolicy::kToken
};

enum class AcquireError : uint8_t {
  kUnknownService,
  kAuthRequired,
  kBadCredentials,
  kQuotaExceeded,
  /// The issuing service is refusing requests outright (outage or
  /// injected fault); callers should back off and retry. Existing
  /// grants keep verifying — unavailability of the acquire path never
  /// fails closed on the dataplane.
  kUnavailable,
};
// to_string(AcquireError) lives in telemetry/labels.h so the exporter
// and the server share one spelling of each label value.

/// AcquireError viewed through the unified error taxonomy (PR 5).
constexpr Error to_error(AcquireError e) {
  switch (e) {
    case AcquireError::kUnknownService:
      return Error{ErrorDomain::kServer, ErrorCode::kUnknownId, "service"};
    case AcquireError::kAuthRequired:
      return Error{ErrorDomain::kServer, ErrorCode::kAuthRequired};
    case AcquireError::kBadCredentials:
      return Error{ErrorDomain::kServer, ErrorCode::kBadCredentials};
    case AcquireError::kQuotaExceeded:
      return Error{ErrorDomain::kServer, ErrorCode::kQuotaExceeded};
    case AcquireError::kUnavailable:
      return Error{ErrorDomain::kServer, ErrorCode::kUnavailable};
  }
  return Error{ErrorDomain::kServer, ErrorCode::kUnavailable};
}

struct AcquireResult {
  std::optional<cookies::CookieDescriptor> descriptor;
  std::optional<AcquireError> error;

  bool ok() const { return descriptor.has_value(); }
};

class CookieServer {
 public:
  /// The clock must outlive the server. `log`, when given, is the
  /// distribution channel to the dataplane: every grant, revocation,
  /// and expiry is appended there and reaches the verifiers through
  /// the sync machinery (controlplane::SyncClient over a wire, or
  /// controlplane::LocalSubscriber in-process) — the server never
  /// touches a verifier directly. May be null for a pure
  /// catalog/audit server.
  ///
  /// Registers the control-plane families (nnn_server_grants_total,
  /// nnn_server_revocations_total, nnn_server_denied_total{reason=});
  /// pinned — the collector holds `this`.
  CookieServer(const util::Clock& clock, uint64_t rng_seed,
               controlplane::DescriptorLog* log = nullptr);
  CookieServer(const CookieServer&) = delete;
  CookieServer& operator=(const CookieServer&) = delete;

  // --- service catalog ---
  void add_service(ServiceOffer offer);
  bool remove_service(const std::string& name);
  const ServiceOffer* find_service(const std::string& name) const;
  std::vector<ServiceOffer> advertised_services() const;

  // --- accounts ---
  void add_account(Account account);

  /// Acquire a descriptor for `service`. `user` identifies the
  /// requester for quota/audit purposes; `token` is checked when the
  /// service requires auth.
  AcquireResult acquire(const std::string& service, const std::string& user,
                        const std::string& token = "");

  /// Hook the issuing path into a fault injector (PR 5): during an
  /// injected outage acquire() answers kUnavailable (counted and
  /// audited like every other denial). Null detaches; the injector
  /// must outlive the server.
  void set_fault_injector(const fault::Injector* injector) {
    injector_ = injector;
  }

  /// Revoke a previously issued descriptor (§4.5: both parties can
  /// revoke; the user path is "ask the network to invalidate a
  /// descriptor"). Appends to the descriptor log; the revocation
  /// reaches enforcement points as a sync delta.
  bool revoke(cookies::CookieId id, const std::string& reason);

  /// All ids ever issued to `user` that are still active.
  std::vector<cookies::CookieId> active_descriptors(
      const std::string& user) const;

  /// Number of grants `user` consumed in the current (30-day) window
  /// for `service`.
  uint32_t quota_used(const std::string& service,
                      const std::string& user) const;

  const AuditLog& audit_log() const { return audit_; }

 private:
  struct Grant {
    cookies::CookieId id;
    std::string service;
    std::string user;
    util::Timestamp granted_at;
    bool revoked = false;
  };

  util::Bytes fresh_key();
  cookies::CookieId fresh_id();

  const util::Clock& clock_;
  util::Rng rng_;
  controlplane::DescriptorLog* log_;
  const fault::Injector* injector_ = nullptr;
  std::map<std::string, ServiceOffer> services_;
  std::unordered_map<std::string, Account> accounts_;  // keyed by user
  std::vector<Grant> grants_;
  /// Grants indexed by id (position in grants_) so revoke() and
  /// fresh_id() are O(1) instead of scanning every grant ever made.
  std::unordered_map<cookies::CookieId, size_t> grant_index_;
  AuditLog audit_;
  telemetry::Counter granted_;
  telemetry::Counter revoked_;
  telemetry::StatusCounters<AcquireError, kAcquireErrorCount> denied_;
  telemetry::Registration registration_;  // last: released first
};

}  // namespace nnn::server
