#include "server/cookie_server.h"

#include <algorithm>

#include "fault/injector.h"

namespace nnn::server {

namespace {

/// Quota accounting window ("entitled to a certain number per month").
constexpr util::Timestamp kQuotaWindow =
    30LL * 24 * 3600 * util::kSecond;

}  // namespace

CookieServer::CookieServer(const util::Clock& clock, uint64_t rng_seed,
                           controlplane::DescriptorLog* log)
    : clock_(clock), rng_(rng_seed), log_(log) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        builder.counter("nnn_server_grants_total",
                        "Cookie descriptors granted", {}, granted_.value());
        builder.counter("nnn_server_revocations_total",
                        "Cookie descriptors revoked", {}, revoked_.value());
        denied_.collect(builder, "nnn_server_denied_total",
                        "Acquisition requests denied, by reason",
                        [](AcquireError e) { return to_string(e); },
                        "reason");
      });
}

void CookieServer::add_service(ServiceOffer offer) {
  services_[offer.name] = std::move(offer);
}

bool CookieServer::remove_service(const std::string& name) {
  return services_.erase(name) > 0;
}

const ServiceOffer* CookieServer::find_service(const std::string& name) const {
  const auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<ServiceOffer> CookieServer::advertised_services() const {
  std::vector<ServiceOffer> out;
  out.reserve(services_.size());
  for (const auto& [name, offer] : services_) out.push_back(offer);
  return out;
}

void CookieServer::add_account(Account account) {
  accounts_[account.user] = std::move(account);
}

util::Bytes CookieServer::fresh_key() {
  util::Bytes key(32);
  for (size_t i = 0; i < key.size(); i += 8) {
    const uint64_t v = rng_.next_u64();
    for (size_t j = 0; j < 8 && i + j < key.size(); ++j) {
      key[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  return key;
}

cookies::CookieId CookieServer::fresh_id() {
  // Ids must be unique across the server's lifetime; collisions in a
  // 64-bit random draw are negligible but we still re-draw defensively.
  while (true) {
    const cookies::CookieId id = rng_.next_u64();
    if (id == 0) continue;
    if (!grant_index_.contains(id)) return id;
  }
}

AcquireResult CookieServer::acquire(const std::string& service,
                                    const std::string& user,
                                    const std::string& token) {
  const util::Timestamp now = clock_.now();
  const auto deny = [&](AcquireError error) {
    denied_.inc(error);
    count_error(to_error(error));  // -> nnn_errors_total{domain,code}
    audit_.append(AuditRecord{now, AuditEvent::kDenied, service, user, 0,
                              std::string(to_string(error))});
    return AcquireResult{std::nullopt, error};
  };

  // Injected outage: the issuing service refuses outright. Fail-open
  // by design — existing grants keep verifying on the dataplane.
  if (injector_ != nullptr && injector_->acquire_unavailable(now)) {
    return deny(AcquireError::kUnavailable);
  }

  const ServiceOffer* offer = find_service(service);
  if (!offer) return deny(AcquireError::kUnknownService);

  if (offer->auth == AuthPolicy::kToken) {
    const auto it = accounts_.find(user);
    if (it == accounts_.end()) return deny(AcquireError::kAuthRequired);
    if (it->second.token != token) {
      return deny(AcquireError::kBadCredentials);
    }
  }

  if (offer->monthly_quota > 0 &&
      quota_used(service, user) >= offer->monthly_quota) {
    return deny(AcquireError::kQuotaExceeded);
  }

  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = fresh_id();
  descriptor.key = fresh_key();
  descriptor.service_data = offer->service_data;
  descriptor.attributes = offer->attributes;
  if (offer->descriptor_lifetime > 0) {
    descriptor.attributes.expires_at = now + offer->descriptor_lifetime;
  }

  grant_index_.emplace(descriptor.cookie_id, grants_.size());
  grants_.push_back(Grant{descriptor.cookie_id, service, user, now, false});
  granted_.inc();
  audit_.append(AuditRecord{now, AuditEvent::kGranted, service, user,
                            descriptor.cookie_id, ""});
  if (log_) {
    log_->append_add(descriptor);
    // Piggyback expiry propagation on the issue path: descriptors past
    // their lifetime become kRemove updates in the same log.
    log_->expire_due(now);
  }
  return AcquireResult{std::move(descriptor), std::nullopt};
}

bool CookieServer::revoke(cookies::CookieId id, const std::string& reason) {
  const auto it = grant_index_.find(id);
  if (it == grant_index_.end()) return false;
  Grant& grant = grants_[it->second];
  if (grant.revoked) return false;
  grant.revoked = true;
  revoked_.inc();
  audit_.append(AuditRecord{clock_.now(), AuditEvent::kRevoked,
                            grant.service, grant.user, id, reason});
  if (log_) log_->append_revoke(id);
  return true;
}

std::vector<cookies::CookieId> CookieServer::active_descriptors(
    const std::string& user) const {
  std::vector<cookies::CookieId> out;
  for (const auto& grant : grants_) {
    if (grant.user == user && !grant.revoked) out.push_back(grant.id);
  }
  return out;
}

uint32_t CookieServer::quota_used(const std::string& service,
                                  const std::string& user) const {
  const util::Timestamp cutoff = clock_.now() - kQuotaWindow;
  uint32_t used = 0;
  for (const auto& grant : grants_) {
    if (grant.service == service && grant.user == user &&
        grant.granted_at >= cutoff) {
      ++used;
    }
  }
  return used;
}

}  // namespace nnn::server
