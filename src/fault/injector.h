// The runtime half of fault injection: evaluate a FaultPlan at the
// hook points (PR 5 tentpole).
//
// Hooked components hold a `const Injector*` that defaults to null,
// and every hook site guards with a null check:
//
//     if (injector_ && injector_->drop_packet(link_id, now)) { ... }
//
// That null check IS the zero-cost-when-disabled contract: with no
// injector installed the hook is one predictable branch on a pointer
// already in a register — bench/ablation_fault holds it under 1%.
// There is no compile-time gate; chaos coverage that only exists in a
// special build is coverage the release binary never had.
//
// ## Threading
//
// arm() must happen before the hooked threads start (or while they are
// quiesced); after that the plan is immutable and every hook is safe
// from any thread. Probabilistic hooks (loss spikes, queue pressure)
// need randomness that is BOTH thread-safe and reproducible: each
// decision hashes (seed, draw counter) with SplitMix64, where the
// counter is a relaxed fetch_add. The sequence of decisions is a pure
// function of the seed and the interleaving; for a fixed schedule the
// *number* of drops/rejections concentrates tightly around
// magnitude x draws, which is what the chaos assertions consume.
// Injection counters use the shared (fetch_add) path for the same
// reason, exported as nnn_fault_injected_total{kind=...}.
#pragma once

#include <atomic>
#include <cstdint>

#include "fault/plan.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"
#include "util/clock.h"

namespace nnn::fault {

class Injector {
 public:
  /// Registers nnn_fault_* with the global registry; pinned (the
  /// collector holds `this`).
  Injector();
  explicit Injector(telemetry::Registry& registry);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install a schedule. Call before the hooked threads run.
  void arm(FaultPlan plan, uint64_t seed = 0);
  /// Forget the schedule (hooks all answer "no fault").
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // --- hooks, one per fault kind ---

  /// sim::Link delivery: true = this packet dies (partition or a loss
  /// spike's Bernoulli draw).
  bool drop_packet(uint32_t link_id, util::Timestamp now) const;

  /// WorkerPool consume loop: true = the worker must not consume now
  /// (wedged process). The worker re-checks each iteration; resume is
  /// the schedule's business, not the caller's.
  bool paused(uint32_t worker_id, util::Timestamp now) const;

  /// SyncServer::handle: true = swallow the request, answer nothing.
  bool sync_unavailable(util::Timestamp now) const;

  /// CookieServer::acquire: true = answer kUnavailable.
  bool acquire_unavailable(util::Timestamp now) const;

  /// WorkerPool::submit admission: true = reject this submission (the
  /// caller sheds it, counted, fail-open).
  bool reject_admission(uint32_t worker_id, util::Timestamp now) const;

  /// Offset a SkewedClock adds to the base clock's reading.
  util::Timestamp clock_skew(util::Timestamp now) const;

  // --- socket hooks (netio) ---

  /// netio::Listener accept loop: true = do not accept now; SYNs wait
  /// in the kernel backlog. Polled like paused(), so uncounted.
  bool accept_stalled(util::Timestamp now) const;

  /// Per-connection io: true = abort this connection as if the peer
  /// sent RST (counted; Bernoulli draw on the event's magnitude, at
  /// most once per connection per event — callers pass a stable
  /// conn_id so the draw sequence is reproducible across runs).
  bool reset_connection(uint64_t conn_id, util::Timestamp now) const;

  /// Per-connection read path: true = the peer is half-open; inbound
  /// bytes are blackholed and only timeouts reclaim the connection.
  /// Continuous condition, uncounted.
  bool peer_half_open(util::Timestamp now) const;

  /// sim::Link serialization of a NON-band-0 packet: the throttle
  /// factor in (0, 1) while a kThrottleNonCookie event targets this
  /// link (the packet serializes at factor x rate), or 0.0 when clean.
  /// Counted per throttled packet, like drop_packet's loss spikes.
  double throttle_non_cookie(uint32_t link_id, util::Timestamp now) const;

  /// QUIC workload migration hook: true = connection `conn_id`
  /// migrates NOW (its client endpoint rebinds to a fresh address/
  /// port; CIDs continue unchanged). Deterministic Bernoulli per
  /// (connection, event) — hash (seed, conn_id, event start), the
  /// reset_connection idiom — so the outcome is independent of poll
  /// frequency. A connection outlives its migration (unlike a reset),
  /// so the caller passes the timestamp of its previous migration and
  /// an event answers true at most once per connection: only while
  /// active AND its start is later than `last_migration`. Counted per
  /// true answer, i.e. once per (connection, event).
  bool nat_rebind(uint64_t conn_id, util::Timestamp now,
                  util::Timestamp last_migration = 0) const;

  /// Any event in flight at `now` (chaos tests gate their recovery
  /// phase on this going false).
  bool any_active(util::Timestamp now) const;

  /// Injections so far, by kind (tests reconcile against shed/drop
  /// counters elsewhere).
  uint64_t injected(FaultKind kind) const { return injected_.count(kind); }
  uint64_t total_injected() const { return injected_.total(); }

 private:
  bool active_event(FaultKind kind, uint32_t target,
                    util::Timestamp now) const;
  /// Deterministic thread-safe Bernoulli: hash (seed, counter++).
  bool draw(double p) const;
  void count(FaultKind kind) const;
  void collect(telemetry::SampleBuilder& builder) const;

  FaultPlan plan_;
  uint64_t seed_ = 0;
  std::atomic<bool> armed_{false};
  mutable std::atomic<uint64_t> draws_{0};
  mutable telemetry::StatusCounters<FaultKind, kFaultKindCount> injected_;
  telemetry::Registration registration_;  // last: deregisters first
};

/// A clock whose reading the injector may skew — what a chaos harness
/// hands to the verifying middlebox to model drift beyond the NCT
/// window. Reads the base clock, then adds the active skew (if any).
class SkewedClock final : public util::Clock {
 public:
  SkewedClock(const util::Clock& base, const Injector& injector)
      : base_(base), injector_(injector) {}

  util::Timestamp now() const override {
    const util::Timestamp t = base_.now();
    return t + injector_.clock_skew(t);
  }

 private:
  const util::Clock& base_;
  const Injector& injector_;
};

}  // namespace nnn::fault
