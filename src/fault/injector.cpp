#include "fault/injector.h"

#include <utility>

namespace nnn::fault {

namespace {

/// SplitMix64 finalizer: a full-avalanche hash, cheap enough for a
/// per-decision draw and stateless so threads never contend beyond the
/// counter fetch_add.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Injector::Injector() : Injector(telemetry::Registry::global()) {}

Injector::Injector(telemetry::Registry& registry) {
  registration_ = registry.add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void Injector::collect(telemetry::SampleBuilder& builder) const {
  builder.gauge("nnn_fault_armed",
                "1 while a fault plan is armed on this injector", {},
                armed() ? 1 : 0);
  injected_.collect(builder, "nnn_fault_injected_total",
                    "Faults injected, by kind",
                    [](FaultKind k) { return to_string(k); }, "kind");
}

void Injector::arm(FaultPlan plan, uint64_t seed) {
  plan_ = std::move(plan);
  seed_ = seed;
  draws_.store(0, std::memory_order_relaxed);
  // Release: hook threads that observe armed_ == true must see the
  // plan they are about to evaluate.
  armed_.store(true, std::memory_order_release);
}

void Injector::disarm() { armed_.store(false, std::memory_order_release); }

bool Injector::draw(double p) const {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const uint64_t n = draws_.fetch_add(1, std::memory_order_relaxed);
  const double u =
      static_cast<double>(mix(seed_ ^ n) >> 11) * 0x1.0p-53;  // [0,1)
  return u < p;
}

bool Injector::active_event(FaultKind kind, uint32_t target,
                            util::Timestamp now) const {
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == kind && event.active_at(now) && event.targets(target)) {
      return true;
    }
  }
  return false;
}

void Injector::count(FaultKind kind) const { injected_.inc_shared(kind); }

bool Injector::drop_packet(uint32_t link_id, util::Timestamp now) const {
  if (!armed()) return false;
  if (active_event(FaultKind::kPartition, link_id, now)) {
    count(FaultKind::kPartition);
    return true;
  }
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kLossSpike && event.active_at(now) &&
        event.targets(link_id) && draw(event.magnitude)) {
      count(FaultKind::kLossSpike);
      return true;
    }
  }
  return false;
}

bool Injector::paused(uint32_t worker_id, util::Timestamp now) const {
  // Not counted: a paused worker polls this every loop iteration, so a
  // per-call count would measure poll frequency, not injections. The
  // discrete hooks (drops, rejections, swallowed requests) count.
  return armed() && active_event(FaultKind::kPause, worker_id, now);
}

bool Injector::sync_unavailable(util::Timestamp now) const {
  if (!armed()) return false;
  if (active_event(FaultKind::kSyncOutage, kAllTargets, now)) {
    count(FaultKind::kSyncOutage);
    return true;
  }
  return false;
}

bool Injector::acquire_unavailable(util::Timestamp now) const {
  // Same schedule entry as the sync outage: the issuing service and
  // the sync endpoint live in the same failure domain.
  return sync_unavailable(now);
}

bool Injector::reject_admission(uint32_t worker_id,
                                util::Timestamp now) const {
  if (!armed()) return false;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kQueuePressure && event.active_at(now) &&
        event.targets(worker_id) && draw(event.magnitude)) {
      count(FaultKind::kQueuePressure);
      return true;
    }
  }
  return false;
}

bool Injector::accept_stalled(util::Timestamp now) const {
  // Polled by the listener on every readable edge and retry tick, so
  // uncounted for the same reason paused() is.
  return armed() && active_event(FaultKind::kAcceptStall, kAllTargets, now);
}

bool Injector::reset_connection(uint64_t conn_id, util::Timestamp now) const {
  if (!armed()) return false;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kConnReset || !event.active_at(now)) {
      continue;
    }
    // Hash (seed, conn_id, event start) instead of consuming the
    // shared draw counter: the decision is then per-connection-per-
    // event, so a connection polled many times during one reset window
    // is killed at most once and the outcome doesn't depend on poll
    // frequency.
    const uint64_t h =
        mix(seed_ ^ mix(conn_id) ^ static_cast<uint64_t>(event.start));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    if (u < event.magnitude) {
      count(FaultKind::kConnReset);
      return true;
    }
  }
  return false;
}

bool Injector::peer_half_open(util::Timestamp now) const {
  return armed() && active_event(FaultKind::kPeerHalfOpen, kAllTargets, now);
}

double Injector::throttle_non_cookie(uint32_t link_id,
                                     util::Timestamp now) const {
  if (!armed()) return 0.0;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kThrottleNonCookie || !event.active_at(now) ||
        !event.targets(link_id)) {
      continue;
    }
    // Magnitude outside (0, 1) cannot slow anything down; treat it as
    // a misconfigured no-op rather than dividing by zero.
    if (event.magnitude > 0.0 && event.magnitude < 1.0) {
      count(FaultKind::kThrottleNonCookie);
      return event.magnitude;
    }
  }
  return 0.0;
}

bool Injector::nat_rebind(uint64_t conn_id, util::Timestamp now,
                          util::Timestamp last_migration) const {
  if (!armed()) return false;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kNatRebind || !event.active_at(now)) {
      continue;
    }
    // One migration per (connection, event): an event the connection
    // already migrated under (start <= last_migration) never fires
    // again for it.
    if (event.start <= last_migration) continue;
    const uint64_t h =
        mix(seed_ ^ mix(conn_id) ^ static_cast<uint64_t>(event.start));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    if (u < event.magnitude) {
      count(FaultKind::kNatRebind);
      return true;
    }
  }
  return false;
}

util::Timestamp Injector::clock_skew(util::Timestamp now) const {
  // Continuous condition, evaluated per clock read — not counted, for
  // the same reason paused() is not.
  if (!armed()) return 0;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind == FaultKind::kClockSkew && event.active_at(now)) {
      return event.skew;
    }
  }
  return 0;
}

bool Injector::any_active(util::Timestamp now) const {
  if (!armed()) return false;
  for (const FaultEvent& event : plan_.events()) {
    if (event.active_at(now)) return true;
  }
  return false;
}

}  // namespace nnn::fault
