// Deterministic fault schedules (PR 5 tentpole).
//
// The paper's deployment argument (§4: 161 OnHub homes, a middlebox
// that "behaves as if the cookie was not there" on any failure) is a
// claim about behavior under faults — and claims about faults are only
// testable when the faults are reproducible. A FaultPlan is a fixed,
// seeded schedule of fault events over simulated time: which link
// partitions when, how long the sync server goes dark, how far a clock
// skews past the network coherency time, when a queue-pressure burst
// hits which worker. tests/test_chaos.cpp generates twenty-plus plans
// from consecutive seeds and asserts the same three invariants under
// every one (fail-open, replay safety, bounded-staleness recovery);
// any failure reproduces from its seed alone.
//
// The plan is pure data. The Injector (injector.h) evaluates it
// against the clock at each hook point; sim::Link, WorkerPool,
// SyncServer, and CookieServer carry the hooks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/labels.h"
#include "util/clock.h"

namespace nnn::fault {

enum class FaultKind : uint8_t {
  /// Target link delivers nothing for the duration.
  kPartition = 0,
  /// Target link drops each packet with probability `magnitude`.
  kLossSpike,
  /// Target worker stops consuming its ring (a wedged or descheduled
  /// process); submissions keep arriving.
  kPause,
  /// The sync server answers nothing; the cookie server refuses
  /// acquire() with kUnavailable.
  kSyncOutage,
  /// The verifying middlebox's clock reads skew microseconds off the
  /// true time — sized by plans to exceed the NCT window.
  kClockSkew,
  /// Admission to the target worker's queue rejects each submit with
  /// probability `magnitude` (an overload burst).
  kQueuePressure,
  /// The netio listener stops calling accept(); SYNs pile up in the
  /// kernel backlog (a wedged accept thread / SYN-flood mitigation).
  kAcceptStall,
  /// Each established connection's next io is aborted with probability
  /// `magnitude` (mid-stream RST).
  kConnReset,
  /// The peer vanishes without FIN: inbound bytes from it are
  /// blackholed, so only the idle timeout can reclaim the connection.
  kPeerHalfOpen,
  /// A misconfigured (or malicious) middlebox degrades NON-cookie
  /// traffic: the target link serializes packets outside band 0 at
  /// `magnitude` x the configured rate (0 < magnitude < 1). Tables and
  /// descriptor state look clean the whole time — only the observed
  /// FCT/throughput distributions shift, which is exactly what the
  /// statistical auditor (src/audit) exists to catch.
  kThrottleNonCookie,
  /// A NAT rebinding / connection-migration burst: while the event is
  /// active, each QUIC connection (polled via Injector::nat_rebind
  /// with its connection id) migrates to a fresh source endpoint with
  /// probability `magnitude` — at most once per connection per event,
  /// like kConnReset. The CIDs keep flowing on the new 5-tuple; flow
  /// state keyed on the tuple dies, flow state keyed on the CID
  /// (net::FlowKey::kConnectionId) survives — which is the whole
  /// point of the PR 10 encrypted-transport scenario. Routing the
  /// workload's seeded migrations through the injector lets chaos
  /// schedules compose migration with loss spikes and sync outages.
  kNatRebind,
};
// kFaultKindCount and to_string(FaultKind) live in telemetry/labels.h.

/// The pre-netio fault kinds. FaultPlan::random draws from these by
/// default so every chaos seed shipped before the socket faults keeps
/// producing byte-identical schedules; netio chaos opts into the full
/// set via Spec::kinds.
inline constexpr size_t kCoreFaultKinds = 6;

/// Core + socket kinds (everything before kThrottleNonCookie). The
/// netio chaos suite pins Spec::kinds to this so its shipped seeds
/// keep producing byte-identical schedules now that the audit fault
/// extends the enum; audit chaos opts into kAuditFaultKinds.
inline constexpr size_t kSocketFaultKinds = 9;

/// Through kThrottleNonCookie. The audit chaos seeds pinned this
/// range before kNatRebind extended the enum; quic chaos opts into
/// kFaultKindCount.
inline constexpr size_t kAuditFaultKinds = 10;

/// Applies to every link/worker rather than one target.
inline constexpr uint32_t kAllTargets = 0xffffffffu;

struct FaultEvent {
  FaultKind kind = FaultKind::kPartition;
  util::Timestamp start = 0;
  util::Timestamp duration = 0;
  /// Probability knob for kLossSpike / kQueuePressure; unused
  /// otherwise.
  double magnitude = 1.0;
  /// Signed clock offset for kClockSkew; unused otherwise.
  util::Timestamp skew = 0;
  /// Link or worker index, or kAllTargets.
  uint32_t target = kAllTargets;

  util::Timestamp end() const { return start + duration; }
  bool active_at(util::Timestamp now) const {
    return now >= start && now < end();
  }
  bool targets(uint32_t id) const {
    return target == kAllTargets || target == id;
  }
};

class FaultPlan {
 public:
  /// Knobs for random(): event count and the ranges each event's
  /// parameters are drawn from.
  struct Spec {
    /// Events start in [0, horizon).
    util::Timestamp horizon = 10 * util::kSecond;
    size_t events = 6;
    util::Timestamp min_duration = 100 * util::kMillisecond;
    util::Timestamp max_duration = 2 * util::kSecond;
    /// Upper bound on loss/rejection probability draws.
    double max_magnitude = 1.0;
    /// Skew draws land in [-max_skew, max_skew]. Default exceeds the
    /// 5 s network coherency time on purpose: a skew the NCT window
    /// absorbs is not a fault worth scheduling.
    util::Timestamp max_skew = 8 * util::kSecond;
    /// Targets are drawn from [0, link_targets) / [0, worker_targets),
    /// with a 1-in-4 chance of kAllTargets.
    uint32_t link_targets = 2;
    uint32_t worker_targets = 2;
    /// How many FaultKind values the schedule draws from, counting
    /// from 0. The default excludes the socket kinds (see
    /// kCoreFaultKinds); set to kFaultKindCount for netio chaos.
    size_t kinds = kCoreFaultKinds;
  };

  FaultPlan() = default;

  /// The canonical constructor: a seeded schedule. Same seed + spec =>
  /// same plan, on every platform (util::Rng is mt19937_64).
  static FaultPlan random(uint64_t seed, const Spec& spec);
  static FaultPlan random(uint64_t seed) { return random(seed, Spec{}); }

  void add(FaultEvent event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// First instant with every event over — the chaos tests' "now prove
  /// recovery" marker.
  util::Timestamp quiet_after() const;

  /// "kind@[start,end)ms -> target" per event; for test failure
  /// messages, so a red seed is diagnosable without re-running it.
  std::string summary() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace nnn::fault
