#include "fault/plan.h"

#include <algorithm>

#include "util/fmt.h"
#include "util/rng.h"

namespace nnn::fault {

FaultPlan FaultPlan::random(uint64_t seed, const Spec& spec) {
  util::Rng rng(seed);
  FaultPlan plan;
  for (size_t i = 0; i < spec.events; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(rng.next_u64(static_cast<uint64_t>(
        std::min(spec.kinds, kFaultKindCount))));
    event.start = static_cast<util::Timestamp>(
        rng.next_u64(static_cast<uint64_t>(spec.horizon)));
    event.duration =
        spec.min_duration +
        static_cast<util::Timestamp>(rng.next_u64(static_cast<uint64_t>(
            std::max<util::Timestamp>(1, spec.max_duration -
                                             spec.min_duration))));
    event.magnitude = rng.uniform_real(0.25, spec.max_magnitude);
    event.skew = static_cast<util::Timestamp>(
        rng.uniform_real(-static_cast<double>(spec.max_skew),
                         static_cast<double>(spec.max_skew)));
    switch (event.kind) {
      case FaultKind::kPartition:
      case FaultKind::kLossSpike:
      case FaultKind::kThrottleNonCookie:
        event.target = rng.chance(0.25)
                           ? kAllTargets
                           : static_cast<uint32_t>(rng.next_u64(
                                 std::max<uint32_t>(1, spec.link_targets)));
        break;
      case FaultKind::kPause:
      case FaultKind::kQueuePressure:
        event.target = rng.chance(0.25)
                           ? kAllTargets
                           : static_cast<uint32_t>(rng.next_u64(
                                 std::max<uint32_t>(1, spec.worker_targets)));
        break;
      case FaultKind::kConnReset:
      case FaultKind::kPeerHalfOpen:
      case FaultKind::kNatRebind:
        // Socket/migration faults target connection ids, which only
        // exist at runtime; schedules hit every live connection and
        // the Bernoulli draw (kConnReset, kNatRebind) thins the blast
        // radius.
        event.target = kAllTargets;
        break;
      case FaultKind::kSyncOutage:
      case FaultKind::kClockSkew:
      case FaultKind::kAcceptStall:
        event.target = kAllTargets;
        break;
    }
    plan.add(event);
  }
  // Chronological order: humans read summaries forward in time, and
  // the injector's scans stay cache-friendly.
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.start < b.start;
            });
  return plan;
}

util::Timestamp FaultPlan::quiet_after() const {
  util::Timestamp quiet = 0;
  for (const FaultEvent& event : events_) {
    quiet = std::max(quiet, event.end());
  }
  return quiet;
}

std::string FaultPlan::summary() const {
  std::string out;
  for (const FaultEvent& event : events_) {
    if (!out.empty()) out += "; ";
    out += util::fmt("{}@[{},{})ms", to_string(event.kind),
                     event.start / util::kMillisecond,
                     event.end() / util::kMillisecond);
    if (event.kind == FaultKind::kClockSkew) {
      out += util::fmt(" skew={}ms", event.skew / util::kMillisecond);
    } else if (event.kind == FaultKind::kLossSpike ||
               event.kind == FaultKind::kQueuePressure ||
               event.kind == FaultKind::kConnReset ||
               event.kind == FaultKind::kThrottleNonCookie) {
      out += util::fmt(" p={}", event.magnitude);
    }
    if (event.target != kAllTargets) {
      out += util::fmt(" -> {}", event.target);
    }
  }
  return out.empty() ? "(no faults)" : out;
}

}  // namespace nnn::fault
