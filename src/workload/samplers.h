// Shared heavy-tail samplers for workloads, benches, and tests.
//
// The Fig. 1 deployment study, the ablation benches, and the state
// tests all need the same shape of traffic: a Zipf head (popular
// sites/descriptors dominate) with a personal-niche tail (the 43%
// unique preferences of §5.3). This used to live inline in
// studies::DeploymentModel; extracted here so benches and tests can
// drive ISP-scale tables with realistic skew without linking the
// studies target. The studies keep thin aliases and delegate, with
// RNG draw order preserved bit-for-bit (the figure outputs are
// seed-stable across the move).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace nnn::workload {

/// One draw from a head-or-tail preference distribution: either a
/// Zipf-ranked pick from a popular catalog, or a personal niche item
/// deep in the rank tail that no catalog entry covers.
struct PreferenceDraw {
  bool niche = false;
  /// Catalog rank in [1, catalog_size] when !niche.
  size_t head_rank = 0;
  /// Synthetic popularity rank when niche.
  uint32_t tail_rank = 0;
};

class PreferenceSampler {
 public:
  struct Config {
    /// Probability a draw is a personal niche item (paper Fig. 1:
    /// tuned so ~43% of preferences end up unique).
    double tail_share = 0.32;
    /// Popularity skew of head picks.
    double zipf_s = 1.4;
    /// Niche ranks are uniform in [base, base + span).
    uint32_t tail_rank_base = 5000;
    uint64_t tail_rank_span = 95000;
  };

  PreferenceSampler(size_t catalog_size, Config config)
      : config_(config), head_(catalog_size, config.zipf_s) {}

  /// Draw order contract: exactly one chance() draw, then exactly one
  /// next_u64(span) (niche) or one Zipf sample (head). Callers that
  /// replaced inline sampling with this class keep their RNG streams.
  PreferenceDraw next(util::Rng& rng) const {
    PreferenceDraw draw;
    if (rng.chance(config_.tail_share)) {
      draw.niche = true;
      draw.tail_rank = static_cast<uint32_t>(
          config_.tail_rank_base + rng.next_u64(config_.tail_rank_span));
    } else {
      draw.head_rank = head_.sample(rng);
    }
    return draw;
  }

  const Config& config() const { return config_; }
  size_t catalog_size() const { return head_.size(); }

 private:
  Config config_;
  util::ZipfSampler head_;
};

/// Platform-stable log-normal sampler (heavy-tail flow sizes).
///
/// util::Rng::log_normal delegates to std::lognormal_distribution,
/// whose draw sequence differs between libstdc++ and libc++ — fine
/// for the figure studies (kept for RNG-stream compatibility), fatal
/// for anything that pins golden vectors or builds matched replay
/// schedules that must agree across platforms. This sampler consumes
/// exactly TWO Rng::next_double() draws per sample (Box-Muller, no
/// rejection), so the draw count — and with 53-bit fixed scaling, the
/// drawn values — are identical everywhere; the only cross-platform
/// wiggle is libm ulp noise in log/sqrt/cos, which the golden tests
/// absorb with a tight relative tolerance. The audit subsystem's
/// matched-pair schedules draw flow sizes from this.
class StableLogNormal {
 public:
  /// mu/sigma parameterize the underlying normal (same convention as
  /// util::Rng::log_normal): median = exp(mu).
  StableLogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  /// Draw-order contract: exactly one next_double() for the radius and
  /// one for the angle, in that order.
  double next(util::Rng& rng) const {
    // 1 - u keeps the radius draw in (0, 1], so the log is finite.
    const double u1 = 1.0 - rng.next_double();
    const double u2 = rng.next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return std::exp(mu_ + sigma_ * z);
  }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Zipf-popular access over an arbitrary index space [0, n): ranks map
/// through a shuffled permutation so the hot set is scattered across
/// the space instead of clustered at low indices — what a hash-table
/// bench needs (sequential hot ids would probe adjacent groups and
/// flatter the cache).
class ZipfAccess {
 public:
  ZipfAccess(size_t n, double s, util::Rng& shuffle_rng)
      : zipf_(n, s), perm_(n) {
    for (size_t i = 0; i < n; ++i) perm_[i] = i;
    // Fisher-Yates off shuffle_rng; the access stream below uses the
    // caller's per-draw rng, so shuffling cost is one-time.
    for (size_t i = n; i > 1; --i) {
      const size_t j = shuffle_rng.next_u64(i);
      std::swap(perm_[i - 1], perm_[j]);
    }
  }

  /// An index in [0, n), Zipf-popular under the hidden permutation.
  size_t next(util::Rng& rng) const { return perm_[zipf_.sample(rng) - 1]; }

  size_t size() const { return perm_.size(); }

 private:
  util::ZipfSampler zipf_;
  std::vector<size_t> perm_;
};

}  // namespace nnn::workload
