#include "workload/apps.h"

#include <unordered_map>

#include "util/fmt.h"

namespace nnn::workload {

std::string to_string(AppCategory c) {
  switch (c) {
    case AppCategory::kAvStreaming:
      return "AV Streaming";
    case AppCategory::kSocial:
      return "Social";
    case AppCategory::kNews:
      return "News";
    case AppCategory::kGaming:
      return "Gaming";
    case AppCategory::kPhotos:
      return "Photos";
    case AppCategory::kEmail:
      return "Email";
    case AppCategory::kMaps:
      return "Maps";
    case AppCategory::kBrowser:
      return "Browser";
    case AppCategory::kEducation:
      return "Education";
    case AppCategory::kOther:
      return "Other";
  }
  return "?";
}

std::string to_string(PopularityBucket b) {
  switch (b) {
    case PopularityBucket::kUnder1M:
      return "< 1M";
    case PopularityBucket::k1MTo10M:
      return "1M-10M";
    case PopularityBucket::k10MTo100M:
      return "10M-100M";
    case PopularityBucket::k100MTo500M:
      return "100M-500M";
    case PopularityBucket::kOver500M:
      return "> 500M";
    case PopularityBucket::kNotListed:
      return "N/A";
  }
  return "?";
}

std::string to_string(ZeroRatingProgram p) {
  switch (p) {
    case ZeroRatingProgram::kFacebookZero:
      return "Facebook-Zero";
    case ZeroRatingProgram::kMusicFreedom:
      return "Music Freedom";
    case ZeroRatingProgram::kWikipediaZero:
      return "Wikipedia-Zero";
    case ZeroRatingProgram::kNetflixAustralia:
      return "Netflix-Australia";
  }
  return "?";
}

namespace {

AppProfile app(std::string name, AppCategory cat, PopularityBucket pop,
               uint32_t weight, bool music = false, bool dpi = false,
               std::vector<ZeroRatingProgram> covered = {}) {
  AppProfile a;
  a.name = std::move(name);
  a.category = cat;
  a.popularity = pop;
  a.survey_weight = weight;
  a.is_music = music;
  a.dpi_recognized = dpi;
  a.covered_by = std::move(covered);
  return a;
}

std::vector<AppProfile> build_catalog() {
  using C = AppCategory;
  using P = PopularityBucket;
  using Z = ZeroRatingProgram;
  std::vector<AppProfile> apps;
  apps.reserve(106);

  // --- the applications Fig. 2 names, with figure-scale weights ---
  apps.push_back(app("facebook", C::kSocial, P::kOver500M, 45, false, true,
                     {Z::kFacebookZero}));
  apps.push_back(app("netflix", C::kAvStreaming, P::k100MTo500M, 18, false,
                     true, {Z::kNetflixAustralia}));
  apps.push_back(app("instagram", C::kPhotos, P::kOver500M, 14, false, true));
  apps.push_back(app("google maps", C::kMaps, P::kOver500M, 11, false, true));
  apps.push_back(app("spotify", C::kAvStreaming, P::k100MTo500M, 12, true,
                     true, {Z::kMusicFreedom}));
  apps.push_back(app("google music", C::kAvStreaming, P::k100MTo500M, 8,
                     true, true, {Z::kMusicFreedom}));
  apps.push_back(app("whatsapp", C::kSocial, P::kOver500M, 9, false, true));
  apps.push_back(app("pandora", C::kAvStreaming, P::k100MTo500M, 6, true,
                     true, {Z::kMusicFreedom}));
  apps.push_back(
      app("reddit is fun", C::kNews, P::k1MTo10M, 8, false, true));
  apps.push_back(
      app("amazon music", C::kAvStreaming, P::k10MTo100M, 6, true, true));
  apps.push_back(app("nine", C::kEmail, P::k1MTo10M, 6));
  apps.push_back(app("wikipedia", C::kOther, P::k10MTo100M, 1, false, true,
                     {Z::kWikipediaZero}));
  apps.push_back(app("tunein radio", C::kAvStreaming, P::k10MTo100M, 4,
                     true, true, {Z::kMusicFreedom}));
  apps.push_back(app("iheartradio", C::kAvStreaming, P::k10MTo100M, 2, true,
                     true, {Z::kMusicFreedom}));
  apps.push_back(app("beats", C::kAvStreaming, P::k1MTo10M, 4, true, true));
  apps.push_back(app("hulu", C::kAvStreaming, P::k10MTo100M, 4, false, true));
  apps.push_back(app("nyt", C::kNews, P::k10MTo100M, 4, false, true));
  apps.push_back(
      app("trivia crack", C::kGaming, P::k100MTo500M, 3, false, true));
  apps.push_back(
      app("candy crush", C::kGaming, P::kOver500M, 3, false, true));
  apps.push_back(
      app("flipboard", C::kNews, P::k100MTo500M, 3, false, true));
  apps.push_back(app("viber", C::kSocial, P::kOver500M, 2, false, true));
  apps.push_back(app("soma.fm", C::kAvStreaming, P::kUnder1M, 2, true));
  apps.push_back(app("swig", C::kOther, P::kUnder1M, 2));
  apps.push_back(app("indie103.1", C::kAvStreaming, P::kUnder1M, 2, true));
  apps.push_back(app("lynda.com", C::kEducation, P::k1MTo10M, 2));
  apps.push_back(app("schwab", C::kOther, P::kNotListed, 2));
  apps.push_back(app("8tracks", C::kAvStreaming, P::k1MTo10M, 2, true,
                     true));
  apps.push_back(app("edmodo", C::kEducation, P::k10MTo100M, 1));
  apps.push_back(app("mapmyrun", C::kOther, P::k10MTo100M, 1));
  apps.push_back(app("action news", C::kNews, P::kUnder1M, 1));
  apps.push_back(app("wwf", C::kGaming, P::k10MTo100M, 1));

  // --- deterministic fill to the exact Fig. 2 marginals ---
  // Remaining category quota (after the 31 named apps):
  //   AV 20, Social 9, News 8, Gaming 6, Photos 3, Email 3, Maps 3,
  //   Browser 3, Education 0, Other 20  -> 75 fill apps.
  // Remaining popularity quota:
  //   <1M 12, 1-10M 8, 10-100M 19, 100-500M 8, >500M 4, N/A 24.
  struct Quota {
    C category;
    int count;
  };
  const Quota category_quota[] = {
      {C::kAvStreaming, 20}, {C::kSocial, 9}, {C::kNews, 8},
      {C::kGaming, 6},       {C::kPhotos, 3}, {C::kEmail, 3},
      {C::kMaps, 3},         {C::kBrowser, 3}, {C::kOther, 20},
  };
  std::vector<P> popularity_pool;
  const std::pair<P, int> popularity_quota[] = {
      {P::kNotListed, 24}, {P::k10MTo100M, 19}, {P::kUnder1M, 12},
      {P::k1MTo10M, 8},    {P::k100MTo500M, 8}, {P::kOver500M, 4},
  };
  for (const auto& [bucket, count] : popularity_quota) {
    for (int i = 0; i < count; ++i) popularity_pool.push_back(bucket);
  }

  size_t pop_index = 0;
  int fill_id = 1;
  int dpi_fills_left = 2;  // 21 named + 2 fill = 23 nDPI-recognized apps
  for (const auto& quota : category_quota) {
    for (int i = 0; i < quota.count; ++i) {
      const P pop = popularity_pool[pop_index++];
      AppProfile a = app(
          util::fmt("{}-app-{}",
                    to_string(quota.category).substr(0, 2), fill_id++),
          quota.category, pop, 1,
          quota.category == C::kAvStreaming && i % 3 == 0);
      if (dpi_fills_left > 0 && (pop == P::kOver500M)) {
        a.dpi_recognized = true;
        --dpi_fills_left;
      }
      apps.push_back(std::move(a));
    }
  }
  return apps;
}

std::vector<AppProfile> build_music_survey() {
  using C = AppCategory;
  using P = PopularityBucket;
  using Z = ZeroRatingProgram;
  std::vector<AppProfile> apps;
  apps.reserve(51);
  // The music apps from the main catalog (5 of them Music Freedom
  // members) ...
  for (const auto& a : app_catalog()) {
    if (a.is_music &&
        (a.name == "spotify" || a.name == "google music" ||
         a.name == "pandora" || a.name == "tunein radio" ||
         a.name == "iheartradio" || a.name == "amazon music" ||
         a.name == "beats" || a.name == "soma.fm" ||
         a.name == "indie103.1" || a.name == "8tracks")) {
      apps.push_back(a);
    }
  }
  // ... plus the music-only survey's long tail of stations and
  // services, 12 more of which Music Freedom covered (17 of 51 total).
  int covered_left = 12;
  int id = 0;
  while (apps.size() < 51) {
    ++id;
    AppProfile a = app(util::fmt("radio-station-{}", id),
                       C::kAvStreaming,
                       id % 4 == 0 ? P::k1MTo10M : P::kUnder1M, 1, true);
    if (covered_left > 0 && id % 3 == 0) {
      a.covered_by.push_back(Z::kMusicFreedom);
      a.dpi_recognized = true;  // MF enforcement is DPI-based (§6)
      --covered_left;
    }
    apps.push_back(std::move(a));
  }
  return apps;
}

}  // namespace

const std::vector<AppProfile>& app_catalog() {
  static const std::vector<AppProfile> catalog = build_catalog();
  return catalog;
}

const std::vector<AppProfile>& music_survey_catalog() {
  static const std::vector<AppProfile> catalog = build_music_survey();
  return catalog;
}

const AppProfile* find_app(const std::string& name) {
  static const auto index = [] {
    std::unordered_map<std::string, const AppProfile*> map;
    for (const auto& a : app_catalog()) map[a.name] = &a;
    return map;
  }();
  const auto it = index.find(name);
  return it == index.end() ? nullptr : it->second;
}

AppCatalogMarginals catalog_marginals() {
  AppCatalogMarginals m;
  std::unordered_map<int, size_t> by_cat;
  std::unordered_map<int, size_t> by_pop;
  for (const auto& a : app_catalog()) {
    ++by_cat[static_cast<int>(a.category)];
    ++by_pop[static_cast<int>(a.popularity)];
    if (a.dpi_recognized) ++m.dpi_recognized;
  }
  for (int c = 0; c <= static_cast<int>(AppCategory::kOther); ++c) {
    m.by_category.emplace_back(static_cast<AppCategory>(c), by_cat[c]);
  }
  for (int p = 0; p <= static_cast<int>(PopularityBucket::kNotListed); ++p) {
    m.by_popularity.emplace_back(static_cast<PopularityBucket>(p), by_pop[p]);
  }
  for (const auto& a : music_survey_catalog()) {
    ++m.music_apps;
    for (const auto z : a.covered_by) {
      if (z == ZeroRatingProgram::kMusicFreedom) ++m.music_freedom_covered;
    }
  }
  return m;
}

}  // namespace nnn::workload
