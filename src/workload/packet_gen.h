// Packet generator for the Fig. 4 throughput experiment.
//
// Plays the role of MoonGen in the paper's setup: "We connected our
// middlebox with a MoonGen packet generator which sends flows with
// cookies and monitors how fast our middlebox can forward packets.
// Assuming 50-packet flows, 100K cookie descriptors, and a cookie for
// each flow..." The generator pre-builds a batch of flows — each
// carrying one valid cookie in its first packet, signed against one of
// N descriptors — at a fixed packet size, which the bench then pushes
// through a Middlebox while timing it.
#pragma once

#include <cstdint>
#include <vector>

#include "cookies/descriptor.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "net/packet.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::workload {

class PacketGenerator {
 public:
  struct Config {
    uint32_t packet_size = 512;   // on-wire bytes per packet
    uint32_t packets_per_flow = 50;
    size_t descriptors = 100'000;
    /// Carrier of the flow's cookie. UDP-shim by default: matches the
    /// packet-based-cookie deployment and keeps the generator cheap.
    cookies::Transport transport = cookies::Transport::kUdpHeader;
  };

  /// Builds `config.descriptors` descriptors, installs them into
  /// `verifier`, and prepares per-descriptor generators.
  PacketGenerator(Config config, const util::Clock& clock,
                  cookies::CookieVerifier& verifier, uint64_t seed);

  /// Produce `flow_count` flows (each packets_per_flow packets; the
  /// first carries a fresh cookie from a random descriptor). Tuples
  /// are unique per flow.
  std::vector<net::Packet> make_batch(size_t flow_count);

  /// Zero-copy variant: write the next packet of the stream in place
  /// (typically into a PacketArena slot handed out by
  /// Dataplane::make_packet). `out` must arrive reset/default-fresh;
  /// payload capacity is reused. Given the same construction seed,
  /// repeated fill_next() calls produce bit-identical packets to
  /// make_batch() — the differential test in tests/test_runtime leans
  /// on that equivalence.
  void fill_next(net::Packet& out);

  const Config& config() const { return config_; }

  /// The descriptors this generator signs with, for installing into
  /// additional verifiers (the threaded runtime replicates descriptor
  /// tables across workers; see runtime::WorkerPool::add_descriptor).
  std::vector<cookies::CookieDescriptor> descriptors() const;

 private:
  Config config_;
  const util::Clock& clock_;
  util::Rng rng_;
  std::vector<cookies::CookieGenerator> generators_;
  uint32_t next_flow_id_ = 1;
  /// fill_next() stream position: packet index within the current
  /// flow; 0 means the next call opens a new flow.
  uint32_t flow_pos_ = 0;
  net::FiveTuple flow_tuple_{};
  cookies::CookieGenerator* flow_generator_ = nullptr;
};

}  // namespace nnn::workload
