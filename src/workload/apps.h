// Mobile application catalog (Fig. 2).
//
// The survey's 1,000 respondents named 106 distinct applications when
// asked which single app they would zero-rate. The figure's table
// gives the categorical breakdown (AV Streaming 32, Social 12, News
// 12, Gaming 9, Photos 4, Email 4, Maps 4, Browser 3, Education 2,
// Other 24) and the popularity buckets by Play-Store installs (<1M:
// 16, 1M-10M: 13, 10M-100M: 28, 100M-500M: 14, >500M: 10, N/A: 25).
// The catalog lists the ~28 apps the figure names explicitly and fills
// the remainder deterministically so both marginals hold exactly.
//
// Each app also records which existing zero-rating programs cover it,
// backing the coverage numbers of §2/§6 (Wikipedia-Zero 0.4% of
// preferences, Music Freedom 11.5%, Music Freedom covering 17 of the
// 51 music apps named, nDPI recognizing 23 of the 106).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nnn::workload {

enum class AppCategory : uint8_t {
  kAvStreaming = 0,
  kSocial,
  kNews,
  kGaming,
  kPhotos,
  kEmail,
  kMaps,
  kBrowser,
  kEducation,
  kOther,
};

std::string to_string(AppCategory c);

enum class PopularityBucket : uint8_t {
  kUnder1M = 0,
  k1MTo10M,
  k10MTo100M,
  k100MTo500M,
  kOver500M,
  kNotListed,  // not in the Play Store (iTunes, e-banking, Xbox...)
};

std::string to_string(PopularityBucket b);

/// Existing zero-rating programs (§2).
enum class ZeroRatingProgram : uint8_t {
  kFacebookZero = 0,
  kMusicFreedom,
  kWikipediaZero,
  kNetflixAustralia,
};

std::string to_string(ZeroRatingProgram p);

struct AppProfile {
  std::string name;
  AppCategory category = AppCategory::kOther;
  PopularityBucket popularity = PopularityBucket::kNotListed;
  /// True for music-streaming apps (the Music Freedom eligibility
  /// universe; 51 unique music apps were named in the survey).
  bool is_music = false;
  /// Programs that zero-rate this app.
  std::vector<ZeroRatingProgram> covered_by;
  /// True when a stock nDPI-style catalog has a signature for it.
  bool dpi_recognized = false;
  /// Relative preference weight in the survey (heavy tail: facebook
  /// ~50 respondents, the long tail 1 each).
  uint32_t survey_weight = 1;
};

/// The deterministic 106-app catalog with the paper's marginals.
const std::vector<AppProfile>& app_catalog();

const AppProfile* find_app(const std::string& name);

/// The separate music-only survey universe (§2, §6 / ref [12]): 51
/// unique music applications were named; Music Freedom covered 17.
const std::vector<AppProfile>& music_survey_catalog();

/// Marginal checks used by tests and the Fig. 2 bench.
struct AppCatalogMarginals {
  std::vector<std::pair<AppCategory, size_t>> by_category;
  std::vector<std::pair<PopularityBucket, size_t>> by_popularity;
  size_t music_apps = 0;
  size_t music_freedom_covered = 0;
  size_t dpi_recognized = 0;
};
AppCatalogMarginals catalog_marginals();

}  // namespace nnn::workload
