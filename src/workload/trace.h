// Campus-trace generator (§4.6).
//
// Stand-in for the paper's 15-hour anonymized university WiFi trace:
// "It contains 11.3 million HTTP(S) flows originating from 73613
// distinct IP addresses (median flow size is 50 packets, and
// 99-percentile for new flows per second is 442)." The generator
// reproduces those marginals synthetically: log-normal flow sizes with
// median 50 packets, a heavy-tailed client-activity distribution over
// the IP pool, and a diurnal arrival rate whose 99th percentile of
// per-second flow arrivals lands at ~442. Scale (flow count) is a
// parameter so tests run a miniature trace and the Fig. 4 bench can
// ask for full-scale arrival rates.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::workload {

struct TraceFlow {
  util::Timestamp start = 0;
  net::IpAddress client;
  uint32_t packets = 0;
  uint32_t mean_packet_bytes = 0;
  bool https = false;
};

struct TraceSummary {
  uint64_t flows = 0;
  uint64_t packets = 0;
  size_t distinct_clients = 0;
  uint32_t median_flow_packets = 0;
  double p99_new_flows_per_sec = 0;
};

class CampusTraceGenerator {
 public:
  struct Config {
    uint64_t flows = 100'000;          // paper: 11.3M over 15 hours
    size_t clients = 1'000;            // paper: 73,613
    util::Timestamp duration = 3600LL * util::kSecond;  // paper: 15 h
    /// Parameters of the log-normal packet-per-flow distribution;
    /// median = e^mu. mu = ln(50) matches the paper's median.
    double log_mu = 3.912;   // ln(50)
    double log_sigma = 1.2;
    /// Peak-to-baseline arrival ratio of the (sharply peaked) diurnal
    /// shape; tuned so the p99 of per-second arrivals ≈ 442 fps when
    /// flows/duration matches the paper's 11.3M-over-15h rate.
    double peak_ratio = 4.0;
  };

  CampusTraceGenerator(Config config, uint64_t seed);

  /// Generate the full flow list, sorted by start time.
  std::vector<TraceFlow> generate();

  /// Aggregate statistics of a generated trace.
  static TraceSummary summarize(const std::vector<TraceFlow>& trace,
                                util::Timestamp duration);

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace nnn::workload
