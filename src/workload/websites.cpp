#include "workload/websites.h"

#include <unordered_map>

#include "util/fmt.h"

namespace nnn::workload {

std::string to_string(OriginKind k) {
  switch (k) {
    case OriginKind::kFirstParty:
      return "first-party";
    case OriginKind::kDedicatedCdn:
      return "dedicated-cdn";
    case OriginKind::kCdn:
      return "cdn";
    case OriginKind::kAds:
      return "ads";
    case OriginKind::kEmbed:
      return "embed";
  }
  return "?";
}

WebsiteProfile cnn_profile() {
  // §3: "Loading its front-page generates 255 flows and 6741 packets
  // from 71 different servers. nDPI marked only packets coming from
  // CNN servers, which summed up to 605 packets (less than 10%)".
  WebsiteProfile p;
  p.domain = "cnn.com";
  p.alexa_rank = 84;
  p.flows = 255;
  p.packets = 6741;
  p.servers = 71;
  p.first_party_packet_share = 605.0 / 6741.0;
  p.dedicated_cdn_packet_share = 0.09;
  p.https_share = 0.4;
  return p;
}

WebsiteProfile youtube_profile() {
  // §5.4: youtube.com generates 80 flows / 3750 packets.
  WebsiteProfile p;
  p.domain = "youtube.com";
  p.alexa_rank = 2;
  p.flows = 80;
  p.packets = 3750;
  p.servers = 21;
  p.first_party_packet_share = 0.72;  // mostly Google-owned servers
  p.https_share = 0.9;
  return p;
}

WebsiteProfile skai_profile() {
  // §5.4: skai.gr generates 83 flows / 1983 packets; nDPI "matched 12%
  // of packets from skai.gr [as YouTube], as it embedded YouTube's
  // video player" and had no rule for skai itself.
  WebsiteProfile p;
  p.domain = "skai.gr";
  p.alexa_rank = 6800;
  p.flows = 83;
  p.packets = 1983;
  p.servers = 24;
  p.first_party_packet_share = 0.35;
  p.https_share = 0.3;
  p.embed_domain = "youtube.com";
  p.embed_packet_share = 0.12;
  return p;
}

namespace {

WebsiteProfile simple_site(std::string domain, uint32_t rank,
                           uint32_t flows, uint32_t packets,
                           uint32_t servers, double first_party,
                           double https) {
  WebsiteProfile p;
  p.domain = std::move(domain);
  p.alexa_rank = rank;
  p.flows = flows;
  p.packets = packets;
  p.servers = servers;
  p.first_party_packet_share = first_party;
  p.https_share = https;
  return p;
}

std::vector<WebsiteProfile> build_catalog() {
  std::vector<WebsiteProfile> catalog;
  // The sites named in Fig. 1, ordered by popularity index. Ranks are
  // read off the figure's log axis (Alexa, mid-2015 era).
  catalog.push_back(
      simple_site("mail.google.com", 1, 40, 900, 8, 0.9, 1.0));
  catalog.push_back(youtube_profile());
  catalog.push_back(
      simple_site("facebook.com", 3, 120, 2900, 25, 0.6, 1.0));
  catalog.push_back(simple_site("netflix.com", 24, 60, 2400, 18, 0.5, 0.9));
  catalog.push_back(cnn_profile());
  catalog.push_back(simple_site("nbc.com", 520, 180, 4100, 52, 0.2, 0.4));
  catalog.push_back(simple_site("abc.go.com", 610, 150, 3600, 48, 0.2, 0.4));
  catalog.push_back(simple_site("hulu.com", 292, 90, 2700, 30, 0.4, 0.8));
  catalog.push_back(
      simple_site("speedtest.net", 118, 35, 1500, 12, 0.7, 0.6));
  catalog.push_back(
      simple_site("usanetwork.com", 1450, 140, 3300, 45, 0.2, 0.4));
  catalog.push_back(
      simple_site("ticketmaster.com", 640, 110, 2500, 38, 0.3, 0.8));
  catalog.push_back(
      simple_site("espncricinfo.com", 223, 130, 3100, 41, 0.3, 0.5));
  catalog.push_back(simple_site("cucirca.eu", 3200, 95, 2100, 33, 0.3, 0.2));
  catalog.push_back(
      simple_site("intercallonline.com", 21000, 25, 700, 9, 0.8, 0.9));
  catalog.push_back(
      simple_site("ondemandkorea.com", 5400, 88, 2300, 29, 0.4, 0.5));
  catalog.push_back(
      simple_site("starsports.com", 4100, 125, 2900, 39, 0.3, 0.4));
  catalog.push_back(skai_profile());
  catalog.push_back(simple_site("hbo.com", 980, 70, 2200, 26, 0.4, 0.8));
  catalog.push_back(simple_site("fox.com", 760, 160, 3800, 50, 0.2, 0.4));
  catalog.push_back(simple_site("espn.com", 61, 170, 4000, 55, 0.25, 0.5));

  // Long tail: deterministic synthetic sites out to rank > 5000 so the
  // preference samplers have a realistic rank space ("median popularity
  // index of 223 ... >5000").
  uint32_t rank = 240;
  for (int i = 0; i < 240; ++i) {
    const uint32_t flows = 30 + (i * 37) % 200;
    const uint32_t packets = flows * (18 + i % 22);
    const uint32_t servers = 6 + flows / 8;
    catalog.push_back(simple_site(util::fmt("site-{}.example", rank), rank,
                                  flows, packets, servers,
                                  0.2 + (i % 50) / 100.0,
                                  0.3 + (i % 60) / 100.0));
    // Spread ranks roughly geometrically out past 5000.
    rank += 7 + rank / 20;
  }
  return catalog;
}

}  // namespace

const std::vector<WebsiteProfile>& site_catalog() {
  static const std::vector<WebsiteProfile> catalog = build_catalog();
  return catalog;
}

const WebsiteProfile* find_site(const std::string& domain) {
  static const auto index = [] {
    std::unordered_map<std::string, const WebsiteProfile*> map;
    for (const auto& site : site_catalog()) map[site.domain] = &site;
    return map;
  }();
  const auto it = index.find(domain);
  return it == index.end() ? nullptr : it->second;
}

}  // namespace nnn::workload
