#include "workload/packet_gen.h"

#include "cookies/transport.h"

namespace nnn::workload {

PacketGenerator::PacketGenerator(Config config, const util::Clock& clock,
                                 cookies::CookieVerifier& verifier,
                                 uint64_t seed)
    : config_(config), clock_(clock), rng_(seed) {
  generators_.reserve(config_.descriptors);
  for (size_t i = 0; i < config_.descriptors; ++i) {
    cookies::CookieDescriptor descriptor;
    descriptor.cookie_id = i + 1;
    descriptor.key.resize(32);
    for (size_t b = 0; b < descriptor.key.size(); ++b) {
      descriptor.key[b] = static_cast<uint8_t>(rng_.next_u64());
    }
    descriptor.service_data = "Boost";
    verifier.add_descriptor(descriptor);
    generators_.emplace_back(std::move(descriptor), clock_,
                             rng_.next_u64());
  }
}

std::vector<cookies::CookieDescriptor> PacketGenerator::descriptors() const {
  std::vector<cookies::CookieDescriptor> out;
  out.reserve(generators_.size());
  for (const auto& generator : generators_) {
    out.push_back(generator.descriptor());
  }
  return out;
}

std::vector<net::Packet> PacketGenerator::make_batch(size_t flow_count) {
  // Delegating to fill_next keeps the two APIs emitting the same
  // stream — the copy-vs-arena differential test depends on it.
  std::vector<net::Packet> batch(flow_count * config_.packets_per_flow);
  for (net::Packet& packet : batch) {
    fill_next(packet);
  }
  return batch;
}

void PacketGenerator::fill_next(net::Packet& out) {
  if (flow_pos_ == 0) {
    const uint32_t flow_id = next_flow_id_++;
    flow_tuple_.src_ip =
        net::IpAddress::v4(0x0a000000u | (flow_id & 0xffffff));
    flow_tuple_.dst_ip =
        net::IpAddress::v4(151, 101, static_cast<uint8_t>(flow_id >> 8),
                           static_cast<uint8_t>(flow_id));
    flow_tuple_.src_port = static_cast<uint16_t>(1024 + flow_id % 50000);
    flow_tuple_.dst_port = 443;
    flow_tuple_.proto = config_.transport == cookies::Transport::kUdpHeader
                            ? net::L4Proto::kUdp
                            : net::L4Proto::kTcp;
    // Stable pointer: generators_ never grows after construction.
    flow_generator_ = &generators_[rng_.next_u64(generators_.size())];
  }
  out.tuple = flow_tuple_;
  out.wire_size = config_.packet_size;
  if (flow_pos_ == 0) {
    const cookies::Cookie cookie = flow_generator_->generate();
    if (config_.transport == cookies::Transport::kIpv6Extension) {
      out.ipv6 = true;
    }
    cookies::attach(out, cookie, config_.transport);
    // attach() may reset wire_size when it rewrites payloads; pin the
    // modeled on-wire size back to the experiment's parameter.
    out.wire_size = config_.packet_size;
  }
  if (++flow_pos_ >= config_.packets_per_flow) flow_pos_ = 0;
}

}  // namespace nnn::workload
