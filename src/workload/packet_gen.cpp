#include "workload/packet_gen.h"

#include "cookies/transport.h"

namespace nnn::workload {

PacketGenerator::PacketGenerator(Config config, const util::Clock& clock,
                                 cookies::CookieVerifier& verifier,
                                 uint64_t seed)
    : config_(config), clock_(clock), rng_(seed) {
  generators_.reserve(config_.descriptors);
  for (size_t i = 0; i < config_.descriptors; ++i) {
    cookies::CookieDescriptor descriptor;
    descriptor.cookie_id = i + 1;
    descriptor.key.resize(32);
    for (size_t b = 0; b < descriptor.key.size(); ++b) {
      descriptor.key[b] = static_cast<uint8_t>(rng_.next_u64());
    }
    descriptor.service_data = "Boost";
    verifier.add_descriptor(descriptor);
    generators_.emplace_back(std::move(descriptor), clock_,
                             rng_.next_u64());
  }
}

std::vector<cookies::CookieDescriptor> PacketGenerator::descriptors() const {
  std::vector<cookies::CookieDescriptor> out;
  out.reserve(generators_.size());
  for (const auto& generator : generators_) {
    out.push_back(generator.descriptor());
  }
  return out;
}

std::vector<net::Packet> PacketGenerator::make_batch(size_t flow_count) {
  std::vector<net::Packet> batch;
  batch.reserve(flow_count * config_.packets_per_flow);
  for (size_t f = 0; f < flow_count; ++f) {
    const uint32_t flow_id = next_flow_id_++;
    net::FiveTuple tuple;
    tuple.src_ip = net::IpAddress::v4(0x0a000000u | (flow_id & 0xffffff));
    tuple.dst_ip = net::IpAddress::v4(151, 101,
                                      static_cast<uint8_t>(flow_id >> 8),
                                      static_cast<uint8_t>(flow_id));
    tuple.src_port = static_cast<uint16_t>(1024 + flow_id % 50000);
    tuple.dst_port = 443;
    tuple.proto = config_.transport == cookies::Transport::kUdpHeader
                      ? net::L4Proto::kUdp
                      : net::L4Proto::kTcp;

    auto& generator = generators_[rng_.next_u64(generators_.size())];
    for (uint32_t i = 0; i < config_.packets_per_flow; ++i) {
      net::Packet packet;
      packet.tuple = tuple;
      packet.wire_size = config_.packet_size;
      if (i == 0) {
        const cookies::Cookie cookie = generator.generate();
        if (config_.transport == cookies::Transport::kIpv6Extension) {
          packet.ipv6 = true;
        }
        cookies::attach(packet, cookie, config_.transport);
        // attach() may reset wire_size when it rewrites payloads; pin
        // the modeled on-wire size back to the experiment's parameter.
        packet.wire_size = config_.packet_size;
      }
      batch.push_back(std::move(packet));
    }
  }
  return batch;
}

}  // namespace nnn::workload
