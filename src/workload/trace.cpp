#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace nnn::workload {

CampusTraceGenerator::CampusTraceGenerator(Config config, uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<TraceFlow> CampusTraceGenerator::generate() {
  std::vector<TraceFlow> trace;
  trace.reserve(config_.flows);

  // Heavy-tailed activity across the client pool (a few hosts dominate
  // a campus trace).
  util::ZipfSampler client_sampler(config_.clients, 1.1);

  // Diurnal arrival intensity: 1 + (peak-1) * sin^2 over the duration,
  // normalized so the expected total equals config_.flows. Draw each
  // flow's start by rejection against the intensity envelope.
  const double duration_sec =
      static_cast<double>(config_.duration) / util::kSecond;
  const double peak = config_.peak_ratio;

  const auto intensity = [&](double t_sec) {
    const double phase = t_sec / duration_sec * std::numbers::pi;
    const double s = std::sin(phase);
    const double s2 = s * s;
    const double s8 = s2 * s2 * s2 * s2;  // a sharp busy-hour peak
    return 1.0 + (peak - 1.0) * s8;
  };

  for (uint64_t i = 0; i < config_.flows; ++i) {
    double t_sec;
    while (true) {
      t_sec = rng_.uniform_real(0.0, duration_sec);
      if (rng_.next_double() * peak <= intensity(t_sec)) break;
    }
    TraceFlow flow;
    flow.start = static_cast<util::Timestamp>(t_sec * util::kSecond);
    const size_t client_rank = client_sampler.sample(rng_);
    flow.client = net::IpAddress::v4(
        10, static_cast<uint8_t>(client_rank >> 16),
        static_cast<uint8_t>(client_rank >> 8),
        static_cast<uint8_t>(client_rank));
    flow.packets = std::max<uint32_t>(
        2, static_cast<uint32_t>(
               std::lround(rng_.log_normal(config_.log_mu,
                                           config_.log_sigma))));
    flow.mean_packet_bytes =
        static_cast<uint32_t>(300 + rng_.next_u64(900));
    flow.https = rng_.chance(0.6);
    trace.push_back(flow);
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceFlow& a, const TraceFlow& b) {
              return a.start < b.start;
            });
  return trace;
}

TraceSummary CampusTraceGenerator::summarize(
    const std::vector<TraceFlow>& trace, util::Timestamp duration) {
  TraceSummary s;
  s.flows = trace.size();
  std::unordered_set<net::IpAddress> clients;
  std::vector<uint32_t> sizes;
  sizes.reserve(trace.size());
  const size_t seconds = static_cast<size_t>(duration / util::kSecond) + 1;
  std::vector<uint32_t> per_second(seconds, 0);
  for (const auto& flow : trace) {
    s.packets += flow.packets;
    clients.insert(flow.client);
    sizes.push_back(flow.packets);
    const size_t sec = static_cast<size_t>(flow.start / util::kSecond);
    if (sec < per_second.size()) ++per_second[sec];
  }
  s.distinct_clients = clients.size();
  if (!sizes.empty()) {
    const size_t mid = sizes.size() / 2;
    std::nth_element(sizes.begin(), sizes.begin() + mid, sizes.end());
    s.median_flow_packets = sizes[mid];
  }
  if (!per_second.empty()) {
    const size_t idx = static_cast<size_t>(per_second.size() * 0.99);
    std::nth_element(per_second.begin(),
                     per_second.begin() + std::min(idx, per_second.size() - 1),
                     per_second.end());
    s.p99_new_flows_per_sec =
        per_second[std::min(idx, per_second.size() - 1)];
  }
  return s;
}

}  // namespace nnn::workload
