// Website catalog and flow-composition profiles.
//
// Two roles. First, the site catalog behind Fig. 1: the sites home
// users boosted, with their Alexa popularity indexes (the paper's
// popularity proxy). Second, per-site flow compositions for the Fig. 6
// accuracy experiment: loading a front page fans out into flows to
// first-party servers, CDNs, ad networks, and embedded third-party
// widgets — e.g. "loading [cnn.com's] front-page generates 255 flows
// and 6741 packets from 71 different servers", of which only 605
// packets (<10%) come from CNN-owned servers (§3); skai.gr embeds
// YouTube's player, which is what makes nDPI misattribute 12% of its
// packets (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nnn::workload {

/// Who a page-load flow talks to. DPI can only attribute kFirstParty
/// flows to the site; kEmbed flows carry another app's signature.
enum class OriginKind : uint8_t {
  kFirstParty = 0,  // the site's own domain / servers
  kDedicatedCdn,    // CDN hosts dedicated to the site (cdn.<domain>)
  kCdn,             // shared CDN infrastructure
  kAds,             // ad networks, trackers, analytics
  kEmbed,           // embedded third-party widget (e.g. YouTube player)
};

std::string to_string(OriginKind k);

struct WebsiteProfile {
  std::string domain;       // address-bar domain, e.g. "cnn.com"
  uint32_t alexa_rank = 0;  // popularity index (Fig. 1 x-axis)
  uint32_t flows = 0;       // flows per front-page load
  uint32_t packets = 0;     // packets per front-page load
  uint32_t servers = 0;     // distinct servers contacted
  /// Fraction of packets attributable to the site's own servers
  /// (cnn.com: 605/6741 ≈ 0.09).
  double first_party_packet_share = 0.5;
  /// Fraction of packets served from CDN hosts dedicated to this site
  /// (host "cdn.<domain>"): DPI rule catalogs that list a site's known
  /// CDN hostnames can attribute these, unlike shared-CDN traffic.
  /// cnn.com: first-party 9% + dedicated CDN ≈ 9% gives nDPI's 18%
  /// (§5.4) while pure first-party gives the §3 count of 605 packets.
  double dedicated_cdn_packet_share = 0.0;
  /// Fraction of flows that are HTTPS (affects which transport carries
  /// the cookie and what DPI can see).
  double https_share = 0.5;
  /// Domain of an embedded third-party widget, if any ("youtube.com"
  /// for skai.gr), plus the share of packets it accounts for.
  std::optional<std::string> embed_domain;
  double embed_packet_share = 0.0;
};

/// The three sites of Fig. 6 with the paper's measured compositions.
WebsiteProfile cnn_profile();
WebsiteProfile youtube_profile();
WebsiteProfile skai_profile();

/// Full catalog: the Fig. 1 sites (with ranks read off the figure) plus
/// a long tail of plausible sites so preference sampling has >5000
/// ranks to draw from. Deterministic contents.
const std::vector<WebsiteProfile>& site_catalog();

/// Find a profile by domain; nullptr when absent.
const WebsiteProfile* find_site(const std::string& domain);

}  // namespace nnn::workload
