#include "workload/page_load.h"

#include <algorithm>

#include "net/http.h"
#include "net/tls.h"
#include "util/fmt.h"

namespace nnn::workload {

namespace {

/// Host names for non-first-party origins. CDN and ad hosts are
/// deliberately shared infrastructure names: DPI cannot attribute them
/// to the site, and OOB's server-only descriptions over-match them.
std::string origin_host(const GeneratedFlow& flow,
                        const WebsiteProfile& site, uint32_t index) {
  switch (flow.origin) {
    case OriginKind::kFirstParty:
      return index % 3 == 0 ? site.domain
                            : util::fmt("s{}.{}", index % 7, site.domain);
    case OriginKind::kDedicatedCdn:
      return util::fmt("cdn.{}", site.domain);
    case OriginKind::kCdn:
      return util::fmt("edge{}.cdn-provider.net", index % 9);
    case OriginKind::kAds:
      return util::fmt("track{}.ad-exchange.com", index % 5);
    case OriginKind::kEmbed:
      return site.embed_domain.value_or("embed.example");
  }
  return "";
}

}  // namespace

PageLoadGenerator::PageLoadGenerator(util::Rng& rng, net::IpAddress client)
    : rng_(rng), client_(client) {}

net::IpAddress PageLoadGenerator::server_for(OriginKind kind,
                                             uint32_t index) {
  // Distinct public /16 per origin kind; servers are index mod pool.
  switch (kind) {
    case OriginKind::kFirstParty:
      return net::IpAddress::v4(151, 101, index % 64, 10);
    case OriginKind::kDedicatedCdn:
      return net::IpAddress::v4(199, 27, 0, 1 + index % 8);
    case OriginKind::kCdn:
      // Small shared pool: many flows (and many *sites*) hit the same
      // CDN front ends.
      return net::IpAddress::v4(23, 55, 0, 1 + index % 6);
    case OriginKind::kAds:
      return net::IpAddress::v4(64, 233, 0, 1 + index % 4);
    case OriginKind::kEmbed:
      return net::IpAddress::v4(172, 217, 0, 1 + index % 8);
  }
  return net::IpAddress::v4(192, 0, 2, 1);
}

PageLoad PageLoadGenerator::generate(const WebsiteProfile& site) {
  PageLoad load;
  load.domain = site.domain;
  load.flows.reserve(site.flows);

  // Split the flow budget by origin. First-party flows host a larger
  // share of packets-per-flow than their flow count suggests when
  // first_party_packet_share is high, so derive flow counts from the
  // packet shares with a floor of one flow per non-zero share.
  const double embed_share = site.embed_packet_share;
  const double fp_share = site.first_party_packet_share;
  const double dedicated_share = site.dedicated_cdn_packet_share;
  const double rest =
      std::max(0.0, 1.0 - fp_share - embed_share - dedicated_share);
  const double cdn_share = rest * 0.7;
  const double ads_share = rest * 0.3;

  struct Split {
    OriginKind kind;
    double packet_share;
  };
  const Split splits[] = {
      {OriginKind::kFirstParty, fp_share},
      {OriginKind::kDedicatedCdn, dedicated_share},
      {OriginKind::kCdn, cdn_share},
      {OriginKind::kAds, ads_share},
      {OriginKind::kEmbed, embed_share},
  };

  uint32_t flows_left = site.flows;
  uint32_t packets_left = site.packets;
  uint32_t flow_index = 0;
  for (const auto& split : splits) {
    if (split.packet_share <= 0.0) continue;
    uint32_t flow_count = static_cast<uint32_t>(
        std::max(1.0, std::round(site.flows * split.packet_share)));
    flow_count = std::min(flow_count, flows_left);
    uint32_t packet_budget = static_cast<uint32_t>(
        std::round(site.packets * split.packet_share));
    packet_budget = std::min(packet_budget, packets_left);
    if (flow_count == 0) continue;

    for (uint32_t i = 0; i < flow_count; ++i) {
      GeneratedFlow flow;
      flow.origin = split.kind;
      flow.tuple.src_ip = client_;
      flow.tuple.dst_ip = server_for(split.kind, flow_index);
      flow.tuple.src_port = static_cast<uint16_t>(
          30000 + rng_.next_u64(20000));
      flow.https = rng_.chance(site.https_share);
      flow.tuple.dst_port = flow.https ? 443 : 80;
      flow.tuple.proto = net::L4Proto::kTcp;
      flow.host = origin_host(flow, site, flow_index);
      // Packets per flow: even share with +-50% jitter; remainder goes
      // to the last flow of the split.
      const uint32_t base = std::max(1u, packet_budget / flow_count);
      uint32_t pkts = std::max(
          1u, static_cast<uint32_t>(base * rng_.uniform_real(0.5, 1.5)));
      if (i + 1 == flow_count) {
        pkts = std::max(1u, packet_budget);  // keep split totals exact
      }
      pkts = std::min(pkts, packet_budget);
      packet_budget -= std::min(pkts, packet_budget);
      flow.packets = pkts;
      flow.request_index = static_cast<uint32_t>(rng_.next_u64(2));
      load.flows.push_back(std::move(flow));
      ++flow_index;
    }
    flows_left -= flow_count;
    const uint32_t split_total = static_cast<uint32_t>(
        std::round(site.packets * split.packet_share));
    packets_left -= std::min(split_total, packets_left);
  }

  for (const auto& flow : load.flows) load.total_packets += flow.packets;
  return load;
}

net::Packet PageLoadGenerator::make_request_packet(
    const GeneratedFlow& flow) {
  net::Packet packet;
  packet.tuple = flow.tuple;
  if (flow.https) {
    net::tls::ClientHello hello;
    hello.set_server_name(flow.host);
    packet.payload = hello.serialize_record();
  } else {
    net::http::Request request("GET", "/", flow.host);
    request.add_header("User-Agent", "nnn-browser/1.0");
    const std::string text = request.serialize();
    packet.payload.assign(text.begin(), text.end());
  }
  return packet;
}

net::Packet PageLoadGenerator::make_data_packet(const GeneratedFlow& flow,
                                                uint32_t size_bytes) {
  net::Packet packet;
  packet.tuple = flow.tuple;
  packet.wire_size = size_bytes;
  return packet;
}

std::vector<net::Packet> PageLoadGenerator::materialize_flow(
    const GeneratedFlow& flow, util::Rng& rng) {
  std::vector<net::Packet> out;
  out.reserve(flow.packets);
  for (uint32_t i = 0; i < flow.packets; ++i) {
    if (i == flow.request_index) {
      out.push_back(make_request_packet(flow));
    } else {
      const uint32_t size =
          static_cast<uint32_t>(200 + rng.next_u64(1301));
      out.push_back(make_data_packet(flow, size));
    }
  }
  return out;
}

}  // namespace nnn::workload
