// Page-load flow generator.
//
// Expands a WebsiteProfile into the concrete flows and packets a
// browser would emit when loading the front page: each flow gets a
// destination server (first-party / CDN / ads / embed pools), a host
// name for its SNI or Host header, an HTTPS flag, a packet count, and
// materialized first packets (real HTTP request or TLS ClientHello
// bytes) so DPI, OOB and the cookie middlebox all see what they would
// see on the wire. This is the workload under Fig. 6 and the §5.1
// user-view/network-view paradox.
#pragma once

#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "util/rng.h"
#include "workload/websites.h"

namespace nnn::workload {

struct GeneratedFlow {
  net::FiveTuple tuple;       // pre-NAT (client-side) tuple
  OriginKind origin = OriginKind::kFirstParty;
  std::string host;           // SNI / Host header value
  bool https = false;
  uint32_t packets = 0;       // total packets in the flow (both ways)
  uint32_t request_index = 0; // index of the request packet (0..2)
};

struct PageLoad {
  std::string domain;
  std::vector<GeneratedFlow> flows;
  uint32_t total_packets = 0;
};

class PageLoadGenerator {
 public:
  /// `client` is the (private) client address used as flow source.
  PageLoadGenerator(util::Rng& rng, net::IpAddress client);

  /// Expand one front-page load of `site`.
  PageLoad generate(const WebsiteProfile& site);

  /// Build the request packet (packet #request_index of the flow): a
  /// real HTTP GET or TLS ClientHello for flow.host.
  static net::Packet make_request_packet(const GeneratedFlow& flow);

  /// Build a non-request data packet of the flow (sized, opaque
  /// payload).
  static net::Packet make_data_packet(const GeneratedFlow& flow,
                                      uint32_t size_bytes);

  /// Materialize the full packet sequence of a flow: sniffable request
  /// within the first packets, the rest data. Sizes drawn from `rng`.
  static std::vector<net::Packet> materialize_flow(
      const GeneratedFlow& flow, util::Rng& rng);

 private:
  /// Pool of server addresses per origin kind (stable per generator so
  /// CDN servers are genuinely shared across sites — the OOB
  /// false-positive mechanism).
  net::IpAddress server_for(OriginKind kind, uint32_t index);

  util::Rng& rng_;
  net::IpAddress client_;
};

}  // namespace nnn::workload
