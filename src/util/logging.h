// Minimal leveled logger.
//
// Library code logs through this instead of writing to stderr directly
// so tests can silence or capture output. Default severity is kWarn to
// keep benches quiet.
//
// Thread-safe: the runtime's worker and dispatcher threads log
// concurrently. The level is an atomic (hot-path check stays a single
// relaxed load); sink swaps and sink invocations are serialized by a
// mutex, so a sink installed by a test never races with a log call
// from a worker.
//
// Counting: every log event is tallied per level — and per component
// for tagged calls — BEFORE the level filter runs. A dispatcher that
// fails open under backpressure emits warns that the default kWarn
// threshold may suppress in benches; the counts still move, and the
// telemetry registry exports them as `nnn_log_total{level=...}` /
// `nnn_log_component_total{component=...}`, so silent fail-open shows
// up on the metrics endpoint even when nothing reached the sink. The
// counters live here as plain atomics (not telemetry instruments) so
// util stays at the bottom of the link graph; the telemetry module
// installs the collector that reads them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/fmt.h"

namespace nnn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log sink and level.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  static constexpr size_t kLevels = 4;
  /// Per-level event counts for one component, indexed by LogLevel.
  using LevelCounts = std::array<uint64_t, kLevels>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replace the sink (tests use this to capture); pass nullptr to
  /// restore the default stderr sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);
  /// Tagged variant: `component` names the subsystem ("runtime",
  /// "boost-agent", ...) for per-component counting; the sink sees
  /// "component: msg".
  void log(LogLevel level, std::string_view component, std::string_view msg);

  template <typename... Args>
  void logf(LogLevel level, std::string_view fmt, Args&&... args) {
    count_event(level, {});
    if (level < level_.load(std::memory_order_relaxed)) return;
    emit(level, {}, util::fmt(fmt, std::forward<Args>(args)...));
  }

  /// Tagged logf (distinct name: with a leading string argument an
  /// overload of logf would be ambiguous against the format string).
  template <typename... Args>
  void logt(LogLevel level, std::string_view component, std::string_view fmt,
            Args&&... args) {
    count_event(level, component);
    if (level < level_.load(std::memory_order_relaxed)) return;
    emit(level, component, util::fmt(fmt, std::forward<Args>(args)...));
  }

  /// Events seen at `level` since start (or reset_counts()),
  /// including events the level filter suppressed.
  uint64_t count(LogLevel level) const;

  /// Visit per-component counts (tagged calls only), keyed by
  /// component name, holding the counts lock — keep `fn` cheap.
  void visit_component_counts(
      const std::function<void(std::string_view, const LevelCounts&)>& fn)
      const;

  /// Zero all level and component counts (tests).
  void reset_counts();

 private:
  Logger();
  void count_event(LogLevel level, std::string_view component);
  void emit(LogLevel level, std::string_view component, std::string_view msg);

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  // guards sink_ swap and invocation
  Sink sink_;

  std::array<std::atomic<uint64_t>, kLevels> counts_{};
  mutable std::mutex counts_mutex_;  // guards component_counts_
  std::map<std::string, LevelCounts, std::less<>> component_counts_;
};

template <typename... Args>
void log_debug(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

/// Component-tagged helpers (counted under the component in
/// `nnn_log_component_total`).
template <typename... Args>
void log_debug_tagged(std::string_view component, std::string_view fmt,
                      Args&&... args) {
  Logger::instance().logt(LogLevel::kDebug, component, fmt,
                          std::forward<Args>(args)...);
}
template <typename... Args>
void log_info_tagged(std::string_view component, std::string_view fmt,
                     Args&&... args) {
  Logger::instance().logt(LogLevel::kInfo, component, fmt,
                          std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn_tagged(std::string_view component, std::string_view fmt,
                     Args&&... args) {
  Logger::instance().logt(LogLevel::kWarn, component, fmt,
                          std::forward<Args>(args)...);
}
template <typename... Args>
void log_error_tagged(std::string_view component, std::string_view fmt,
                      Args&&... args) {
  Logger::instance().logt(LogLevel::kError, component, fmt,
                          std::forward<Args>(args)...);
}

}  // namespace nnn::util
