// Minimal leveled logger.
//
// Library code logs through this instead of writing to stderr directly
// so tests can silence or capture output. Default severity is kWarn to
// keep benches quiet.
//
// Thread-safe: the runtime's worker and dispatcher threads log
// concurrently. The level is an atomic (hot-path check stays a single
// relaxed load); sink swaps and sink invocations are serialized by a
// mutex, so a sink installed by a test never races with a log call
// from a worker.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/fmt.h"

namespace nnn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log sink and level.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replace the sink (tests use this to capture); pass nullptr to
  /// restore the default stderr sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

  template <typename... Args>
  void logf(LogLevel level, std::string_view fmt, Args&&... args) {
    if (level < level_.load(std::memory_order_relaxed)) return;
    log(level, util::fmt(fmt, std::forward<Args>(args)...));
  }

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;  // guards sink_ swap and invocation
  Sink sink_;
};

template <typename... Args>
void log_debug(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view fmt, Args&&... args) {
  Logger::instance().logf(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

}  // namespace nnn::util
