#include "util/clock.h"

// Clock implementations are header-only; this TU anchors the vtable.

namespace nnn::util {

// Key function anchor: nothing further required.

}  // namespace nnn::util
