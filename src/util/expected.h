// nnn::Expected<T, E> — a value-or-error sum type (API-redesign
// satellite). The toolchain targets C++20, so std::expected (C++23)
// is out of reach; this is the minimal subset the codebase needs,
// with the std spelling (has_value/value/error/value_or) so a future
// migration is a find-and-replace.
//
// Conventions:
//   * E defaults to nnn::Error so signatures read Expected<Packet>.
//   * Failure is constructed via unexpected(Error{...}) — the
//     Unexpected wrapper disambiguates the error alternative when T
//     and E could both be constructed from the argument.
//   * to_optional() bridges to the legacy std::optional views that
//     PR 5 keeps as thin adapters over the Expected entry points.
//
// No exceptions: value()/error() assert in debug builds and are
// undefined on the wrong alternative in release, matching the
// repo-wide noexcept style (ByteReader, SpscRing).
#pragma once

#include <cassert>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/error.h"

namespace nnn {

/// Wrapper marking a constructor argument as the error alternative.
template <typename E>
class Unexpected {
 public:
  explicit Unexpected(E error) : error_(std::move(error)) {}
  const E& error() const& { return error_; }
  E&& error() && { return std::move(error_); }

 private:
  E error_;
};

/// Deduce-and-wrap helper: return unexpected(Error{...}).
template <typename E>
Unexpected<std::decay_t<E>> unexpected(E&& error) {
  return Unexpected<std::decay_t<E>>(std::forward<E>(error));
}

template <typename T, typename E = Error>
class Expected {
  static_assert(!std::is_same_v<T, E>,
                "Expected<T, E> needs distinct alternatives");

 public:
  using value_type = T;
  using error_type = E;

  // Implicit from the value type: `return packet;` just works.
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  // Implicit from Unexpected: `return unexpected(Error{...});`.
  Expected(Unexpected<E> unex)
      : state_(std::in_place_index<1>, std::move(unex).error()) {}

  bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(state_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(state_));
  }

  const E& error() const& {
    assert(!has_value());
    return std::get<1>(state_);
  }
  E&& error() && {
    assert(!has_value());
    return std::get<1>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return has_value() ? std::get<0>(state_)
                       : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    return has_value() ? std::get<0>(std::move(state_))
                       : static_cast<T>(std::forward<U>(fallback));
  }

  /// Legacy bridge: drop the error, keep the shape the pre-redesign
  /// std::optional entry points promised.
  std::optional<T> to_optional() const& {
    if (has_value()) return std::get<0>(state_);
    return std::nullopt;
  }
  std::optional<T> to_optional() && {
    if (has_value()) return std::get<0>(std::move(state_));
    return std::nullopt;
  }

 private:
  std::variant<T, E> state_;
};

/// Expected<void, E>: success carries no payload (e.g. an apply step).
template <typename E>
class Expected<void, E> {
 public:
  using value_type = void;
  using error_type = E;

  Expected() = default;
  Expected(Unexpected<E> unex) : error_(std::move(unex).error()) {}

  bool has_value() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  const E& error() const& {
    assert(!has_value());
    return *error_;
  }

 private:
  std::optional<E> error_;
};

}  // namespace nnn
