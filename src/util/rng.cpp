#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nnn::util {

uint64_t Rng::next_u64(uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::next_u64: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = engine_();
  } while (v >= limit);
  return v % n;
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(engine_() >> 11) * (1.0 / 9007199254740992.0);
}

int Rng::uniform_int(int lo, int hi) {
  return lo + static_cast<int>(next_u64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  return next_double() < p;
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

double Rng::log_normal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

Rng Rng::fork() {
  return Rng(engine_());
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double sum = 0;
  for (size_t k = 1; k <= n; ++k) {
    sum += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

}  // namespace nnn::util
