// Minimal {}-style formatter.
//
// The toolchain (libstdc++ 12) does not ship <format>, so the library
// uses this small substitute. Supported: "{}" placeholders filled in
// order with operator<<, plus "{:x}" for lowercase hex integers.
// Surplus placeholders render literally; surplus arguments are ignored
// (formatting must never throw in logging paths).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace nnn::util {

namespace detail {

inline void fmt_rest(std::ostringstream& os, std::string_view f) {
  os << f;
}

template <typename T, typename... Rest>
void fmt_rest(std::ostringstream& os, std::string_view f, T&& first,
              Rest&&... rest) {
  const size_t open = f.find('{');
  if (open == std::string_view::npos) {
    os << f;
    return;  // extra args ignored
  }
  const size_t close = f.find('}', open);
  if (close == std::string_view::npos) {
    os << f;
    return;
  }
  os << f.substr(0, open);
  const std::string_view spec = f.substr(open + 1, close - open - 1);
  if (spec == ":x") {
    const auto flags = os.flags();
    os << std::hex << first;
    os.flags(flags);
  } else {
    os << first;
  }
  fmt_rest(os, f.substr(close + 1), std::forward<Rest>(rest)...);
}

}  // namespace detail

template <typename... Args>
std::string fmt(std::string_view f, Args&&... args) {
  std::ostringstream os;
  detail::fmt_rest(os, f, std::forward<Args>(args)...);
  return os.str();
}

}  // namespace nnn::util
