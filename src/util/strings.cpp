#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace nnn::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool domain_matches(std::string_view host, std::string_view domain) {
  if (iequals(host, domain)) return true;
  if (host.size() <= domain.size()) return false;
  return ends_with(to_lower(host), "." + to_lower(domain));
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace nnn::util
