#include "util/bytes.h"

namespace nnn::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

bool equal(BytesView a, BytesView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void ByteWriter::u16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::u32(uint32_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 24));
  out_.push_back(static_cast<uint8_t>(v >> 16));
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::u64(uint64_t v) {
  u32(static_cast<uint32_t>(v >> 32));
  u32(static_cast<uint32_t>(v));
}

void ByteWriter::raw(std::string_view v) {
  out_.insert(out_.end(), v.begin(), v.end());
}

std::optional<uint8_t> ByteReader::u8() {
  if (remaining() < 1) return std::nullopt;
  return in_[pos_++];
}

std::optional<uint16_t> ByteReader::u16() {
  if (remaining() < 2) return std::nullopt;
  uint16_t v = static_cast<uint16_t>(in_[pos_] << 8 | in_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<uint32_t> ByteReader::u32() {
  if (remaining() < 4) return std::nullopt;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | in_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<uint64_t> ByteReader::u64() {
  if (remaining() < 8) return std::nullopt;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | in_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<Bytes> ByteReader::raw(size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(in_.begin() + static_cast<ptrdiff_t>(pos_),
            in_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<BytesView> ByteReader::view(size_t n) {
  if (remaining() < n) return std::nullopt;
  BytesView v = in_.subspan(pos_, n);
  pos_ += n;
  return v;
}

bool ByteReader::skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

}  // namespace nnn::util
