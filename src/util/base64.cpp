#include "util/base64.h"

#include <array>

namespace nnn::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<int8_t, 256> build_reverse() {
  std::array<int8_t, 256> rev{};
  for (auto& v : rev) v = -1;
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<uint8_t>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return rev;
}

constexpr auto kReverse = build_reverse();

}  // namespace

std::string base64_encode(BytesView in) {
  std::string out;
  out.reserve((in.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= in.size(); i += 3) {
    uint32_t v = static_cast<uint32_t>(in[i]) << 16 |
                 static_cast<uint32_t>(in[i + 1]) << 8 | in[i + 2];
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out.push_back(kAlphabet[v >> 6 & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  const size_t rem = in.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint32_t>(in[i]) << 16;
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    uint32_t v = static_cast<uint32_t>(in[i]) << 16 |
                 static_cast<uint32_t>(in[i + 1]) << 8;
    out.push_back(kAlphabet[v >> 18 & 0x3f]);
    out.push_back(kAlphabet[v >> 12 & 0x3f]);
    out.push_back(kAlphabet[v >> 6 & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view in) {
  if (in.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve(in.size() / 4 * 3);
  for (size_t i = 0; i < in.size(); i += 4) {
    const bool last = i + 4 == in.size();
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      const char c = in[i + j];
      if (c == '=') {
        // Padding is only legal in the last one or two positions of the
        // final quantum.
        if (!last || j < 2) return std::nullopt;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after '='
      const int8_t d = kReverse[static_cast<uint8_t>(c)];
      if (d < 0) return std::nullopt;
      v = v << 6 | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

}  // namespace nnn::util
