// Shared integer hashing and shard steering.
//
// Two consumers need the exact same avalanche function:
//   - state::FlatTable splits a hash into a group index and a 7-bit
//     control byte, so clustered keys (sequential cookie ids) must be
//     mixed before the split;
//   - the RX demux steers cookie-bearing packets to workers by cookie
//     id, and the shard a descriptor lands on must be stable across
//     platforms and standard libraries (std::hash is
//     implementation-defined), because replay caches and descriptor
//     hot tiers are sharded by that assignment.
// Keeping one definition here guarantees the control-plane's notion of
// "which worker owns descriptor X" can never drift from the state
// layer's probe sequence derivation.
//
// Fixed vectors are asserted in tests/test_arena.cpp so a platform or
// refactor that changes the function (and therefore every on-disk or
// cross-host shard assignment) fails loudly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nnn::util {

/// splitmix64 finalizer — the canonical cheap 64-bit avalanche.
/// Bijective, so it loses no key bits; constexpr, so tables of fixed
/// vectors can be checked at compile time.
constexpr uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Steering: which of `shard_count` shards owns key `key` (a cookie
/// id, or any pre-hashed 64-bit value). Platform-stable: no std::hash
/// anywhere in the chain. shard_count == 0 is treated as 1.
constexpr size_t steer_shard(uint64_t key, size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<size_t>(mix64(key) % shard_count);
}

}  // namespace nnn::util
