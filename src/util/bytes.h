// Byte-buffer primitives shared by every wire codec in the library.
//
// The packet substrate, crypto code, and cookie codecs all operate on
// contiguous byte ranges. We standardize on std::vector<uint8_t> for
// owning buffers and std::span<const uint8_t> for views, plus a small
// big-endian reader/writer pair used by all header serializers.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nnn::util {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Convert a string's characters to bytes (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Convert raw bytes back to a std::string (no encoding applied).
std::string to_string(BytesView b);

/// Constant-size equality check helper (not constant-time; see
/// crypto::constant_time_equal for secret comparisons).
bool equal(BytesView a, BytesView b);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Incremental big-endian writer used by the packet and cookie codecs.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void raw(BytesView v) { append(out_, v); }
  void raw(std::string_view v);

  /// Bytes written so far through this writer's target buffer.
  size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Incremental big-endian reader. All accessors return std::nullopt on
/// underrun instead of throwing: wire parsing treats truncation as a
/// recoverable condition (the packet simply has no cookie / bad header).
class ByteReader {
 public:
  explicit ByteReader(BytesView in) : in_(in) {}

  std::optional<uint8_t> u8();
  std::optional<uint16_t> u16();
  std::optional<uint32_t> u32();
  std::optional<uint64_t> u64();
  /// Read exactly n bytes; nullopt if fewer remain.
  std::optional<Bytes> raw(size_t n);
  /// View of exactly n bytes without copying; nullopt if fewer remain.
  std::optional<BytesView> view(size_t n);
  /// Skip n bytes; false if fewer remain.
  bool skip(size_t n);

  size_t remaining() const { return in_.size() - pos_; }
  size_t position() const { return pos_; }
  bool done() const { return pos_ == in_.size(); }

 private:
  BytesView in_;
  size_t pos_ = 0;
};

}  // namespace nnn::util
