// Deterministic random-number utilities.
//
// Every study, workload generator, and simulator component takes an
// explicit Rng so runs are reproducible from a seed. We also provide
// the two heavy-tail samplers the paper's workloads need: Zipf (site /
// app popularity and user preferences have a heavy tail, Figs. 1-2) and
// log-normal (flow sizes in the campus trace, §4.6).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace nnn::util {

/// Thin deterministic wrapper around std::mt19937_64 with convenience
/// sampling helpers. Copyable so generators can fork independent
/// sub-streams (fork() reseeds from the parent's stream).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, n). Requires n > 0.
  uint64_t next_u64(uint64_t n);
  uint64_t next_u64() { return engine_(); }
  uint32_t next_u32() { return static_cast<uint32_t>(engine_()); }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Log-normal with the given parameters of the underlying normal.
  double log_normal(double mu, double sigma);

  /// Normal distribution.
  double normal(double mean, double stddev);

  /// Derive an independent generator (e.g., per-user sub-streams).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_u64(i)]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[next_u64(v.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(s) sampler over ranks 1..n: P(k) proportional to k^-s.
/// Built with an inverse-CDF table; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Sample a rank in [1, n].
  size_t sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nnn::util
