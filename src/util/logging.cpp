#include "util/logging.h"

#include <cstdio>

namespace nnn::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  set_sink(nullptr);
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view msg) {
      std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                   static_cast<int>(msg.size()), msg.data());
    };
  }
}

void Logger::count_event(LogLevel level, std::string_view component) {
  const auto i = static_cast<size_t>(level);
  if (i < kLevels) {
    counts_[i].fetch_add(1, std::memory_order_relaxed);
  }
  if (!component.empty()) {
    const std::lock_guard<std::mutex> lock(counts_mutex_);
    auto it = component_counts_.find(component);
    if (it == component_counts_.end()) {
      it = component_counts_.emplace(std::string(component), LevelCounts{})
               .first;
    }
    if (i < kLevels) ++it->second[i];
  }
}

void Logger::emit(LogLevel level, std::string_view component,
                  std::string_view msg) {
  // The sink runs under the mutex: slower than snapshotting the
  // std::function, but it guarantees a test's capture sink is never
  // invoked after set_sink() restored the default.
  if (component.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_(level, msg);
    return;
  }
  std::string tagged;
  tagged.reserve(component.size() + 2 + msg.size());
  tagged.append(component);
  tagged.append(": ");
  tagged.append(msg);
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_(level, tagged);
}

void Logger::log(LogLevel level, std::string_view msg) {
  count_event(level, {});
  if (level < level_.load(std::memory_order_relaxed)) return;
  emit(level, {}, msg);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  count_event(level, component);
  if (level < level_.load(std::memory_order_relaxed)) return;
  emit(level, component, msg);
}

uint64_t Logger::count(LogLevel level) const {
  const auto i = static_cast<size_t>(level);
  if (i >= kLevels) return 0;
  return counts_[i].load(std::memory_order_relaxed);
}

void Logger::visit_component_counts(
    const std::function<void(std::string_view, const LevelCounts&)>& fn)
    const {
  const std::lock_guard<std::mutex> lock(counts_mutex_);
  for (const auto& [component, counts] : component_counts_) {
    fn(component, counts);
  }
}

void Logger::reset_counts() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(counts_mutex_);
  component_counts_.clear();
}

}  // namespace nnn::util
