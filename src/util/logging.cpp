#include "util/logging.h"

#include <cstdio>

namespace nnn::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  set_sink(nullptr);
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view msg) {
      std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                   static_cast<int>(msg.size()), msg.data());
    };
  }
}

void Logger::log(LogLevel level, std::string_view msg) {
  if (level < level_.load(std::memory_order_relaxed)) return;
  // The sink runs under the mutex: slower than snapshotting the
  // std::function, but it guarantees a test's capture sink is never
  // invoked after set_sink() restored the default.
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_(level, msg);
}

}  // namespace nnn::util
