// Base64 codec (RFC 4648).
//
// The Boost agent sends cookies as base64-encoded text so they fit in
// an HTTP header or a TLS extension without escaping issues (§5.1 of
// the paper: "To better adjust with TLS and HTTP, we send a
// base64-encoded text cookie").
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace nnn::util {

/// Encode bytes to standard base64 with padding.
std::string base64_encode(BytesView in);

/// Decode standard base64 (padding required, no whitespace).
/// Returns nullopt on any malformed input.
std::optional<Bytes> base64_decode(std::string_view in);

}  // namespace nnn::util
