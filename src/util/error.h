// One error taxonomy for every subsystem (API-redesign satellite).
//
// Before this header each layer reported failure its own way: wire
// parsing returned std::optional (truncation indistinguishable from a
// bad checksum), cookie verification had VerifyStatus, the cookie
// server had AcquireError, and the sync client counted timeouts into a
// bare counter. A deployment debugging "why did this middlebox degrade"
// needs one vocabulary that a metric label, a log line, and a unit
// test can all speak. nnn::Error is that vocabulary:
//
//   domain — which subsystem raised it (wire, sync, verify, ...)
//   code   — what went wrong, from one shared enum so the same
//            condition spells the same way in every domain
//            (kTruncated means truncated whether the bytes were an
//            IPv4 header or a descriptor payload)
//   detail — optional static context ("ipv4 header", "delta payload");
//            always a string_view into a literal, never allocated, so
//            constructing an Error on a parse path costs nothing.
//
// Legacy enums (cookies::VerifyStatus, server::AcquireError) stay as
// thin views — same pattern as PR 3's StatusCounters — with to_error()
// adapters mapping them into the taxonomy.
//
// Counting: every Error can be tallied into the process-wide
// ErrorTally (a fixed domain x code matrix of relaxed atomics). The
// telemetry registry installs a collector at startup that exports the
// non-zero cells as nnn_errors_total{domain=...,code=...} — call sites
// never format a string. util stays at the bottom of the link graph,
// exactly like util::Logger's level counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace nnn {

enum class ErrorDomain : uint8_t {
  kNone = 0,    // "no domain": the zero Error, never counted
  kWire,        // net/wire packet + frame codecs
  kMessages,    // controlplane typed message payloads
  kCookie,      // cookie blob codec
  kVerify,      // §4.2 verification outcomes
  kSync,        // snapshot/delta sync channel (client side)
  kServer,      // cookie server acquire/revoke
  kFault,       // injected faults (so chaos runs are auditable)
  kNetio,       // epoll network edge (sockets, framing, timeouts)
  kFlow,        // flow-identity state (flow table, CID alias table)
};
inline constexpr size_t kErrorDomainCount = 10;

/// Shared across domains: a condition spells the same way everywhere.
enum class ErrorCode : uint8_t {
  kOk = 0,             // the zero Error only; never a real failure
  kTruncated,          // input ended before the structure did
  kBadMagic,           // envelope marker mismatch
  kUnsupportedVersion, // protocol newer than this decoder
  kBadChecksum,        // integrity check over the bytes failed
  kMalformed,          // structurally invalid known payload
  kUnknownType,        // no known payload type in the input
  kUnknownProtocol,    // L4 protocol outside the modeled set
  kUnknownId,          // id not in the descriptor table
  kBadSignature,       // MAC mismatch
  kStaleTimestamp,     // outside the network coherency time
  kReplayed,           // use-once violation
  kExpired,            // descriptor lifetime passed
  kRevoked,            // descriptor tombstoned
  kUnavailable,        // peer/service not answering (outage, breaker)
  kTimeout,            // request exceeded its response budget
  kOverload,           // shed by admission control
  kStale,              // operating beyond the staleness budget
  kAuthRequired,       // credentials missing
  kBadCredentials,     // credentials rejected
  kQuotaExceeded,      // per-account issue limit reached
};
inline constexpr size_t kErrorCodeCount = 21;

struct Error {
  ErrorDomain domain = ErrorDomain::kNone;
  ErrorCode code = ErrorCode::kOk;
  /// Static context only — a view into a string literal. Not part of
  /// identity: two errors are equal when domain and code match.
  std::string_view detail{};

  friend bool operator==(const Error& a, const Error& b) {
    return a.domain == b.domain && a.code == b.code;
  }
};

// to_string(ErrorDomain) / to_string(ErrorCode) live in
// telemetry/labels.h — the one header home for label vocabulary.

/// "domain/code" or "domain/code (detail)" — cold-path formatting for
/// logs and test failure messages. Declared here, defined in
/// telemetry/labels.cpp next to the name tables it needs (util sits
/// below telemetry in the link graph, same split as util::Logger).
std::string to_string(const Error& error);

/// Process-wide domain x code tally. inc() is a relaxed fetch_add —
/// errors are cold by definition, and multiple threads (workers, the
/// control thread, a server) may raise them concurrently. The
/// telemetry registry exports non-zero cells as
/// nnn_errors_total{domain=...,code=...}.
class ErrorTally {
 public:
  static ErrorTally& instance();

  void count(const Error& error) noexcept {
    if (error.domain == ErrorDomain::kNone) return;
    cells_[index(error.domain, error.code)].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t count(ErrorDomain domain, ErrorCode code) const noexcept {
    return cells_[index(domain, code)].load(std::memory_order_relaxed);
  }

  uint64_t total() const noexcept {
    uint64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Visit every non-zero (domain, code, count) cell.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (size_t d = 0; d < kErrorDomainCount; ++d) {
      for (size_t c = 0; c < kErrorCodeCount; ++c) {
        const uint64_t n =
            cells_[d * kErrorCodeCount + c].load(std::memory_order_relaxed);
        if (n != 0) {
          fn(static_cast<ErrorDomain>(d), static_cast<ErrorCode>(c), n);
        }
      }
    }
  }

  /// Zero every cell (tests).
  void reset() noexcept {
    for (auto& cell : cells_) cell.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t index(ErrorDomain domain, ErrorCode code) noexcept {
    return static_cast<size_t>(domain) * kErrorCodeCount +
           static_cast<size_t>(code);
  }

  std::array<std::atomic<uint64_t>, kErrorDomainCount * kErrorCodeCount>
      cells_{};
};

/// Tally an error into the process-wide matrix. The one-liner call
/// sites use on failure paths; no formatting, no allocation.
inline void count_error(const Error& error) {
  ErrorTally::instance().count(error);
}

}  // namespace nnn
