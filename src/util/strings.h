// Small string helpers used by the HTTP codec, JSON API, and catalogs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nnn::util {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `host` equals `domain` or is a subdomain of it
/// ("cdn.cnn.com" matches domain "cnn.com").
bool domain_matches(std::string_view host, std::string_view domain);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace nnn::util
