// Virtual time.
//
// Cookie validity is time-based (the NCT window, descriptor expiry), so
// every component that reads the clock takes a Clock& and the tests /
// simulator inject a ManualClock. Time is an integral count of
// microseconds since an arbitrary epoch; cookies carry seconds-level
// timestamps derived from it.
#pragma once

#include <chrono>
#include <cstdint>

namespace nnn::util {

/// Microseconds since an arbitrary epoch.
using Timestamp = int64_t;

/// One second in Timestamp units.
inline constexpr Timestamp kSecond = 1'000'000;
inline constexpr Timestamp kMillisecond = 1'000;

/// Abstract time source. See ManualClock (tests, simulator) and
/// SystemClock (benchmarks, examples).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp now() const = 0;
};

/// Clock advanced explicitly by the caller; the simulator's event loop
/// and all deterministic tests use this.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Timestamp start = 0) : now_(start) {}

  Timestamp now() const override { return now_; }
  void advance(Timestamp delta) { now_ += delta; }
  void set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_;
};

/// Wall clock (steady, monotonic).
class SystemClock final : public Clock {
 public:
  Timestamp now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace nnn::util
