// Hex codec, used for crypto test vectors, logging, and audit records.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace nnn::util {

/// Lowercase hex encoding.
std::string hex_encode(BytesView in);

/// Decode hex (case-insensitive, even length). nullopt on bad input.
std::optional<Bytes> hex_decode(std::string_view in);

}  // namespace nnn::util
