#include "util/hex.h"

namespace nnn::util {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(BytesView in) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(in.size() * 2);
  for (uint8_t b : in) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view in) {
  if (in.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(in.size() / 2);
  for (size_t i = 0; i < in.size(); i += 2) {
    const int hi = hex_digit(in[i]);
    const int lo = hex_digit(in[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace nnn::util
