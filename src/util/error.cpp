#include "util/error.h"

namespace nnn {

ErrorTally& ErrorTally::instance() {
  // Function-local static: constant-initialized atomics, no
  // destruction-order hazard for workers counting errors at exit.
  static ErrorTally tally;
  return tally;
}

}  // namespace nnn
