// DiffServ baseline (§3).
//
// "DiffServ allows endpoints to mark their packets (using the 6 DSCP
// bits in the IP header) ... Network operators often ignore or even
// reset DSCP bits across network boundaries ... DiffServ has no
// authentication and revocation primitives: any application can set
// the DSCP bits and request service without the user's consent."
//
// The model: endpoints mark DSCP freely (no auth — that's the point),
// and a path is a sequence of DiffServ domains, each with a boundary
// policy (preserve / bleach / remap) and an internal class table of at
// most 64 entries. Traversal shows why DSCP cannot carry end-to-end
// user preferences: the marking that arrives is whatever the last
// boundary left of it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"

namespace nnn::baselines {

inline constexpr uint8_t kDscpMax = 63;  // 6 bits -> 64 classes

enum class BoundaryPolicy : uint8_t {
  kPreserve = 0,  // trust upstream marking
  kBleach = 1,    // reset to 0 (common ISP behaviour)
  kRemap = 2,     // rewrite via a remap table
};

class DiffServDomain {
 public:
  DiffServDomain(std::string name, BoundaryPolicy policy);

  /// Define what an internal class means (informational; the class
  /// table is capped at 64, enforcing the paper's "26 classes" limit).
  /// Returns false when the table is full or dscp > 63.
  bool define_class(uint8_t dscp, std::string meaning);

  /// Boundary remap entry (only used with kRemap).
  void set_remap(uint8_t from, uint8_t to);

  /// Apply boundary behaviour to a packet entering this domain.
  void ingress(net::Packet& packet) const;

  /// The service class the domain's interior applies to a marking; a
  /// dscp with no defined class gets best-effort ("").
  std::string interior_class(uint8_t dscp) const;

  const std::string& name() const { return name_; }
  BoundaryPolicy policy() const { return policy_; }
  size_t class_count() const { return classes_.size(); }

 private:
  std::string name_;
  BoundaryPolicy policy_;
  std::map<uint8_t, std::string> classes_;
  std::array<uint8_t, 64> remap_{};
};

/// A path across several domains: applies each boundary in turn and
/// returns the marking the final hop sees.
uint8_t traverse(net::Packet& packet,
                 const std::vector<const DiffServDomain*>& path);

}  // namespace nnn::baselines
