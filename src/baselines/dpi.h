// DPI baseline (§3, Fig. 6b) — an nDPI-style classifier.
//
// "DPI sits in a middlebox and typically matches traffic at line-rate,
// by examining IP addresses, TCP ports, SSL's SNI field, and packet
// contents. Typically, a new set of rules is added for each
// application and web-service."
//
// The engine reproduces DPI's structural behaviour and failure modes:
//  - rule catalogs cover only popular applications (high transaction
//    cost: adding a rule is a manual, per-app process);
//  - a rule keys on the provider's own domains/servers, so traffic a
//    page pulls from CDNs, ad networks and third parties is invisible
//    (nDPI marked <10% of cnn.com's packets);
//  - content rules over-match embedded widgets (nDPI attributed 12% of
//    skai.gr's packets to YouTube because of an embedded player).
// Classification is per-flow with a flow cache, like real DPI boxes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "telemetry/view.h"

namespace nnn::baselines {

/// One application's signature set. All matchers are OR'd; an empty
/// matcher list never matches.
struct DpiRule {
  std::string app;  // label reported on match, e.g. "youtube"
  /// Match the TLS SNI / HTTP Host against these domain suffixes
  /// ("youtube.com" matches "www.youtube.com").
  std::vector<std::string> host_suffixes;
  /// Server (destination) IPv4 prefixes, value+prefix_len.
  struct IpPrefix {
    uint32_t value = 0;
    int bits = 32;
  };
  std::vector<IpPrefix> server_prefixes;
  /// Server ports.
  std::vector<uint16_t> ports;
  /// Byte substrings searched in the first payload of a flow (how real
  /// DPI fingerprints embedded players and proprietary protocols; also
  /// the source of its false positives).
  std::vector<std::string> payload_substrings;
};

struct DpiStats {
  uint64_t packets = 0;
  uint64_t classified_packets = 0;
  uint64_t flows_classified = 0;

  friend bool operator==(const DpiStats&, const DpiStats&) = default;
};

}  // namespace nnn::baselines

namespace nnn::telemetry {

template <>
struct ViewTraits<baselines::DpiStats> {
  using S = baselines::DpiStats;
  static constexpr std::array fields{
      ViewField<S>{&S::packets, MetricType::kCounter,
                   "nnn_dpi_packets_total", "Packets seen by the DPI engine",
                   "", ""},
      ViewField<S>{&S::classified_packets, MetricType::kCounter,
                   "nnn_dpi_classified_packets_total",
                   "Packets DPI attributed to a known application", "", ""},
      ViewField<S>{&S::flows_classified, MetricType::kCounter,
                   "nnn_dpi_flows_classified_total",
                   "Flows DPI attributed to a known application", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::baselines {

class DpiEngine {
 public:
  /// Registers the nnn_dpi_* families; pinned (collector holds this).
  DpiEngine();
  DpiEngine(const DpiEngine&) = delete;
  DpiEngine& operator=(const DpiEngine&) = delete;

  void add_rule(DpiRule rule);
  size_t rule_count() const { return rules_.size(); }

  /// Names of all applications the catalog can recognize.
  std::vector<std::string> known_apps() const;
  bool knows_app(const std::string& app) const;

  /// Classify one packet. Consults the flow cache first; on a cache
  /// miss inspects SNI/Host/IP/port/payload. Returns the app label or
  /// nullopt (unclassified -> default treatment).
  std::optional<std::string> classify(const net::Packet& packet);

  /// Materialized from the live telemetry cells (by value).
  DpiStats stats() const { return stats_.snapshot(); }
  void reset_flow_cache() { flow_cache_.clear(); }

 private:
  std::optional<std::string> inspect(const net::Packet& packet) const;

  struct FlowCacheEntry {
    std::optional<std::string> app;
    uint32_t packets_inspected = 0;
  };

  /// Real DPI keeps inspecting a flow's first packets before giving up
  /// on it; we re-inspect up to this many packets before caching a
  /// negative verdict.
  static constexpr uint32_t kInspectionWindow = 3;

  std::vector<DpiRule> rules_;
  /// Keyed on Packet::flow_key() — the same key the cookie dataplane
  /// uses, so cookie-vs-DPI comparisons see identical flow boundaries.
  /// For QUIC that key is the UNRESOLVED destination CID: DPI has no
  /// alias table (the rotation linkage is user-to-middlebox state, not
  /// on-wire), so every rotation looks like a brand-new flow to it and
  /// the inspection window restarts against pure ciphertext.
  std::unordered_map<net::FlowKey, FlowCacheEntry> flow_cache_;
  telemetry::View<DpiStats> stats_;
};

/// Extract the hostname DPI would see: TLS SNI for a ClientHello
/// payload, Host header for an HTTP request payload.
std::optional<std::string> visible_host(const net::Packet& packet);

}  // namespace nnn::baselines
