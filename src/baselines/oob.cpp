#include "baselines/oob.h"

namespace nnn::baselines {

bool FlowDescription::matches(const net::FiveTuple& tuple) const {
  if (src_ip && *src_ip != tuple.src_ip) return false;
  if (dst_ip && *dst_ip != tuple.dst_ip) return false;
  if (src_port && *src_port != tuple.src_port) return false;
  if (dst_port && *dst_port != tuple.dst_port) return false;
  if (proto && *proto != tuple.proto) return false;
  return true;
}

bool FlowDescription::matches(const net::FlowKey& key) const {
  if (key.is_cid()) return false;
  return matches(key.tuple());
}

FlowDescription FlowDescription::exact(const net::FiveTuple& tuple) {
  FlowDescription d;
  d.src_ip = tuple.src_ip;
  d.dst_ip = tuple.dst_ip;
  d.src_port = tuple.src_port;
  d.dst_port = tuple.dst_port;
  d.proto = tuple.proto;
  return d;
}

FlowDescription FlowDescription::server_only(const net::FiveTuple& tuple) {
  FlowDescription d;
  d.dst_ip = tuple.dst_ip;
  d.dst_port = tuple.dst_port;
  d.proto = tuple.proto;
  return d;
}

void OobSwitch::install(OobRule rule) {
  rules_.push_back(std::move(rule));
}

void OobSwitch::clear() {
  rules_.clear();
}

std::optional<std::string> OobSwitch::match(const net::Packet& packet) const {
  const net::FlowKey key = packet.flow_key();
  for (const auto& rule : rules_) {
    if (rule.description.matches(key)) return rule.service;
  }
  return std::nullopt;
}

OobController::OobController() {
  stats_.register_with(telemetry::Registry::global());
}

void OobController::attach_switch(OobSwitch* sw) {
  switches_.push_back(sw);
}

void OobController::request_service(const FlowDescription& description,
                                    const std::string& service) {
  stats_.cell<&OobControllerStats::signals>().inc();
  for (OobSwitch* sw : switches_) {
    sw->install(OobRule{description, service});
    stats_.cell<&OobControllerStats::rules_installed>().inc();
  }
}

}  // namespace nnn::baselines
