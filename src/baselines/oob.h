// Out-of-band flow-description baseline (§3, Fig. 6c).
//
// "The application (or a user agent) tells the centralized control
// plane which flows to match on — via an out-of-band channel — by
// describing which flows should get special treatment (e.g., using the
// 5-tuple). Subsequently, the control-plane programs the switches to
// match on these flows."
//
// The model captures OOB's two published limitations:
//  1. Control-plane cost: every flow description is a controller
//     round-trip plus a rule installed on every switch on the path
//     (cnn.com alone is 255 flows -> 255 signals).
//  2. Flow mutation: a 5-tuple description recorded before a NAT is
//     invalid after it. The workaround — wildcarding to (dst ip, dst
//     port) — misattributes everything else the same server carries
//     (~40% false positives in the paper's example).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "telemetry/view.h"

namespace nnn::baselines {

/// A (possibly wildcarded) 5-tuple match. Unset field = wildcard.
struct FlowDescription {
  std::optional<net::IpAddress> src_ip;
  std::optional<net::IpAddress> dst_ip;
  std::optional<uint16_t> src_port;
  std::optional<uint16_t> dst_port;
  std::optional<net::L4Proto> proto;

  bool matches(const net::FiveTuple& tuple) const;
  /// Unified-keying form (Packet::flow_key()). A five-tuple key
  /// delegates to the field match above; a connection-ID key never
  /// matches — a 5-tuple description has no field that names an
  /// encrypted connection, which is the paper's flow-mutation
  /// limitation taken to its endpoint: under the QUIC-shaped
  /// transport the OOB channel cannot describe the flow at all.
  bool matches(const net::FlowKey& key) const;

  /// Exact description of one flow.
  static FlowDescription exact(const net::FiveTuple& tuple);
  /// NAT-safe coarse description: destination ip+port only (the
  /// workaround the paper describes, and the source of false
  /// positives).
  static FlowDescription server_only(const net::FiveTuple& tuple);
};

struct OobRule {
  FlowDescription description;
  std::string service;
};

/// A switch holding installed rules; first match wins.
class OobSwitch {
 public:
  void install(OobRule rule);
  void clear();
  size_t rule_count() const { return rules_.size(); }

  std::optional<std::string> match(const net::Packet& packet) const;

 private:
  std::vector<OobRule> rules_;
};

struct OobControllerStats {
  /// Control-plane signaling operations (one per flow description).
  uint64_t signals = 0;
  /// Rule installations (signals x switches on path).
  uint64_t rules_installed = 0;

  friend bool operator==(const OobControllerStats&,
                         const OobControllerStats&) = default;
};

}  // namespace nnn::baselines

namespace nnn::telemetry {

template <>
struct ViewTraits<baselines::OobControllerStats> {
  using S = baselines::OobControllerStats;
  static constexpr std::array fields{
      ViewField<S>{&S::signals, MetricType::kCounter,
                   "nnn_oob_signals_total",
                   "Out-of-band control-plane signaling operations", "", ""},
      ViewField<S>{&S::rules_installed, MetricType::kCounter,
                   "nnn_oob_rules_installed_total",
                   "Rules installed across attached switches", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::baselines {

/// Centralized controller programming a set of switches.
class OobController {
 public:
  /// Registers the nnn_oob_* families; pinned (collector holds this).
  OobController();
  OobController(const OobController&) = delete;
  OobController& operator=(const OobController&) = delete;

  void attach_switch(OobSwitch* sw);

  /// Signal one flow description; programs every attached switch.
  void request_service(const FlowDescription& description,
                       const std::string& service);

  /// Materialized from the live telemetry cells (by value).
  OobControllerStats stats() const { return stats_.snapshot(); }

 private:
  std::vector<OobSwitch*> switches_;
  telemetry::View<OobControllerStats> stats_;
};

}  // namespace nnn::baselines
