#include "baselines/dpi.h"

#include <algorithm>

#include "net/http.h"
#include "net/tls.h"
#include "util/strings.h"

namespace nnn::baselines {

namespace {

bool prefix_matches(const DpiRule::IpPrefix& prefix,
                    const net::IpAddress& addr) {
  if (!addr.is_v4()) return false;
  if (prefix.bits <= 0) return true;
  const uint32_t mask =
      prefix.bits >= 32 ? 0xffffffffu : ~((1u << (32 - prefix.bits)) - 1);
  return (addr.v4_value() & mask) == (prefix.value & mask);
}

}  // namespace

DpiEngine::DpiEngine() {
  stats_.register_with(telemetry::Registry::global());
}

std::optional<std::string> visible_host(const net::Packet& packet) {
  if (packet.payload.empty()) return std::nullopt;
  if (const auto hello = net::tls::ClientHello::parse_record(
          util::BytesView(packet.payload))) {
    return hello->server_name();
  }
  const std::string text(packet.payload.begin(), packet.payload.end());
  if (const auto request = net::http::Request::parse(text)) {
    const std::string host = request->host();
    if (!host.empty()) return host;
  }
  return std::nullopt;
}

void DpiEngine::add_rule(DpiRule rule) {
  rules_.push_back(std::move(rule));
}

std::vector<std::string> DpiEngine::known_apps() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) out.push_back(rule.app);
  return out;
}

bool DpiEngine::knows_app(const std::string& app) const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [&](const DpiRule& r) { return r.app == app; });
}

std::optional<std::string> DpiEngine::inspect(
    const net::Packet& packet) const {
  const auto host = visible_host(packet);
  const std::string payload_text(packet.payload.begin(),
                                 packet.payload.end());
  for (const auto& rule : rules_) {
    if (host) {
      for (const auto& suffix : rule.host_suffixes) {
        if (util::domain_matches(*host, suffix)) return rule.app;
      }
    }
    for (const auto& prefix : rule.server_prefixes) {
      if (prefix_matches(prefix, packet.tuple.dst_ip)) return rule.app;
    }
    for (const uint16_t port : rule.ports) {
      if (packet.tuple.dst_port == port) return rule.app;
    }
    if (!payload_text.empty()) {
      for (const auto& needle : rule.payload_substrings) {
        if (payload_text.find(needle) != std::string::npos) return rule.app;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> DpiEngine::classify(const net::Packet& packet) {
  stats_.cell<&DpiStats::packets>().inc();
  FlowCacheEntry& entry = flow_cache_[packet.flow_key()];
  if (entry.app) {
    stats_.cell<&DpiStats::classified_packets>().inc();
    return entry.app;
  }
  if (entry.packets_inspected >= kInspectionWindow) {
    return std::nullopt;  // gave up on this flow
  }
  ++entry.packets_inspected;
  auto result = inspect(packet);
  if (result) {
    entry.app = result;
    stats_.cell<&DpiStats::classified_packets>().inc();
    stats_.cell<&DpiStats::flows_classified>().inc();
  }
  return result;
}

}  // namespace nnn::baselines
