#include "baselines/diffserv.h"

namespace nnn::baselines {

DiffServDomain::DiffServDomain(std::string name, BoundaryPolicy policy)
    : name_(std::move(name)), policy_(policy) {
  for (size_t i = 0; i < remap_.size(); ++i) {
    remap_[i] = static_cast<uint8_t>(i);
  }
}

bool DiffServDomain::define_class(uint8_t dscp, std::string meaning) {
  if (dscp > kDscpMax) return false;
  if (classes_.size() >= 64 && !classes_.contains(dscp)) return false;
  classes_[dscp] = std::move(meaning);
  return true;
}

void DiffServDomain::set_remap(uint8_t from, uint8_t to) {
  if (from <= kDscpMax && to <= kDscpMax) remap_[from] = to;
}

void DiffServDomain::ingress(net::Packet& packet) const {
  switch (policy_) {
    case BoundaryPolicy::kPreserve:
      break;
    case BoundaryPolicy::kBleach:
      packet.dscp = 0;
      break;
    case BoundaryPolicy::kRemap:
      packet.dscp = remap_[packet.dscp & kDscpMax];
      break;
  }
}

std::string DiffServDomain::interior_class(uint8_t dscp) const {
  const auto it = classes_.find(static_cast<uint8_t>(dscp & kDscpMax));
  return it == classes_.end() ? std::string() : it->second;
}

uint8_t traverse(net::Packet& packet,
                 const std::vector<const DiffServDomain*>& path) {
  for (const DiffServDomain* domain : path) {
    domain->ingress(packet);
  }
  return packet.dscp;
}

}  // namespace nnn::baselines
