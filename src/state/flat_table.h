// Open-addressing hash tables for the verify hot path.
//
// std::unordered_map costs one heap node and one-to-two dependent
// pointer loads per lookup; at ISP scale (millions of descriptors,
// tens of millions of outstanding uuids) that is a cache miss per
// probe and ~56 B of allocator overhead per entry. FlatTable is the
// classic group-of-16 control-byte layout instead:
//
//   ctrl:  one byte per slot — 0x80 empty, 0xFE tombstone, else the
//          low 7 bits of the element's hash (H2).
//   slots: the elements themselves, in one flat allocation.
//
// A lookup loads one 16-byte control group, compares all 16 bytes
// against H2 in a single SSE2 op (portable byte-loop fallback), and
// only touches element memory on a control-byte hit. Groups are
// aligned 16-slot blocks, so no mirrored control tail is needed.
// Probing is triangular over groups (visits every group; slot count
// is a power of two). Max load factor is 7/8; rehash never migrates
// tombstones, so a table that churns in place stays clean without a
// stop-the-world purge.
//
// The element type is opaque to the table: callers pass the hash and
// a `match(const T&)` predicate per call (and an `elem_hash(const T&)`
// where rehash may move elements). That keeps keys out of the table's
// type, enables heterogeneous lookup, and lets handle-table users
// (element = u32 index into a stable pool) probe without touching the
// pool until the control bytes say "candidate".
//
// Thread-compatibility matches std::unordered_map: concurrent readers
// are fine on a table no thread mutates (the epoch-swap publication
// path); any mutation requires exclusive access.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <algorithm>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "util/hash.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define NNN_STATE_HAVE_SSE2 1
#endif

namespace nnn::state {

/// splitmix64 finalizer. User-supplied hashes (std::hash<uint64_t> is
/// the identity on libstdc++; sequential cookie ids are the common
/// case) must be avalanched before the table splits them into a group
/// index and a 7-bit control byte, or clustered keys overflow groups.
/// The definition is shared with the RX demux's shard steering
/// (util::steer_shard) so worker ownership and probe sequences can
/// never disagree about a key's hash.
constexpr uint64_t mix_hash(uint64_t x) { return util::mix64(x); }

/// Probe-length distribution over a table's live elements (groups
/// examined per lookup, so 1 is a first-group hit). Computed by
/// re-probing each element from its home group — an offline scan for
/// benches and publish-time gauges, not a hot-path counter.
struct ProbeStats {
  uint64_t samples = 0;
  double mean = 0.0;
  uint32_t p50 = 0;
  uint32_t p99 = 0;
  uint32_t max = 0;
};

template <class T>
class FlatTable {
 public:
  static constexpr size_t kGroupWidth = 16;
  static constexpr uint8_t kEmpty = 0x80;
  static constexpr uint8_t kDeleted = 0xFE;
  static constexpr size_t kMinSlots = 16;

  FlatTable() = default;
  FlatTable(const FlatTable& other) { copy_from(other); }
  FlatTable& operator=(const FlatTable& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  FlatTable(FlatTable&& other) noexcept { steal(other); }
  FlatTable& operator=(FlatTable&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }
  ~FlatTable() { destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t slot_count() const { return slot_count_; }

  /// Bytes owned by the table arrays (control bytes + element slots).
  size_t memory_bytes() const {
    return slot_count_ * (sizeof(T) + sizeof(uint8_t));
  }

  /// Find the element matching (hash, match). `probes`, when non-null,
  /// receives the number of control groups examined.
  template <class Match>
  T* find(uint64_t hash, Match&& match, uint32_t* probes = nullptr) {
    if (slot_count_ == 0) {
      if (probes != nullptr) *probes = 0;
      return nullptr;
    }
    const uint8_t h2 = static_cast<uint8_t>(hash & 0x7f);
    size_t group = (hash >> 7) & group_mask_;
    size_t step = 0;
    uint32_t examined = 0;
    while (true) {
      ++examined;
      const uint8_t* ctrl = ctrl_ + group * kGroupWidth;
      uint32_t m = match_byte(ctrl, h2);
      while (m != 0) {
        const unsigned bit = count_trailing_zeros(m);
        T* candidate = slots_ + group * kGroupWidth + bit;
        if (match(const_cast<const T&>(*candidate))) {
          if (probes != nullptr) *probes = examined;
          return candidate;
        }
        m &= m - 1;
      }
      if (match_empty(ctrl) != 0) {
        if (probes != nullptr) *probes = examined;
        return nullptr;
      }
      step += 1;
      group = (group + step) & group_mask_;
      assert(step <= group_count() && "FlatTable probe wrapped: no empty slot");
    }
  }

  template <class Match>
  const T* find(uint64_t hash, Match&& match, uint32_t* probes = nullptr) const {
    return const_cast<FlatTable*>(this)->find(hash, std::forward<Match>(match),
                                              probes);
  }

  /// Find or default-insert. `make()` constructs the element only when
  /// absent; `elem_hash` rehashes survivors when growth triggers.
  /// Returns {element, inserted}.
  template <class Match, class ElemHash, class Make>
  std::pair<T*, bool> find_or_insert(uint64_t hash, Match&& match,
                                     ElemHash&& elem_hash, Make&& make,
                                     uint32_t* probes = nullptr) {
    if (slot_count_ != 0) {
      const uint8_t h2 = static_cast<uint8_t>(hash & 0x7f);
      size_t group = (hash >> 7) & group_mask_;
      size_t step = 0;
      uint32_t examined = 0;
      size_t insert_slot = kNoSlot;
      while (true) {
        ++examined;
        const uint8_t* ctrl = ctrl_ + group * kGroupWidth;
        uint32_t m = match_byte(ctrl, h2);
        while (m != 0) {
          const unsigned bit = count_trailing_zeros(m);
          T* candidate = slots_ + group * kGroupWidth + bit;
          if (match(const_cast<const T&>(*candidate))) {
            if (probes != nullptr) *probes = examined;
            return {candidate, false};
          }
          m &= m - 1;
        }
        if (insert_slot == kNoSlot) {
          const uint32_t tomb = match_exact(ctrl, kDeleted);
          if (tomb != 0) {
            insert_slot = group * kGroupWidth + count_trailing_zeros(tomb);
          }
        }
        const uint32_t empty = match_empty(ctrl);
        if (empty != 0) {
          if (insert_slot == kNoSlot) {
            insert_slot = group * kGroupWidth + count_trailing_zeros(empty);
          }
          if (probes != nullptr) *probes = examined;
          if (!needs_growth()) {
            return {emplace_at(insert_slot, h2, make()), true};
          }
          break;  // grow, then place in the fresh table
        }
        step += 1;
        group = (group + step) & group_mask_;
      }
    } else if (probes != nullptr) {
      *probes = 0;
    }
    rehash_for(size_ + 1, elem_hash);
    T* placed = place_new(hash, make());
    return {placed, true};
  }

  /// Erase the element matching (hash, match). Returns whether an
  /// element was erased. A slot whose group still has an empty byte is
  /// re-marked empty (no probe chain can pass it); otherwise it becomes
  /// a tombstone that the next rehash drops.
  template <class Match>
  bool erase(uint64_t hash, Match&& match) {
    T* elem = find(hash, std::forward<Match>(match));
    if (elem == nullptr) return false;
    erase_element(elem);
    return true;
  }

  /// Erase via a pointer previously returned by find/find_or_insert.
  void erase_element(T* elem) {
    const size_t slot = static_cast<size_t>(elem - slots_);
    assert(slot < slot_count_ && is_full(ctrl_[slot]));
    elem->~T();
    const size_t group = slot / kGroupWidth;
    if (match_empty(ctrl_ + group * kGroupWidth) != 0) {
      ctrl_[slot] = kEmpty;
    } else {
      ctrl_[slot] = kDeleted;
      ++tombstones_;
    }
    --size_;
  }

  template <class Fn>
  void for_each(Fn&& fn) {
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i])) fn(slots_[i]);
    }
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i])) fn(const_cast<const T&>(slots_[i]));
    }
  }

  /// Erase every element for which `pred` returns true; returns the
  /// number erased.
  template <class Pred>
  size_t erase_if(Pred&& pred) {
    size_t erased = 0;
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i]) && pred(const_cast<const T&>(slots_[i]))) {
        erase_element(slots_ + i);
        ++erased;
      }
    }
    return erased;
  }

  void clear() {
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i])) slots_[i].~T();
    }
    if (ctrl_ != nullptr) std::memset(ctrl_, kEmpty, slot_count_);
    size_ = 0;
    tombstones_ = 0;
  }

  /// Ensure capacity for `n` elements without intervening rehash.
  template <class ElemHash>
  void reserve(size_t n, ElemHash&& elem_hash) {
    if (n * 8 > slot_count_ * 7) rehash_for(n, elem_hash);
  }

  template <class ElemHash>
  ProbeStats probe_stats(ElemHash&& elem_hash, size_t max_samples) const {
    ProbeStats stats;
    if (size_ == 0 || slot_count_ == 0) return stats;
    std::vector<uint32_t> lengths;
    lengths.reserve(std::min(size_, max_samples));
    const size_t stride = std::max<size_t>(1, size_ / std::max<size_t>(
                                                  1, max_samples));
    size_t seen = 0;
    uint64_t total = 0;
    for (size_t i = 0; i < slot_count_; ++i) {
      if (!is_full(ctrl_[i])) continue;
      if (seen++ % stride != 0) continue;
      const uint64_t hash = elem_hash(const_cast<const T&>(slots_[i]));
      const size_t home = (hash >> 7) & group_mask_;
      const size_t group = i / kGroupWidth;
      // Distance in probe steps from home to this group (triangular
      // sequence over a power-of-two group count visits each group
      // exactly once per cycle).
      uint32_t probes = 1;
      size_t g = home;
      size_t step = 0;
      while (g != group && probes <= group_count()) {
        step += 1;
        g = (g + step) & group_mask_;
        ++probes;
      }
      lengths.push_back(probes);
      total += probes;
      stats.max = std::max(stats.max, probes);
    }
    if (lengths.empty()) return stats;
    stats.samples = lengths.size();
    stats.mean = static_cast<double>(total) / lengths.size();
    std::sort(lengths.begin(), lengths.end());
    stats.p50 = lengths[lengths.size() / 2];
    stats.p99 = lengths[(lengths.size() * 99) / 100];
    return stats;
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  static bool is_full(uint8_t ctrl) { return (ctrl & 0x80) == 0; }

  static unsigned count_trailing_zeros(uint32_t m) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctz(m));
#else
    unsigned n = 0;
    while ((m & 1u) == 0) {
      m >>= 1;
      ++n;
    }
    return n;
#endif
  }

  /// Bitmask of slots in the 16-byte control group equal to `byte`.
  static uint32_t match_exact(const uint8_t* ctrl, uint8_t byte) {
#if NNN_STATE_HAVE_SSE2
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(group, needle)));
#else
    uint32_t m = 0;
    for (size_t i = 0; i < kGroupWidth; ++i) {
      if (ctrl[i] == byte) m |= 1u << i;
    }
    return m;
#endif
  }

  static uint32_t match_byte(const uint8_t* ctrl, uint8_t h2) {
    return match_exact(ctrl, h2);
  }

  static uint32_t match_empty(const uint8_t* ctrl) {
    return match_exact(ctrl, kEmpty);
  }

  size_t group_count() const { return slot_count_ / kGroupWidth; }

  bool needs_growth() const {
    // 7/8 max load counting tombstones: a tombstone costs probe work
    // exactly like a live slot does.
    return (size_ + tombstones_ + 1) * 8 > slot_count_ * 7;
  }

  T* emplace_at(size_t slot, uint8_t h2, T&& value) {
    if (ctrl_[slot] == kDeleted) --tombstones_;
    ::new (static_cast<void*>(slots_ + slot)) T(std::move(value));
    ctrl_[slot] = h2;
    ++size_;
    return slots_ + slot;
  }

  /// Place into a table known to have a free slot and no matching
  /// element (used right after rehash).
  T* place_new(uint64_t hash, T&& value) {
    const uint8_t h2 = static_cast<uint8_t>(hash & 0x7f);
    size_t group = (hash >> 7) & group_mask_;
    size_t step = 0;
    while (true) {
      const uint8_t* ctrl = ctrl_ + group * kGroupWidth;
      const uint32_t avail =
          match_empty(ctrl) | match_exact(ctrl, kDeleted);
      if (avail != 0) {
        const size_t slot =
            group * kGroupWidth + count_trailing_zeros(avail);
        return emplace_at(slot, h2, std::move(value));
      }
      step += 1;
      group = (group + step) & group_mask_;
    }
  }

  template <class ElemHash>
  void rehash_for(size_t n, ElemHash&& elem_hash) {
    size_t target = kMinSlots;
    while (n * 8 > target * 7) target *= 2;
    // Same-size rehash when tombstones (not live load) forced growth:
    // migration drops them all.
    uint8_t* old_ctrl = ctrl_;
    T* old_slots = slots_;
    const size_t old_count = slot_count_;

    slot_count_ = target;
    group_mask_ = group_count() - 1;
    ctrl_ = new uint8_t[slot_count_];
    std::memset(ctrl_, kEmpty, slot_count_);
    slots_ = static_cast<T*>(
        ::operator new(slot_count_ * sizeof(T), std::align_val_t{alignof(T)}));
    size_ = 0;
    tombstones_ = 0;

    for (size_t i = 0; i < old_count; ++i) {
      if (!is_full(old_ctrl[i])) continue;
      T& elem = old_slots[i];
      place_new(elem_hash(const_cast<const T&>(elem)), std::move(elem));
      elem.~T();
    }
    delete[] old_ctrl;
    if (old_slots != nullptr) {
      ::operator delete(old_slots, std::align_val_t{alignof(T)});
    }
  }

  void destroy() {
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i])) slots_[i].~T();
    }
    delete[] ctrl_;
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(T)});
    }
    ctrl_ = nullptr;
    slots_ = nullptr;
    slot_count_ = 0;
    group_mask_ = 0;
    size_ = 0;
    tombstones_ = 0;
  }

  void copy_from(const FlatTable& other) {
    slot_count_ = other.slot_count_;
    group_mask_ = other.group_mask_;
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    if (slot_count_ == 0) return;
    ctrl_ = new uint8_t[slot_count_];
    std::memcpy(ctrl_, other.ctrl_, slot_count_);
    slots_ = static_cast<T*>(
        ::operator new(slot_count_ * sizeof(T), std::align_val_t{alignof(T)}));
    for (size_t i = 0; i < slot_count_; ++i) {
      if (is_full(ctrl_[i])) {
        ::new (static_cast<void*>(slots_ + i)) T(other.slots_[i]);
      }
    }
  }

  void steal(FlatTable& other) {
    ctrl_ = std::exchange(other.ctrl_, nullptr);
    slots_ = std::exchange(other.slots_, nullptr);
    slot_count_ = std::exchange(other.slot_count_, 0);
    group_mask_ = std::exchange(other.group_mask_, 0);
    size_ = std::exchange(other.size_, 0);
    tombstones_ = std::exchange(other.tombstones_, 0);
  }

  uint8_t* ctrl_ = nullptr;
  T* slots_ = nullptr;
  size_t slot_count_ = 0;
  size_t group_mask_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

/// Map adapter over FlatTable for call sites that want the familiar
/// key/value shape (FlowTable, tests). Applies mix_hash on top of the
/// user hash, so identity std::hash over clustered keys is safe.
template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
class FlatMap {
 public:
  struct Item {
    K key;
    V value;
  };

  V* find(const K& key) {
    Item* item = table_.find(hash_of(key), matcher(key));
    return item == nullptr ? nullptr : &item->value;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Returns {item, inserted}; value-initializes on insert.
  std::pair<Item*, bool> try_emplace(const K& key) {
    return table_.find_or_insert(
        hash_of(key), matcher(key), elem_hasher(),
        [&] { return Item{key, V{}}; });
  }

  bool erase(const K& key) { return table_.erase(hash_of(key), matcher(key)); }

  template <class Fn>
  void for_each(Fn&& fn) {
    table_.for_each([&](Item& item) { fn(item); });
  }
  template <class Pred>
  size_t erase_if(Pred&& pred) {
    return table_.erase_if(std::forward<Pred>(pred));
  }

  void reserve(size_t n) { table_.reserve(n, elem_hasher()); }
  void clear() { table_.clear(); }
  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t memory_bytes() const { return table_.memory_bytes(); }
  ProbeStats probe_stats(size_t max_samples) const {
    return table_.probe_stats(elem_hasher(), max_samples);
  }

 private:
  uint64_t hash_of(const K& key) const {
    return mix_hash(static_cast<uint64_t>(hash_(key)));
  }
  auto matcher(const K& key) const {
    return [this, &key](const Item& item) { return eq_(item.key, key); };
  }
  auto elem_hasher() const {
    return [this](const Item& item) { return hash_of(item.key); };
  }

  FlatTable<Item> table_;
  Hash hash_;
  Eq eq_;
};

}  // namespace nnn::state
