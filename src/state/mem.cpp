#include "state/mem.h"

#include <cstdio>

#include <unistd.h>

namespace nnn::state {

size_t resident_bytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total_pages = 0;
  unsigned long resident_pages = 0;
  const int matched =
      std::fscanf(f, "%lu %lu", &total_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<size_t>(resident_pages) *
         static_cast<size_t>(page > 0 ? page : 4096);
}

}  // namespace nnn::state
