// Process memory introspection for the state-layer benches.
#pragma once

#include <cstddef>

namespace nnn::state {

/// Resident set size of the current process in bytes (Linux: parsed
/// from /proc/self/statm). Returns 0 where unavailable.
size_t resident_bytes();

}  // namespace nnn::state
