// Hashed timer wheel for expiry bookkeeping over pooled entries.
//
// The ReplayCache used to keep a deque in insertion order and pay a
// purge call on every insert; the wheel replaces that with time-bucket
// slots: slot = floor(expiry / tick) mod slot_count, each slot an
// intrusive singly linked chain of u32 handles into the caller's pool.
// Insert appends to one slot; advancing to `now` drains only slots
// whose tick range has fully passed, plus a prefix of the one
// partially elapsed slot — O(1) amortized, O(slot_count) worst case
// after a long idle gap.
//
// The wheel never touches entry memory itself. Callers pass accessors
// per call:
//   next(h)      -> uint32_t&  — the entry's intrusive next field
//   expiry_of(h) -> Timestamp  — the entry's absolute expiry
//   on_due(h)                  — consume an expired entry
//
// Exactness: advance(now) fires precisely the entries with
// expiry <= now. Fully elapsed slots fire wholesale; the current
// (partially elapsed) slot is walked. Each slot tracks whether its
// chain was appended in non-decreasing expiry order — true whenever
// the caller's clock is monotone, since expiry = now + horizon — and
// a sorted walk stops at the first not-yet-due entry, so steady-state
// purge work is O(entries fired), not O(entries in the slot). Skewed
// clocks only cost the fallback full-slot walk, never correctness.
//
// Sizing: callers pick the tick so the wheel period (slot_count *
// tick) comfortably exceeds twice the expiry horizon; then a slot
// never mixes revolutions while the cursor lags at most one horizon
// behind (the worst watermark-gated purge gap). Entries scheduled in
// the past (clock skew) clamp into the current slot and fire on the
// next advance whose `now` covers them — even one before the cursor's
// seat time, which walks just the cursor slot.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/clock.h"

namespace nnn::state {

class ExpiryWheel {
 public:
  static constexpr uint32_t kNil = std::numeric_limits<uint32_t>::max();
  static constexpr util::Timestamp kNever =
      std::numeric_limits<util::Timestamp>::max();

  struct AdvanceResult {
    size_t fired = 0;
    /// Lower bound on the earliest remaining expiry (kNever when the
    /// wheel is empty). Exact for the current slot, a slot floor for
    /// later slots — never above the true minimum, so it is a sound
    /// purge watermark.
    util::Timestamp next_due_bound = kNever;
  };

  ExpiryWheel() = default;

  /// `slots` must be a power of two. `start` seats the cursor; entries
  /// scheduled before it clamp into the current slot.
  void init(util::Timestamp tick, size_t slots, util::Timestamp start) {
    assert(tick > 0 && slots >= 2 && (slots & (slots - 1)) == 0);
    tick_ = tick;
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
    cursor_ = floor_div(start, tick_);
    size_ = 0;
    occupied_ = 0;
  }

  /// Re-seat the cursor on an empty wheel. Callers do this when the
  /// wheel drained and time moved on, so the next schedule() lands
  /// within one revolution of the cursor.
  void reseat(util::Timestamp now) {
    assert(size_ == 0);
    const int64_t t = floor_div(now, tick_);
    if (t > cursor_) cursor_ = t;
  }

  bool ready() const { return !slots_.empty(); }
  size_t size() const { return size_; }
  size_t slot_count() const { return slots_.size(); }
  /// Slots currently holding at least one entry.
  size_t occupied_slots() const { return occupied_; }
  util::Timestamp tick() const { return tick_; }
  size_t memory_bytes() const { return slots_.size() * sizeof(Slot); }

  template <class NextRef>
  void schedule(uint32_t handle, util::Timestamp expires, NextRef&& next) {
    assert(ready());
    int64_t t = floor_div(expires, tick_);
    if (t < cursor_) t = cursor_;  // past-due: fires on the next advance
    assert(t - cursor_ < static_cast<int64_t>(slots_.size()) &&
           "ExpiryWheel: expiry beyond one revolution");
    append(slot_at(t), handle, expires, next);
    ++size_;
  }

  /// Fire every entry with expiry <= now. Entries found in a drained
  /// slot that are not yet due (possible only via clock skew) are
  /// refiled instead of fired.
  template <class NextRef, class ExpiryOf, class OnDue>
  AdvanceResult advance(util::Timestamp now, NextRef&& next,
                        ExpiryOf&& expiry_of, OnDue&& on_due) {
    AdvanceResult result;
    if (!ready()) return result;
    const int64_t now_tick = floor_div(now, tick_);
    if (now_tick < cursor_) {
      // `now` precedes the cursor (a back-dated purge against a wheel
      // seated later, or clock retreat). The cursor never moves
      // backwards, but exactness survives: every entry with
      // expiry <= now < cursor*tick sits in the cursor slot — past-due
      // schedules clamp there and drains refile ahead of the cursor —
      // so walking that one slot fires exactly the due set.
      util::Timestamp kept_min = kNever;
      Slot& slot = slots_[static_cast<uint64_t>(cursor_) & mask_];
      uint32_t h = detach(slot);
      while (h != kNil) {
        const uint32_t nxt = next(h);
        const util::Timestamp expires = expiry_of(h);
        if (expires <= now) {
          on_due(h);
          --size_;
          ++result.fired;
        } else {
          if (expires < kept_min) kept_min = expires;
          append(slot, h, expires, next);
        }
        h = nxt;
      }
      if (size_ == 0) {
        result.next_due_bound = kNever;
      } else {
        const util::Timestamp later = earliest_bound(1);
        result.next_due_bound = kept_min < later ? kept_min : later;
      }
      return result;
    }
    // Fully elapsed ticks [cursor_, now_tick): every current-revolution
    // entry in them is due (expiry < now_tick * tick <= now).
    const int64_t span = now_tick - cursor_;
    const int64_t full =
        span < static_cast<int64_t>(slots_.size())
            ? span
            : static_cast<int64_t>(slots_.size());
    int64_t t = cursor_;
    cursor_ = now_tick;  // set first so refiles clamp correctly
    for (int64_t k = 0; k < full; ++k, ++t) {
      uint32_t h = detach(slot_at(t));
      while (h != kNil) {
        const uint32_t nxt = next(h);
        const util::Timestamp expires = expiry_of(h);
        if (expires <= now) {
          on_due(h);
          --size_;
          ++result.fired;
        } else {
          append(slot_at(clamp_tick(expires)), h, expires, next);
        }
        h = nxt;
      }
    }
    // The partially elapsed current tick: pop the due prefix when the
    // chain is sorted (the monotone-clock common case), else walk it
    // all. Either way we learn the exact minimum of what remains.
    util::Timestamp kept_min = kNever;
    Slot& slot = slots_[static_cast<uint64_t>(cursor_) & mask_];
    if (slot.sorted) {
      const bool was_nonempty = slot.head != kNil;
      while (slot.head != kNil && expiry_of(slot.head) <= now) {
        const uint32_t h = slot.head;
        slot.head = next(h);
        on_due(h);
        --size_;
        ++result.fired;
      }
      if (slot.head == kNil) {
        if (was_nonempty) {
          slot.tail = kNil;
          --occupied_;
        }
      } else {
        kept_min = expiry_of(slot.head);
      }
    } else {
      uint32_t h = detach(slot);
      while (h != kNil) {
        const uint32_t nxt = next(h);
        const util::Timestamp expires = expiry_of(h);
        if (expires <= now) {
          on_due(h);
          --size_;
          ++result.fired;
        } else {
          if (expires < kept_min) kept_min = expires;
          append(slot, h, expires, next);
        }
        h = nxt;
      }
    }
    if (size_ == 0) {
      result.next_due_bound = kNever;
    } else {
      const util::Timestamp later = earliest_bound(1);
      result.next_due_bound = kept_min < later ? kept_min : later;
    }
    return result;
  }

  /// Pop the head of the first non-empty slot from the cursor,
  /// regardless of due-ness — the capacity-clamp eviction path.
  /// Returns kNil when empty. With monotone schedule times this is
  /// oldest-first.
  template <class NextRef>
  uint32_t pop_front(NextRef&& next) {
    if (size_ == 0) return kNil;
    for (size_t k = 0; k < slots_.size(); ++k) {
      Slot& slot = slots_[(static_cast<uint64_t>(cursor_) + k) & mask_];
      if (slot.head == kNil) continue;
      const uint32_t h = slot.head;
      slot.head = next(h);
      if (slot.head == kNil) {
        slot.tail = kNil;
        slot.sorted = true;
        --occupied_;
      }
      --size_;
      return h;
    }
    assert(false && "ExpiryWheel size/slot bookkeeping out of sync");
    return kNil;
  }

 private:
  struct Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    /// Expiry of the most recently appended entry, and whether the
    /// whole chain is in non-decreasing expiry order.
    util::Timestamp last = 0;
    bool sorted = true;
  };

  static constexpr int64_t floor_div(int64_t a, int64_t b) {
    const int64_t q = a / b;
    return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
  }

  Slot& slot_at(int64_t tick_index) {
    return slots_[static_cast<uint64_t>(tick_index) & mask_];
  }

  int64_t clamp_tick(util::Timestamp expires) const {
    const int64_t t = floor_div(expires, tick_);
    return t < cursor_ ? cursor_ : t;
  }

  template <class NextRef>
  void append(Slot& slot, uint32_t handle, util::Timestamp expires,
              NextRef&& next) {
    next(handle) = kNil;
    if (slot.head == kNil) {
      slot.head = slot.tail = handle;
      slot.sorted = true;
      ++occupied_;
    } else {
      next(slot.tail) = handle;
      slot.tail = handle;
      if (expires < slot.last) slot.sorted = false;
    }
    slot.last = expires;
  }

  uint32_t detach(Slot& slot) {
    const uint32_t head = slot.head;
    if (head != kNil) --occupied_;
    slot.head = slot.tail = kNil;
    slot.sorted = true;
    return head;
  }

  /// Slot-floor lower bound over slots starting `from` ticks past the
  /// cursor (kNever when all scanned slots are empty).
  util::Timestamp earliest_bound(size_t from) const {
    for (size_t k = from; k < slots_.size(); ++k) {
      const int64_t t = cursor_ + static_cast<int64_t>(k);
      if (slots_[static_cast<uint64_t>(t) & mask_].head != kNil) {
        return t * tick_;
      }
    }
    return kNever;
  }

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  util::Timestamp tick_ = 1;
  int64_t cursor_ = 0;
  size_t size_ = 0;
  size_t occupied_ = 0;
};

}  // namespace nnn::state
