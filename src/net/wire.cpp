#include "net/wire.h"

#include <algorithm>
#include <atomic>

#include "util/bytes.h"

namespace nnn::net {

namespace {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;

constexpr uint8_t kHopByHopHeader = 0;

/// Build, tally, and wrap a wire-domain error in one step so every
/// rejection below stays a one-liner and still lands in
/// nnn_errors_total{domain="wire"}.
Unexpected<Error> wire_error(ErrorCode code, std::string_view detail = {}) {
  const Error error{ErrorDomain::kWire, code, detail};
  count_error(error);
  return unexpected(error);
}

uint32_t sum16(BytesView data) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<uint32_t>(data[i]) << 8;
  return sum;
}

uint16_t fold(uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xffff);
}

/// Pseudo-header sum for TCP/UDP checksums.
uint32_t pseudo_sum(const Packet& p, size_t l4_len) {
  uint32_t sum = 0;
  const size_t addr_len = p.ipv6 ? 16 : 4;
  for (size_t i = 0; i + 1 < addr_len; i += 2) {
    sum += static_cast<uint32_t>(p.tuple.src_ip.bytes()[i]) << 8 |
           p.tuple.src_ip.bytes()[i + 1];
    sum += static_cast<uint32_t>(p.tuple.dst_ip.bytes()[i]) << 8 |
           p.tuple.dst_ip.bytes()[i + 1];
  }
  sum += static_cast<uint32_t>(p.tuple.proto);
  sum += static_cast<uint32_t>(l4_len);
  return sum;
}

/// TCP option kinds used by the cookie carrier (experimental kinds,
/// RFC 4727 style). kEdo extends the header beyond the classic 60-byte
/// limit ("TCP long options"); kCookieOption carries the cookie blob.
constexpr uint8_t kTcpOptEol = 0;
constexpr uint8_t kTcpOptNop = 1;
constexpr uint8_t kTcpOptEdo = 253;
constexpr uint8_t kTcpOptCookie = 254;

Bytes build_tcp_options(const Packet& p) {
  Bytes options;
  if (!p.l4_cookie) return options;
  ByteWriter w(options);
  // EDO first: kind, len=4, extended header length (patched below).
  w.u8(kTcpOptEdo);
  w.u8(4);
  w.u16(0);
  // The cookie option.
  w.u8(kTcpOptCookie);
  w.u8(static_cast<uint8_t>(2 + p.l4_cookie->size()));
  w.raw(BytesView(*p.l4_cookie));
  // Pad the header to a 4-byte multiple.
  while ((20 + options.size()) % 4 != 0) w.u8(kTcpOptNop);
  const uint16_t header_len = static_cast<uint16_t>(20 + options.size());
  options[2] = static_cast<uint8_t>(header_len >> 8);
  options[3] = static_cast<uint8_t>(header_len);
  return options;
}

Bytes build_l4(const Packet& p) {
  Bytes out;
  ByteWriter w(out);
  if (p.is_tcp()) {
    const Bytes options = build_tcp_options(p);
    w.u16(p.tuple.src_port);
    w.u16(p.tuple.dst_port);
    w.u32(p.seq);
    w.u32(p.ack_seq);
    // Data offset saturates at 15; with EDO the true header length
    // lives in the option.
    const size_t header_len = 20 + options.size();
    const uint8_t data_offset =
        static_cast<uint8_t>(std::min<size_t>(15, header_len / 4));
    w.u8(static_cast<uint8_t>(data_offset << 4));
    uint8_t flags = 0;
    if (p.fin) flags |= 0x01;
    if (p.syn) flags |= 0x02;
    if (p.rst) flags |= 0x04;
    if (p.ack) flags |= 0x10;
    w.u8(flags);
    w.u16(65535);  // window
    w.u16(0);      // checksum placeholder
    w.u16(0);      // urgent
    w.raw(BytesView(options));
    w.raw(BytesView(p.payload));
    const uint32_t ps = pseudo_sum(p, out.size());
    const uint16_t csum = fold(sum16(BytesView(out)) + ps);
    out[16] = static_cast<uint8_t>(csum >> 8);
    out[17] = static_cast<uint8_t>(csum);
  } else {
    w.u16(p.tuple.src_port);
    w.u16(p.tuple.dst_port);
    w.u16(static_cast<uint16_t>(8 + p.payload.size()));
    w.u16(0);  // checksum placeholder
    w.raw(BytesView(p.payload));
    const uint32_t ps = pseudo_sum(p, out.size());
    uint16_t csum = fold(sum16(BytesView(out)) + ps);
    if (csum == 0) csum = 0xffff;  // UDP: 0 means "no checksum"
    out[6] = static_cast<uint8_t>(csum >> 8);
    out[7] = static_cast<uint8_t>(csum);
  }
  return out;
}

/// Hop-by-hop options header carrying the cookie option, padded to a
/// multiple of 8 bytes with PadN.
Bytes build_hbh(uint8_t next_header, BytesView cookie) {
  Bytes out;
  ByteWriter w(out);
  w.u8(next_header);
  w.u8(0);  // length placeholder (units of 8 bytes, excluding first 8)
  w.u8(kCookieOptionType);
  w.u8(static_cast<uint8_t>(cookie.size()));
  w.raw(cookie);
  // Pad to multiple of 8.
  while (out.size() % 8 != 0) {
    const size_t pad = 8 - out.size() % 8;
    if (pad == 1) {
      w.u8(0);  // Pad1
    } else {
      w.u8(1);  // PadN
      w.u8(static_cast<uint8_t>(pad - 2));
      for (size_t i = 0; i < pad - 2; ++i) w.u8(0);
    }
  }
  out[1] = static_cast<uint8_t>(out.size() / 8 - 1);
  return out;
}

}  // namespace

uint16_t internet_checksum(BytesView data, uint32_t seed) {
  return fold(sum16(data) + seed);
}

namespace {
/// Process-wide so every decode path (reader, peek, assembler) agrees;
/// relaxed is fine — this is a configuration knob set at startup, not
/// a synchronization point.
std::atomic<size_t> g_max_sync_frame_payload{kDefaultMaxSyncFramePayload};
}  // namespace

size_t max_sync_frame_payload() {
  return g_max_sync_frame_payload.load(std::memory_order_relaxed);
}

void set_max_sync_frame_payload(size_t bytes) {
  g_max_sync_frame_payload.store(bytes, std::memory_order_relaxed);
}

void append_sync_frame(util::Bytes& out, uint8_t type, BytesView payload) {
  ByteWriter w(out);
  w.u16(kSyncMagic);
  w.u8(kSyncVersion);
  w.u8(type);
  w.u32(static_cast<uint32_t>(payload.size()));
  w.raw(payload);
}

Expected<SyncFrame> read_sync_frame(ByteReader& r) {
  const auto magic = r.u16();
  const auto version = r.u8();
  const auto type = r.u8();
  const auto len = r.u32();
  if (!magic || !version || !type || !len) {
    return wire_error(ErrorCode::kTruncated, "sync envelope");
  }
  if (*magic != kSyncMagic) return wire_error(ErrorCode::kBadMagic);
  if (*version != kSyncVersion) {
    return wire_error(ErrorCode::kUnsupportedVersion);
  }
  if (*len > max_sync_frame_payload()) {
    return wire_error(ErrorCode::kMalformed, "frame length");
  }
  const auto payload = r.view(*len);
  if (!payload) return wire_error(ErrorCode::kTruncated, "sync payload");
  return SyncFrame{*type, *payload};
}

std::optional<SyncFrame> parse_sync_frame(ByteReader& r) {
  return read_sync_frame(r).to_optional();
}

Expected<std::optional<size_t>> peek_sync_frame(BytesView stream) {
  if (stream.size() < kSyncFrameHeader) return std::optional<size_t>{};
  const uint16_t magic =
      static_cast<uint16_t>(static_cast<uint16_t>(stream[0]) << 8 |
                            stream[1]);
  if (magic != kSyncMagic) return wire_error(ErrorCode::kBadMagic);
  if (stream[2] != kSyncVersion) {
    return wire_error(ErrorCode::kUnsupportedVersion);
  }
  const uint32_t len = static_cast<uint32_t>(stream[4]) << 24 |
                       static_cast<uint32_t>(stream[5]) << 16 |
                       static_cast<uint32_t>(stream[6]) << 8 | stream[7];
  if (len > max_sync_frame_payload()) {
    return wire_error(ErrorCode::kMalformed, "frame length");
  }
  return std::optional<size_t>{kSyncFrameHeader + len};
}

std::optional<Error> FrameAssembler::feed(BytesView chunk) {
  if (poisoned_) return poisoned_;
  util::append(buffer_, chunk);
  // Validate the envelope as soon as it is whole; a hostile length is
  // caught here, before next() would size anything from it.
  const auto probe =
      peek_sync_frame(BytesView(buffer_).subspan(consumed_));
  if (!probe) {
    poisoned_ = probe.error();
    return poisoned_;
  }
  return std::nullopt;
}

std::optional<FrameAssembler::Frame> FrameAssembler::next() {
  if (poisoned_) return std::nullopt;
  const BytesView pending = BytesView(buffer_).subspan(consumed_);
  const auto probe = peek_sync_frame(pending);
  if (!probe) {
    poisoned_ = probe.error();
    return std::nullopt;
  }
  if (!*probe || pending.size() < **probe) return std::nullopt;
  Frame frame;
  frame.type = pending[3];
  frame.payload.assign(pending.begin() + kSyncFrameHeader,
                       pending.begin() + static_cast<ptrdiff_t>(**probe));
  consumed_ += **probe;
  // Compact once the dead prefix dominates, so a long-lived connection
  // doesn't grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return frame;
}

util::Bytes serialize(const Packet& p) {
  const Bytes l4 = build_l4(p);
  Bytes out;
  ByteWriter w(out);
  if (!p.ipv6) {
    // IPv4 header, 20 bytes, no options.
    const size_t total = 20 + l4.size();
    w.u8(0x45);  // version 4, IHL 5
    w.u8(static_cast<uint8_t>(p.dscp << 2));
    w.u16(static_cast<uint16_t>(total));
    w.u16(0);       // identification
    w.u16(0x4000);  // DF
    w.u8(p.ttl);
    w.u8(static_cast<uint8_t>(p.tuple.proto));
    w.u16(0);  // checksum placeholder
    w.raw(BytesView(p.tuple.src_ip.bytes().data(), 4));
    w.raw(BytesView(p.tuple.dst_ip.bytes().data(), 4));
    const uint16_t csum = internet_checksum(BytesView(out));
    out[10] = static_cast<uint8_t>(csum >> 8);
    out[11] = static_cast<uint8_t>(csum);
    util::append(out, BytesView(l4));
    return out;
  }
  // IPv6.
  Bytes hbh;
  if (p.l3_cookie) {
    hbh = build_hbh(static_cast<uint8_t>(p.tuple.proto),
                    BytesView(*p.l3_cookie));
  }
  const uint32_t vtc_flow = 6u << 28 | static_cast<uint32_t>(p.dscp) << 22;
  w.u32(vtc_flow);
  w.u16(static_cast<uint16_t>(hbh.size() + l4.size()));
  w.u8(p.l3_cookie ? kHopByHopHeader : static_cast<uint8_t>(p.tuple.proto));
  w.u8(p.ttl);
  w.raw(BytesView(p.tuple.src_ip.bytes().data(), 16));
  w.raw(BytesView(p.tuple.dst_ip.bytes().data(), 16));
  util::append(out, BytesView(hbh));
  util::append(out, BytesView(l4));
  return out;
}

namespace {

Expected<void> parse_l4(Packet& p, ByteReader& r) {
  if (p.is_tcp()) {
    const size_t l4_start = r.position();
    auto src_port = r.u16();
    auto dst_port = r.u16();
    auto seq = r.u32();
    auto ack_seq = r.u32();
    auto offset_byte = r.u8();
    auto flags = r.u8();
    if (!r.skip(2)) return wire_error(ErrorCode::kTruncated, "tcp header");
    auto csum = r.u16();
    if (!r.skip(2)) return wire_error(ErrorCode::kTruncated, "tcp header");
    if (!src_port || !dst_port || !seq || !ack_seq || !offset_byte ||
        !flags || !csum) {
      return wire_error(ErrorCode::kTruncated, "tcp header");
    }
    const size_t base_header_len =
        static_cast<size_t>(*offset_byte >> 4) * 4;
    if (base_header_len < 20) {
      return wire_error(ErrorCode::kMalformed, "tcp data offset");
    }
    // Walk the options; an EDO option may extend the header past the
    // data offset's 60-byte ceiling.
    size_t options_len = base_header_len - 20;
    size_t consumed = 0;
    while (consumed < options_len) {
      const auto kind = r.u8();
      if (!kind) return wire_error(ErrorCode::kTruncated, "tcp options");
      ++consumed;
      if (*kind == kTcpOptEol) {
        if (!r.skip(options_len - consumed)) {
          return wire_error(ErrorCode::kTruncated, "tcp options");
        }
        consumed = options_len;
        break;
      }
      if (*kind == kTcpOptNop) continue;
      const auto len = r.u8();
      if (!len) return wire_error(ErrorCode::kTruncated, "tcp options");
      if (*len < 2) return wire_error(ErrorCode::kMalformed, "tcp option len");
      ++consumed;
      const size_t body = static_cast<size_t>(*len) - 2;
      if (*kind == kTcpOptEdo && body == 2) {
        const auto extended = r.u16();
        if (!extended) return wire_error(ErrorCode::kTruncated, "tcp edo");
        consumed += 2;
        if (*extended < 20 + consumed || (*extended - 20) % 4 != 0) {
          return wire_error(ErrorCode::kMalformed, "tcp edo");
        }
        options_len = *extended - 20;
      } else if (*kind == kTcpOptCookie) {
        auto blob = r.raw(body);
        if (!blob) return wire_error(ErrorCode::kTruncated, "tcp cookie");
        consumed += body;
        p.l4_cookie = std::move(*blob);
      } else {
        if (!r.skip(body)) {
          return wire_error(ErrorCode::kTruncated, "tcp options");
        }
        consumed += body;
      }
    }
    p.tuple.src_port = *src_port;
    p.tuple.dst_port = *dst_port;
    p.seq = *seq;
    p.ack_seq = *ack_seq;
    p.fin = *flags & 0x01;
    p.syn = *flags & 0x02;
    p.rst = *flags & 0x04;
    p.ack = *flags & 0x10;
    // assign (not operator=) so a recycled packet's payload capacity
    // is reused instead of reallocated.
    const auto payload = r.view(r.remaining());
    p.payload.assign(payload->begin(), payload->end());
    (void)l4_start;
    return {};
  }
  auto src_port = r.u16();
  auto dst_port = r.u16();
  auto len = r.u16();
  auto csum = r.u16();
  if (!src_port || !dst_port || !len || !csum) {
    return wire_error(ErrorCode::kTruncated, "udp header");
  }
  if (*len < 8) return wire_error(ErrorCode::kMalformed, "udp length");
  if (static_cast<size_t>(*len - 8) > r.remaining()) {
    return wire_error(ErrorCode::kTruncated, "udp payload");
  }
  p.tuple.src_port = *src_port;
  p.tuple.dst_port = *dst_port;
  const auto payload = r.view(*len - 8);
  p.payload.assign(payload->begin(), payload->end());
  return {};
}

}  // namespace

Expected<void> parse_packet_into(util::BytesView wire, Packet& out) {
  if (wire.empty()) return wire_error(ErrorCode::kTruncated, "empty");
  ByteReader r(wire);
  // Reset everything a previous occupant may have left, keeping heap
  // capacity (payload cleared, not shrunk).
  Packet& p = out;
  p.tuple = FiveTuple{};
  p.dscp = 0;
  p.ttl = 64;
  p.ipv6 = false;
  p.seq = 0;
  p.ack_seq = 0;
  p.syn = p.ack = p.fin = p.rst = false;
  p.l3_cookie.reset();
  p.l4_cookie.reset();
  p.payload.clear();
  p.wire_size = 0;
  const uint8_t version = static_cast<uint8_t>(wire[0] >> 4);
  if (version == 4) {
    auto vi = r.u8();
    auto tos = r.u8();
    auto total_len = r.u16();
    if (!r.skip(4)) {  // id, flags/frag
      return wire_error(ErrorCode::kTruncated, "ipv4 header");
    }
    auto ttl = r.u8();
    auto proto = r.u8();
    auto csum = r.u16();
    if (!vi || !tos || !total_len || !ttl || !proto || !csum) {
      return wire_error(ErrorCode::kTruncated, "ipv4 header");
    }
    const size_t ihl = static_cast<size_t>(*vi & 0x0f) * 4;
    if (ihl < 20 || *total_len < ihl) {
      return wire_error(ErrorCode::kMalformed, "ipv4 lengths");
    }
    if (*total_len > wire.size()) {
      return wire_error(ErrorCode::kTruncated, "ipv4 total length");
    }
    if (internet_checksum(wire.subspan(0, ihl)) != 0) {
      return wire_error(ErrorCode::kBadChecksum, "ipv4 header");
    }
    auto src = r.raw(4);
    auto dst = r.raw(4);
    if (!src || !dst) return wire_error(ErrorCode::kTruncated, "ipv4 header");
    if (!r.skip(ihl - 20)) {  // v4 options
      return wire_error(ErrorCode::kTruncated, "ipv4 options");
    }
    p.ipv6 = false;
    p.dscp = static_cast<uint8_t>(*tos >> 2);
    p.ttl = *ttl;
    p.tuple.src_ip = IpAddress::v4((*src)[0], (*src)[1], (*src)[2], (*src)[3]);
    p.tuple.dst_ip = IpAddress::v4((*dst)[0], (*dst)[1], (*dst)[2], (*dst)[3]);
    if (*proto == static_cast<uint8_t>(L4Proto::kTcp)) {
      p.tuple.proto = L4Proto::kTcp;
    } else if (*proto == static_cast<uint8_t>(L4Proto::kUdp)) {
      p.tuple.proto = L4Proto::kUdp;
    } else {
      return wire_error(ErrorCode::kUnknownProtocol);
    }
    // Restrict the reader to the IP total length (drop link padding).
    ByteReader body(wire.subspan(ihl, *total_len - ihl));
    auto parsed = parse_l4(p, body);
    if (parsed) p.wire_size = static_cast<uint32_t>(wire.size());
    return parsed;
  }
  if (version != 6) return wire_error(ErrorCode::kMalformed, "ip version");
  auto vtc_flow = r.u32();
  auto payload_len = r.u16();
  auto next = r.u8();
  auto hops = r.u8();
  auto src = r.raw(16);
  auto dst = r.raw(16);
  if (!vtc_flow || !payload_len || !next || !hops || !src || !dst) {
    return wire_error(ErrorCode::kTruncated, "ipv6 header");
  }
  if (*payload_len > r.remaining()) {
    return wire_error(ErrorCode::kTruncated, "ipv6 payload length");
  }
  p.ipv6 = true;
  p.dscp = static_cast<uint8_t>(*vtc_flow >> 22 & 0x3f);
  p.ttl = *hops;
  std::array<uint8_t, 16> sb;
  std::array<uint8_t, 16> db;
  std::copy(src->begin(), src->end(), sb.begin());
  std::copy(dst->begin(), dst->end(), db.begin());
  p.tuple.src_ip = IpAddress::v6(sb);
  p.tuple.dst_ip = IpAddress::v6(db);

  uint8_t next_header = *next;
  if (next_header == kHopByHopHeader) {
    auto nh = r.u8();
    auto hdr_len = r.u8();
    if (!nh || !hdr_len) return wire_error(ErrorCode::kTruncated, "ipv6 hbh");
    const size_t opts_len = (static_cast<size_t>(*hdr_len) + 1) * 8 - 2;
    auto opts = r.view(opts_len);
    if (!opts) return wire_error(ErrorCode::kTruncated, "ipv6 hbh");
    // Walk TLV options looking for the cookie option.
    ByteReader opt_reader(*opts);
    while (opt_reader.remaining() > 0) {
      auto type = opt_reader.u8();
      if (!type) return wire_error(ErrorCode::kTruncated, "ipv6 hbh option");
      if (*type == 0) continue;  // Pad1
      auto len = opt_reader.u8();
      if (!len) return wire_error(ErrorCode::kTruncated, "ipv6 hbh option");
      if (*type == kCookieOptionType) {
        auto cookie = opt_reader.raw(*len);
        if (!cookie) {
          return wire_error(ErrorCode::kTruncated, "ipv6 cookie option");
        }
        p.l3_cookie = std::move(*cookie);
      } else {
        if (!opt_reader.skip(*len)) {
          return wire_error(ErrorCode::kTruncated, "ipv6 hbh option");
        }
      }
    }
    next_header = *nh;
  }
  if (next_header == static_cast<uint8_t>(L4Proto::kTcp)) {
    p.tuple.proto = L4Proto::kTcp;
  } else if (next_header == static_cast<uint8_t>(L4Proto::kUdp)) {
    p.tuple.proto = L4Proto::kUdp;
  } else {
    return wire_error(ErrorCode::kUnknownProtocol);
  }
  auto parsed = parse_l4(p, r);
  if (parsed) p.wire_size = static_cast<uint32_t>(wire.size());
  return parsed;
}

Expected<Packet> parse_packet(util::BytesView wire) {
  Packet p;
  auto parsed = parse_packet_into(wire, p);
  if (!parsed) return unexpected(parsed.error());
  return p;
}

std::optional<Packet> parse(util::BytesView wire) {
  return parse_packet(wire).to_optional();
}

}  // namespace nnn::net
