// Minimal HTTP/1.1 request/response codec.
//
// The Boost agent inserts cookies "as a special HTTP header for
// unencrypted traffic" (§5.1). This codec produces and parses real
// HTTP/1.1 text so the middlebox can find that header in packet
// payloads, including requests split across the first packets of a
// flow (the daemon "sniffs the first 3 incoming packets for each
// flow").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nnn::net::http {

/// The header the Boost agent uses to carry a base64 cookie.
inline constexpr std::string_view kCookieHeader = "X-Network-Cookie";

struct Header {
  std::string name;
  std::string value;
};

class Request {
 public:
  Request() = default;
  Request(std::string method, std::string target, std::string host);

  const std::string& method() const { return method_; }
  const std::string& target() const { return target_; }

  /// Host header convenience.
  std::string host() const;

  /// Case-insensitive lookup of the first matching header.
  std::optional<std::string> header(std::string_view name) const;
  /// Append a header (duplicates allowed, as in real HTTP).
  void add_header(std::string name, std::string value);
  /// Remove all headers with this name; returns how many were removed.
  size_t remove_header(std::string_view name);
  const std::vector<Header>& headers() const { return headers_; }

  const std::string& body() const { return body_; }
  void set_body(std::string body);

  /// Serialize to wire text (CRLF line endings, Content-Length added
  /// automatically when a body is present).
  std::string serialize() const;

  /// Parse a complete request. nullopt if malformed or incomplete.
  static std::optional<Request> parse(std::string_view text);

  /// Incremental parse over a TCP stream prefix. Distinguishes "keep
  /// reading" from "give up" — the distinction parse() folds into one
  /// nullopt — and reports how many bytes the request occupied so
  /// keep-alive connections know where the next request starts.
  enum class ParseStatus : uint8_t {
    kComplete,    // `request` and `consumed` are valid
    kIncomplete,  // a longer prefix may parse; keep buffering
    kBad,         // no extension of this prefix can parse; close
  };
  struct ParsePrefix;  // defined after the class: it holds a Request
  /// A request without Content-Length has an empty body (the stream
  /// framing rule — unlike parse(), which takes the rest of the text).
  /// Headers are capped at kMaxHeaderBytes: a peer that sends more
  /// without a blank line is kBad, not endlessly buffered.
  static ParsePrefix parse_prefix(std::string_view text);
  static constexpr size_t kMaxHeaderBytes = 16 * 1024;

 private:
  std::string method_ = "GET";
  std::string target_ = "/";
  std::vector<Header> headers_;
  std::string body_;
};

struct Request::ParsePrefix {
  ParseStatus status = ParseStatus::kIncomplete;
  Request request;
  size_t consumed = 0;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::vector<Header> headers;
  std::string body;

  std::optional<std::string> header(std::string_view name) const;
  void add_header(std::string name, std::string value);
  std::string serialize() const;
  static std::optional<Response> parse(std::string_view text);
};

}  // namespace nnn::net::http
