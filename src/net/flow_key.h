// Unified flow identity (PR 10 API redesign).
//
// The paper keys everything on the classic 5-tuple; encrypted
// transports broke that assumption years later. QUIC flows are named
// by connection IDs precisely so they survive what kills a 5-tuple:
// NAT rebinding and connection migration change the address/port pair
// mid-flow while the CID stays the flow's stable name (QASM's central
// observation about stateful middleboxes). FlowKey is the sum type
// that lets every keyed structure — dataplane::FlowTable, the DPI
// flow cache, OOB matching, the RX-demux steering fallback — speak
// both vocabularies through one value:
//
//   FlowKey::from_tuple(t)   classic cleartext flow
//   FlowKey::from_cid(c)     QUIC-shaped flow, named by connection ID
//
// steer_key() is the shared, platform-stable 64-bit derivation used
// for shard steering and FlatTable probing. It deliberately avoids
// std::hash (implementation-defined) for the same reason
// util::steer_shard does: replay caches and descriptor hot tiers are
// sharded by this value, and "which worker owns flow X" must not
// drift across platforms or standard libraries.
//
// CID keys are direction-insensitive by construction (both directions
// of a connection resolve to the same canonical CID — see
// quic::CidAliasTable), so reversed() is the identity for them.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/five_tuple.h"
#include "util/hash.h"

namespace nnn::net {

class FlowKey {
 public:
  enum class Kind : uint8_t { kFiveTuple = 0, kConnectionId = 1 };

  /// Default: the zero five-tuple (mirrors FiveTuple{}).
  FlowKey() = default;

  static FlowKey from_tuple(const FiveTuple& tuple) {
    FlowKey k;
    k.kind_ = Kind::kFiveTuple;
    k.tuple_ = tuple;
    return k;
  }

  static FlowKey from_cid(uint64_t cid) {
    FlowKey k;
    k.kind_ = Kind::kConnectionId;
    k.cid_ = cid;
    return k;
  }

  Kind kind() const { return kind_; }
  bool is_tuple() const { return kind_ == Kind::kFiveTuple; }
  bool is_cid() const { return kind_ == Kind::kConnectionId; }

  /// Valid only for the matching kind; the other accessor returns the
  /// inactive (zero) alternative, never traps — keys are plain data.
  const FiveTuple& tuple() const { return tuple_; }
  uint64_t cid() const { return cid_; }

  /// The same flow seen from the opposite direction. CID keys name the
  /// connection, not a direction, so they are their own reverse.
  FlowKey reversed() const {
    return is_cid() ? *this : from_tuple(tuple_.reversed());
  }

  /// Platform-stable 64-bit key for steering (util::steer_shard) and
  /// FlatTable probing. No std::hash anywhere in the chain; fixed
  /// vectors are pinned in tests/test_quic.cpp.
  uint64_t steer_key() const;

  std::string to_string() const;

  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    if (a.kind_ != b.kind_) return false;
    return a.is_cid() ? a.cid_ == b.cid_ : a.tuple_ == b.tuple_;
  }

 private:
  Kind kind_ = Kind::kFiveTuple;
  FiveTuple tuple_{};
  uint64_t cid_ = 0;
};

/// Platform-stable address hash feeding FlowKey::steer_key (exposed
/// for the steering tests' fixed vectors).
uint64_t stable_hash(const IpAddress& ip);

}  // namespace nnn::net

template <>
struct std::hash<nnn::net::FlowKey> {
  size_t operator()(const nnn::net::FlowKey& k) const noexcept {
    return static_cast<size_t>(nnn::util::mix64(k.steer_key()));
  }
};
