#include "net/five_tuple.h"

#include "util/fmt.h"

namespace nnn::net {

std::string to_string(L4Proto p) {
  switch (p) {
    case L4Proto::kTcp:
      return "tcp";
    case L4Proto::kUdp:
      return "udp";
  }
  return "?";
}

std::string FiveTuple::to_string() const {
  return util::fmt("{} {}:{} -> {}:{}", net::to_string(proto),
                     src_ip.to_string(), src_port, dst_ip.to_string(),
                     dst_port);
}

BidiFlowKey::BidiFlowKey(const FiveTuple& t) : canonical(t) {
  // Order endpoints deterministically so both directions coincide.
  const auto lhs = std::tie(t.src_ip, t.src_port);
  const auto rhs = std::tie(t.dst_ip, t.dst_port);
  if (rhs < lhs) canonical = t.reversed();
}

}  // namespace nnn::net
