// Wire codec: Packet <-> real IPv4/IPv6 + TCP/UDP bytes, plus the
// framing layer the descriptor control plane speaks.
//
// The structured Packet model is what dataplane elements process; this
// codec proves the model corresponds to real headers. It implements:
//  - IPv4 header with DSCP/ECN byte and header checksum
//  - IPv6 header, plus an optional hop-by-hop options extension header
//    carrying the network-cookie option (this is the paper's "IPv6
//    extension header" cookie transport)
//  - TCP and UDP headers with the standard pseudo-header checksum
//  - Sync frames: a self-describing {magic, version, type, length}
//    envelope for control-plane messages. The typed payloads
//    (snapshot/delta/heartbeat) live in controlplane/messages.h; this
//    layer only knows bytes, so net/ never depends on cookies/.
// Parsing is defensive: any truncation or checksum mismatch yields a
// typed wire-domain Error, never UB. parse_packet/read_sync_frame are
// the primary entry points (PR 5 API redesign); the std::optional
// spellings survive as thin views for call sites that only care
// whether the bytes parsed.
#pragma once

#include <optional>

#include "net/packet.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/expected.h"

namespace nnn::net {

/// Serialize to wire bytes. v4/v6 is chosen by p.ipv6; a v4 packet with
/// an l3_cookie is serialized without it (v4 has no cookie slot — the
/// transport matrix in cookies/transport.h enforces this).
util::Bytes serialize(const Packet& p);

/// Parse wire bytes back into a Packet. Validates lengths and
/// checksums. The result's wire_size is set to the input size. On
/// failure the Error says which check rejected the bytes (kTruncated,
/// kBadChecksum, kUnknownProtocol, kMalformed) and the failure is
/// tallied into nnn_errors_total{domain="wire",...}.
Expected<Packet> parse_packet(util::BytesView wire);

/// Legacy view over parse_packet: drops the error detail.
std::optional<Packet> parse(util::BytesView wire);

/// Internet checksum (RFC 1071) over `data` with an optional seed.
uint16_t internet_checksum(util::BytesView data, uint32_t seed = 0);

/// "NC" — distinguishes control-plane datagrams from stray traffic.
inline constexpr uint16_t kSyncMagic = 0x4E43;
/// Protocol version; a parser rejects frames from a newer protocol
/// rather than misinterpreting them.
inline constexpr uint8_t kSyncVersion = 1;

/// One control-plane frame: an opaque typed payload. The type byte is
/// assigned by controlplane/messages.h; unknown types are skippable
/// because the envelope carries an explicit payload length.
struct SyncFrame {
  uint8_t type = 0;
  util::BytesView payload;
};

/// Append one frame: u16 magic | u8 version | u8 type | u32 len | payload.
void append_sync_frame(util::Bytes& out, uint8_t type,
                       util::BytesView payload);

/// Parse the frame at the reader's position. Fails with kBadMagic,
/// kUnsupportedVersion, or kTruncated (a length that overruns the
/// buffer); the returned payload view aliases the reader's underlying
/// buffer.
Expected<SyncFrame> read_sync_frame(util::ByteReader& r);

/// Legacy view over read_sync_frame.
std::optional<SyncFrame> parse_sync_frame(util::ByteReader& r);

}  // namespace nnn::net
