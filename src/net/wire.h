// Wire codec: Packet <-> real IPv4/IPv6 + TCP/UDP bytes.
//
// The structured Packet model is what dataplane elements process; this
// codec proves the model corresponds to real headers. It implements:
//  - IPv4 header with DSCP/ECN byte and header checksum
//  - IPv6 header, plus an optional hop-by-hop options extension header
//    carrying the network-cookie option (this is the paper's "IPv6
//    extension header" cookie transport)
//  - TCP and UDP headers with the standard pseudo-header checksum
// Parsing is defensive: any truncation or checksum mismatch yields
// nullopt, never UB.
#pragma once

#include <optional>

#include "net/packet.h"

namespace nnn::net {

/// Serialize to wire bytes. v4/v6 is chosen by p.ipv6; a v4 packet with
/// an l3_cookie is serialized without it (v4 has no cookie slot — the
/// transport matrix in cookies/transport.h enforces this).
util::Bytes serialize(const Packet& p);

/// Parse wire bytes back into a Packet. Validates lengths and
/// checksums. The result's wire_size is set to the input size.
std::optional<Packet> parse(util::BytesView wire);

/// Internet checksum (RFC 1071) over `data` with an optional seed.
uint16_t internet_checksum(util::BytesView data, uint32_t seed = 0);

}  // namespace nnn::net
