// Wire codec: Packet <-> real IPv4/IPv6 + TCP/UDP bytes, plus the
// framing layer the descriptor control plane speaks.
//
// The structured Packet model is what dataplane elements process; this
// codec proves the model corresponds to real headers. It implements:
//  - IPv4 header with DSCP/ECN byte and header checksum
//  - IPv6 header, plus an optional hop-by-hop options extension header
//    carrying the network-cookie option (this is the paper's "IPv6
//    extension header" cookie transport)
//  - TCP and UDP headers with the standard pseudo-header checksum
//  - Sync frames: a self-describing {magic, version, type, length}
//    envelope for control-plane messages. The typed payloads
//    (snapshot/delta/heartbeat) live in controlplane/messages.h; this
//    layer only knows bytes, so net/ never depends on cookies/.
// Parsing is defensive: any truncation or checksum mismatch yields a
// typed wire-domain Error, never UB. parse_packet/read_sync_frame are
// the primary entry points (PR 5 API redesign); the std::optional
// spellings survive as thin views for call sites that only care
// whether the bytes parsed.
#pragma once

#include <optional>

#include "net/packet.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/expected.h"

namespace nnn::net {

/// Serialize to wire bytes. v4/v6 is chosen by p.ipv6; a v4 packet with
/// an l3_cookie is serialized without it (v4 has no cookie slot — the
/// transport matrix in cookies/transport.h enforces this).
util::Bytes serialize(const Packet& p);

/// Parse wire bytes back into a Packet. Validates lengths and
/// checksums. The result's wire_size is set to the input size. On
/// failure the Error says which check rejected the bytes (kTruncated,
/// kBadChecksum, kUnknownProtocol, kMalformed) and the failure is
/// tallied into nnn_errors_total{domain="wire",...}.
Expected<Packet> parse_packet(util::BytesView wire);

/// Zero-copy variant: decode into an existing Packet (typically a
/// recycled PacketArena slot), reusing its payload heap capacity
/// across occupants — a warm decode path allocates nothing for
/// payloads that fit the previous occupant's buffer. On success `out`
/// is fully overwritten (same result as parse_packet); on failure it
/// is partially written and must be treated as scrap (callers recycle
/// the slot, which the arena's reset does anyway).
Expected<void> parse_packet_into(util::BytesView wire, Packet& out);

/// Legacy view over parse_packet: drops the error detail.
std::optional<Packet> parse(util::BytesView wire);

/// Internet checksum (RFC 1071) over `data` with an optional seed.
uint16_t internet_checksum(util::BytesView data, uint32_t seed = 0);

/// "NC" — distinguishes control-plane datagrams from stray traffic.
inline constexpr uint16_t kSyncMagic = 0x4E43;
/// Protocol version; a parser rejects frames from a newer protocol
/// rather than misinterpreting them.
inline constexpr uint8_t kSyncVersion = 1;

/// One control-plane frame: an opaque typed payload. The type byte is
/// assigned by controlplane/messages.h; unknown types are skippable
/// because the envelope carries an explicit payload length.
struct SyncFrame {
  uint8_t type = 0;
  util::BytesView payload;
};

/// Fixed envelope size: u16 magic | u8 version | u8 type | u32 len.
inline constexpr size_t kSyncFrameHeader = 8;

/// Ceiling on the length field a decoder will honor, checked BEFORE
/// any allocation or buffer sizing — a hostile 4 GiB length field must
/// cost the server one rejected frame, not one reserve() call. The
/// default comfortably exceeds the largest legitimate control-plane
/// message (a full descriptor snapshot); netio servers may lower it.
size_t max_sync_frame_payload();
void set_max_sync_frame_payload(size_t bytes);
inline constexpr size_t kDefaultMaxSyncFramePayload = 16u << 20;  // 16 MiB

/// Append one frame: u16 magic | u8 version | u8 type | u32 len | payload.
void append_sync_frame(util::Bytes& out, uint8_t type,
                       util::BytesView payload);

/// Parse the frame at the reader's position. Fails with kBadMagic,
/// kUnsupportedVersion, kMalformed (a length field above
/// max_sync_frame_payload()), or kTruncated (a length that overruns
/// the buffer); the returned payload view aliases the reader's
/// underlying buffer.
Expected<SyncFrame> read_sync_frame(util::ByteReader& r);

/// Legacy view over read_sync_frame.
std::optional<SyncFrame> parse_sync_frame(util::ByteReader& r);

/// Stream-reassembly probe: given the bytes buffered so far on a TCP
/// connection, how much more is needed?
///  - nullopt          -> envelope incomplete, keep reading
///  - value            -> total frame size (header + payload); the
///                        first `value` bytes of `stream` hold one
///                        whole frame once stream.size() >= value
///  - Error            -> the stream is poisoned (bad magic/version or
///                        an oversized length); close the connection —
///                        framing cannot resynchronize a byte stream.
/// Validates the envelope as soon as its 8 bytes arrive, so a hostile
/// length is rejected before any payload is buffered.
Expected<std::optional<size_t>> peek_sync_frame(util::BytesView stream);

/// Incremental frame reassembly for a byte stream: feed arbitrary
/// chunks, poll complete frames out. Used by the netio client
/// transport and the chunked-delivery differential tests; server
/// connections run peek_sync_frame directly on their input buffer.
class FrameAssembler {
 public:
  /// Append a chunk. Returns an Error (and poisons the assembler) when
  /// the buffered prefix can never parse; feeding after that fails the
  /// same way. nullopt = accepted.
  std::optional<Error> feed(util::BytesView chunk);

  /// Pop the next complete frame, or nullopt when more bytes are
  /// needed. The frame owns its payload (no aliasing of the internal
  /// buffer, which compacts as frames pop).
  struct Frame {
    uint8_t type = 0;
    util::Bytes payload;
  };
  std::optional<Frame> next();

  bool poisoned() const { return poisoned_.has_value(); }
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  util::Bytes buffer_;
  size_t consumed_ = 0;
  std::optional<Error> poisoned_;
};

}  // namespace nnn::net
