// mcTLS-style records: endpoint encryption with a middlebox-writable
// slot (§4.3 / §7).
//
// Plain TLS stops the network from attaching anything to in-session
// traffic, which blocks delivery-guarantee acks ("SSL/TLS prevents
// third parties from modifying traffic between endpoints. New
// protocols (like mcTLS) enhance SSL to allow middleboxes to change
// traffic between endpoints in a trusted way" — §4.3; and §7: "each
// cookie can have its own mcTLS context, and allow the network to
// modify it in order to provide network delivery guarantees").
//
// This is a deliberately small model of that idea, not a TLS
// implementation: a record carries
//   - an endpoint payload, encrypted and MAC'd under the endpoint key
//     (middleboxes cannot read or alter it undetected), and
//   - a cleartext middlebox slot, NOT covered by the endpoint MAC,
//     where an authorized middlebox deposits data (e.g. an ack
//     cookie). The slot has its own MAC under a key the endpoints
//     granted to the middlebox — writes by anyone else are detected.
// The "encryption" is a keyed stream cipher built from our HMAC
// primitive (counter mode over HMAC-SHA256): honest about what it
// demonstrates — the *trust structure*, not cryptographic novelty.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace nnn::net::mctls {

struct Keys {
  /// Endpoint-only key: confidentiality + integrity of the payload.
  util::Bytes endpoint_key;
  /// Key shared with authorized middleboxes: integrity of the slot.
  util::Bytes middlebox_key;
};

/// A sealed record as it travels. The slot starts empty; a middlebox
/// may fill it in transit.
struct Record {
  util::Bytes ciphertext;          // encrypted endpoint payload
  std::array<uint8_t, 16> payload_tag{};  // endpoint MAC (truncated)
  util::Bytes slot;                // middlebox-writable area
  std::array<uint8_t, 16> slot_tag{};     // middlebox MAC over slot

  /// Serialized wire form (length-prefixed fields).
  util::Bytes encode() const;
  static std::optional<Record> decode(util::BytesView wire);
};

/// Endpoint: seal a payload. The slot starts empty.
Record seal(const Keys& keys, util::BytesView payload,
            uint64_t sequence);

/// Middlebox: write the slot of an in-flight record (requires the
/// middlebox key; re-MACs the slot, leaves the payload untouched).
void write_slot(Record& record, util::BytesView middlebox_key,
                util::BytesView data, uint64_t sequence);

/// Endpoint: open a received record. Returns the payload when the
/// endpoint MAC verifies; nullopt when the payload was tampered with.
std::optional<util::Bytes> open(const Keys& keys, const Record& record,
                                uint64_t sequence);

/// Endpoint or middlebox: read the slot if its MAC verifies under the
/// middlebox key (detects unauthorized slot writes).
std::optional<util::Bytes> read_slot(const Record& record,
                                     util::BytesView middlebox_key,
                                     uint64_t sequence);

}  // namespace nnn::net::mctls
