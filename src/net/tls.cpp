#include "net/tls.h"

#include "util/bytes.h"

namespace nnn::net::tls {

namespace {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;

constexpr uint8_t kContentHandshake = 22;
constexpr uint8_t kHandshakeClientHello = 1;

}  // namespace

std::optional<std::string> ClientHello::server_name() const {
  for (const auto& ext : extensions) {
    if (ext.type != kExtServerName) continue;
    // server_name_list: u16 list length, then entries of
    // {u8 type=0 (host_name), u16 length, bytes}.
    ByteReader r(BytesView(ext.data));
    auto list_len = r.u16();
    if (!list_len || *list_len > r.remaining()) return std::nullopt;
    auto name_type = r.u8();
    auto name_len = r.u16();
    if (!name_type || *name_type != 0 || !name_len) return std::nullopt;
    auto name = r.view(*name_len);
    if (!name) return std::nullopt;
    return std::string(name->begin(), name->end());
  }
  return std::nullopt;
}

void ClientHello::set_server_name(std::string_view host) {
  Bytes data;
  ByteWriter w(data);
  w.u16(static_cast<uint16_t>(host.size() + 3));
  w.u8(0);  // host_name
  w.u16(static_cast<uint16_t>(host.size()));
  w.raw(host);
  for (auto& ext : extensions) {
    if (ext.type == kExtServerName) {
      ext.data = std::move(data);
      return;
    }
  }
  extensions.push_back(Extension{kExtServerName, std::move(data)});
}

std::optional<util::Bytes> ClientHello::cookie() const {
  for (const auto& ext : extensions) {
    if (ext.type == kExtNetworkCookie) return ext.data;
  }
  return std::nullopt;
}

void ClientHello::set_cookie(util::BytesView cookie) {
  for (auto& ext : extensions) {
    if (ext.type == kExtNetworkCookie) {
      ext.data.assign(cookie.begin(), cookie.end());
      return;
    }
  }
  extensions.push_back(
      Extension{kExtNetworkCookie, Bytes(cookie.begin(), cookie.end())});
}

bool ClientHello::clear_cookie() {
  const size_t before = extensions.size();
  std::erase_if(extensions, [](const Extension& e) {
    return e.type == kExtNetworkCookie;
  });
  return extensions.size() != before;
}

util::Bytes ClientHello::serialize_record() const {
  // Body of the ClientHello handshake message.
  Bytes body;
  ByteWriter w(body);
  w.u16(legacy_version);
  w.raw(BytesView(random.data(), random.size()));
  w.u8(static_cast<uint8_t>(session_id.size()));
  w.raw(BytesView(session_id));
  w.u16(static_cast<uint16_t>(cipher_suites.size() * 2));
  for (const uint16_t cs : cipher_suites) w.u16(cs);
  w.u8(1);  // compression methods length
  w.u8(0);  // null compression
  Bytes ext_block;
  ByteWriter we(ext_block);
  for (const auto& ext : extensions) {
    we.u16(ext.type);
    we.u16(static_cast<uint16_t>(ext.data.size()));
    we.raw(BytesView(ext.data));
  }
  w.u16(static_cast<uint16_t>(ext_block.size()));
  w.raw(BytesView(ext_block));

  // Handshake header.
  Bytes handshake;
  ByteWriter wh(handshake);
  wh.u8(kHandshakeClientHello);
  wh.u8(static_cast<uint8_t>(body.size() >> 16));
  wh.u16(static_cast<uint16_t>(body.size() & 0xffff));
  wh.raw(BytesView(body));

  // Record header.
  Bytes record;
  ByteWriter wr(record);
  wr.u8(kContentHandshake);
  wr.u16(0x0301);  // record-layer version as sent by real clients
  wr.u16(static_cast<uint16_t>(handshake.size()));
  wr.raw(BytesView(handshake));
  return record;
}

std::optional<ClientHello> ClientHello::parse_record(BytesView record) {
  ByteReader r(record);
  auto content_type = r.u8();
  auto record_version = r.u16();
  auto record_len = r.u16();
  if (!content_type || *content_type != kContentHandshake ||
      !record_version || !record_len || *record_len > r.remaining()) {
    return std::nullopt;
  }
  auto handshake_type = r.u8();
  auto len_hi = r.u8();
  auto len_lo = r.u16();
  if (!handshake_type || *handshake_type != kHandshakeClientHello ||
      !len_hi || !len_lo) {
    return std::nullopt;
  }
  const size_t body_len = static_cast<size_t>(*len_hi) << 16 | *len_lo;
  if (body_len > r.remaining()) return std::nullopt;

  ClientHello hello;
  auto version = r.u16();
  auto random = r.raw(32);
  if (!version || !random) return std::nullopt;
  hello.legacy_version = *version;
  std::copy(random->begin(), random->end(), hello.random.begin());
  auto sid_len = r.u8();
  if (!sid_len) return std::nullopt;
  auto sid = r.raw(*sid_len);
  if (!sid) return std::nullopt;
  hello.session_id = std::move(*sid);
  auto cs_len = r.u16();
  if (!cs_len || *cs_len % 2 != 0 || *cs_len > r.remaining()) {
    return std::nullopt;
  }
  hello.cipher_suites.clear();
  for (size_t i = 0; i < *cs_len / 2; ++i) {
    auto cs = r.u16();
    if (!cs) return std::nullopt;
    hello.cipher_suites.push_back(*cs);
  }
  auto comp_len = r.u8();
  if (!comp_len || !r.skip(*comp_len)) return std::nullopt;
  if (r.remaining() == 0) return hello;  // extensions are optional
  auto ext_len = r.u16();
  if (!ext_len || *ext_len > r.remaining()) return std::nullopt;
  ByteReader er(*r.view(*ext_len));
  while (er.remaining() > 0) {
    auto type = er.u16();
    auto len = er.u16();
    if (!type || !len) return std::nullopt;
    auto data = er.raw(*len);
    if (!data) return std::nullopt;
    hello.extensions.push_back(Extension{*type, std::move(*data)});
  }
  return hello;
}

}  // namespace nnn::net::tls
