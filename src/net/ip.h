// IP addresses (v4 and v6) as value types.
//
// Cookies are deliberately independent of addressing (they survive NAT
// and CDN co-hosting) but every other mechanism in the paper — DPI
// rules, OOB flow descriptions, DiffServ domains — keys on addresses,
// so the substrate needs a proper address type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace nnn::net {

enum class IpFamily : uint8_t { kV4 = 4, kV6 = 6 };

class IpAddress {
 public:
  /// Default: IPv4 0.0.0.0.
  IpAddress() : family_(IpFamily::kV4), bytes_{} {}

  /// Construct an IPv4 address from a host-order 32-bit value.
  static IpAddress v4(uint32_t host_order);
  /// Construct an IPv4 address from four octets.
  static IpAddress v4(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
  /// Construct an IPv6 address from 16 bytes.
  static IpAddress v6(const std::array<uint8_t, 16>& bytes);

  /// Parse dotted-quad IPv4 ("10.0.0.1") or full/abbreviated IPv6
  /// ("2001:db8::1"). nullopt on bad input.
  static std::optional<IpAddress> parse(std::string_view s);

  IpFamily family() const { return family_; }
  bool is_v4() const { return family_ == IpFamily::kV4; }
  bool is_v6() const { return family_ == IpFamily::kV6; }

  /// Host-order 32-bit value; requires is_v4().
  uint32_t v4_value() const;
  /// Raw bytes: 4 significant bytes for v4, 16 for v6.
  const std::array<uint8_t, 16>& bytes() const { return bytes_; }

  std::string to_string() const;

  /// True for RFC 1918 (v4) / fc00::/7 (v6) ranges — the NAT model uses
  /// this to decide which addresses need rewriting.
  bool is_private() const;

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;

 private:
  IpFamily family_;
  std::array<uint8_t, 16> bytes_;  // v4 uses bytes_[0..3]
};

}  // namespace nnn::net

template <>
struct std::hash<nnn::net::IpAddress> {
  size_t operator()(const nnn::net::IpAddress& a) const noexcept {
    uint64_t h = static_cast<uint64_t>(a.family());
    for (size_t i = 0; i < 16; i += 8) {
      uint64_t w = 0;
      for (size_t j = 0; j < 8; ++j) w = w << 8 | a.bytes()[i + j];
      h = (h ^ w) * 0x9e3779b97f4a7c15ULL;
    }
    return static_cast<size_t>(h);
  }
};
