#include "net/packet.h"

#include "util/fmt.h"

namespace nnn::net {

uint32_t header_overhead(const Packet& p) {
  uint32_t overhead = p.ipv6 ? 40u : 20u;
  overhead += p.is_tcp() ? 20u : 8u;
  if (p.l3_cookie) {
    // Option TLV plus padding to 8-byte units (IPv6 HBH).
    overhead += static_cast<uint32_t>(2 + p.l3_cookie->size() + 7) / 8 * 8;
  }
  if (p.l4_cookie && p.is_tcp()) {
    // EDO option (4) + cookie option TLV, padded to 4-byte units.
    overhead += static_cast<uint32_t>(4 + 2 + p.l4_cookie->size() + 3) /
                4 * 4;
  }
  return overhead;
}

uint32_t Packet::size() const {
  if (wire_size != 0) return wire_size;
  return header_overhead(*this) + static_cast<uint32_t>(payload.size());
}

std::string Packet::summary() const {
  return util::fmt("{}{}{}{} len={}", tuple.to_string(),
                     syn ? " SYN" : "", ack ? " ACK" : "", fin ? " FIN" : "",
                     size());
}

}  // namespace nnn::net
