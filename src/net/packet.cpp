#include "net/packet.h"

#include "net/http.h"
#include "net/tls.h"
#include "util/base64.h"
#include "util/fmt.h"

namespace nnn::net {

std::optional<RawCookie> Packet::cookie_bytes() const {
  if (l3_cookie) {
    return RawCookie{CookieCarrier::kIpv6Option, util::BytesView(*l3_cookie),
                     {}};
  }
  if (l4_cookie) {
    return RawCookie{CookieCarrier::kTcpOption, util::BytesView(*l4_cookie),
                     {}};
  }
  if (quic && quic->long_header && !quic->tp_cookie.empty()) {
    return RawCookie{CookieCarrier::kQuicTransportParam,
                     util::BytesView(quic->tp_cookie),
                     {}};
  }
  if (is_udp() && payload.size() >= 6 &&
      util::equal(util::BytesView(payload.data(), 4),
                  util::BytesView(kCookieShimMagic, 4))) {
    // Shim layout: magic(4) | length u16 | stack bytes | payload.
    util::ByteReader r{util::BytesView(payload)};
    r.skip(4);
    const auto len = r.u16();
    if (len && *len <= r.remaining()) {
      RawCookie raw;
      raw.carrier = CookieCarrier::kUdpShim;
      raw.view = *r.view(*len);
      return raw;
    }
  }
  if (const auto hello =
          tls::ClientHello::parse_record(util::BytesView(payload))) {
    if (auto blob = hello->cookie()) {
      RawCookie raw;
      raw.carrier = CookieCarrier::kTlsExtension;
      raw.storage = std::move(*blob);
      raw.view = util::BytesView(raw.storage);
      return raw;
    }
  }
  if (!payload.empty()) {
    const std::string text(payload.begin(), payload.end());
    if (const auto request = http::Request::parse(text)) {
      if (const auto header = request->header(http::kCookieHeader)) {
        if (auto decoded = util::base64_decode(*header)) {
          RawCookie raw;
          raw.carrier = CookieCarrier::kHttpHeader;
          raw.storage = std::move(*decoded);
          raw.view = util::BytesView(raw.storage);
          return raw;
        }
      }
    }
  }
  return std::nullopt;
}

uint32_t header_overhead(const Packet& p) {
  uint32_t overhead = p.ipv6 ? 40u : 20u;
  overhead += p.is_tcp() ? 20u : 8u;
  if (p.quic) {
    // Short header: flags(1) + dcid(8). Long header: flags(1) +
    // version(4) + two length-prefixed CIDs (9 each) + the transport
    // parameter when present (TLV, 4-byte framing).
    overhead += p.quic->long_header
                    ? 23u + (p.quic->tp_cookie.empty()
                                 ? 0u
                                 : 4u + static_cast<uint32_t>(
                                            p.quic->tp_cookie.size()))
                    : 9u;
  }
  if (p.l3_cookie) {
    // Option TLV plus padding to 8-byte units (IPv6 HBH).
    overhead += static_cast<uint32_t>(2 + p.l3_cookie->size() + 7) / 8 * 8;
  }
  if (p.l4_cookie && p.is_tcp()) {
    // EDO option (4) + cookie option TLV, padded to 4-byte units.
    overhead += static_cast<uint32_t>(4 + 2 + p.l4_cookie->size() + 3) /
                4 * 4;
  }
  return overhead;
}

uint32_t Packet::size() const {
  if (wire_size != 0) return wire_size;
  return header_overhead(*this) + static_cast<uint32_t>(payload.size());
}

std::string Packet::summary() const {
  return util::fmt("{}{}{}{} len={}", tuple.to_string(),
                     syn ? " SYN" : "", ack ? " ACK" : "", fin ? " FIN" : "",
                     size());
}

}  // namespace nnn::net
