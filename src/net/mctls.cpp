#include "net/mctls.h"

#include <cstring>

#include "crypto/constant_time.h"
#include "crypto/hmac.h"
#include "util/bytes.h"

namespace nnn::net::mctls {

namespace {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;

/// Counter-mode keystream from HMAC-SHA256(key, seq || block_index).
void xor_keystream(Bytes& data, BytesView key, uint64_t sequence) {
  for (size_t block = 0; block * 32 < data.size(); ++block) {
    Bytes nonce;
    ByteWriter w(nonce);
    w.u64(sequence);
    w.u64(block);
    const auto stream = crypto::hmac_sha256(key, BytesView(nonce));
    const size_t offset = block * 32;
    const size_t take = std::min<size_t>(32, data.size() - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= stream[i];
    }
  }
}

crypto::CookieTag mac_over(BytesView key, uint64_t sequence,
                           BytesView data, uint8_t domain) {
  Bytes material;
  ByteWriter w(material);
  w.u8(domain);  // domain separation: payload vs slot
  w.u64(sequence);
  w.raw(data);
  return crypto::cookie_tag(key, BytesView(material));
}

constexpr uint8_t kPayloadDomain = 0x01;
constexpr uint8_t kSlotDomain = 0x02;

}  // namespace

util::Bytes Record::encode() const {
  Bytes out;
  ByteWriter w(out);
  w.u32(static_cast<uint32_t>(ciphertext.size()));
  w.raw(BytesView(ciphertext));
  w.raw(BytesView(payload_tag.data(), payload_tag.size()));
  w.u32(static_cast<uint32_t>(slot.size()));
  w.raw(BytesView(slot));
  w.raw(BytesView(slot_tag.data(), slot_tag.size()));
  return out;
}

std::optional<Record> Record::decode(util::BytesView wire) {
  ByteReader r(wire);
  Record record;
  const auto ct_len = r.u32();
  if (!ct_len) return std::nullopt;
  auto ct = r.raw(*ct_len);
  auto payload_tag = r.view(16);
  if (!ct || !payload_tag) return std::nullopt;
  record.ciphertext = std::move(*ct);
  std::memcpy(record.payload_tag.data(), payload_tag->data(), 16);
  const auto slot_len = r.u32();
  if (!slot_len) return std::nullopt;
  auto slot = r.raw(*slot_len);
  auto slot_tag = r.view(16);
  if (!slot || !slot_tag || !r.done()) return std::nullopt;
  record.slot = std::move(*slot);
  std::memcpy(record.slot_tag.data(), slot_tag->data(), 16);
  return record;
}

Record seal(const Keys& keys, util::BytesView payload,
            uint64_t sequence) {
  Record record;
  record.ciphertext.assign(payload.begin(), payload.end());
  xor_keystream(record.ciphertext, BytesView(keys.endpoint_key), sequence);
  record.payload_tag =
      mac_over(BytesView(keys.endpoint_key), sequence,
               BytesView(record.ciphertext), kPayloadDomain);
  // Empty slot, validly MAC'd so a receiver can distinguish "no write"
  // from "tampered".
  record.slot_tag = mac_over(BytesView(keys.middlebox_key), sequence,
                             BytesView(record.slot), kSlotDomain);
  return record;
}

void write_slot(Record& record, util::BytesView middlebox_key,
                util::BytesView data, uint64_t sequence) {
  record.slot.assign(data.begin(), data.end());
  record.slot_tag =
      mac_over(middlebox_key, sequence, BytesView(record.slot),
               kSlotDomain);
}

std::optional<util::Bytes> open(const Keys& keys, const Record& record,
                                uint64_t sequence) {
  const auto expected =
      mac_over(BytesView(keys.endpoint_key), sequence,
               BytesView(record.ciphertext), kPayloadDomain);
  if (!crypto::constant_time_equal(
          BytesView(expected.data(), expected.size()),
          BytesView(record.payload_tag.data(),
                    record.payload_tag.size()))) {
    return std::nullopt;
  }
  Bytes plaintext = record.ciphertext;
  xor_keystream(plaintext, BytesView(keys.endpoint_key), sequence);
  return plaintext;
}

std::optional<util::Bytes> read_slot(const Record& record,
                                     util::BytesView middlebox_key,
                                     uint64_t sequence) {
  const auto expected = mac_over(middlebox_key, sequence,
                                 BytesView(record.slot), kSlotDomain);
  if (!crypto::constant_time_equal(
          BytesView(expected.data(), expected.size()),
          BytesView(record.slot_tag.data(), record.slot_tag.size()))) {
    return std::nullopt;
  }
  return record.slot;
}

}  // namespace nnn::net::mctls
