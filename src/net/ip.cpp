#include "net/ip.h"

#include <charconv>
#include "util/fmt.h"

#include "util/strings.h"

namespace nnn::net {

IpAddress IpAddress::v4(uint32_t host_order) {
  IpAddress a;
  a.family_ = IpFamily::kV4;
  a.bytes_ = {};
  a.bytes_[0] = static_cast<uint8_t>(host_order >> 24);
  a.bytes_[1] = static_cast<uint8_t>(host_order >> 16);
  a.bytes_[2] = static_cast<uint8_t>(host_order >> 8);
  a.bytes_[3] = static_cast<uint8_t>(host_order);
  return a;
}

IpAddress IpAddress::v4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return v4(static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
            static_cast<uint32_t>(c) << 8 | d);
}

IpAddress IpAddress::v6(const std::array<uint8_t, 16>& bytes) {
  IpAddress a;
  a.family_ = IpFamily::kV6;
  a.bytes_ = bytes;
  return a;
}

uint32_t IpAddress::v4_value() const {
  return static_cast<uint32_t>(bytes_[0]) << 24 |
         static_cast<uint32_t>(bytes_[1]) << 16 |
         static_cast<uint32_t>(bytes_[2]) << 8 | bytes_[3];
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::array<uint8_t, 4> octets;
  for (size_t i = 0; i < 4; ++i) {
    if (parts[i].empty() || parts[i].size() > 3) return std::nullopt;
    int v = 0;
    const auto [ptr, ec] = std::from_chars(
        parts[i].data(), parts[i].data() + parts[i].size(), v);
    if (ec != std::errc() || ptr != parts[i].data() + parts[i].size() ||
        v < 0 || v > 255) {
      return std::nullopt;
    }
    octets[i] = static_cast<uint8_t>(v);
  }
  return IpAddress::v4(octets[0], octets[1], octets[2], octets[3]);
}

std::optional<IpAddress> parse_v6(std::string_view s) {
  // Split on "::" (at most one allowed).
  std::vector<uint16_t> head;
  std::vector<uint16_t> tail;
  const size_t gap = s.find("::");
  const auto parse_groups = [](std::string_view part,
                               std::vector<uint16_t>& out) -> bool {
    if (part.empty()) return true;
    for (const auto& g : util::split(part, ':')) {
      if (g.empty() || g.size() > 4) return false;
      uint32_t v = 0;
      for (const char c : g) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
          v |= static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          v |= static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          v |= static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return false;
        }
      }
      out.push_back(static_cast<uint16_t>(v));
    }
    return true;
  };
  if (gap == std::string_view::npos) {
    if (!parse_groups(s, head)) return std::nullopt;
    if (head.size() != 8) return std::nullopt;
  } else {
    if (s.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!parse_groups(s.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(s.substr(gap + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() > 7) return std::nullopt;
  }
  std::array<uint8_t, 16> bytes{};
  for (size_t i = 0; i < head.size(); ++i) {
    bytes[2 * i] = static_cast<uint8_t>(head[i] >> 8);
    bytes[2 * i + 1] = static_cast<uint8_t>(head[i]);
  }
  for (size_t i = 0; i < tail.size(); ++i) {
    const size_t slot = 8 - tail.size() + i;
    bytes[2 * slot] = static_cast<uint8_t>(tail[i] >> 8);
    bytes[2 * slot + 1] = static_cast<uint8_t>(tail[i]);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view s) {
  if (s.find(':') != std::string_view::npos) return parse_v6(s);
  return parse_v4(s);
}

std::string IpAddress::to_string() const {
  if (is_v4()) {
    return util::fmt("{}.{}.{}.{}", +bytes_[0], +bytes_[1], +bytes_[2],
                     +bytes_[3]);
  }
  // Canonical-ish v6: compress the longest run of zero groups.
  std::array<uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<uint16_t>(bytes_[2 * i] << 8 | bytes_[2 * i + 1]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  std::string out;
  if (best_len < 2) best_start = -1;
  for (int i = 0; i < 8; ++i) {
    if (best_start >= 0 && i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    out += util::fmt("{:x}", groups[i]);
  }
  if (out.empty()) out = "::";
  return out;
}

bool IpAddress::is_private() const {
  if (is_v4()) {
    const uint32_t v = v4_value();
    return (v >> 24) == 10 ||                      // 10.0.0.0/8
           (v >> 20) == 0xac1 ||                   // 172.16.0.0/12
           (v >> 16) == 0xc0a8;                    // 192.168.0.0/16
  }
  return (bytes_[0] & 0xfe) == 0xfc;               // fc00::/7
}

}  // namespace nnn::net
