#include "net/flow_key.h"

#include <cstring>

#include "util/fmt.h"

namespace nnn::net {

uint64_t stable_hash(const IpAddress& ip) {
  // Two fixed-width lane loads over the 16-byte storage (v4 uses the
  // first 4 bytes, rest zero) mixed with the family tag, so v4 x and
  // the v4-mapped v6 form of x stay distinct.
  const auto& b = ip.bytes();
  uint64_t lo = 0;
  uint64_t hi = 0;
  std::memcpy(&lo, b.data(), 8);
  std::memcpy(&hi, b.data() + 8, 8);
  return util::mix64(lo ^ util::mix64(hi ^ static_cast<uint64_t>(ip.family())));
}

uint64_t FlowKey::steer_key() const {
  if (is_cid()) {
    // The CID is already a uniformly drawn 64-bit name; steer_shard
    // applies its own mix64 on top.
    return cid_;
  }
  const uint64_t ports =
      (static_cast<uint64_t>(tuple_.src_port) << 32) |
      (static_cast<uint64_t>(tuple_.dst_port) << 16) |
      static_cast<uint64_t>(tuple_.proto);
  return util::mix64(stable_hash(tuple_.src_ip) ^
                     util::mix64(stable_hash(tuple_.dst_ip) ^ ports));
}

std::string FlowKey::to_string() const {
  if (is_cid()) return util::fmt("cid:{:x}", cid_);
  return tuple_.to_string();
}

}  // namespace nnn::net
