// The in-memory packet model.
//
// Every dataplane element (cookie middlebox, DPI engine, OOB switch,
// DiffServ marker, simulator links, NAT) operates on this struct. A
// separate wire codec (net/wire.h) serializes it to real IPv4/IPv6 +
// TCP/UDP bytes; the structured form keeps per-packet processing cheap
// and lets tests inspect fields directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/five_tuple.h"
#include "net/flow_key.h"
#include "util/bytes.h"

namespace nnn::net {

/// IPv6 hop-by-hop option type we allocate for network cookies (from
/// the experimental/private range, 0x1E-prefixed "RFC 4727 style").
inline constexpr uint8_t kCookieOptionType = 0x1e;

/// Magic prefix of the UDP payload shim carrier (SPUD/QUIC-style).
/// Wire format, so it lives with the packet model; cookies::transport
/// aliases it.
inline constexpr uint8_t kCookieShimMagic[4] = {'N', 'C', 'K', 'U'};

/// Where a packet carries its cookie blob. Order is the extraction
/// precedence: fixed-offset binary carriers before payload parses.
/// The QUIC transport parameter sits with the binary carriers — it is
/// a direct header-model field like l3/l4, checked before any payload
/// inspection (a QUIC payload is opaque ciphertext; nothing past the
/// header is parseable anyway).
enum class CookieCarrier : uint8_t {
  kIpv6Option = 0,      // Packet::l3_cookie
  kTcpOption,           // Packet::l4_cookie (EDO long option)
  kQuicTransportParam,  // Packet::quic->tp_cookie (long header)
  kUdpShim,             // magic-prefixed payload header
  kTlsExtension,        // network-cookie extension in the ClientHello
  kHttpHeader,          // base64 X-Network-Cookie header
};

/// The raw (binary, already de-base64'd for HTTP) cookie-stack bytes
/// found on a packet, plus which carrier they rode in on. `bytes()`
/// views into the packet for the in-place carriers and into `storage`
/// for the ones that must decode (TLS copies the extension body, HTTP
/// base64-decodes the header) — either way it is only valid while the
/// packet is.
struct RawCookie {
  CookieCarrier carrier = CookieCarrier::kIpv6Option;
  util::BytesView view;
  util::Bytes storage;  // backs `view` for kTlsExtension/kHttpHeader

  util::BytesView bytes() const { return view; }
};

/// QUIC-shaped header model (PR 10). Structured form only — like
/// wire_size, this models what the head-end observes without
/// materializing real QUIC framing. Long headers model the handshake
/// flight (both connection IDs visible, plus the cookie transport
/// parameter — readable by an on-path observer exactly like a real
/// Initial, whose protection keys derive from the client's DCID);
/// short headers expose only the destination CID, everything after it
/// opaque ciphertext.
///
/// `prev_cid` is the cooperative rotation marker: the first short-
/// header packet using a freshly issued CID names the CID it retires,
/// the user-driven analog of QUIC-LB's routable CIDs (a NEW_CONNECTION
/// _ID frame is encrypted, so a middlebox the user WANTS to recognize
/// the flow must be handed the linkage some other way; see DESIGN
/// §5i). DPI gets the same bytes and still fails: linking CIDs does
/// not name the application when every payload is ciphertext.
struct QuicHeader {
  bool long_header = false;
  /// Destination connection ID — what the middlebox keys flow state
  /// on (via quic::CidAliasTable resolution to the canonical CID).
  uint64_t dcid = 0;
  /// Source connection ID; long header only (zero otherwise).
  uint64_t scid = 0;
  /// CID this packet's dcid replaces (first packet after a rotation).
  std::optional<uint64_t> prev_cid;
  /// Encoded cookie stack carried as a handshake transport parameter;
  /// empty = none. Long header only.
  util::Bytes tp_cookie;
};

struct Packet {
  FiveTuple tuple;

  // --- IP header fields ---
  /// DSCP codepoint (6 bits). The DiffServ baseline and the
  /// cookie->DSCP remark mode write this.
  uint8_t dscp = 0;
  uint8_t ttl = 64;
  /// When true the packet serializes as IPv6 and may carry the cookie
  /// hop-by-hop option.
  bool ipv6 = false;

  // --- TCP-ish fields (ignored for UDP) ---
  uint32_t seq = 0;
  uint32_t ack_seq = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  /// Cookie carried as an IPv6 hop-by-hop option, if any.
  /// (HTTP-header and TLS-extension cookies live inside `payload`.)
  std::optional<util::Bytes> l3_cookie;

  /// Cookie carried as a TCP option, if any. A 53-byte cookie exceeds
  /// the classic 40-byte option space, which is exactly why the paper
  /// cites the TCP Extended Data Offset draft ("TCP long options");
  /// the wire codec emits an EDO option extending the header.
  std::optional<util::Bytes> l4_cookie;

  /// QUIC header model when this packet is QUIC-shaped (UDP carrying
  /// an encrypted transport); nullopt for classic packets.
  std::optional<QuicHeader> quic;

  /// Application payload bytes (HTTP text, TLS records, or opaque).
  util::Bytes payload;

  /// Total on-wire size in bytes. Workload generators set this to model
  /// realistic packet sizes without materializing full payloads; when 0,
  /// size() falls back to header estimate + payload.size().
  uint32_t wire_size = 0;

  /// Effective size used by links, counters, and throughput math.
  uint32_t size() const;

  bool is_tcp() const { return tuple.proto == L4Proto::kTcp; }
  bool is_udp() const { return tuple.proto == L4Proto::kUdp; }
  bool is_quic() const { return quic.has_value(); }

  /// The ONE place that knows what a packet's flow is named by: the
  /// destination connection ID for QUIC-shaped packets (the stable
  /// name that survives NAT rebinds and migration), the classic
  /// 5-tuple for everything else. Every structure that keys per-flow
  /// state — dataplane::FlowTable, the DPI flow cache, OOB matching,
  /// the steering fallback in Dataplane::ingest — derives its key
  /// here instead of reaching for `tuple` by hand. The CID key is
  /// returned UNRESOLVED (as carried); alias resolution to the
  /// connection's canonical CID is the flow table's / alias table's
  /// job, because only they know which rotations have been announced.
  FlowKey flow_key() const {
    if (quic) return FlowKey::from_cid(quic->dcid);
    return FlowKey::from_tuple(tuple);
  }

  /// The ONE place that knows where cookies hide in a packet. Checks
  /// every carrier, cheapest first, and returns the raw encoded
  /// cookie-stack bytes. Carrier precedence (normative; the test
  /// matrix in tests/test_transport.cpp pins it):
  ///   1. kIpv6Option          — direct field (l3_cookie)
  ///   2. kTcpOption           — direct field (l4_cookie, EDO)
  ///   3. kQuicTransportParam  — direct field (quic->tp_cookie,
  ///                             long-header handshake only)
  ///   4. kUdpShim             — fixed-offset magic-prefixed payload
  ///   5. kTlsExtension        — TLS ClientHello parse
  ///   6. kHttpHeader          — HTTP parse + base64 decode
  /// Direct fields before fixed-offset scans before payload parses; a
  /// QUIC packet's payload is opaque ciphertext, so carriers 4-6 are
  /// never consulted for it in practice. Middlebox search, the
  /// hardware pre-filter, the RX demux cookie-id peek, and
  /// cookies::extract all route through this accessor; before it
  /// existed each re-implemented the precedence order (and sharding
  /// approximated it, wrongly treating any payload as cookie-bearing).
  std::optional<RawCookie> cookie_bytes() const;

  std::string summary() const;
};

/// Header size estimate used when wire_size is unset.
uint32_t header_overhead(const Packet& p);

}  // namespace nnn::net
