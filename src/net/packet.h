// The in-memory packet model.
//
// Every dataplane element (cookie middlebox, DPI engine, OOB switch,
// DiffServ marker, simulator links, NAT) operates on this struct. A
// separate wire codec (net/wire.h) serializes it to real IPv4/IPv6 +
// TCP/UDP bytes; the structured form keeps per-packet processing cheap
// and lets tests inspect fields directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/five_tuple.h"
#include "util/bytes.h"

namespace nnn::net {

/// IPv6 hop-by-hop option type we allocate for network cookies (from
/// the experimental/private range, 0x1E-prefixed "RFC 4727 style").
inline constexpr uint8_t kCookieOptionType = 0x1e;

struct Packet {
  FiveTuple tuple;

  // --- IP header fields ---
  /// DSCP codepoint (6 bits). The DiffServ baseline and the
  /// cookie->DSCP remark mode write this.
  uint8_t dscp = 0;
  uint8_t ttl = 64;
  /// When true the packet serializes as IPv6 and may carry the cookie
  /// hop-by-hop option.
  bool ipv6 = false;

  // --- TCP-ish fields (ignored for UDP) ---
  uint32_t seq = 0;
  uint32_t ack_seq = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  /// Cookie carried as an IPv6 hop-by-hop option, if any.
  /// (HTTP-header and TLS-extension cookies live inside `payload`.)
  std::optional<util::Bytes> l3_cookie;

  /// Cookie carried as a TCP option, if any. A 53-byte cookie exceeds
  /// the classic 40-byte option space, which is exactly why the paper
  /// cites the TCP Extended Data Offset draft ("TCP long options");
  /// the wire codec emits an EDO option extending the header.
  std::optional<util::Bytes> l4_cookie;

  /// Application payload bytes (HTTP text, TLS records, or opaque).
  util::Bytes payload;

  /// Total on-wire size in bytes. Workload generators set this to model
  /// realistic packet sizes without materializing full payloads; when 0,
  /// size() falls back to header estimate + payload.size().
  uint32_t wire_size = 0;

  /// Effective size used by links, counters, and throughput math.
  uint32_t size() const;

  bool is_tcp() const { return tuple.proto == L4Proto::kTcp; }
  bool is_udp() const { return tuple.proto == L4Proto::kUdp; }

  std::string summary() const;
};

/// Header size estimate used when wire_size is unset.
uint32_t header_overhead(const Packet& p);

}  // namespace nnn::net
