// The in-memory packet model.
//
// Every dataplane element (cookie middlebox, DPI engine, OOB switch,
// DiffServ marker, simulator links, NAT) operates on this struct. A
// separate wire codec (net/wire.h) serializes it to real IPv4/IPv6 +
// TCP/UDP bytes; the structured form keeps per-packet processing cheap
// and lets tests inspect fields directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/five_tuple.h"
#include "util/bytes.h"

namespace nnn::net {

/// IPv6 hop-by-hop option type we allocate for network cookies (from
/// the experimental/private range, 0x1E-prefixed "RFC 4727 style").
inline constexpr uint8_t kCookieOptionType = 0x1e;

/// Magic prefix of the UDP payload shim carrier (SPUD/QUIC-style).
/// Wire format, so it lives with the packet model; cookies::transport
/// aliases it.
inline constexpr uint8_t kCookieShimMagic[4] = {'N', 'C', 'K', 'U'};

/// Where a packet carries its cookie blob. Order is the extraction
/// precedence: fixed-offset binary carriers before payload parses.
enum class CookieCarrier : uint8_t {
  kIpv6Option = 0,  // Packet::l3_cookie
  kTcpOption,       // Packet::l4_cookie (EDO long option)
  kUdpShim,         // magic-prefixed payload header
  kTlsExtension,    // network-cookie extension in the ClientHello
  kHttpHeader,      // base64 X-Network-Cookie header
};

/// The raw (binary, already de-base64'd for HTTP) cookie-stack bytes
/// found on a packet, plus which carrier they rode in on. `bytes()`
/// views into the packet for the in-place carriers and into `storage`
/// for the ones that must decode (TLS copies the extension body, HTTP
/// base64-decodes the header) — either way it is only valid while the
/// packet is.
struct RawCookie {
  CookieCarrier carrier = CookieCarrier::kIpv6Option;
  util::BytesView view;
  util::Bytes storage;  // backs `view` for kTlsExtension/kHttpHeader

  util::BytesView bytes() const { return view; }
};

struct Packet {
  FiveTuple tuple;

  // --- IP header fields ---
  /// DSCP codepoint (6 bits). The DiffServ baseline and the
  /// cookie->DSCP remark mode write this.
  uint8_t dscp = 0;
  uint8_t ttl = 64;
  /// When true the packet serializes as IPv6 and may carry the cookie
  /// hop-by-hop option.
  bool ipv6 = false;

  // --- TCP-ish fields (ignored for UDP) ---
  uint32_t seq = 0;
  uint32_t ack_seq = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  /// Cookie carried as an IPv6 hop-by-hop option, if any.
  /// (HTTP-header and TLS-extension cookies live inside `payload`.)
  std::optional<util::Bytes> l3_cookie;

  /// Cookie carried as a TCP option, if any. A 53-byte cookie exceeds
  /// the classic 40-byte option space, which is exactly why the paper
  /// cites the TCP Extended Data Offset draft ("TCP long options");
  /// the wire codec emits an EDO option extending the header.
  std::optional<util::Bytes> l4_cookie;

  /// Application payload bytes (HTTP text, TLS records, or opaque).
  util::Bytes payload;

  /// Total on-wire size in bytes. Workload generators set this to model
  /// realistic packet sizes without materializing full payloads; when 0,
  /// size() falls back to header estimate + payload.size().
  uint32_t wire_size = 0;

  /// Effective size used by links, counters, and throughput math.
  uint32_t size() const;

  bool is_tcp() const { return tuple.proto == L4Proto::kTcp; }
  bool is_udp() const { return tuple.proto == L4Proto::kUdp; }

  /// The ONE place that knows where cookies hide in a packet. Checks
  /// every carrier, cheapest first — IPv6 hop-by-hop option, TCP EDO
  /// option, UDP shim (fixed-offset binary), then the TLS ClientHello
  /// parse, then the HTTP header parse + base64 — and returns the raw
  /// encoded cookie-stack bytes. Middlebox search, the hardware
  /// pre-filter, the RX demux cookie-id peek, and cookies::extract all
  /// route through this accessor; before it existed each re-implemented
  /// the precedence order (and sharding approximated it, wrongly
  /// treating any payload as cookie-bearing).
  std::optional<RawCookie> cookie_bytes() const;

  std::string summary() const;
};

/// Header size estimate used when wire_size is unset.
uint32_t header_overhead(const Packet& p);

}  // namespace nnn::net
