// Flow identification.
//
// A flow is the classic 5-tuple. The paper's cookie granularity
// attribute defaults to "the flow (5-tuple) that a packet belongs to"
// (§4.3), the dataplane flow table keys on it, and the NAT rewrites it
// (which is exactly what breaks the OOB baseline in Fig. 6c).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.h"

namespace nnn::net {

enum class L4Proto : uint8_t { kTcp = 6, kUdp = 17 };

std::string to_string(L4Proto p);

struct FiveTuple {
  IpAddress src_ip;
  IpAddress dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  L4Proto proto = L4Proto::kTcp;

  /// The same flow seen from the opposite direction.
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  std::string to_string() const;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

/// Direction-insensitive flow key: a flow and its reverse map to the
/// same key, so one table entry covers both directions (the paper's
/// daemon adds "this and the reverse flow to the fast lane").
struct BidiFlowKey {
  FiveTuple canonical;

  explicit BidiFlowKey(const FiveTuple& t);

  friend auto operator<=>(const BidiFlowKey&, const BidiFlowKey&) = default;
};

}  // namespace nnn::net

template <>
struct std::hash<nnn::net::FiveTuple> {
  size_t operator()(const nnn::net::FiveTuple& t) const noexcept {
    const std::hash<nnn::net::IpAddress> ip_hash;
    size_t h = ip_hash(t.src_ip);
    h = h * 31 + ip_hash(t.dst_ip);
    h = h * 31 + t.src_port;
    h = h * 31 + t.dst_port;
    h = h * 31 + static_cast<size_t>(t.proto);
    return h;
  }
};

template <>
struct std::hash<nnn::net::BidiFlowKey> {
  size_t operator()(const nnn::net::BidiFlowKey& k) const noexcept {
    return std::hash<nnn::net::FiveTuple>()(k.canonical);
  }
};
