#include "net/http.h"

#include <charconv>
#include "util/fmt.h"

#include "util/strings.h"

namespace nnn::net::http {

namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Parse "Name: value" lines until the blank line; returns the body
/// offset or npos on malformed input.
size_t parse_headers(std::string_view text, size_t pos,
                     std::vector<Header>& out) {
  while (true) {
    const size_t eol = text.find(kCrlf, pos);
    if (eol == std::string_view::npos) return std::string_view::npos;
    if (eol == pos) return pos + 2;  // blank line: end of headers
    const std::string_view line = text.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return std::string_view::npos;
    }
    out.push_back(Header{std::string(util::trim(line.substr(0, colon))),
                         std::string(util::trim(line.substr(colon + 1)))});
    pos = eol + 2;
  }
}

std::optional<std::string> find_header(const std::vector<Header>& headers,
                                       std::string_view name) {
  for (const auto& h : headers) {
    if (util::iequals(h.name, name)) return h.value;
  }
  return std::nullopt;
}

void serialize_headers(std::string& out, const std::vector<Header>& headers,
                       size_t body_size, bool has_body) {
  bool wrote_content_length = false;
  for (const auto& h : headers) {
    if (util::iequals(h.name, "Content-Length")) wrote_content_length = true;
    out += h.name;
    out += ": ";
    out += h.value;
    out += kCrlf;
  }
  if (has_body && !wrote_content_length) {
    out += util::fmt("Content-Length: {}\r\n", body_size);
  }
  out += kCrlf;
}

}  // namespace

Request::Request(std::string method, std::string target, std::string host)
    : method_(std::move(method)), target_(std::move(target)) {
  add_header("Host", std::move(host));
}

std::string Request::host() const {
  return header("Host").value_or("");
}

std::optional<std::string> Request::header(std::string_view name) const {
  return find_header(headers_, name);
}

void Request::add_header(std::string name, std::string value) {
  headers_.push_back(Header{std::move(name), std::move(value)});
}

size_t Request::remove_header(std::string_view name) {
  const size_t before = headers_.size();
  std::erase_if(headers_, [&](const Header& h) {
    return util::iequals(h.name, name);
  });
  return before - headers_.size();
}

void Request::set_body(std::string body) {
  body_ = std::move(body);
}

std::string Request::serialize() const {
  std::string out = util::fmt("{} {} HTTP/1.1\r\n", method_, target_);
  serialize_headers(out, headers_, body_.size(), !body_.empty());
  out += body_;
  return out;
}

std::optional<Request> Request::parse(std::string_view text) {
  const size_t eol = text.find(kCrlf);
  if (eol == std::string_view::npos) return std::nullopt;
  const auto parts = util::split(text.substr(0, eol), ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
      !util::starts_with(parts[2], "HTTP/")) {
    return std::nullopt;
  }
  Request req;
  req.method_ = parts[0];
  req.target_ = parts[1];
  const size_t body_pos = parse_headers(text, eol + 2, req.headers_);
  if (body_pos == std::string_view::npos) return std::nullopt;
  if (const auto cl = req.header("Content-Length")) {
    size_t len = 0;
    const auto [p, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), len);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      return std::nullopt;
    }
    if (text.size() - body_pos < len) return std::nullopt;  // incomplete
    req.body_ = std::string(text.substr(body_pos, len));
  } else {
    req.body_ = std::string(text.substr(body_pos));
  }
  return req;
}

Request::ParsePrefix Request::parse_prefix(std::string_view text) {
  ParsePrefix out;
  const size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // No blank line yet. A first line that already cannot be a request
    // line, or headers past the cap, will never become parseable.
    const size_t eol = text.find(kCrlf);
    if (eol != std::string_view::npos) {
      const auto parts = util::split(text.substr(0, eol), ' ');
      if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
          !util::starts_with(parts[2], "HTTP/")) {
        out.status = ParseStatus::kBad;
        return out;
      }
    }
    out.status =
        text.size() > kMaxHeaderBytes ? ParseStatus::kBad
                                      : ParseStatus::kIncomplete;
    return out;
  }
  if (head_end > kMaxHeaderBytes) {
    out.status = ParseStatus::kBad;
    return out;
  }
  const size_t eol = text.find(kCrlf);
  const auto parts = util::split(text.substr(0, eol), ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
      !util::starts_with(parts[2], "HTTP/")) {
    out.status = ParseStatus::kBad;
    return out;
  }
  Request req;
  req.method_ = parts[0];
  req.target_ = parts[1];
  const size_t body_pos = parse_headers(text, eol + 2, req.headers_);
  if (body_pos == std::string_view::npos) {
    out.status = ParseStatus::kBad;
    return out;
  }
  size_t body_len = 0;
  if (const auto cl = req.header("Content-Length")) {
    const auto [p, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), body_len);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      out.status = ParseStatus::kBad;
      return out;
    }
    if (text.size() - body_pos < body_len) {
      out.status = ParseStatus::kIncomplete;
      return out;
    }
    req.body_ = std::string(text.substr(body_pos, body_len));
  }
  out.status = ParseStatus::kComplete;
  out.request = std::move(req);
  out.consumed = body_pos + body_len;
  return out;
}

std::optional<std::string> Response::header(std::string_view name) const {
  return find_header(headers, name);
}

void Response::add_header(std::string name, std::string value) {
  headers.push_back(Header{std::move(name), std::move(value)});
}

std::string Response::serialize() const {
  std::string out = util::fmt("HTTP/1.1 {} {}\r\n", status, reason);
  // Responses always carry Content-Length, even "0": a keep-alive
  // client framing the stream must know the body ended without waiting
  // for a close that never comes.
  serialize_headers(out, headers, body.size(), /*has_body=*/true);
  out += body;
  return out;
}

std::optional<Response> Response::parse(std::string_view text) {
  const size_t eol = text.find(kCrlf);
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = text.substr(0, eol);
  if (!util::starts_with(line, "HTTP/")) return std::nullopt;
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const size_t sp2 = line.find(' ', sp1 + 1);
  Response resp;
  const std::string_view code = line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? line.size() : sp2 - sp1 - 1);
  const auto [p, ec] =
      std::from_chars(code.data(), code.data() + code.size(), resp.status);
  if (ec != std::errc() || p != code.data() + code.size()) {
    return std::nullopt;
  }
  resp.reason = sp2 == std::string_view::npos
                    ? ""
                    : std::string(line.substr(sp2 + 1));
  const size_t body_pos = parse_headers(text, eol + 2, resp.headers);
  if (body_pos == std::string_view::npos) return std::nullopt;
  resp.body = std::string(text.substr(body_pos));
  return resp;
}

}  // namespace nnn::net::http
