// TLS ClientHello codec with extensions.
//
// For HTTPS the Boost agent carries the cookie "as a custom TLS
// extension (in TLS ClientHello messages)" (§5.1 — the authors patched
// BoringSSL for this). We implement the ClientHello wire format (RFC
// 5246 §7.4.1.2) with the extension block: enough for a middlebox to
// find either the SNI (what DPI matches on) or the network-cookie
// extension (what the cookie middlebox matches on) in the first bytes
// of an HTTPS flow, without implementing the rest of TLS.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace nnn::net::tls {

/// IANA extension numbers we use.
inline constexpr uint16_t kExtServerName = 0x0000;
/// Private-use extension number for network cookies (0xff01 is in the
/// unassigned/private range used by experimental extensions).
inline constexpr uint16_t kExtNetworkCookie = 0xff01;

struct Extension {
  uint16_t type = 0;
  util::Bytes data;
};

struct ClientHello {
  uint16_t legacy_version = 0x0303;  // TLS 1.2
  std::array<uint8_t, 32> random{};
  util::Bytes session_id;
  std::vector<uint16_t> cipher_suites{0x1301, 0x1302, 0xc02f};
  std::vector<Extension> extensions;

  /// SNI convenience accessors.
  std::optional<std::string> server_name() const;
  void set_server_name(std::string_view host);

  /// Network-cookie extension convenience accessors.
  std::optional<util::Bytes> cookie() const;
  void set_cookie(util::BytesView cookie);
  /// Remove the cookie extension; true if one was present.
  bool clear_cookie();

  /// Serialize as a full TLS record (ContentType handshake) containing
  /// the ClientHello handshake message.
  util::Bytes serialize_record() const;

  /// Parse a TLS record expected to contain a ClientHello.
  /// nullopt if it is not a well-formed ClientHello record.
  static std::optional<ClientHello> parse_record(util::BytesView record);
};

}  // namespace nnn::net::tls
