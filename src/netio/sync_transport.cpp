#include "netio/sync_transport.h"

#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <utility>

namespace nnn::netio {

TcpSyncTransport::TcpSyncTransport(EventLoop& loop, Config config)
    : loop_(loop), config_(std::move(config)) {
  loop_.post([this, alive = alive_] {
    if (*alive) start_connect();
  });
}

TcpSyncTransport::~TcpSyncTransport() {
  *alive_ = false;
  if (fd_.valid()) loop_.del_fd(fd_.get());
}

controlplane::SyncClient::SendFn TcpSyncTransport::send_fn() {
  return [this, alive = alive_](util::Bytes datagram) {
    loop_.post([this, alive, d = std::move(datagram)]() mutable {
      if (*alive) write_datagram(std::move(d));
    });
  };
}

size_t TcpSyncTransport::poll(
    const std::function<void(util::BytesView)>& fn) {
  std::deque<util::Bytes> batch;
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    batch.swap(inbound_);
  }
  for (const util::Bytes& datagram : batch) {
    fn(util::BytesView(datagram));
  }
  return batch.size();
}

void TcpSyncTransport::start_connect() {
  auto fd = connect_tcp(config_.host, config_.port);
  if (!fd) {
    schedule_reconnect();
    return;
  }
  fd_ = std::move(*fd);
  connecting_ = true;
  loop_.add_fd(fd_.get(), EventLoop::kReadable | EventLoop::kWritable,
               [this](uint32_t events) { on_events(events); });
}

void TcpSyncTransport::on_events(uint32_t events) {
  if (!fd_.valid()) return;
  if (connecting_) {
    // First writable/error edge resolves the non-blocking connect.
    const Error result = connect_result(fd_.get());
    if (result.code != ErrorCode::kOk) {
      teardown(/*schedule_retry=*/true);
      return;
    }
    connecting_ = false;
    connected_.store(true, std::memory_order_release);
  }
  if (events & EventLoop::kError) {
    teardown(true);
    return;
  }
  if (events & EventLoop::kWritable) flush();
  if (fd_.valid() && (events & EventLoop::kReadable)) handle_readable();
}

void TcpSyncTransport::handle_readable() {
  std::array<uint8_t, 16384> chunk;
  for (;;) {
    const ssize_t n =
        ::recv(fd_.get(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      if (assembler_.feed(util::BytesView(chunk.data(),
                                          static_cast<size_t>(n)))) {
        // Poisoned stream (bad envelope from the server): reconnect
        // with a fresh assembler rather than guess at resync.
        teardown(true);
        return;
      }
      while (auto frame = assembler_.next()) {
        // Re-frame: on_datagram expects the same envelope-included
        // bytes a UDP datagram would carry.
        util::Bytes datagram;
        net::append_sync_frame(datagram, frame->type,
                               util::BytesView(frame->payload));
        std::lock_guard<std::mutex> lock(inbound_mutex_);
        inbound_.push_back(std::move(datagram));
        if (inbound_.size() > config_.max_inbound_queue) {
          inbound_.pop_front();
        }
      }
      continue;
    }
    if (n == 0) {
      teardown(true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    teardown(true);
    return;
  }
}

void TcpSyncTransport::write_datagram(util::Bytes datagram) {
  if (!connected() || !fd_.valid()) return;  // dropped; client times out
  util::append(outbuf_, util::BytesView(datagram));
  flush();
}

void TcpSyncTransport::flush() {
  while (fd_.valid() && out_sent_ < outbuf_.size()) {
    const ssize_t n = ::send(fd_.get(), outbuf_.data() + out_sent_,
                             outbuf_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      out_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    teardown(true);
    return;
  }
  if (out_sent_ > 0 && out_sent_ == outbuf_.size()) {
    outbuf_.clear();
    out_sent_ = 0;
  }
}

void TcpSyncTransport::teardown(bool schedule_retry) {
  if (fd_.valid()) {
    loop_.del_fd(fd_.get());
    fd_.reset();
  }
  const bool was_connected =
      connected_.exchange(false, std::memory_order_acq_rel);
  connecting_ = false;
  assembler_ = net::FrameAssembler{};
  outbuf_.clear();
  out_sent_ = 0;
  if (was_connected) reconnects_.fetch_add(1, std::memory_order_relaxed);
  if (schedule_retry) schedule_reconnect();
}

void TcpSyncTransport::schedule_reconnect() {
  if (reconnect_armed_) return;
  reconnect_armed_ = true;
  loop_.add_timer(
      loop_.now() + config_.reconnect_interval,
      [this, alive = alive_](util::Timestamp) -> util::Timestamp {
        if (!*alive) return 0;
        reconnect_armed_ = false;
        if (!fd_.valid()) start_connect();
        return 0;
      });
}

}  // namespace nnn::netio
