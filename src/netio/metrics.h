// nnn_netio_* metric family, shared by listeners, connections, and
// endpoints of one server instance.
//
// All writers live on the server's loop thread, so every instrument
// uses the single-writer fast path (relaxed load+store); exporters and
// tests read concurrently through the registry, which is safe for
// monotonic cells. Families:
//
//   nnn_netio_connections{state=...}        gauge, by ConnState
//   nnn_netio_accepts_total                 connections admitted
//   nnn_netio_accept_shed_total             accepted-then-closed (rate
//                                           cap / max_connections)
//   nnn_netio_timeouts_total{kind=...}      idle | handshake
//   nnn_netio_resets_total                  ECONNRESET or injected
//   nnn_netio_closes_total                  every close, any reason
//   nnn_netio_backpressure_closes_total     write-queue / read-buffer
//                                           cap exceeded (fed to the
//                                           shed accounting)
//   nnn_netio_frames_total                  sync datagrams served
//   nnn_netio_http_requests_total           http requests served
//   nnn_netio_bytes_{read,written}_total
//   nnn_netio_request_micros                request latency histogram
//                                           (receive-complete -> reply
//                                           queued)
#pragma once

#include <string>

#include "netio/conn_state.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"

namespace nnn::netio {

class NetioMetrics {
 public:
  /// Registers with the global registry under {server=`instance`};
  /// pinned (the collector holds `this`).
  explicit NetioMetrics(std::string instance,
                        telemetry::Registry& registry =
                            telemetry::Registry::global());
  NetioMetrics(const NetioMetrics&) = delete;
  NetioMetrics& operator=(const NetioMetrics&) = delete;

  // Loop-thread writers.
  void conn_state_enter(ConnState s) { connections_[index(s)].add(1); }
  void conn_state_leave(ConnState s) { connections_[index(s)].sub(1); }

  telemetry::Counter accepts;
  telemetry::Counter accept_shed;
  telemetry::Counter idle_timeouts;
  telemetry::Counter handshake_timeouts;
  telemetry::Counter resets;
  telemetry::Counter closes;
  telemetry::Counter backpressure_closes;
  telemetry::Counter frames;
  telemetry::Counter http_requests;
  telemetry::Counter bytes_read;
  telemetry::Counter bytes_written;
  telemetry::Histogram request_micros;

  int64_t connections(ConnState s) const {
    return connections_[index(s)].value();
  }

 private:
  static constexpr size_t index(ConnState s) {
    return static_cast<size_t>(s);
  }
  void collect(telemetry::SampleBuilder& builder) const;

  std::array<telemetry::Gauge, kConnStateCount> connections_{};
  std::string instance_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::netio
