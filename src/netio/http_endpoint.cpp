#include "netio/http_endpoint.h"

#include <string_view>
#include <utility>

#include "net/http.h"
#include "util/strings.h"

namespace nnn::netio {

namespace {

std::string_view reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return status >= 500 ? "Internal Server Error" : "OK";
  }
}

}  // namespace

Expected<size_t> HttpEndpoint::on_data(Connection& conn,
                                       util::BytesView buffered) {
  const std::string_view text(reinterpret_cast<const char*>(buffered.data()),
                              buffered.size());
  auto parsed = net::http::Request::parse_prefix(text);
  using ParseStatus = net::http::Request::ParseStatus;
  if (parsed.status == ParseStatus::kIncomplete) return 0;
  if (parsed.status == ParseStatus::kBad) {
    net::http::Response bad;
    bad.status = 400;
    bad.reason = "Bad Request";
    bad.add_header("Content-Type", "application/json");
    bad.add_header("Connection", "close");
    bad.body = R"({"ok":false,"error":"bad-request"})";
    const std::string wire = bad.serialize();
    conn.send(util::BytesView(
        reinterpret_cast<const uint8_t*>(wire.data()), wire.size()));
    conn.drain();
    return buffered.size();
  }
  const util::Timestamp start = conn.loop().now();
  conn.mark_open();
  conn.metrics().http_requests.inc();
  const auto api_response = api_.handle_http(parsed.request.method(),
                                             parsed.request.target(),
                                             parsed.request.body());
  net::http::Response response;
  response.status = api_response.status;
  response.reason = std::string(reason_for(api_response.status));
  response.add_header("Content-Type", api_response.content_type.empty()
                                          ? "application/json"
                                          : api_response.content_type);
  const bool close_after =
      util::iequals(parsed.request.header("Connection").value_or(""),
                    "close");
  response.add_header("Connection", close_after ? "close" : "keep-alive");
  response.body = api_response.body;
  const std::string wire = response.serialize();
  conn.send(util::BytesView(reinterpret_cast<const uint8_t*>(wire.data()),
                            wire.size()));
  conn.metrics().request_micros.record(
      static_cast<uint64_t>(conn.loop().now() - start));
  if (close_after) conn.drain();
  return parsed.consumed;
}

}  // namespace nnn::netio
