#include "netio/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nnn::netio {

namespace {

Unexpected<Error> netio_error(ErrorCode code, std::string_view detail) {
  const Error error{ErrorDomain::kNetio, code, detail};
  count_error(error);
  return unexpected(error);
}

bool make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<Fd> listen_tcp(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return netio_error(ErrorCode::kUnavailable, "socket");
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return netio_error(ErrorCode::kUnavailable, "bind");
  }
  if (::listen(fd.get(), backlog) != 0) {
    return netio_error(ErrorCode::kUnavailable, "listen");
  }
  return fd;
}

Expected<Fd> connect_tcp(const std::string& host, uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return netio_error(ErrorCode::kUnavailable, "socket");
  }
  if (!make_nonblocking(fd.get())) {
    return netio_error(ErrorCode::kUnavailable, "fcntl");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return netio_error(ErrorCode::kMalformed, "host address");
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return netio_error(ErrorCode::kUnavailable, "connect");
  }
  set_nodelay(fd.get());
  return fd;
}

Error connect_result(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    return Error{ErrorDomain::kNetio, ErrorCode::kUnavailable, "connect"};
  }
  return Error{};
}

uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

uint64_t raise_fd_limit(uint64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? want
            : (want < lim.rlim_max ? want : lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<uint64_t>(lim.rlim_cur);
}

}  // namespace nnn::netio
