// Accepting socket on the event loop, with admission control.
//
// Two shedding mechanisms run at the accept edge, before any
// per-connection state exists — the cheapest possible place to refuse
// load:
//
//   * a token bucket caps the accept RATE (accept_rate/s, burst-sized
//     bucket). Beyond it, connections are accepted and immediately
//     closed: the peer gets a crisp RST-ish signal to back off rather
//     than a SYN left to time out, the kernel backlog stays clear, and
//     the shed is counted (nnn_netio_accept_shed_total) so the
//     breaker/shed accounting reconciles exactly.
//   * the owner's admit callback may refuse (connection ceiling); same
//     accept-close-count treatment.
//
// The injected kAcceptStall fault models the opposite failure — a
// wedged accept thread. While active the listener stops calling
// accept() entirely (SYNs queue in the kernel backlog, nothing is
// counted — nothing happened from userspace's view) and a retry timer
// polls the schedule so accepting resumes promptly after the window,
// which is what the thundering-herd bench measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fault/injector.h"
#include "netio/event_loop.h"
#include "netio/metrics.h"
#include "netio/socket.h"
#include "util/expected.h"

namespace nnn::netio {

class Listener {
 public:
  struct Config {
    /// 0 = kernel-assigned ephemeral; read back with port().
    uint16_t port = 0;
    int backlog = 512;
    /// Accepts per second the bucket refills at; 0 = unlimited.
    double accept_rate = 0;
    /// Bucket capacity (burst headroom).
    double accept_burst = 128;
  };

  /// The admit decision: take the fd (return true) or refuse it
  /// (return false — the fd closes via RAII and the shed is counted).
  using OnAccept = std::function<bool(Fd)>;

  /// Binds and listens immediately; Expected so a port in use is a
  /// typed error, not a throw. `injector` may be null.
  static Expected<std::unique_ptr<Listener>> create(
      EventLoop& loop, NetioMetrics& metrics, Config config,
      const fault::Injector* injector, OnAccept on_accept);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  uint16_t port() const { return port_; }
  /// Drop a stuck accept-stall retry timer and unregister; accepts
  /// stop permanently (server shutdown).
  void stop();

 private:
  Listener(EventLoop& loop, NetioMetrics& metrics, Config config,
           const fault::Injector* injector, OnAccept on_accept, Fd fd);

  /// accept4 to EAGAIN, shedding as configured.
  void accept_burst();
  bool take_token(util::Timestamp now);
  void arm_stall_retry();

  EventLoop& loop_;
  NetioMetrics& metrics_;
  const Config config_;
  const fault::Injector* injector_;
  OnAccept on_accept_;
  Fd fd_;
  uint16_t port_ = 0;
  double tokens_;
  util::Timestamp token_refill_at_ = 0;
  bool stall_timer_armed_ = false;
  bool stopped_ = false;
  /// Outlives `this` in the stall retry timer's lambda.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nnn::netio
