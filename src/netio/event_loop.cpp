#include "netio/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>

namespace nnn::netio {

namespace {

uint32_t to_epoll(uint32_t interest) {
  uint32_t ev = EPOLLET;
  if (interest & EventLoop::kReadable) ev |= EPOLLIN | EPOLLRDHUP;
  if (interest & EventLoop::kWritable) ev |= EPOLLOUT;
  return ev;
}

uint32_t from_epoll(uint32_t events) {
  uint32_t out = 0;
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) out |= EventLoop::kReadable;
  if (events & EPOLLOUT) out |= EventLoop::kWritable;
  if (events & EPOLLERR) out |= EventLoop::kError;
  return out;
}

}  // namespace

EventLoop::EventLoop(const util::Clock& clock, TimerWheel::Config timers)
    : clock_(clock),
      epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wakeup_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)),
      wheel_(timers) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wakeup_.get();
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev);
}

EventLoop::~EventLoop() = default;

bool EventLoop::add_fd(int fd, uint32_t interest, IoHandler handler) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::move(handler);
  return true;
}

bool EventLoop::mod_fd(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

uint64_t EventLoop::add_timer(util::Timestamp deadline,
                              TimerHandler handler) {
  const uint64_t id = next_timer_id_++;
  timers_[id] = std::move(handler);
  wheel_.insert(id, deadline);
  return id;
}

int EventLoop::poll(util::Timestamp max_wait) {
  util::Timestamp wait = max_wait;
  if (wheel_.size() > 0) wait = std::min(wait, wheel_.tick());
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (!posted_.empty()) wait = 0;
  }
  std::array<epoll_event, 256> events;
  const int n = ::epoll_wait(epoll_.get(), events.data(),
                             static_cast<int>(events.size()),
                             static_cast<int>(wait / util::kMillisecond));
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeup_.get()) {
      drain_wakeup();
      continue;
    }
    // Look up per event: an earlier handler this batch may have closed
    // this fd (del_fd), in which case the event is stale and dropped.
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    ++dispatched;
    // Invoke a copy: the handler may del_fd its own fd (every close
    // path does), and erasing the map entry mid-call would destroy the
    // std::function whose operator() is on the stack.
    const IoHandler handler = it->second;
    handler(from_epoll(events[i].events));
  }
  const util::Timestamp now = clock_.now();
  wheel_.advance(now, [this](uint64_t id, util::Timestamp at) {
    const auto it = timers_.find(id);
    if (it == timers_.end()) return util::Timestamp{0};
    // Invoke a copy and erase by key: the handler may add_timer (the
    // reconnect/retry timers do), which can rehash timers_ and
    // invalidate `it`.
    const TimerHandler handler = it->second;
    const util::Timestamp next = handler(at);
    if (next <= at) timers_.erase(id);
    return next;
  });
  run_posted();
  return dispatched;
}

void EventLoop::run() {
  while (!stop_.load(std::memory_order_acquire)) poll();
  // One final drain so tasks posted concurrently with stop() still run
  // on the loop thread before it exits.
  run_posted();
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_.get(), &one, sizeof(one));
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_.get(), &one, sizeof(one));
}

void EventLoop::drain_wakeup() {
  uint64_t value = 0;
  while (::read(wakeup_.get(), &value, sizeof(value)) > 0) {
  }
}

void EventLoop::run_posted() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    running_.swap(posted_);
  }
  for (auto& task : running_) task();
  running_.clear();
}

}  // namespace nnn::netio
