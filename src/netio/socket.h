// Thin RAII layer over BSD sockets for the netio subsystem.
//
// Everything above this header speaks fds-with-ownership and typed
// errors; everything below is the raw syscall surface (socket, bind,
// listen, accept4, connect, setsockopt). Non-blocking is the default
// posture — the event loop owns scheduling, so a socket that would
// block must return to the loop, never stall it. Failures map into the
// unified taxonomy under ErrorDomain::kNetio with the errno preserved
// in the (static) detail where it matters for operators.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/error.h"
#include "util/expected.h"

namespace nnn::netio {

/// Move-only owner of a file descriptor. Closing twice, leaking, and
/// double-registering are the three classic fd bugs; this removes the
/// first two and the event loop's bookkeeping removes the third.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Give up ownership without closing.
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Create a non-blocking TCP listener bound to 127.0.0.1:`port`
/// (port 0 = kernel-assigned ephemeral; read it back with
/// local_port()). SO_REUSEADDR is set so tests and benches can rebind
/// a just-closed port.
Expected<Fd> listen_tcp(uint16_t port, int backlog);

/// Start a non-blocking connect to `host`:`port` (IPv4 dotted quad).
/// The returned fd is usually mid-handshake: poll it for writability,
/// then check connect_result().
Expected<Fd> connect_tcp(const std::string& host, uint16_t port);

/// Resolve a non-blocking connect: kOk Error{} if the handshake
/// succeeded, the failure otherwise (SO_ERROR).
Error connect_result(int fd);

/// The port a bound socket actually listens on.
uint16_t local_port(int fd);

/// Enable TCP_NODELAY — request/response traffic must not wait out
/// Nagle.
void set_nodelay(int fd);

/// Raise RLIMIT_NOFILE's soft limit toward `want` (clamped to the hard
/// limit). Returns the resulting soft limit. The 10k-connection bench
/// needs ~2x that in fds within one process.
uint64_t raise_fd_limit(uint64_t want);

}  // namespace nnn::netio
