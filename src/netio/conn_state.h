// Connection lifecycle states, split into their own header so
// telemetry/labels.cpp can name them (nnn_netio_connections{state=...})
// without pulling the epoll machinery below the telemetry layer —
// the same include-only trick fault/plan.h and util/logging.h use.
#pragma once

#include <cstdint>

namespace nnn::netio {

/// Where a connection is in its life. kHandshake covers accept until
/// the first byte arrives (bounded by handshake_timeout — a SYN-and-
/// silence peer must not hold an fd forever); kDraining is a close
/// requested with bytes still queued (flush, then close); kClosed is
/// terminal and only exists long enough to be counted.
enum class ConnState : uint8_t {
  kHandshake = 0,
  kOpen = 1,
  kDraining = 2,
  kClosed = 3,
};
// kConnStateCount and to_string(ConnState) live in telemetry/labels.h.

}  // namespace nnn::netio
