// Socket-backed transport for controlplane::SyncClient — the TCP
// sibling of LocalSubscriber's in-process hookup.
//
// The SyncClient is strictly single-threaded: tick() and on_datagram()
// must run on the owner's control thread. The event loop is a
// different thread. This adapter is the seam between the two:
//
//   outbound   send_fn() returns a SyncClient::SendFn that posts the
//              datagram to the loop, where it is written (the sync
//              envelope already frames it — TCP needs no extra
//              wrapping). Not connected => the datagram is dropped,
//              which is exactly the loss the client's timeout/backoff
//              machinery exists to absorb.
//   inbound    the loop thread reads the socket, reassembles frames
//              (net::FrameAssembler), and queues complete datagrams;
//              the owner drains them on ITS thread with poll(fn),
//              passing fn = [&](d){ client.on_datagram(d); }.
//
// The transport reconnects itself on a flat interval; sophistication
// (exponential backoff, breaker) deliberately stays in SyncClient,
// which already owns retry policy for lossy transports. Destroy only
// after the loop has stopped (or from the loop thread): teardown
// unregisters the fd directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "controlplane/sync_client.h"
#include "net/wire.h"
#include "netio/event_loop.h"
#include "netio/socket.h"
#include "util/bytes.h"

namespace nnn::netio {

class TcpSyncTransport {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    util::Timestamp reconnect_interval = 200 * util::kMillisecond;
    /// Inbound datagrams held for poll(); beyond it the oldest drop
    /// (the client re-polls anyway — bounded memory wins).
    size_t max_inbound_queue = 1024;
  };

  /// Starts connecting immediately (callable from any thread; the
  /// attempt itself is posted to the loop).
  TcpSyncTransport(EventLoop& loop, Config config);
  ~TcpSyncTransport();
  TcpSyncTransport(const TcpSyncTransport&) = delete;
  TcpSyncTransport& operator=(const TcpSyncTransport&) = delete;

  /// The SendFn to construct the SyncClient with. Thread-safe.
  controlplane::SyncClient::SendFn send_fn();

  /// Drain queued inbound datagrams on the calling (owner) thread.
  /// Returns how many were delivered.
  size_t poll(const std::function<void(util::BytesView)>& fn);

  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  // Loop-thread-only below.
  void start_connect();
  void on_events(uint32_t events);
  void handle_readable();
  void flush();
  void teardown(bool schedule_retry);
  void schedule_reconnect();
  void write_datagram(util::Bytes datagram);

  EventLoop& loop_;
  const Config config_;
  Fd fd_;
  bool connecting_ = false;
  bool reconnect_armed_ = false;
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> reconnects_{0};
  net::FrameAssembler assembler_;
  util::Bytes outbuf_;
  size_t out_sent_ = 0;

  std::mutex inbound_mutex_;
  std::deque<util::Bytes> inbound_;

  /// Outlives `this` in posted sends and the reconnect timer.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nnn::netio
