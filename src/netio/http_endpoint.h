// HTTP endpoint: puts the JsonApi (GET /metrics, /metrics.json, POST
// JSON documents) behind a TcpServer.
//
// HTTP/1.1 keep-alive by default: requests are framed by
// Request::parse_prefix (split header/body reads tolerated; a request
// without Content-Length has an empty body) and every response carries
// Content-Length, so one connection serves a monitoring scraper for
// its lifetime. "Connection: close" is honored by draining after the
// response. An unparseable prefix gets a 400 and a drain — HTTP can
// say "bad request" in-band, unlike the sync framing, where a poisoned
// stream can only be closed.
//
// JsonApi::handle_http is self-contained per call, so one JsonApi
// serves every connection.
#pragma once

#include "netio/conn.h"
#include "netio/transport.h"
#include "server/json_api.h"

namespace nnn::netio {

class HttpEndpoint final : public Protocol {
 public:
  explicit HttpEndpoint(server::JsonApi& api) : api_(api) {}

  Expected<size_t> on_data(Connection& conn,
                           util::BytesView buffered) override;

 private:
  server::JsonApi& api_;
};

/// Factory for TcpServer::create. `api` must outlive the TcpServer.
inline TcpServer::ProtocolFactory http_protocol(server::JsonApi& api) {
  return [&api] { return std::make_unique<HttpEndpoint>(api); };
}

}  // namespace nnn::netio
