#include "netio/conn.h"

#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <utility>

namespace nnn::netio {

Connection::Connection(uint64_t id, Fd fd, EventLoop& loop,
                       NetioMetrics& metrics, Limits limits,
                       std::unique_ptr<Protocol> protocol,
                       const fault::Injector* injector,
                       std::function<void(uint64_t, CloseReason)> on_close)
    : id_(id),
      fd_(std::move(fd)),
      loop_(loop),
      metrics_(metrics),
      limits_(limits),
      protocol_(std::move(protocol)),
      injector_(injector),
      on_close_(std::move(on_close)) {
  const util::Timestamp now = loop_.now();
  last_activity_ = now;
  handshake_deadline_ = now + limits_.handshake_timeout;
  metrics_.conn_state_enter(state_);
  loop_.add_fd(fd_.get(), EventLoop::kReadable | EventLoop::kWritable,
               [this](uint32_t events) { on_events(events); });
  loop_.add_timer(deadline(),
                  [this, alive = alive_](util::Timestamp now) {
                    return *alive ? on_timer(now) : util::Timestamp{0};
                  });
}

Connection::~Connection() {
  *alive_ = false;
  if (!closed()) {
    // Owner tore the server down with the connection still live
    // (close_all): unregister and settle the gauges without the
    // on_close callback (the owner is already destroying us).
    on_close_ = nullptr;
    close(CloseReason::kLocal);
  }
  metrics_.conn_state_leave(ConnState::kClosed);
}

void Connection::set_state(ConnState next) {
  if (state_ == next) return;
  metrics_.conn_state_leave(state_);
  metrics_.conn_state_enter(next);
  state_ = next;
}

util::Timestamp Connection::deadline() const {
  return state_ == ConnState::kHandshake
             ? handshake_deadline_
             : last_activity_ + limits_.idle_timeout;
}

util::Timestamp Connection::on_timer(util::Timestamp now) {
  if (closed()) return 0;  // cancel: the entry evaporates
  const util::Timestamp due = deadline();
  if (now < due) return due;  // lazy re-arm at the authoritative deadline
  if (state_ == ConnState::kHandshake) {
    metrics_.handshake_timeouts.inc();
    close(CloseReason::kHandshakeTimeout);
  } else {
    metrics_.idle_timeouts.inc();
    close(CloseReason::kIdleTimeout);
  }
  return 0;
}

void Connection::on_events(uint32_t events) {
  if (closed()) return;
  if (injector_ && injector_->reset_connection(id_, loop_.now())) {
    close(CloseReason::kReset);
    return;
  }
  if (events & EventLoop::kError) {
    close(CloseReason::kReset);
    return;
  }
  if (events & EventLoop::kWritable) {
    flush();
    if (closed()) return;
    if (state_ == ConnState::kDraining && queued_out() == 0) {
      close(CloseReason::kLocal);
      return;
    }
  }
  if (events & EventLoop::kReadable) handle_readable();
}

void Connection::handle_readable() {
  const bool blackhole =
      injector_ && injector_->peer_half_open(loop_.now());
  std::array<uint8_t, 16384> chunk;
  bool got_data = false;
  for (;;) {
    const ssize_t n =
        ::recv(fd_.get(), chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      if (blackhole) continue;  // peer "vanished": bytes never arrive
      metrics_.bytes_read.inc(static_cast<uint64_t>(n));
      inbuf_.insert(inbuf_.end(), chunk.data(), chunk.data() + n);
      got_data = true;
      if (inbuf_.size() > limits_.read_buffer_cap) {
        metrics_.backpressure_closes.inc();
        close(CloseReason::kBackpressure);
        return;
      }
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close(CloseReason::kReset);
    return;
  }
  if (got_data) {
    last_activity_ = loop_.now();
    run_protocol();
    if (closed()) return;
  }
  if (peer_eof_) {
    if (!blackhole && !inbuf_.empty() && protocol_) {
      protocol_->on_eof(*this, util::BytesView(inbuf_));
      if (closed()) return;
    }
    // Close now unless a reply is still flushing out.
    if (queued_out() == 0) {
      close(CloseReason::kPeer);
    } else if (state_ != ConnState::kDraining) {
      set_state(ConnState::kDraining);
    }
  }
}

void Connection::run_protocol() {
  if (!protocol_ || state_ == ConnState::kDraining) return;
  in_protocol_ = true;
  // Loop: one buffer may hold several complete requests (pipelining,
  // sync bursts); each on_data call consumes at most one.
  while (!closed() && !inbuf_.empty()) {
    const auto consumed = protocol_->on_data(*this, util::BytesView(inbuf_));
    if (!consumed) {
      in_protocol_ = false;
      close(CloseReason::kProtocolError);
      return;
    }
    if (*consumed == 0) break;  // incomplete: wait for more bytes
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<ptrdiff_t>(
                                      std::min(*consumed, inbuf_.size())));
    if (state_ == ConnState::kDraining) break;
  }
  in_protocol_ = false;
  // drain() from inside on_data defers the close to here so the
  // request loop can unwind first.
  if (!closed() && state_ == ConnState::kDraining && queued_out() == 0) {
    close(CloseReason::kLocal);
  }
}

void Connection::send(util::BytesView bytes) {
  if (closed()) return;
  if (queued_out() + bytes.size() > limits_.write_queue_cap) {
    metrics_.backpressure_closes.inc();
    close(CloseReason::kBackpressure);
    return;
  }
  // Compact the flushed prefix before growing the queue.
  if (out_sent_ > 0 && (out_sent_ >= outbuf_.size() ||
                        out_sent_ > limits_.write_queue_cap / 2)) {
    outbuf_.erase(outbuf_.begin(),
                  outbuf_.begin() + static_cast<ptrdiff_t>(out_sent_));
    out_sent_ = 0;
  }
  util::append(outbuf_, bytes);
  flush();
}

void Connection::flush() {
  while (out_sent_ < outbuf_.size()) {
    const ssize_t n = ::send(fd_.get(), outbuf_.data() + out_sent_,
                             outbuf_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      out_sent_ += static_cast<size_t>(n);
      metrics_.bytes_written.inc(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the peer is gone mid-write.
    close(CloseReason::kReset);
    return;
  }
  if (out_sent_ == outbuf_.size() && out_sent_ > 0) {
    outbuf_.clear();
    out_sent_ = 0;
  }
}

void Connection::mark_open() {
  if (state_ == ConnState::kHandshake) set_state(ConnState::kOpen);
}

void Connection::drain() {
  if (closed()) return;
  flush();
  if (closed()) return;
  if (queued_out() == 0) {
    // Nothing pending; but if the protocol is mid-on_data let the
    // request loop unwind before the owner destroys us.
    if (in_protocol_) {
      set_state(ConnState::kDraining);
    } else {
      close(CloseReason::kLocal);
    }
    return;
  }
  set_state(ConnState::kDraining);
}

void Connection::close(CloseReason reason) {
  if (closed()) return;
  loop_.del_fd(fd_.get());
  fd_.reset();
  set_state(ConnState::kClosed);
  metrics_.closes.inc();
  if (reason == CloseReason::kReset) metrics_.resets.inc();
  if (on_close_) {
    // Deferred to the loop so the owner may destroy the Connection
    // from inside the callback: close()'s callers (run_protocol,
    // handle_readable, on_events) still touch `this` after close()
    // returns, so a synchronous callback could not safely free us.
    // The posted closure captures no connection state beyond the id.
    auto cb = std::move(on_close_);
    on_close_ = nullptr;
    loop_.post(
        [cb = std::move(cb), id = id_, reason] { cb(id, reason); });
  }
}

}  // namespace nnn::netio
