#include "netio/sync_endpoint.h"

#include "net/wire.h"

namespace nnn::netio {

Expected<size_t> SyncEndpoint::on_data(Connection& conn,
                                       util::BytesView buffered) {
  const auto probe = net::peek_sync_frame(buffered);
  if (!probe) return unexpected(probe.error());  // poisoned stream: close
  if (!*probe || buffered.size() < **probe) return 0;  // keep reading
  const util::Timestamp start = conn.loop().now();
  conn.mark_open();
  conn.metrics().frames.inc();
  // The whole framed datagram goes to the server — same bytes a UDP
  // transport would deliver. No reply (malformed payload or injected
  // outage) is the datagram contract: the client's timeout handles it.
  const auto reply = server_.handle(buffered.first(**probe));
  if (reply) conn.send(util::BytesView(*reply));
  conn.metrics().request_micros.record(
      static_cast<uint64_t>(conn.loop().now() - start));
  return **probe;
}

}  // namespace nnn::netio
