// TcpServer: one listening port, one Protocol family, many
// connections — the assembly the endpoints (sync_endpoint.h,
// http_endpoint.h) sit behind.
//
// Owns the Listener, the connection table, and the nnn_netio_* metrics
// instance for this server. The admission ceiling (max_connections)
// is enforced here because only the table knows the live count; the
// rate cap lives in the Listener. Everything runs on the event loop's
// thread: create() and close_all() included — callers on other threads
// go through EventLoop::post.
//
// Shed/close accounting is exact by construction, which the chaos
// suite leans on:  attempted = accepts + shed,  accepts = closes +
// live  (every admitted connection eventually moves the closes
// counter, whatever the reason).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "fault/injector.h"
#include "netio/conn.h"
#include "netio/event_loop.h"
#include "netio/listener.h"
#include "netio/metrics.h"
#include "util/expected.h"

namespace nnn::netio {

class TcpServer {
 public:
  struct Config {
    /// Metrics instance label ({server=...}).
    std::string name = "netio";
    Listener::Config listener;
    Connection::Limits limits;
    /// Live-connection ceiling; beyond it accepts are shed.
    size_t max_connections = 10000;
  };

  /// One Protocol instance per connection.
  using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

  /// Binds and starts accepting. `injector` may be null.
  static Expected<std::unique_ptr<TcpServer>> create(
      EventLoop& loop, Config config, ProtocolFactory factory,
      const fault::Injector* injector = nullptr,
      telemetry::Registry& registry = telemetry::Registry::global());
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  uint16_t port() const { return listener_->port(); }
  size_t connection_count() const { return conns_.size(); }
  NetioMetrics& metrics() { return metrics_; }

  /// Stop accepting and tear down every live connection.
  void close_all();

 private:
  TcpServer(EventLoop& loop, Config config, ProtocolFactory factory,
            const fault::Injector* injector, telemetry::Registry& registry);
  bool admit(Fd fd);

  EventLoop& loop_;
  const Config config_;
  ProtocolFactory factory_;
  const fault::Injector* injector_;
  NetioMetrics metrics_;
  std::unique_ptr<Listener> listener_;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  /// Outlives `this` in the deferred-erase tasks posted to the loop.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nnn::netio
