#include "netio/transport.h"

#include <utility>

namespace nnn::netio {

Expected<std::unique_ptr<TcpServer>> TcpServer::create(
    EventLoop& loop, Config config, ProtocolFactory factory,
    const fault::Injector* injector, telemetry::Registry& registry) {
  std::unique_ptr<TcpServer> server(new TcpServer(
      loop, std::move(config), std::move(factory), injector, registry));
  auto listener = Listener::create(
      loop, server->metrics_, server->config_.listener, injector,
      [raw = server.get()](Fd fd) { return raw->admit(std::move(fd)); });
  if (!listener) return unexpected(listener.error());
  server->listener_ = std::move(*listener);
  return server;
}

TcpServer::TcpServer(EventLoop& loop, Config config, ProtocolFactory factory,
                     const fault::Injector* injector,
                     telemetry::Registry& registry)
    : loop_(loop),
      config_(std::move(config)),
      factory_(std::move(factory)),
      injector_(injector),
      metrics_(config_.name, registry) {}

TcpServer::~TcpServer() {
  *alive_ = false;
  close_all();
}

void TcpServer::close_all() {
  if (listener_) listener_->stop();
  // Plain destruction: ~Connection disarms its on_close callback
  // before settling (unregister, gauges, closes counter), so the map
  // is not re-entered mid-clear.
  conns_.clear();
}

bool TcpServer::admit(Fd fd) {
  if (conns_.size() >= config_.max_connections) return false;
  const uint64_t id = next_conn_id_++;
  auto conn = std::make_unique<Connection>(
      id, std::move(fd), loop_, metrics_, config_.limits, factory_(),
      injector_, [this, alive = alive_](uint64_t gone, CloseReason) {
        // Connection posts this callback to the loop, so the erase
        // (and the object's destruction) happens with its stack frames
        // already unwound; the alive flag covers a server torn down
        // with the callback still queued.
        if (*alive) conns_.erase(gone);
      });
  conns_.emplace(id, std::move(conn));
  return true;
}

}  // namespace nnn::netio
