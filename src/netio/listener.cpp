#include "netio/listener.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <memory>
#include <utility>

namespace nnn::netio {

Expected<std::unique_ptr<Listener>> Listener::create(
    EventLoop& loop, NetioMetrics& metrics, Config config,
    const fault::Injector* injector, OnAccept on_accept) {
  auto fd = listen_tcp(config.port, config.backlog);
  if (!fd) return unexpected(fd.error());
  // unique_ptr because the epoll handler captures `this`.
  std::unique_ptr<Listener> listener(
      new Listener(loop, metrics, config, injector, std::move(on_accept),
                   std::move(*fd)));
  return listener;
}

Listener::Listener(EventLoop& loop, NetioMetrics& metrics, Config config,
                   const fault::Injector* injector, OnAccept on_accept,
                   Fd fd)
    : loop_(loop),
      metrics_(metrics),
      config_(config),
      injector_(injector),
      on_accept_(std::move(on_accept)),
      fd_(std::move(fd)),
      tokens_(config.accept_burst) {
  port_ = local_port(fd_.get());
  token_refill_at_ = loop_.now();
  loop_.add_fd(fd_.get(), EventLoop::kReadable,
               [this](uint32_t) { accept_burst(); });
}

Listener::~Listener() {
  *alive_ = false;
  stop();
}

void Listener::stop() {
  if (stopped_) return;
  stopped_ = true;
  loop_.del_fd(fd_.get());
  fd_.reset();
}

bool Listener::take_token(util::Timestamp now) {
  if (config_.accept_rate <= 0) return true;
  const double elapsed =
      static_cast<double>(now - token_refill_at_) / util::kSecond;
  token_refill_at_ = now;
  tokens_ = std::min(config_.accept_burst,
                     tokens_ + elapsed * config_.accept_rate);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void Listener::arm_stall_retry() {
  if (stall_timer_armed_ || stopped_) return;
  stall_timer_armed_ = true;
  // Edge-triggered epoll will not re-report the backlog we left
  // undrained, so poll the stall window on a timer and resume the
  // moment it lifts.
  const util::Timestamp interval = 20 * util::kMillisecond;
  loop_.add_timer(loop_.now() + interval,
                  [this, interval,
                   alive = alive_](util::Timestamp now) -> util::Timestamp {
                    if (!*alive) return 0;
                    if (stopped_) {
                      stall_timer_armed_ = false;
                      return 0;
                    }
                    if (injector_ && injector_->accept_stalled(now)) {
                      return now + interval;  // still wedged, keep polling
                    }
                    stall_timer_armed_ = false;
                    accept_burst();
                    return 0;
                  });
}

void Listener::accept_burst() {
  if (stopped_) return;
  for (;;) {
    if (injector_ && injector_->accept_stalled(loop_.now())) {
      arm_stall_retry();
      return;
    }
    const int raw = ::accept4(fd_.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE and friends: shed by not accepting; the backlog
      // drains as fds free up and the next edge retries.
      return;
    }
    Fd conn(raw);
    set_nodelay(raw);
    if (!take_token(loop_.now())) {
      metrics_.accept_shed.inc();
      continue;  // conn closes via RAII: accepted-then-shed
    }
    if (!on_accept_ || !on_accept_(std::move(conn))) {
      metrics_.accept_shed.inc();
      continue;
    }
    metrics_.accepts.inc();
  }
}

}  // namespace nnn::netio
