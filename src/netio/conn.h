// One TCP connection on the event loop: buffered non-blocking io with
// a small lifecycle state machine, protocol-agnostic.
//
// The split of responsibilities:
//
//   Connection  owns the fd, the input buffer (partial reads
//               reassemble here), the write queue (short writes buffer
//               here), the idle/handshake deadlines, and the
//               backpressure caps.
//   Protocol    owns meaning: it is handed the buffered input after
//               every read burst and says how many bytes it consumed.
//               Sync framing and HTTP are both Protocols
//               (sync_endpoint.h / http_endpoint.h).
//
// Lifecycle: kHandshake (accepted, nothing complete yet) -> kOpen
// (first complete request) -> kDraining (graceful close pending flush)
// -> kClosed. The handshake deadline bounds how long an accepted
// socket may sit silent before proving it speaks the protocol — the
// classic slowloris defence; the idle deadline reclaims established
// connections whose peer went away without FIN (including the injected
// half-open fault). Both ride one lazy wheel timer (see timer_wheel.h).
//
// Backpressure is a close, not a stall: a peer that outruns
// write_queue_cap (slow reader) or read_buffer_cap (frame larger than
// the server will buffer) is disconnected and counted, because a
// fail-open dataplane must shed control-plane load rather than queue
// it without bound (DESIGN §5e).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fault/injector.h"
#include "netio/conn_state.h"
#include "netio/event_loop.h"
#include "netio/metrics.h"
#include "netio/socket.h"
#include "util/bytes.h"
#include "util/expected.h"

namespace nnn::netio {

class Connection;

/// What a connection speaks. Implementations keep per-connection parse
/// state as members (one Protocol instance per Connection).
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called after every read burst with ALL bytes buffered so far.
  /// Return how many leading bytes were consumed (0 = incomplete, keep
  /// buffering) or an Error to close the connection (the stream is
  /// poisoned — framing cannot resynchronize). May call
  /// Connection::send / mark_open / drain from inside.
  virtual Expected<size_t> on_data(Connection& conn,
                                   util::BytesView buffered) = 0;

  /// Peer sent FIN with `buffered` bytes still unconsumed. Default:
  /// nothing (the connection closes once the write queue drains).
  virtual void on_eof(Connection& conn, util::BytesView buffered) {
    (void)conn;
    (void)buffered;
  }
};

/// Why a connection closed — drives which counters move.
enum class CloseReason : uint8_t {
  kLocal = 0,      // server-side graceful close (drain complete, shutdown)
  kPeer,           // peer closed cleanly (FIN)
  kReset,          // ECONNRESET/EPIPE or injected kConnReset
  kIdleTimeout,
  kHandshakeTimeout,
  kBackpressure,   // read_buffer_cap or write_queue_cap exceeded
  kProtocolError,  // Protocol::on_data returned an Error
};

class Connection {
 public:
  struct Limits {
    util::Timestamp idle_timeout = 30 * util::kSecond;
    util::Timestamp handshake_timeout = 5 * util::kSecond;
    /// Max bytes buffered awaiting a complete request.
    size_t read_buffer_cap = 1u << 20;
    /// Max bytes queued for write before the peer is shed.
    size_t write_queue_cap = 4u << 20;
  };

  /// Takes ownership of `fd` (already non-blocking), registers it with
  /// `loop`, arms the handshake deadline. `on_close(id, reason)` fires
  /// exactly once, posted to the loop by close() so it runs after the
  /// connection's stack frames unwind; the owner may destroy the
  /// Connection from inside it. A Connection destroyed while still
  /// open (owner teardown) never fires it. `injector` may be null (no
  /// fault hooks).
  Connection(uint64_t id, Fd fd, EventLoop& loop, NetioMetrics& metrics,
             Limits limits, std::unique_ptr<Protocol> protocol,
             const fault::Injector* injector,
             std::function<void(uint64_t, CloseReason)> on_close);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // --- Protocol-facing surface ---

  /// Queue bytes for the peer; flushes as far as the socket allows and
  /// buffers the rest. Closes (kBackpressure) if the queue would
  /// exceed write_queue_cap.
  void send(util::BytesView bytes);

  /// First complete request observed: kHandshake -> kOpen, handshake
  /// deadline retired in favor of the idle deadline.
  void mark_open();

  /// Graceful close: flush the write queue, then close(kLocal). No
  /// further reads are processed.
  void drain();

  void close(CloseReason reason);

  uint64_t id() const { return id_; }
  ConnState state() const { return state_; }
  bool closed() const { return state_ == ConnState::kClosed; }
  EventLoop& loop() { return loop_; }
  NetioMetrics& metrics() { return metrics_; }
  size_t buffered_in() const { return inbuf_.size(); }
  size_t queued_out() const { return outbuf_.size() - out_sent_; }

 private:
  void on_events(uint32_t events);
  /// Drain the socket to EAGAIN into inbuf_, then run the protocol
  /// over the buffered prefix.
  void handle_readable();
  void run_protocol();
  /// Push outbuf_ to the socket until EAGAIN or empty.
  void flush();
  void set_state(ConnState next);
  util::Timestamp deadline() const;
  util::Timestamp on_timer(util::Timestamp now);

  const uint64_t id_;
  Fd fd_;
  EventLoop& loop_;
  NetioMetrics& metrics_;
  const Limits limits_;
  std::unique_ptr<Protocol> protocol_;
  const fault::Injector* injector_;
  std::function<void(uint64_t, CloseReason)> on_close_;

  ConnState state_ = ConnState::kHandshake;
  util::Bytes inbuf_;
  util::Bytes outbuf_;
  size_t out_sent_ = 0;  // flushed prefix of outbuf_
  util::Timestamp last_activity_;
  util::Timestamp handshake_deadline_;
  bool peer_eof_ = false;
  bool in_protocol_ = false;  // re-entrancy guard for close-from-on_data
  /// Outlives `this` in the wheel's timer lambda: the connection is
  /// destroyed on close but its (lazy) timer entry may fire later.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nnn::netio
