#include "netio/metrics.h"

#include <utility>

namespace nnn::netio {

NetioMetrics::NetioMetrics(std::string instance,
                           telemetry::Registry& registry)
    : instance_(std::move(instance)) {
  registration_ = registry.add_collector(
      [this](telemetry::SampleBuilder& builder) { collect(builder); });
}

void NetioMetrics::collect(telemetry::SampleBuilder& builder) const {
  const telemetry::LabelSet base{{"server", instance_}};
  for (size_t i = 0; i < kConnStateCount; ++i) {
    telemetry::LabelSet labels = base;
    labels.add("state", to_string(static_cast<ConnState>(i)));
    builder.gauge("nnn_netio_connections",
                  "Connections by lifecycle state", std::move(labels),
                  connections_[i].value());
  }
  const auto counter = [&](std::string_view family, std::string_view help,
                           const telemetry::Counter& cell) {
    builder.counter(family, help, base, cell.value());
  };
  counter("nnn_netio_accepts_total", "Connections accepted", accepts);
  counter("nnn_netio_accept_shed_total",
          "Connections shed at accept (rate cap or connection ceiling)",
          accept_shed);
  {
    telemetry::LabelSet labels = base;
    labels.add("kind", "idle");
    builder.counter("nnn_netio_timeouts_total", "Connection timeouts",
                    std::move(labels), idle_timeouts.value());
    telemetry::LabelSet hs = base;
    hs.add("kind", "handshake");
    builder.counter("nnn_netio_timeouts_total", "Connection timeouts",
                    std::move(hs), handshake_timeouts.value());
  }
  counter("nnn_netio_resets_total",
          "Connections torn down by reset (peer or injected)", resets);
  counter("nnn_netio_closes_total", "Connections closed, any reason",
          closes);
  counter("nnn_netio_backpressure_closes_total",
          "Connections closed for exceeding a buffer cap", backpressure_closes);
  counter("nnn_netio_frames_total", "Sync datagrams served", frames);
  counter("nnn_netio_http_requests_total", "HTTP requests served",
          http_requests);
  counter("nnn_netio_bytes_read_total", "Bytes read from sockets",
          bytes_read);
  counter("nnn_netio_bytes_written_total", "Bytes written to sockets",
          bytes_written);
  builder.histogram("nnn_netio_request_micros",
                    "Request latency, receive-complete to reply queued",
                    base, request_micros);
}

}  // namespace nnn::netio
