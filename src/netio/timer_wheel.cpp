#include "netio/timer_wheel.h"

#include <bit>

namespace nnn::netio {

TimerWheel::TimerWheel() : TimerWheel(Config{}) {}

TimerWheel::TimerWheel(Config config) : config_(config) {
  const size_t slots = std::bit_ceil(config_.slots < 2 ? 2 : config_.slots);
  slots_.resize(slots);
  mask_ = slots - 1;
}

void TimerWheel::insert(uint64_t id, util::Timestamp deadline) {
  ++size_;
  file(Entry{id, deadline});
}

void TimerWheel::file(const Entry& e) {
  // A deadline already behind the cursor files into the next slot the
  // walk will visit — late by one tick, never silently dropped.
  const util::Timestamp at = e.deadline < cursor_ ? cursor_ : e.deadline;
  slots_[(at / config_.tick) & mask_].push_back(e);
}

}  // namespace nnn::netio
