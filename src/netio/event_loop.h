// Edge-triggered epoll event loop — the netio subsystem's scheduler.
//
// One loop, one thread, everything non-blocking: listeners, server
// connections, and client transports all register fds here and get
// called back when the kernel has work for them. Edge-triggered
// (EPOLLET) is deliberate: level-triggered epoll re-reports a readable
// fd on every wait, which at 10k mostly-idle sync connections turns
// the ready list into a scan; edge-triggered reports each fd once per
// state change, so the loop's cost tracks *activity*, not population.
// The contract that buys this is the usual one — every handler must
// drain its fd to EAGAIN before returning.
//
// Timers ride the TimerWheel (idle/handshake timeouts, retry timers);
// cross-thread work arrives through post(), which enqueues a task and
// kicks an eventfd so a parked epoll_wait wakes immediately. All other
// methods are loop-thread-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netio/socket.h"
#include "netio/timer_wheel.h"
#include "util/clock.h"

namespace nnn::netio {

class EventLoop {
 public:
  /// Bitmask passed to io handlers (mirrors EPOLLIN/EPOLLOUT/EPOLLERR
  /// without leaking <sys/epoll.h> into every include site).
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kError = 1u << 2;

  using IoHandler = std::function<void(uint32_t events)>;
  /// Timer callback: return the id's authoritative deadline (see
  /// TimerWheel::advance).
  using TimerHandler = std::function<util::Timestamp(util::Timestamp now)>;

  /// `clock` must outlive the loop and be monotonic (SystemClock in
  /// production; tests may drive a ManualClock through poll()).
  explicit EventLoop(const util::Clock& clock,
                     TimerWheel::Config timers = {});
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd registration (loop thread) ---

  /// Watch `fd` edge-triggered for `interest` (kReadable|kWritable).
  /// The handler stays installed until del_fd; re-register interest
  /// with mod_fd.
  bool add_fd(int fd, uint32_t interest, IoHandler handler);
  bool mod_fd(int fd, uint32_t interest);
  void del_fd(int fd);

  // --- timers (loop thread) ---

  /// File a timer under a fresh id. The handler is invoked from
  /// poll(); re-arm lazily by returning the new deadline.
  uint64_t add_timer(util::Timestamp deadline, TimerHandler handler);

  // --- driving ---

  /// One iteration: wait for io (at most `max_wait`, clamped to the
  /// timer tick while timers are live), dispatch handlers, fire due
  /// timers, run posted tasks. Returns the number of io events
  /// dispatched.
  int poll(util::Timestamp max_wait = 50 * util::kMillisecond);

  /// poll() until stop(). The conventional server shape is one thread
  /// parked here.
  void run();
  /// Ask run() to return; safe from any thread.
  void stop();

  /// Enqueue `task` for the loop thread and wake it. Safe from any
  /// thread — the one cross-thread door into the loop.
  void post(std::function<void()> task);

  const util::Clock& clock() const { return clock_; }
  util::Timestamp now() const { return clock_.now(); }
  size_t fd_count() const { return handlers_.size(); }

 private:
  void drain_wakeup();
  void run_posted();

  const util::Clock& clock_;
  Fd epoll_;
  Fd wakeup_;  // eventfd
  TimerWheel wheel_;
  std::unordered_map<int, IoHandler> handlers_;
  std::unordered_map<uint64_t, TimerHandler> timers_;
  uint64_t next_timer_id_ = 1;
  std::atomic<bool> stop_{false};
  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  std::vector<std::function<void()>> running_;
};

}  // namespace nnn::netio
