// Hashed timer wheel for connection deadlines.
//
// A 10k-connection server re-arms an idle timeout on every request; a
// sorted structure (std::map, a heap) pays O(log n) per re-arm and a
// cancel per completed request. The wheel makes both O(1) by being
// deliberately lazy:
//
//   * insert(id, deadline) drops the id into the slot deadline hashes
//     to; one entry per id is all a connection ever needs.
//   * re-arming does NOT touch the wheel — the owner just moves its
//     authoritative deadline forward. When the stale entry fires, the
//     owner's callback returns the real (later) deadline and the wheel
//     re-files the entry there. An entry is therefore at most one
//     firing late, never early, and the common case (activity keeps
//     pushing the deadline) costs zero wheel operations.
//   * cancel is the callback returning 0: the entry evaporates.
//
// Granularity is the tick (default 10 ms): deadlines within one tick
// of each other may fire together, which is exactly the tolerance an
// idle/handshake timeout has anyway. Single-threaded, like everything
// the event loop owns.
#pragma once

#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace nnn::netio {

class TimerWheel {
 public:
  struct Config {
    util::Timestamp tick = 10 * util::kMillisecond;
    /// Slot count (rounded up to a power of two). Deadlines farther
    /// than slots*tick in the future simply go around the wheel again
    /// (re-filed on each pass) — correct, just one extra touch per
    /// revolution.
    size_t slots = 512;
  };

  TimerWheel();  // default Config (gcc can't parse `= {}` here: the
                 // nested struct's NSDMIs are incomplete in this scope)
  explicit TimerWheel(Config config);

  /// File `id` under `deadline`. One entry per id: callers must not
  /// insert an id that is still filed (re-arm by returning the new
  /// deadline from the advance callback instead).
  void insert(uint64_t id, util::Timestamp deadline);

  /// Fire everything due at `now`. For each entry whose slot has come
  /// around, `fn(id, now)` returns the id's authoritative deadline:
  /// <= now means "expired, drop it" (fn has acted); a future value
  /// re-files the entry (the lazy re-arm); 0 drops it (cancelled).
  template <typename Fn>
  void advance(util::Timestamp now, Fn&& fn) {
    if (now < cursor_) return;
    // Walk at most one full revolution of slots, oldest first.
    const uint64_t first = cursor_ / config_.tick;
    uint64_t last = now / config_.tick;
    if (last - first >= slots_.size()) last = first + slots_.size() - 1;
    for (uint64_t t = first; t <= last; ++t) {
      auto& slot = slots_[t & mask_];
      size_t kept = 0;
      for (size_t i = 0; i < slot.size(); ++i) {
        Entry e = slot[i];
        if (e.deadline > now) {
          if (e.deadline <
              static_cast<util::Timestamp>(last + 1) * config_.tick) {
            // Due within the tick range this walk covers, just past
            // `now`. The cursor is about to move beyond this slot, so
            // keeping the entry here would delay it a full revolution;
            // re-file at the cursor instead (fires next tick).
            pending_.push_back(e);
          } else {
            // Filed for a later revolution (or the hash put it here
            // early) — keep it in place.
            slot[kept++] = e;
          }
          continue;
        }
        const util::Timestamp next = fn(e.id, now);
        if (next > now) {
          pending_.push_back(Entry{e.id, next});
        } else {
          --size_;
        }
      }
      slot.resize(kept);
    }
    cursor_ = (last + 1) * config_.tick;
    // Re-file after the walk so a re-arm landing in an already-walked
    // slot is not visited twice in one advance.
    for (const Entry& e : pending_) file(e);
    pending_.clear();
  }

  /// Entries currently filed (live timers).
  size_t size() const { return size_; }
  util::Timestamp tick() const { return config_.tick; }

 private:
  struct Entry {
    uint64_t id = 0;
    util::Timestamp deadline = 0;
  };

  void file(const Entry& e);

  Config config_;
  std::vector<std::vector<Entry>> slots_;
  std::vector<Entry> pending_;
  uint64_t mask_ = 0;
  util::Timestamp cursor_ = 0;
  size_t size_ = 0;
};

}  // namespace nnn::netio
