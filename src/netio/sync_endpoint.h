// Sync-protocol endpoint: puts a controlplane::SyncServer behind a
// TcpServer.
//
// The sync protocol is datagram-shaped (one request frame -> at most
// one response frame); over TCP each frame's self-describing envelope
// (net/wire.h) does the segmentation. peek_sync_frame validates the
// envelope as soon as its 8 bytes arrive, so a hostile length field
// closes the connection before any payload is buffered, and a partial
// frame simply waits in the connection's input buffer.
//
// SyncServer::handle is thread-safe and stateless per call, so ONE
// SyncServer instance serves every connection; the factory here only
// stamps out thin per-connection adapters.
#pragma once

#include "controlplane/sync_server.h"
#include "netio/conn.h"
#include "netio/transport.h"

namespace nnn::netio {

class SyncEndpoint final : public Protocol {
 public:
  explicit SyncEndpoint(controlplane::SyncServer& server)
      : server_(server) {}

  Expected<size_t> on_data(Connection& conn,
                           util::BytesView buffered) override;

 private:
  controlplane::SyncServer& server_;
};

/// Factory for TcpServer::create. `server` must outlive the TcpServer.
inline TcpServer::ProtocolFactory sync_protocol(
    controlplane::SyncServer& server) {
  return [&server] { return std::make_unique<SyncEndpoint>(server); };
}

}  // namespace nnn::netio
