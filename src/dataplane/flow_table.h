// Flow table with the paper's sniff-window state machine, keyed on
// net::FlowKey (PR 10: connection-ID flow binding).
//
// "For a given packet our middle-box has to perform one of three
// tasks: i) search for a potential cookie (first 2-3 packets of every
// flow), ii) search and verify a cookie (a packet that contains a
// cookie) or iii) simply map a packet to a given service (for a flow
// already updated in our system)" (§4.6). The Boost daemon "sniffs the
// first 3 incoming packets for each flow" (§5.2).
//
// States per flow:
//   kSniffing  — still inspecting the first `sniff_window` packets
//   kMapped    — a verified cookie bound this flow to a service
//   kBestEffort— the window passed with no (valid) cookie
// Entries idle out after `idle_timeout` so the table stays bounded.
//
// ## Keying (PR 10)
//
// Entries are keyed on net::FlowKey — the 5-tuple for classic
// traffic, the connection ID for QUIC-shaped traffic. CID keys are
// canonicalized through an embedded quic::CidAliasTable before any
// probe: add_alias() records a rotation (fresh CID joins an existing
// flow) and every subsequent bind/lookup on the fresh CID lands on
// the SAME FlowEntry. That is the mechanism behind the PR's headline
// claim: a cookie verified once in the handshake keeps its mapping
// across CID rotations and NAT rebinds, because neither changes the
// canonical CID the entry is keyed under. When a CID-keyed flow idles
// out, its whole alias set is evicted with it — a dead connection
// cannot leak alias-table entries.
//
// ## API (PR 10 redesign)
//
// The primary interface speaks Expected<...> in the PR 5 error
// taxonomy (domain kFlow): bind() is the touch-or-create entry point
// (kOverload once `max_flows` is hit), lookup() replaces the
// nullptr-returning find (kUnknownId), add_alias() reports an
// unlinkable rotation (kUnknownId). The 5-tuple touch()/find()/
// map_flow() signatures remain as thin adapters over the FlowKey
// entry points; tests/test_quic.cpp holds a differential harness
// asserting adapter and primary agree move for move.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "net/flow_key.h"
#include "quic/alias_table.h"
#include "state/flat_table.h"
#include "telemetry/view.h"
#include "util/clock.h"
#include "util/expected.h"

namespace nnn::dataplane {

enum class FlowState : uint8_t { kSniffing = 0, kMapped, kBestEffort };

struct FlowEntry {
  FlowState state = FlowState::kSniffing;
  uint32_t packets_seen = 0;
  /// service_data of the verified cookie when state == kMapped.
  std::string service_data;
  util::Timestamp last_seen = 0;
  uint64_t bytes = 0;
  /// When a mapped flow reverts to best effort; 0 = never (the flow's
  /// lifetime). Set from the descriptor's mapping_ttl attribute.
  util::Timestamp mapping_expires = 0;
};

struct FlowTableStats {
  uint64_t flows_created = 0;
  uint64_t flows_expired = 0;
  uint64_t lookups = 0;
  /// CID rotations recorded against live flows (add_alias successes).
  uint64_t aliases_added = 0;
  /// bind() rejections because max_flows was reached.
  uint64_t overloads = 0;

  friend bool operator==(const FlowTableStats&,
                         const FlowTableStats&) = default;
};

}  // namespace nnn::dataplane

namespace nnn::telemetry {

template <>
struct ViewTraits<dataplane::FlowTableStats> {
  using S = dataplane::FlowTableStats;
  static constexpr std::array fields{
      ViewField<S>{&S::flows_created, MetricType::kCounter,
                   "nnn_flows_created_total", "Flow-table entries created",
                   "", ""},
      ViewField<S>{&S::flows_expired, MetricType::kCounter,
                   "nnn_flows_expired_total",
                   "Flow-table entries evicted by idle timeout", "", ""},
      ViewField<S>{&S::lookups, MetricType::kCounter,
                   "nnn_flow_lookups_total", "Flow-table touch operations",
                   "", ""},
      ViewField<S>{&S::aliases_added, MetricType::kCounter,
                   "nnn_flow_aliases_total",
                   "CID rotations recorded against live flows", "", ""},
      ViewField<S>{&S::overloads, MetricType::kCounter,
                   "nnn_flow_overload_total",
                   "Flow creations rejected at max_flows", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::dataplane {

class FlowTable {
 public:
  static constexpr uint32_t kDefaultSniffWindow = 3;
  static constexpr util::Timestamp kDefaultIdleTimeout =
      60 * util::kSecond;

  /// `max_flows` == 0 means unbounded (the legacy contract; the
  /// reference-returning adapters below require it).
  explicit FlowTable(uint32_t sniff_window = kDefaultSniffWindow,
                     util::Timestamp idle_timeout = kDefaultIdleTimeout,
                     size_t max_flows = 0);
  /// Pinned: the stats view registers a collector holding `this`.
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// bind()'s success alternative: the entry (stable across later
  /// inserts; the pool never moves) and whether this call created it.
  struct Binding {
    FlowEntry* entry = nullptr;
    bool created = false;
  };

  // --- primary interface (FlowKey + Expected) ---

  /// Touch-or-create the flow `key` names: bump packet/byte counters,
  /// advance kSniffing -> kBestEffort when the window is exhausted,
  /// lapse expired mappings. CID keys are canonicalized through the
  /// alias table first. Fails with kOverload when the flow would be
  /// new and the table is at max_flows (after one forced idle sweep).
  Expected<Binding> bind(const net::FlowKey& key, uint32_t bytes,
                         util::Timestamp now);

  /// Bind the flow — and, when `include_reverse`, its reverse — to a
  /// service (a cookie verified on this flow). `mapping_expires` (0 =
  /// never) bounds how long the mapping holds. A CID key is its own
  /// reverse (direction-insensitive), so include_reverse is a no-op
  /// there. Same kOverload contract as bind().
  Expected<Binding> map_flow(const net::FlowKey& key,
                             const std::string& service_data,
                             util::Timestamp now, bool include_reverse,
                             util::Timestamp mapping_expires = 0);

  /// Pure lookup; kUnknownId when the flow is absent.
  Expected<const FlowEntry*> lookup(const net::FlowKey& key) const;

  /// Record a CID rotation: `fresh_cid` joins the flow `existing_cid`
  /// resolves to. Returns the canonical CID the flow is keyed under;
  /// kUnknownId when no live flow is keyed on `existing_cid` (never
  /// seen, or already idled out) — the caller proceeds unlinked and
  /// the fresh CID starts a flow of its own, the fail-open answer.
  Expected<uint64_t> add_alias(uint64_t fresh_cid, uint64_t existing_cid);

  /// Canonical CID for `cid` (itself when unaliased).
  uint64_t resolve_cid(uint64_t cid) const { return aliases_.resolve(cid); }

  // --- legacy 5-tuple adapters (thin; unbounded tables only) ---

  /// bind() adapter. Asserts success — only an unbounded table may
  /// use the reference-returning form.
  FlowEntry& touch(const net::FiveTuple& tuple, uint32_t bytes,
                   util::Timestamp now);
  /// map_flow() adapter.
  void map_flow(const net::FiveTuple& tuple, const std::string& service_data,
                util::Timestamp now, bool include_reverse,
                util::Timestamp mapping_expires = 0);
  /// lookup() adapter; nullptr when the flow is unknown.
  const FlowEntry* find(const net::FiveTuple& tuple) const;

  /// Drop entries idle since before now - idle_timeout — and, for
  /// CID-keyed entries, their whole alias set. Returns how many flows
  /// were evicted. bind() amortizes this; exposed for tests.
  size_t expire_idle(util::Timestamp now);

  size_t size() const { return index_.size(); }
  uint32_t sniff_window() const { return sniff_window_; }
  size_t max_flows() const { return max_flows_; }
  /// CIDs resolvable through the embedded alias table.
  size_t alias_cids() const { return aliases_.cids(); }
  /// Materialized from the live telemetry cells (by value).
  FlowTableStats stats() const { return stats_.snapshot(); }
  /// Bytes held by the index, slot pool, and free list.
  size_t memory_bytes() const;

 private:
  /// Flows live in a stable pool (deque + free list) behind a flat
  /// open-addressing index of slot handles — same state-layer shape as
  /// the descriptor store. Handle indirection is what preserves the
  /// contract the middlebox relies on: FlowEntry& returned by touch()
  /// stays valid across later inserts in the same burst (the index
  /// rehashes; the pool never moves an entry).
  struct Slot {
    net::FlowKey key;
    FlowEntry entry;
    bool live = false;
  };

  /// std::hash<FlowKey> is already avalanched (mix64 over the
  /// platform-stable steer key), so the index consumes it raw.
  static uint64_t hash_key(const net::FlowKey& key) {
    return std::hash<net::FlowKey>{}(key);
  }
  auto index_matcher(const net::FlowKey& key) const {
    return [this, &key](const uint32_t& slot) {
      return pool_[slot].key == key;
    };
  }
  auto index_hasher() const {
    return [this](const uint32_t& slot) {
      return hash_key(pool_[slot].key);
    };
  }
  /// Canonicalize a CID key through the alias table.
  net::FlowKey canonical(const net::FlowKey& key) const;
  /// Find-or-create; sets `created`. Returns the slot handle, or
  /// nullopt when max_flows blocks the create.
  std::optional<uint32_t> obtain(const net::FlowKey& key, bool& created,
                                 util::Timestamp now);
  Expected<Binding> map_one(const net::FlowKey& key,
                            const std::string& service_data,
                            util::Timestamp now,
                            util::Timestamp mapping_expires);

  uint32_t sniff_window_;
  util::Timestamp idle_timeout_;
  size_t max_flows_;
  state::FlatTable<uint32_t> index_;  // pool slot by canonical FlowKey
  std::deque<Slot> pool_;
  std::vector<uint32_t> free_;
  /// CID -> canonical-CID resolution for the QUIC-keyed entries. The
  /// steer field is unused here (the dataplane's ingest-side table
  /// owns steering); flow keying only needs canonicalization.
  quic::CidAliasTable aliases_;
  uint64_t touches_since_expiry_ = 0;
  telemetry::View<FlowTableStats> stats_;
  /// Mirror of table_.size() so the exporter thread never reads the
  /// (unsynchronized) map itself — nnn_flows_active.
  telemetry::Gauge active_flows_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::dataplane
