// Flow table with the paper's sniff-window state machine.
//
// "For a given packet our middle-box has to perform one of three
// tasks: i) search for a potential cookie (first 2-3 packets of every
// flow), ii) search and verify a cookie (a packet that contains a
// cookie) or iii) simply map a packet to a given service (for a flow
// already updated in our system)" (§4.6). The Boost daemon "sniffs the
// first 3 incoming packets for each flow" (§5.2).
//
// States per flow:
//   kSniffing  — still inspecting the first `sniff_window` packets
//   kMapped    — a verified cookie bound this flow to a service
//   kBestEffort— the window passed with no (valid) cookie
// Entries idle out after `idle_timeout` so the table stays bounded.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/five_tuple.h"
#include "state/flat_table.h"
#include "telemetry/view.h"
#include "util/clock.h"

namespace nnn::dataplane {

enum class FlowState : uint8_t { kSniffing = 0, kMapped, kBestEffort };

struct FlowEntry {
  FlowState state = FlowState::kSniffing;
  uint32_t packets_seen = 0;
  /// service_data of the verified cookie when state == kMapped.
  std::string service_data;
  util::Timestamp last_seen = 0;
  uint64_t bytes = 0;
  /// When a mapped flow reverts to best effort; 0 = never (the flow's
  /// lifetime). Set from the descriptor's mapping_ttl attribute.
  util::Timestamp mapping_expires = 0;
};

struct FlowTableStats {
  uint64_t flows_created = 0;
  uint64_t flows_expired = 0;
  uint64_t lookups = 0;

  friend bool operator==(const FlowTableStats&,
                         const FlowTableStats&) = default;
};

}  // namespace nnn::dataplane

namespace nnn::telemetry {

template <>
struct ViewTraits<dataplane::FlowTableStats> {
  using S = dataplane::FlowTableStats;
  static constexpr std::array fields{
      ViewField<S>{&S::flows_created, MetricType::kCounter,
                   "nnn_flows_created_total", "Flow-table entries created",
                   "", ""},
      ViewField<S>{&S::flows_expired, MetricType::kCounter,
                   "nnn_flows_expired_total",
                   "Flow-table entries evicted by idle timeout", "", ""},
      ViewField<S>{&S::lookups, MetricType::kCounter,
                   "nnn_flow_lookups_total", "Flow-table touch operations",
                   "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::dataplane {

class FlowTable {
 public:
  static constexpr uint32_t kDefaultSniffWindow = 3;
  static constexpr util::Timestamp kDefaultIdleTimeout =
      60 * util::kSecond;

  explicit FlowTable(uint32_t sniff_window = kDefaultSniffWindow,
                     util::Timestamp idle_timeout = kDefaultIdleTimeout);
  /// Pinned: the stats view registers a collector holding `this`.
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Look up (creating if absent) the entry for `tuple`, bump the
  /// packet/byte counters, and advance kSniffing -> kBestEffort when
  /// the window is exhausted. Returns the entry post-update.
  FlowEntry& touch(const net::FiveTuple& tuple, uint32_t bytes,
                   util::Timestamp now);

  /// Bind the flow — and, when `include_reverse`, its reverse — to a
  /// service (a cookie verified on this flow). `mapping_expires` (0 =
  /// never) bounds how long the mapping holds.
  void map_flow(const net::FiveTuple& tuple, const std::string& service_data,
                util::Timestamp now, bool include_reverse,
                util::Timestamp mapping_expires = 0);

  /// nullptr when the flow is unknown.
  const FlowEntry* find(const net::FiveTuple& tuple) const;

  /// Drop entries idle since before now - idle_timeout. Returns how
  /// many were evicted. touch() amortizes this; exposed for tests.
  size_t expire_idle(util::Timestamp now);

  size_t size() const { return index_.size(); }
  uint32_t sniff_window() const { return sniff_window_; }
  /// Materialized from the live telemetry cells (by value).
  FlowTableStats stats() const { return stats_.snapshot(); }
  /// Bytes held by the index, slot pool, and free list.
  size_t memory_bytes() const;

 private:
  /// Flows live in a stable pool (deque + free list) behind a flat
  /// open-addressing index of slot handles — same state-layer shape as
  /// the descriptor store. Handle indirection is what preserves the
  /// contract the middlebox relies on: FlowEntry& returned by touch()
  /// stays valid across later inserts in the same burst (the index
  /// rehashes; the pool never moves an entry).
  struct Slot {
    net::FiveTuple tuple;
    FlowEntry entry;
    bool live = false;
  };

  static uint64_t hash_tuple(const net::FiveTuple& tuple) {
    return state::mix_hash(std::hash<net::FiveTuple>{}(tuple));
  }
  auto index_matcher(const net::FiveTuple& tuple) const {
    return [this, &tuple](const uint32_t& slot) {
      return pool_[slot].tuple == tuple;
    };
  }
  auto index_hasher() const {
    return [this](const uint32_t& slot) {
      return hash_tuple(pool_[slot].tuple);
    };
  }
  /// Find-or-create; sets `created`. Returns the slot handle.
  uint32_t obtain(const net::FiveTuple& tuple, bool& created);

  uint32_t sniff_window_;
  util::Timestamp idle_timeout_;
  state::FlatTable<uint32_t> index_;  // pool slot by FiveTuple
  std::deque<Slot> pool_;
  std::vector<uint32_t> free_;
  uint64_t touches_since_expiry_ = 0;
  telemetry::View<FlowTableStats> stats_;
  /// Mirror of table_.size() so the exporter thread never reads the
  /// (unsynchronized) map itself — nnn_flows_active.
  telemetry::Gauge active_flows_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::dataplane
