#include "dataplane/sharding.h"

#include <string>

#include "cookies/cookie.h"
#include "util/hash.h"

namespace nnn::dataplane {

ShardedDataplane::ShardedDataplane(const util::Clock& clock,
                                   ServiceRegistry& registry,
                                   size_t shards, DispatchPolicy policy,
                                   Middlebox::Config config)
    : policy_(policy) {
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(clock, registry, config));
    auto& view = stats_.emplace_back();
    view.register_with(
        telemetry::Registry::global(),
        telemetry::LabelSet{{"shard", std::to_string(i)}});
  }
}

void ShardedDataplane::add_descriptor(
    const cookies::CookieDescriptor& descriptor) {
  for (auto& shard : shards_) {
    shard->verifier.add_descriptor(descriptor);
  }
}

void ShardedDataplane::revoke(cookies::CookieId id) {
  for (auto& shard : shards_) {
    shard->verifier.revoke(id);
  }
}

size_t pick_shard(const net::Packet& packet, DispatchPolicy policy,
                  size_t shard_count, const quic::CidAliasTable* aliases) {
  if (policy == DispatchPolicy::kDescriptorAffinity) {
    // Peek: no HMAC, no stack decode, no allocation — just the carrier
    // search and eight bytes of id. This mirrors the paper's hardware
    // note: "look the cookie id against a table of known descriptors"
    // before software. The id -> shard map goes through the shared
    // steering hash so the assignment is platform-stable (sequential
    // ids also balance, where the old raw `id % shards` striped them).
    if (const auto raw = packet.cookie_bytes()) {
      if (const auto id = cookies::peek_cookie_id(raw->bytes())) {
        return util::steer_shard(*id, shard_count);
      }
    }
    // Encrypted transport: the cookie only ever appears in the
    // handshake, so steady-state short-header packets reach here. The
    // alias table (fed by learn_steering on this same path) recovers
    // the steering key fixed at handshake time — the cookie id again —
    // so rotation and migration keep the descriptor pinned.
    if (aliases != nullptr) {
      return util::steer_shard(quic::steer_key_for(*aliases, packet),
                               shard_count);
    }
  }
  // kFlowHash stays deliberately naive — a tuple hash, exactly what a
  // CID-blind balancer does — but platform-stable, unlike the old
  // std::hash<FiveTuple> fallback. A NAT rebind changes this value;
  // that breakage is the ablation's control arm.
  return util::steer_shard(packet.flow_key().steer_key(), shard_count);
}

size_t ShardedDataplane::flow_shard(const net::Packet& packet) const {
  return util::steer_shard(packet.flow_key().steer_key(), shards_.size());
}

size_t ShardedDataplane::shard_for(const net::Packet& packet) const {
  return pick_shard(packet, policy_, shards_.size(), &aliases_);
}

Verdict ShardedDataplane::process(net::Packet& packet) {
  if (policy_ == DispatchPolicy::kDescriptorAffinity) {
    quic::learn_steering(aliases_, packet);
  }
  const size_t index = shard_for(packet);
  auto& s = stats_[index];
  s.cell<&ShardStats::packets>().inc();
  if (packet.cookie_bytes()) {
    s.cell<&ShardStats::cookie_packets>().inc();
  }
  return shards_[index]->middlebox.process(packet);
}

uint64_t ShardedDataplane::total_replays_detected() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->verifier.stats().replayed;
  }
  return total;
}

uint64_t ShardedDataplane::total_verified() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->verifier.stats().verified;
  }
  return total;
}

}  // namespace nnn::dataplane
