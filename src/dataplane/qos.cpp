#include "dataplane/qos.h"

#include <algorithm>
#include <string>

namespace nnn::dataplane {

TokenBucket::TokenBucket(double rate_bps, uint32_t burst_bytes,
                         util::Timestamp start)
    : rate_bps_(rate_bps),
      burst_bytes_(burst_bytes),
      tokens_(burst_bytes),
      last_refill_(start) {}

void TokenBucket::refill(util::Timestamp now) {
  if (now <= last_refill_) return;
  const double elapsed_sec =
      static_cast<double>(now - last_refill_) / util::kSecond;
  tokens_ = std::min(burst_bytes_, tokens_ + elapsed_sec * rate_bps_ / 8.0);
  last_refill_ = now;
}

bool TokenBucket::try_consume(uint32_t bytes, util::Timestamp now) {
  refill(now);
  if (tokens_ < bytes) return false;
  tokens_ -= bytes;
  return true;
}

bool TokenBucket::conforms(uint32_t bytes, util::Timestamp now) const {
  TokenBucket copy = *this;
  return copy.try_consume(bytes, now);
}

double TokenBucket::tokens(util::Timestamp now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

void TokenBucket::set_rate(double rate_bps, util::Timestamp now) {
  refill(now);
  rate_bps_ = rate_bps;
}

PriorityQueueSet::PriorityQueueSet(size_t bands,
                                   uint32_t band_capacity_bytes)
    : queues_(bands), band_capacity_bytes_(band_capacity_bytes) {
  for (size_t band = 0; band < bands; ++band) {
    auto& view = stats_.emplace_back();
    view.register_with(
        telemetry::Registry::global(),
        telemetry::LabelSet{{"band", std::to_string(band)}});
  }
}

bool PriorityQueueSet::enqueue(net::Packet packet, size_t band) {
  band = std::min(band, queues_.size() - 1);
  auto& s = stats_[band];
  if (s.value<&BandStats::bytes>() + packet.size() >
      band_capacity_bytes_) {
    s.cell<&BandStats::dropped>().inc();
    return false;
  }
  s.cell<&BandStats::bytes>().inc(packet.size());
  s.cell<&BandStats::enqueued>().inc();
  queues_[band].push_back(std::move(packet));
  return true;
}

std::optional<net::Packet> PriorityQueueSet::dequeue() {
  for (size_t band = 0; band < queues_.size(); ++band) {
    if (queues_[band].empty()) continue;
    net::Packet packet = std::move(queues_[band].front());
    queues_[band].pop_front();
    auto& s = stats_[band];
    s.cell<&BandStats::bytes>().dec(packet.size());
    s.cell<&BandStats::dequeued>().inc();
    return packet;
  }
  return std::nullopt;
}

std::optional<net::Packet> PriorityQueueSet::dequeue_band(size_t band) {
  if (band >= queues_.size() || queues_[band].empty()) return std::nullopt;
  net::Packet packet = std::move(queues_[band].front());
  queues_[band].pop_front();
  auto& s = stats_[band];
  s.cell<&BandStats::bytes>().dec(packet.size());
  s.cell<&BandStats::dequeued>().inc();
  return packet;
}

std::optional<uint32_t> PriorityQueueSet::peek_size() const {
  for (const auto& queue : queues_) {
    if (!queue.empty()) return queue.front().size();
  }
  return std::nullopt;
}

bool PriorityQueueSet::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& q) { return q.empty(); });
}

size_t PriorityQueueSet::queued_packets() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace nnn::dataplane
