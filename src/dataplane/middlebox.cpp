#include "dataplane/middlebox.h"

#include <cassert>

#include "cookies/generator.h"

namespace nnn::dataplane {

Middlebox::Middlebox(const util::Clock& clock,
                     cookies::CookieVerifier& verifier,
                     ServiceRegistry& registry, Config config)
    : clock_(clock),
      verifier_(verifier),
      registry_(registry),
      config_(config),
      flow_table_(config.sniff_window, config.flow_idle_timeout),
      ack_rng_(config.ack_seed) {
  stats_.register_with(telemetry::Registry::global());
}

Middlebox::Middlebox(const util::Clock& clock,
                     cookies::CookieVerifier& verifier,
                     ServiceRegistry& registry)
    : Middlebox(clock, verifier, registry, Config{}) {}

Verdict Middlebox::process(net::Packet& packet) {
  return process_at(packet, clock_.now());
}

net::FlowKey Middlebox::flow_key_for(const net::Packet& packet) {
  if (!packet.is_quic()) return packet.flow_key();
  const net::QuicHeader& q = *packet.quic;
  if (q.long_header) {
    // The handshake names the connection: the client's SCID is the
    // canonical CID every later packet resolves to.
    return net::FlowKey::from_cid(flow_table_.resolve_cid(q.scid));
  }
  if (q.prev_cid) {
    // Cooperative rotation marker: link the fresh CID before keying,
    // so this very packet already lands on the connection's entry.
    // An unlinkable marker (flow never seen or idled out) fails open:
    // the fresh CID simply starts a flow of its own.
    flow_table_.add_alias(q.dcid, *q.prev_cid);
  }
  return net::FlowKey::from_cid(flow_table_.resolve_cid(q.dcid));
}

void Middlebox::apply_stack(net::Packet& packet, const net::FlowKey& key,
                            FlowEntry& entry,
                            const cookies::ExtractedCookie& extracted,
                            util::Timestamp now, Verdict& verdict) {
  // With a composed stack, apply the first cookie this network can
  // verify (each network consumes its own layer, §4.5).
  for (const cookies::Cookie& cookie : extracted.stack) {
    const auto result = verifier_.verify(cookie);
    verdict.verify_status = result.status;
    if (!result.ok()) continue;
    // Transport restriction attribute: a descriptor may pin its
    // cookies to specific carriers.
    if (!result.descriptor->attributes.allows_transport(
            extracted.transport)) {
      verdict.verify_status = cookies::VerifyStatus::kUnknownId;
      continue;
    }
    const auto& attrs = result.descriptor->attributes;
    if (attrs.granularity == cookies::Granularity::kFlow) {
      const util::Timestamp mapping_expires =
          attrs.mapping_ttl ? now + *attrs.mapping_ttl : 0;
      flow_table_.map_flow(key, result.descriptor->service_data, now,
                           attrs.reverse_flow, mapping_expires);
      entry.state = FlowState::kMapped;
      entry.service_data = result.descriptor->service_data;
    }
    if (config_.delivery_guarantees && attrs.delivery_guarantee) {
      // The network owes the sender an acknowledgment on the
      // reverse path (§4.3).
      pending_acks_[packet.tuple.reversed()] =
          result.descriptor->cookie_id;
    }
    verdict.mapped_now = true;
    verdict.service_data = result.descriptor->service_data;
    verdict.action = registry_.lookup(result.descriptor->service_data);
    break;
  }
}

Verdict Middlebox::process_at(net::Packet& packet, util::Timestamp now) {
  stats_.cell<&MiddleboxStats::packets>().inc();
  stats_.cell<&MiddleboxStats::bytes>().inc(packet.size());

  const net::FlowKey key = flow_key_for(packet);
  FlowEntry& entry = *flow_table_.bind(key, packet.size(), now).value().entry;
  if (packet.is_quic() && packet.quic->long_header) {
    // Register the server's handshake CID against the entry that now
    // exists, so reverse-direction short headers resolve to it too.
    flow_table_.add_alias(packet.quic->dcid, packet.quic->scid);
  }
  Verdict verdict;

  const bool inspect =
      entry.state == FlowState::kSniffing ||
      (config_.mid_flow_cookies && entry.state != FlowState::kMapped);
  if (inspect) {
    // Task (i)/(ii): inspect this packet for a cookie on any carrier.
    const auto extracted = cookies::extract(packet);
    if (!extracted) {
      stats_.cell<&MiddleboxStats::task_search>().inc();
    } else {
      stats_.cell<&MiddleboxStats::task_search_and_verify>().inc();
      apply_stack(packet, key, entry, *extracted, now, verdict);
    }
  } else {
    // Task (iii): established flow, just map.
    stats_.cell<&MiddleboxStats::task_map_only>().inc();
  }

  if (!verdict.mapped_now && entry.state == FlowState::kMapped) {
    verdict.service_data = entry.service_data;
    verdict.action = registry_.lookup(entry.service_data);
  }

  if (verdict.action && config_.remark_dscp) {
    packet.dscp = *config_.remark_dscp;
  }
  if (config_.delivery_guarantees && !pending_acks_.empty()) {
    maybe_attach_ack(packet);
  }
  return verdict;
}

bool Middlebox::key_has_pending(const net::FlowKey& key) const {
  for (const PendingVerify& p : pending_info_) {
    // The pending cookie may map p.key and (reverse_flow attribute, on
    // by default) its reverse; either way this packet must not observe
    // flow state from before that mapping lands. Keys are canonical
    // (flow_key_for), so two CIDs of one connection compare equal.
    if (p.key == key || p.key.reversed() == key) return true;
  }
  return false;
}

void Middlebox::process_batch(std::span<net::Packet> packets,
                              std::span<Verdict> verdicts) {
  batch_ptrs_.resize(packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    batch_ptrs_[i] = &packets[i];
  }
  process_batch(std::span<net::Packet* const>(batch_ptrs_), verdicts);
}

void Middlebox::process_batch(std::span<net::Packet* const> packets,
                              std::span<Verdict> verdicts) {
  assert(verdicts.size() >= packets.size());
  if (config_.delivery_guarantees) {
    // Ack debts attach to whichever later packet can carry them, an
    // inherently per-packet interleaving; take the sequential path.
    for (size_t i = 0; i < packets.size(); ++i) {
      verdicts[i] = process(*packets[i]);
    }
    return;
  }
  // One clock read per burst (the verifier batches under the same
  // timestamp; see CookieVerifier::verify_batch on why that is sound).
  const util::Timestamp now = clock_.now();
  pending_cookies_.clear();
  pending_info_.clear();

  for (size_t i = 0; i < packets.size(); ++i) {
    net::Packet& packet = *packets[i];
    // Alias learning happens here too (flow_key_for mutates the alias
    // table); linking names never changes a pending entry pointer.
    const net::FlowKey key = flow_key_for(packet);
    // A queued cookie may remap this packet's flow; settle it before
    // this packet observes the flow state.
    if (!pending_info_.empty() && key_has_pending(key)) {
      flush_pending(packets, verdicts, now);
    }
    stats_.cell<&MiddleboxStats::packets>().inc();
    stats_.cell<&MiddleboxStats::bytes>().inc(packet.size());
    FlowEntry& entry =
        *flow_table_.bind(key, packet.size(), now).value().entry;
    if (packet.is_quic() && packet.quic->long_header) {
      flow_table_.add_alias(packet.quic->dcid, packet.quic->scid);
    }
    Verdict verdict;

    const bool inspect =
        entry.state == FlowState::kSniffing ||
        (config_.mid_flow_cookies && entry.state != FlowState::kMapped);
    if (inspect) {
      const auto extracted = cookies::extract(packet);
      if (!extracted) {
        stats_.cell<&MiddleboxStats::task_search>().inc();
      } else {
        stats_.cell<&MiddleboxStats::task_search_and_verify>().inc();
        if (extracted->stack.size() == 1) {
          // The common case: defer the MAC into the batched verify.
          // (FlowTable hands out references into a stable slot pool —
          // later inserts rehash only the handle index — and an entry
          // touched this burst cannot idle out, so holding &entry
          // until the flush is safe.)
          pending_cookies_.push_back(extracted->stack.front());
          pending_info_.push_back(PendingVerify{
              static_cast<uint32_t>(i), extracted->transport, key, &entry});
          continue;  // verdict written by flush_pending
        }
        // Composed stack: entries are tried in order with early exit —
        // inherently sequential. Settle the queue, then run it now.
        flush_pending(packets, verdicts, now);
        apply_stack(packet, key, entry, *extracted, now, verdict);
      }
    } else {
      stats_.cell<&MiddleboxStats::task_map_only>().inc();
    }

    if (!verdict.mapped_now && entry.state == FlowState::kMapped) {
      verdict.service_data = entry.service_data;
      verdict.action = registry_.lookup(entry.service_data);
    }
    if (verdict.action && config_.remark_dscp) {
      packet.dscp = *config_.remark_dscp;
    }
    verdicts[i] = verdict;
  }
  flush_pending(packets, verdicts, now);
}

void Middlebox::flush_pending(std::span<net::Packet* const> packets,
                              std::span<Verdict> verdicts,
                              util::Timestamp now) {
  if (pending_info_.empty()) return;
  pending_results_.resize(pending_cookies_.size());
  verifier_.verify_batch(pending_cookies_, pending_results_);

  for (size_t k = 0; k < pending_info_.size(); ++k) {
    const PendingVerify& p = pending_info_[k];
    net::Packet& packet = *packets[p.index];
    const cookies::VerifyResult& result = pending_results_[k];
    Verdict verdict;
    verdict.verify_status = result.status;
    if (result.ok()) {
      if (!result.descriptor->attributes.allows_transport(p.transport)) {
        verdict.verify_status = cookies::VerifyStatus::kUnknownId;
      } else {
        const auto& attrs = result.descriptor->attributes;
        if (attrs.granularity == cookies::Granularity::kFlow) {
          const util::Timestamp mapping_expires =
              attrs.mapping_ttl ? now + *attrs.mapping_ttl : 0;
          flow_table_.map_flow(p.key, result.descriptor->service_data, now,
                               attrs.reverse_flow, mapping_expires);
          p.entry->state = FlowState::kMapped;
          p.entry->service_data = result.descriptor->service_data;
        }
        verdict.mapped_now = true;
        verdict.service_data = result.descriptor->service_data;
        verdict.action = registry_.lookup(result.descriptor->service_data);
      }
    }
    if (!verdict.mapped_now && p.entry->state == FlowState::kMapped) {
      verdict.service_data = p.entry->service_data;
      verdict.action = registry_.lookup(p.entry->service_data);
    }
    if (verdict.action && config_.remark_dscp) {
      packet.dscp = *config_.remark_dscp;
    }
    verdicts[p.index] = verdict;
  }
  pending_cookies_.clear();
  pending_info_.clear();
}

void Middlebox::maybe_attach_ack(net::Packet& packet) {
  const auto it = pending_acks_.find(packet.tuple);
  if (it == pending_acks_.end()) return;
  const cookies::CookieDescriptor* descriptor =
      verifier_.find(it->second);
  if (!descriptor) {
    pending_acks_.erase(it);  // revoked/expired: nothing to ack with
    return;
  }
  // Mint a fresh ack cookie from the same descriptor and try the
  // carriers this packet supports; if none fits, keep the debt and
  // try the flow's next packet.
  cookies::Cookie ack;
  ack.cookie_id = descriptor->cookie_id;
  ack.uuid = crypto::Uuid::generate(ack_rng_);
  ack.timestamp = cookies::to_cookie_time(clock_.now());
  ack.signature = ack.compute_tag(util::BytesView(descriptor->key));
  for (const auto transport :
       {cookies::Transport::kIpv6Extension,
        cookies::Transport::kUdpHeader, cookies::Transport::kHttpHeader,
        cookies::Transport::kTlsExtension}) {
    if (cookies::attach(packet, ack, transport)) {
      pending_acks_.erase(it);
      return;
    }
  }
}

Verdict Middlebox::process_and_account(net::Packet& packet,
                                       ZeroRatingLedger& ledger,
                                       const net::IpAddress& subscriber) {
  Verdict verdict = process(packet);
  const bool free =
      verdict.action &&
      std::holds_alternative<ZeroRateAction>(*verdict.action);
  ledger.record(subscriber, packet.size(), free);
  return verdict;
}

}  // namespace nnn::dataplane
