#include "dataplane/middlebox.h"

#include "cookies/generator.h"

namespace nnn::dataplane {

Middlebox::Middlebox(const util::Clock& clock,
                     cookies::CookieVerifier& verifier,
                     ServiceRegistry& registry, Config config)
    : clock_(clock),
      verifier_(verifier),
      registry_(registry),
      config_(config),
      flow_table_(config.sniff_window, config.flow_idle_timeout),
      ack_rng_(config.ack_seed) {}

Middlebox::Middlebox(const util::Clock& clock,
                     cookies::CookieVerifier& verifier,
                     ServiceRegistry& registry)
    : Middlebox(clock, verifier, registry, Config{}) {}

Verdict Middlebox::process(net::Packet& packet) {
  const util::Timestamp now = clock_.now();
  ++stats_.packets;
  stats_.bytes += packet.size();

  FlowEntry& entry = flow_table_.touch(packet.tuple, packet.size(), now);
  Verdict verdict;

  const bool inspect =
      entry.state == FlowState::kSniffing ||
      (config_.mid_flow_cookies && entry.state != FlowState::kMapped);
  if (inspect) {
    // Task (i)/(ii): inspect this packet for a cookie on any carrier.
    const auto extracted = cookies::extract(packet);
    if (!extracted) {
      ++stats_.task_search;
    } else {
      ++stats_.task_search_and_verify;
      // With a composed stack, apply the first cookie this network can
      // verify (each network consumes its own layer, §4.5).
      for (const cookies::Cookie& cookie : extracted->stack) {
        const auto result = verifier_.verify(cookie);
        verdict.verify_status = result.status;
        if (!result.ok()) continue;
        // Transport restriction attribute: a descriptor may pin its
        // cookies to specific carriers.
        if (!result.descriptor->attributes.allows_transport(
                extracted->transport)) {
          verdict.verify_status = cookies::VerifyStatus::kUnknownId;
          continue;
        }
        const auto& attrs = result.descriptor->attributes;
        if (attrs.granularity == cookies::Granularity::kFlow) {
          const util::Timestamp mapping_expires =
              attrs.mapping_ttl ? now + *attrs.mapping_ttl : 0;
          flow_table_.map_flow(packet.tuple,
                               result.descriptor->service_data, now,
                               attrs.reverse_flow, mapping_expires);
          entry.state = FlowState::kMapped;
          entry.service_data = result.descriptor->service_data;
        }
        if (config_.delivery_guarantees && attrs.delivery_guarantee) {
          // The network owes the sender an acknowledgment on the
          // reverse path (§4.3).
          pending_acks_[packet.tuple.reversed()] =
              result.descriptor->cookie_id;
        }
        verdict.mapped_now = true;
        verdict.service_data = result.descriptor->service_data;
        verdict.action = registry_.lookup(result.descriptor->service_data);
        break;
      }
    }
  } else {
    // Task (iii): established flow, just map.
    ++stats_.task_map_only;
  }

  if (!verdict.mapped_now && entry.state == FlowState::kMapped) {
    verdict.service_data = entry.service_data;
    verdict.action = registry_.lookup(entry.service_data);
  }

  if (verdict.action && config_.remark_dscp) {
    packet.dscp = *config_.remark_dscp;
  }
  if (config_.delivery_guarantees && !pending_acks_.empty()) {
    maybe_attach_ack(packet);
  }
  return verdict;
}

void Middlebox::maybe_attach_ack(net::Packet& packet) {
  const auto it = pending_acks_.find(packet.tuple);
  if (it == pending_acks_.end()) return;
  const cookies::CookieDescriptor* descriptor =
      verifier_.find(it->second);
  if (!descriptor) {
    pending_acks_.erase(it);  // revoked/expired: nothing to ack with
    return;
  }
  // Mint a fresh ack cookie from the same descriptor and try the
  // carriers this packet supports; if none fits, keep the debt and
  // try the flow's next packet.
  cookies::Cookie ack;
  ack.cookie_id = descriptor->cookie_id;
  ack.uuid = crypto::Uuid::generate(ack_rng_);
  ack.timestamp = cookies::to_cookie_time(clock_.now());
  ack.signature = ack.compute_tag(util::BytesView(descriptor->key));
  for (const auto transport :
       {cookies::Transport::kIpv6Extension,
        cookies::Transport::kUdpHeader, cookies::Transport::kHttpHeader,
        cookies::Transport::kTlsExtension}) {
    if (cookies::attach(packet, ack, transport)) {
      pending_acks_.erase(it);
      return;
    }
  }
}

Verdict Middlebox::process_and_account(net::Packet& packet,
                                       ZeroRatingLedger& ledger,
                                       const net::IpAddress& subscriber) {
  Verdict verdict = process(packet);
  const bool free =
      verdict.action &&
      std::holds_alternative<ZeroRateAction>(*verdict.action);
  ledger.record(subscriber, packet.size(), free);
  return verdict;
}

}  // namespace nnn::dataplane
