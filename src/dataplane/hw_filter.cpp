#include "dataplane/hw_filter.h"

#include <cstdlib>

#include "cookies/transport.h"

namespace nnn::dataplane {

HardwareFilter::HardwareFilter(const util::Clock& clock,
                               util::Timestamp nct, Config config)
    : clock_(clock), nct_(nct), config_(config) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        decisions_.collect(builder, "nnn_hw_filter_total",
                           "Hardware pre-filter decisions",
                           [](HwDecision d) { return to_string(d); },
                           "decision");
      });
}

void HardwareFilter::learn_id(cookies::CookieId id) {
  ids_.insert(id);
}

void HardwareFilter::forget_id(cookies::CookieId id) {
  ids_.erase(id);
}

HwDecision HardwareFilter::classify(const net::Packet& packet) {
  const auto record = [&](HwDecision d) {
    decisions_.inc(d);
    return d;
  };

  // Stage (i): cookie presence, via the packet model's single carrier
  // search (net::Packet::cookie_bytes). The fixed-offset carriers
  // (IPv6 option, TCP option, UDP shim) are what real match-action
  // hardware parses; the text carriers (TLS/HTTP) are optional.
  const auto raw = packet.cookie_bytes();
  const bool text_carrier =
      raw && (raw->carrier == net::CookieCarrier::kTlsExtension ||
              raw->carrier == net::CookieCarrier::kHttpHeader);
  if (!raw || (text_carrier && !config_.parse_text_carriers)) {
    return record(HwDecision::kFastPath);
  }
  const auto stack = cookies::decode_stack(raw->bytes());
  if (!stack) return record(HwDecision::kFastPath);

  const cookies::Cookie& cookie = stack->front();
  // Stage (ii): id table.
  if (config_.check_id && !ids_.contains(cookie.cookie_id)) {
    return record(HwDecision::kRejectUnknownId);
  }
  // Stage (iii): timestamp window (seconds resolution, like the
  // software check — no MAC, so this is advisory only).
  if (config_.check_timestamp) {
    const int64_t now_sec =
        static_cast<int64_t>(cookies::to_cookie_time(clock_.now()));
    const int64_t delta =
        std::llabs(now_sec - static_cast<int64_t>(cookie.timestamp));
    if (delta > nct_ / util::kSecond) {
      return record(HwDecision::kRejectStale);
    }
  }
  return record(HwDecision::kToSoftware);
}

HwFilterStats HardwareFilter::stats() const {
  HwFilterStats s;
  s.fast_path = decisions_.count(HwDecision::kFastPath);
  s.to_software = decisions_.count(HwDecision::kToSoftware);
  s.reject_unknown_id = decisions_.count(HwDecision::kRejectUnknownId);
  s.reject_stale = decisions_.count(HwDecision::kRejectStale);
  return s;
}

}  // namespace nnn::dataplane
