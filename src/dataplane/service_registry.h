// Service registry: the policy side of the mechanism/policy split.
//
// A verified cookie yields opaque service_data; this registry is where
// a deployment decides what that means — "sends the packet through a
// high-priority queue. Alternatively it can mark the DSCP bits to
// enforce the service elsewhere in the network" (§4.2), or zero-rate
// the flow's bytes (§4.6). The cookie layer never sees these types.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

namespace nnn::dataplane {

/// Send matching traffic through priority band N (0 = highest).
struct PriorityAction {
  size_t band = 0;
  friend bool operator==(const PriorityAction&,
                         const PriorityAction&) = default;
};

/// Account matching bytes to the free (uncharged) counter.
struct ZeroRateAction {
  friend bool operator==(const ZeroRateAction&,
                         const ZeroRateAction&) = default;
};

/// Remark DSCP and let an internal DiffServ domain enforce
/// ("Cookie->DSCP mapping", §4.6).
struct DscpRemarkAction {
  uint8_t dscp = 0;
  friend bool operator==(const DscpRemarkAction&,
                         const DscpRemarkAction&) = default;
};

/// Police matching traffic to a rate (slow lane — AnyLink, §5).
struct RateLimitAction {
  double rate_bps = 0;
  uint32_t burst_bytes = 0;
  friend bool operator==(const RateLimitAction&,
                         const RateLimitAction&) = default;
};

using ServiceAction = std::variant<PriorityAction, ZeroRateAction,
                                   DscpRemarkAction, RateLimitAction>;

std::string to_string(const ServiceAction& action);

class ServiceRegistry {
 public:
  /// Bind a service_data tag to an action. Re-binding replaces.
  void bind(std::string service_data, ServiceAction action);
  bool unbind(const std::string& service_data);

  /// Look up the action for a verified cookie's service_data.
  std::optional<ServiceAction> lookup(const std::string& service_data) const;

  size_t size() const { return actions_.size(); }

 private:
  std::map<std::string, ServiceAction> actions_;
};

}  // namespace nnn::dataplane
