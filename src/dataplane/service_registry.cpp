#include "dataplane/service_registry.h"

#include "util/fmt.h"

namespace nnn::dataplane {

std::string to_string(const ServiceAction& action) {
  if (const auto* p = std::get_if<PriorityAction>(&action)) {
    return util::fmt("priority(band={})", p->band);
  }
  if (std::holds_alternative<ZeroRateAction>(action)) {
    return "zero-rate";
  }
  if (const auto* d = std::get_if<DscpRemarkAction>(&action)) {
    return util::fmt("dscp-remark({})", +d->dscp);
  }
  const auto& r = std::get<RateLimitAction>(action);
  return util::fmt("rate-limit({}bps)", r.rate_bps);
}

void ServiceRegistry::bind(std::string service_data, ServiceAction action) {
  actions_[std::move(service_data)] = action;
}

bool ServiceRegistry::unbind(const std::string& service_data) {
  return actions_.erase(service_data) > 0;
}

std::optional<ServiceAction> ServiceRegistry::lookup(
    const std::string& service_data) const {
  const auto it = actions_.find(service_data);
  if (it == actions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace nnn::dataplane
