// QoS primitives: token buckets and strict-priority queue sets.
//
// Boost "sends fast-lane traffic through a high priority queue, and
// occasionally throttles non-fast-lane traffic" (§5). These are the
// two mechanisms that implement that: a TokenBucket models the
// throttle (Linux tc-style policing of non-boosted traffic to a
// configured rate) and a PriorityQueueSet models the WMM-style strict
// priority queues at the AP. The simulator's links drain a
// PriorityQueueSet; the middlebox decides which band a packet joins.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "telemetry/view.h"
#include "util/clock.h"

namespace nnn::dataplane {

/// Per-band accounting for PriorityQueueSet (namespace scope so the
/// telemetry view traits can name it; PriorityQueueSet::BandStats
/// aliases it for existing call sites).
struct BandStats {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t dequeued = 0;
  uint64_t bytes = 0;  // currently queued bytes

  friend bool operator==(const BandStats&, const BandStats&) = default;
};

}  // namespace nnn::dataplane

namespace nnn::telemetry {

template <>
struct ViewTraits<dataplane::BandStats> {
  using S = dataplane::BandStats;
  static constexpr std::array fields{
      ViewField<S>{&S::enqueued, MetricType::kCounter,
                   "nnn_qos_band_enqueued_total",
                   "Packets accepted into a priority band", "", ""},
      ViewField<S>{&S::dropped, MetricType::kCounter,
                   "nnn_qos_band_dropped_total",
                   "Packets tail-dropped at a full priority band", "", ""},
      ViewField<S>{&S::dequeued, MetricType::kCounter,
                   "nnn_qos_band_dequeued_total",
                   "Packets drained from a priority band", "", ""},
      ViewField<S>{&S::bytes, MetricType::kGauge, "nnn_qos_band_bytes",
                   "Bytes currently queued in a priority band", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::dataplane {

/// Classic token bucket: capacity `burst_bytes`, refilled at
/// `rate_bps/8` bytes per second. conforms() is a pure check;
/// try_consume() also spends the tokens.
class TokenBucket {
 public:
  TokenBucket(double rate_bps, uint32_t burst_bytes,
              util::Timestamp start = 0);

  bool try_consume(uint32_t bytes, util::Timestamp now);
  bool conforms(uint32_t bytes, util::Timestamp now) const;
  double tokens(util::Timestamp now) const;

  double rate_bps() const { return rate_bps_; }
  double burst_bytes() const { return burst_bytes_; }
  void set_rate(double rate_bps, util::Timestamp now);

 private:
  void refill(util::Timestamp now);

  double rate_bps_;
  double burst_bytes_;
  double tokens_;
  util::Timestamp last_refill_;
};

/// Strict-priority bands of FIFO queues with a shared-per-band byte
/// cap. Band 0 is highest priority. Tail-drop on overflow (drops are
/// what shapes the Fig. 5b best-effort/throttled CDFs).
class PriorityQueueSet {
 public:
  using BandStats = dataplane::BandStats;

  /// `band_capacity_bytes` applies to each band independently.
  /// Registers one nnn_qos_band_* sample set per band, labeled
  /// band="0".."N-1"; pinned (collectors hold `this`).
  PriorityQueueSet(size_t bands, uint32_t band_capacity_bytes);
  PriorityQueueSet(const PriorityQueueSet&) = delete;
  PriorityQueueSet& operator=(const PriorityQueueSet&) = delete;

  /// Enqueue into `band`; false (and drop) when the band is full.
  bool enqueue(net::Packet packet, size_t band);

  /// Dequeue from the highest-priority non-empty band.
  std::optional<net::Packet> dequeue();

  /// Peek the size of the packet dequeue() would return next.
  std::optional<uint32_t> peek_size() const;

  /// Per-band access, used by shaped links that must skip a band whose
  /// head does not conform to its shaper yet.
  bool band_empty(size_t band) const { return queues_[band].empty(); }
  const net::Packet& peek_band(size_t band) const {
    return queues_[band].front();
  }
  std::optional<net::Packet> dequeue_band(size_t band);

  bool empty() const;
  size_t bands() const { return queues_.size(); }
  size_t queued_packets() const;
  /// Materialized from the band's telemetry cells (by value).
  BandStats stats(size_t band) const { return stats_[band].snapshot(); }

 private:
  std::vector<std::deque<net::Packet>> queues_;
  /// deque, not vector: views are pinned (registered collectors hold
  /// their address) and deque never relocates elements.
  std::deque<telemetry::View<BandStats>> stats_;
  uint32_t band_capacity_bytes_;
};

}  // namespace nnn::dataplane
