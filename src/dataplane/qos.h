// QoS primitives: token buckets and strict-priority queue sets.
//
// Boost "sends fast-lane traffic through a high priority queue, and
// occasionally throttles non-fast-lane traffic" (§5). These are the
// two mechanisms that implement that: a TokenBucket models the
// throttle (Linux tc-style policing of non-boosted traffic to a
// configured rate) and a PriorityQueueSet models the WMM-style strict
// priority queues at the AP. The simulator's links drain a
// PriorityQueueSet; the middlebox decides which band a packet joins.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "util/clock.h"

namespace nnn::dataplane {

/// Classic token bucket: capacity `burst_bytes`, refilled at
/// `rate_bps/8` bytes per second. conforms() is a pure check;
/// try_consume() also spends the tokens.
class TokenBucket {
 public:
  TokenBucket(double rate_bps, uint32_t burst_bytes,
              util::Timestamp start = 0);

  bool try_consume(uint32_t bytes, util::Timestamp now);
  bool conforms(uint32_t bytes, util::Timestamp now) const;
  double tokens(util::Timestamp now) const;

  double rate_bps() const { return rate_bps_; }
  double burst_bytes() const { return burst_bytes_; }
  void set_rate(double rate_bps, util::Timestamp now);

 private:
  void refill(util::Timestamp now);

  double rate_bps_;
  double burst_bytes_;
  double tokens_;
  util::Timestamp last_refill_;
};

/// Strict-priority bands of FIFO queues with a shared-per-band byte
/// cap. Band 0 is highest priority. Tail-drop on overflow (drops are
/// what shapes the Fig. 5b best-effort/throttled CDFs).
class PriorityQueueSet {
 public:
  struct BandStats {
    uint64_t enqueued = 0;
    uint64_t dropped = 0;
    uint64_t dequeued = 0;
    uint64_t bytes = 0;  // currently queued bytes
  };

  /// `band_capacity_bytes` applies to each band independently.
  PriorityQueueSet(size_t bands, uint32_t band_capacity_bytes);

  /// Enqueue into `band`; false (and drop) when the band is full.
  bool enqueue(net::Packet packet, size_t band);

  /// Dequeue from the highest-priority non-empty band.
  std::optional<net::Packet> dequeue();

  /// Peek the size of the packet dequeue() would return next.
  std::optional<uint32_t> peek_size() const;

  /// Per-band access, used by shaped links that must skip a band whose
  /// head does not conform to its shaper yet.
  bool band_empty(size_t band) const { return queues_[band].empty(); }
  const net::Packet& peek_band(size_t band) const {
    return queues_[band].front();
  }
  std::optional<net::Packet> dequeue_band(size_t band);

  bool empty() const;
  size_t bands() const { return queues_.size(); }
  size_t queued_packets() const;
  const BandStats& stats(size_t band) const { return stats_[band]; }

 private:
  std::vector<std::deque<net::Packet>> queues_;
  std::vector<BandStats> stats_;
  uint32_t band_capacity_bytes_;
};

}  // namespace nnn::dataplane
