#include "dataplane/zero_rating.h"

namespace nnn::dataplane {

ZeroRatingLedger::ZeroRatingLedger(uint64_t monthly_cap_bytes)
    : monthly_cap_bytes_(monthly_cap_bytes) {}

void ZeroRatingLedger::record(const net::IpAddress& subscriber,
                              uint64_t bytes, bool free) {
  UsageCounters& c = counters_[subscriber];
  if (free) {
    c.free_bytes += bytes;
  } else {
    c.charged_bytes += bytes;
  }
}

UsageCounters ZeroRatingLedger::usage(
    const net::IpAddress& subscriber) const {
  const auto it = counters_.find(subscriber);
  return it == counters_.end() ? UsageCounters{} : it->second;
}

std::optional<uint64_t> ZeroRatingLedger::remaining_cap(
    const net::IpAddress& subscriber) const {
  if (monthly_cap_bytes_ == 0) return std::nullopt;
  const uint64_t used = usage(subscriber).charged_bytes;
  return used >= monthly_cap_bytes_ ? 0 : monthly_cap_bytes_ - used;
}

bool ZeroRatingLedger::over_cap(const net::IpAddress& subscriber) const {
  if (monthly_cap_bytes_ == 0) return false;
  return usage(subscriber).charged_bytes >= monthly_cap_bytes_;
}

void ZeroRatingLedger::reset() {
  counters_.clear();
}

}  // namespace nnn::dataplane
