// Zero-rating accounting (§4.6).
//
// "We built a cookie-based zero-rating middlebox ... Our middle-box
// keeps two counters per IP address (one for free and another for
// charged data), and enforces the service in software for both
// directions of a flow." This ledger is those counters plus the data
// cap bookkeeping a billing system would read.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/ip.h"

namespace nnn::dataplane {

struct UsageCounters {
  uint64_t free_bytes = 0;
  uint64_t charged_bytes = 0;

  uint64_t total() const { return free_bytes + charged_bytes; }
};

class ZeroRatingLedger {
 public:
  /// `monthly_cap_bytes` = 0 means uncapped accounts.
  explicit ZeroRatingLedger(uint64_t monthly_cap_bytes = 0);

  /// Account `bytes` for `subscriber`, free or charged.
  void record(const net::IpAddress& subscriber, uint64_t bytes, bool free);

  UsageCounters usage(const net::IpAddress& subscriber) const;

  /// Remaining charged quota; nullopt when uncapped.
  std::optional<uint64_t> remaining_cap(
      const net::IpAddress& subscriber) const;

  /// True when charged usage reached the cap (traffic would be blocked
  /// or surcharged by the billing policy — zero-rated traffic flows on,
  /// which is the entire point of the service).
  bool over_cap(const net::IpAddress& subscriber) const;

  /// New billing month.
  void reset();

  size_t subscribers() const { return counters_.size(); }
  uint64_t cap() const { return monthly_cap_bytes_; }

 private:
  uint64_t monthly_cap_bytes_;
  std::unordered_map<net::IpAddress, UsageCounters> counters_;
};

}  // namespace nnn::dataplane
