// The cookie-enabled middlebox (§4.2 component 3, §4.6 deployment).
//
// This is the NFV-style box the paper benchmarks in Fig. 4: it sits on
// the forwarding path, runs the flow-table state machine, searches the
// first packets of each flow for a cookie on any transport, verifies
// cookies through the CookieVerifier, resolves service_data through
// the ServiceRegistry, and reports a per-packet verdict the forwarding
// element (sim link, zero-rating ledger, DSCP domain) acts on.
//
// Failure semantics are the paper's: anything that goes wrong —
// unknown id, bad MAC, stale timestamp, replay, malformed blob — just
// means best-effort; the packet is never dropped by the cookie layer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/flow_table.h"
#include "dataplane/service_registry.h"
#include "dataplane/zero_rating.h"
#include "net/packet.h"
#include "telemetry/view.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::dataplane {

/// What the forwarding element should do with a packet.
struct Verdict {
  /// Action resolved from the flow's service mapping; nullopt =
  /// best-effort/default handling.
  std::optional<ServiceAction> action;
  /// service_data string backing `action` (for accounting/tests).
  std::string service_data;
  /// True when this very packet carried the cookie that (newly)
  /// mapped the flow.
  bool mapped_now = false;
  /// Verification outcome when this packet carried a cookie.
  std::optional<cookies::VerifyStatus> verify_status;
};

struct MiddleboxStats {
  /// §4.6's three per-packet task classes.
  uint64_t task_search = 0;          // sniffed, no cookie found
  uint64_t task_search_and_verify = 0;  // cookie found and checked
  uint64_t task_map_only = 0;        // established flow fast path
  uint64_t packets = 0;
  uint64_t bytes = 0;

  friend bool operator==(const MiddleboxStats&,
                         const MiddleboxStats&) = default;
};

}  // namespace nnn::dataplane

namespace nnn::telemetry {

/// MiddleboxStats as registry families: the three task classes fan
/// into one family keyed by task=..., packets/bytes stand alone.
template <>
struct ViewTraits<dataplane::MiddleboxStats> {
  using S = dataplane::MiddleboxStats;
  static constexpr std::array fields{
      ViewField<S>{&S::task_search, MetricType::kCounter,
                   "nnn_middlebox_task_total",
                   "Packets by middlebox task class", "task", "search"},
      ViewField<S>{&S::task_search_and_verify, MetricType::kCounter,
                   "nnn_middlebox_task_total",
                   "Packets by middlebox task class", "task",
                   "search-and-verify"},
      ViewField<S>{&S::task_map_only, MetricType::kCounter,
                   "nnn_middlebox_task_total",
                   "Packets by middlebox task class", "task", "map-only"},
      ViewField<S>{&S::packets, MetricType::kCounter,
                   "nnn_middlebox_packets_total",
                   "Packets processed by the middlebox", "", ""},
      ViewField<S>{&S::bytes, MetricType::kCounter,
                   "nnn_middlebox_bytes_total",
                   "Bytes processed by the middlebox", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::dataplane {

class Middlebox {
 public:
  struct Config {
    uint32_t sniff_window = FlowTable::kDefaultSniffWindow;
    util::Timestamp flow_idle_timeout = FlowTable::kDefaultIdleTimeout;
    /// When set, a verified cookie also remarks the packet's DSCP so an
    /// internal DiffServ domain can enforce (cookie->DSCP mode, §4.6).
    std::optional<uint8_t> remark_dscp;
    /// Honor the delivery-guarantee attribute (§4.3): when a verified
    /// cookie's descriptor requests it, the middlebox mints an
    /// acknowledgment cookie from the same descriptor and attaches it
    /// to the first reverse-path packet that can carry it.
    bool delivery_guarantees = false;
    /// Seed for ack-cookie uuid generation.
    uint64_t ack_seed = 0xacc5eed;
    /// Inspect every packet for cookies, not just the sniff window.
    /// The paper's cheap deployment sniffs "the first 3 incoming
    /// packets of each flow"; application-assisted services ("a video
    /// client can ask for extra bandwidth if its buffer runs low",
    /// §4.2) need cookies honored mid-flow. Costs a search per packet
    /// on non-mapped flows (see bench/ablation_dataplane).
    bool mid_flow_cookies = false;
  };

  /// The clock must outlive the middlebox. The verifier and registry
  /// are shared with the control plane (the cookie server installs
  /// descriptors into the verifier).
  Middlebox(const util::Clock& clock, cookies::CookieVerifier& verifier,
            ServiceRegistry& registry, Config config);
  Middlebox(const util::Clock& clock, cookies::CookieVerifier& verifier,
            ServiceRegistry& registry);
  /// Pinned: the stats view registers a collector holding `this`.
  Middlebox(const Middlebox&) = delete;
  Middlebox& operator=(const Middlebox&) = delete;

  /// Process one packet on the forwarding path. May mutate the packet
  /// (DSCP remark in remark mode).
  Verdict process(net::Packet& packet);

  /// Process a burst, filling verdicts[i] for packets[i]
  /// (verdicts.size() >= packets.size()). Semantically equivalent to
  /// calling process() on each packet in order — the flow-table and
  /// replay state machines are order-sensitive, so the batch path
  /// defers only what is provably independent: single-cookie
  /// verifications on flows no earlier in-flight cookie can touch.
  /// Those route through CookieVerifier::verify_batch (one clock read,
  /// descriptor-grouped MACs); everything else — composed stacks,
  /// packets whose flow (or its reverse) has a cookie pending, and the
  /// whole burst when delivery guarantees are on — falls back to the
  /// sequential path at the right point in the order.
  void process_batch(std::span<net::Packet> packets,
                     std::span<Verdict> verdicts);

  /// Indirect-burst form — the primary implementation since the arena
  /// rework: packets[i] point into a PacketArena (or anywhere stable
  /// for the call); nothing is moved or copied. The contiguous
  /// overload above delegates here through a pointer scratch vector.
  void process_batch(std::span<net::Packet* const> packets,
                     std::span<Verdict> verdicts);

  /// Zero-rating convenience: process + account to `ledger` ("two
  /// counters per IP"): bytes of flows mapped to ZeroRateAction count
  /// free, everything else charged. `subscriber` is the customer IP
  /// (source on uplink, destination on downlink).
  Verdict process_and_account(net::Packet& packet, ZeroRatingLedger& ledger,
                              const net::IpAddress& subscriber);

  /// Materialized from the live telemetry cells (by value).
  MiddleboxStats stats() const { return stats_.snapshot(); }
  const FlowTable& flows() const { return flow_table_; }
  cookies::CookieVerifier& verifier() { return verifier_; }
  /// Flows with a delivery-guarantee ack still owed.
  size_t pending_acks() const { return pending_acks_.size(); }

 private:
  /// One queued single-cookie verification in a batch.
  struct PendingVerify {
    uint32_t index;  // packet position in the burst
    cookies::Transport transport;
    /// Canonical flow key the cookie will map (flow_key_for output).
    net::FlowKey key;
    /// Flow entry touched in pass 1. Stable until the flush:
    /// the slot pool never moves entries, and entries touched this
    /// burst cannot be idle-expired at the same timestamp.
    FlowEntry* entry;
  };

  /// The flow key this packet's state lives under — and the ONE place
  /// the middlebox learns CID linkage on the way: a long header keys
  /// on the client's SCID (the canonical CID) and registers the
  /// server's CID as an alias after the entry exists; a short header
  /// with a prev_cid rotation marker records the alias, then resolves.
  /// Classic packets pass through to Packet::flow_key(). Keys are
  /// returned CANONICALIZED so two packets of one connection always
  /// compare equal (key_has_pending depends on that).
  net::FlowKey flow_key_for(const net::Packet& packet);

  /// process() body with the clock read hoisted.
  Verdict process_at(net::Packet& packet, util::Timestamp now);

  /// Apply a verified-cookie stack to a flow entry (the §4.5 loop).
  void apply_stack(net::Packet& packet, const net::FlowKey& key,
                   FlowEntry& entry,
                   const cookies::ExtractedCookie& extracted,
                   util::Timestamp now, Verdict& verdict);

  /// True when `key` (or its reverse) belongs to a packet with a
  /// cookie still pending in the current batch.
  bool key_has_pending(const net::FlowKey& key) const;

  /// Verify all pending cookies and apply their outcomes in order.
  void flush_pending(std::span<net::Packet* const> packets,
                     std::span<Verdict> verdicts, util::Timestamp now);

  /// Attach an owed ack cookie to a reverse-path packet if possible.
  void maybe_attach_ack(net::Packet& packet);

  const util::Clock& clock_;
  cookies::CookieVerifier& verifier_;
  ServiceRegistry& registry_;
  Config config_;
  FlowTable flow_table_;
  telemetry::View<MiddleboxStats> stats_;
  util::Rng ack_rng_;
  /// reverse-flow tuple -> descriptor owing an ack.
  std::unordered_map<net::FiveTuple, cookies::CookieId> pending_acks_;
  /// Batch scratch (parallel vectors; no per-burst allocation once
  /// warm): queued cookies, their packet/transport info, and verdicts.
  std::vector<cookies::Cookie> pending_cookies_;
  std::vector<PendingVerify> pending_info_;
  std::vector<cookies::VerifyResult> pending_results_;
  /// Pointer scratch for the contiguous process_batch overload.
  std::vector<net::Packet*> batch_ptrs_;
};

}  // namespace nnn::dataplane
