// Hardware pre-filter model (§4.6, "Hardware support for cookies").
//
// "Processing cookies will most likely take place in software, as
// current equipment does not support HMAC-style verification ... The
// hardware could detect and forward to software only packets that
// contain cookies, avoiding the extra overhead for all other packets.
// It could further verify the timestamp and look the cookie id against
// a table of known descriptors, further reducing the amount of packets
// that need to go to software."
//
// HardwareFilter is that match-action stage: no HMAC, no flow state —
// just (i) cookie presence detection on the fixed-offset carriers plus
// a shallow scan of the text carriers, (ii) an exact-match id table,
// (iii) a timestamp window check. Everything it can't vouch for goes
// to software; everything it can reject early never gets there.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "cookies/cookie.h"
#include "net/packet.h"
#include "telemetry/labels.h"
#include "telemetry/view.h"
#include "util/clock.h"

namespace nnn::dataplane {

enum class HwDecision : uint8_t {
  /// No cookie anywhere: skip the software cookie path entirely.
  kFastPath = 0,
  /// Cookie present and plausible (known id, fresh): software must
  /// verify the MAC and the replay cache.
  kToSoftware,
  /// Cookie present but its id is not in the descriptor table: treat
  /// as best-effort without burning a software cycle.
  kRejectUnknownId,
  /// Cookie present but the timestamp is outside the NCT window.
  kRejectStale,
};

// to_string(HwDecision) lives in telemetry/labels.h (included above).

/// Legacy materialized form; the live state is one telemetry cell per
/// HwDecision (stats() builds this struct on demand).
struct HwFilterStats {
  uint64_t fast_path = 0;
  uint64_t to_software = 0;
  uint64_t reject_unknown_id = 0;
  uint64_t reject_stale = 0;

  uint64_t total() const {
    return fast_path + to_software + reject_unknown_id + reject_stale;
  }

  friend bool operator==(const HwFilterStats&,
                         const HwFilterStats&) = default;
};

class HardwareFilter {
 public:
  struct Config {
    /// Stage (ii): exact-match lookup of the cookie id.
    bool check_id = true;
    /// Stage (iii): timestamp window check.
    bool check_timestamp = true;
    /// Whether the hardware parses the text carriers (HTTP header /
    /// TLS extension). A conservative deployment sends all TCP payload
    /// within the sniff window to software instead.
    bool parse_text_carriers = true;
  };

  /// Registers nnn_hw_filter_total{decision=...}; pinned (the
  /// collector holds `this`).
  HardwareFilter(const util::Clock& clock, util::Timestamp nct,
                 Config config);
  HardwareFilter(const HardwareFilter&) = delete;
  HardwareFilter& operator=(const HardwareFilter&) = delete;

  /// Program / unprogram a descriptor id (mirrors the verifier table).
  void learn_id(cookies::CookieId id);
  void forget_id(cookies::CookieId id);
  size_t table_size() const { return ids_.size(); }

  /// The match-action decision for one packet.
  HwDecision classify(const net::Packet& packet);

  /// Materialized from the live decision cells (by value).
  HwFilterStats stats() const;

 private:
  const util::Clock& clock_;
  util::Timestamp nct_;
  Config config_;
  std::unordered_set<cookies::CookieId> ids_;
  telemetry::StatusCounters<HwDecision, kHwDecisionCount> decisions_;
  telemetry::Registration registration_;  // last: deregisters first
};

}  // namespace nnn::dataplane
