// Scale-out deployment (§4.6).
//
// "We can use multiple cores instead of one, and similarly add more
// than one middle-boxes to scale-out the deployment, along with a
// load-balancer that shares the traffic among servers. The main
// challenge to scale out cookies in a distributed deployment comes
// from verifying uniqueness as cookies from the same descriptor might
// appear in different places (a problem known as double-spending in
// digital cash schemes). We can relax uniqueness verification in
// certain cases — for example an ISP can ensure that all cookies from
// a specific descriptor always go through the same middle-box where
// uniqueness can be locally verified."
//
// This module implements both halves of that paragraph:
//  - DispatchPolicy::kFlowHash — the naive load balancer. Cookies from
//    one descriptor can land on different shards, whose replay caches
//    are independent: a copied cookie can be "spent" once per shard.
//  - DispatchPolicy::kDescriptorAffinity — the paper's fix: the
//    balancer peeks at the cookie id and pins each descriptor to one
//    shard, making the use-once check locally verifiable again.
//    Cookie-less packets still spread by flow hash (they need no
//    uniqueness check), so load balance is preserved where it matters.
//
// ShardedDataplane runs the shards on the calling thread — useful for
// deterministic tests and policy experiments. The actually-parallel
// version (worker threads fed through lock-free rings by a
// load-balancer thread, same pick_shard policies) is
// runtime::WorkerPool + runtime::Dispatcher.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "quic/alias_table.h"
#include "telemetry/labels.h"
#include "util/clock.h"

namespace nnn::dataplane {

enum class DispatchPolicy : uint8_t {
  kFlowHash = 0,          // naive: hash the 5-tuple
  kDescriptorAffinity,    // peek cookie id; pin descriptors to shards
};

// to_string(DispatchPolicy) lives in telemetry/labels.h (included
// above).

/// Shard selection under `policy`, shared by the single-threaded model
/// below and the threaded runtime::Dispatcher. Under descriptor
/// affinity a cookie-bearing packet is pinned by its cookie id (the
/// cheap no-HMAC peek); a QUIC short-header packet whose connection
/// `aliases` knows is pinned by the steering key learned at handshake
/// (the cookie id again — so rotation and migration keep hitting the
/// shard owning the descriptor); everything else spreads by the
/// packet's FlowKey steer key through util::steer_shard — platform-
/// stable end to end, where the old fallback hashed the 5-tuple with
/// std::hash and could disagree across standard libraries.
size_t pick_shard(const net::Packet& packet, DispatchPolicy policy,
                  size_t shard_count,
                  const quic::CidAliasTable* aliases = nullptr);

struct ShardStats {
  uint64_t packets = 0;
  uint64_t cookie_packets = 0;

  friend bool operator==(const ShardStats&, const ShardStats&) = default;
};

}  // namespace nnn::dataplane

namespace nnn::telemetry {

template <>
struct ViewTraits<dataplane::ShardStats> {
  using S = dataplane::ShardStats;
  static constexpr std::array fields{
      ViewField<S>{&S::packets, MetricType::kCounter,
                   "nnn_shard_packets_total",
                   "Packets dispatched to a shard", "", ""},
      ViewField<S>{&S::cookie_packets, MetricType::kCounter,
                   "nnn_shard_cookie_packets_total",
                   "Cookie-bearing packets dispatched to a shard", "", ""},
  };
};

}  // namespace nnn::telemetry

namespace nnn::dataplane {

class ShardedDataplane {
 public:
  /// Builds `shards` independent middleboxes, each with its own
  /// verifier and replay cache (the realistic deployment: separate
  /// machines). Descriptors are installed into every shard — key
  /// distribution is cheap control-plane state; replay caches are the
  /// part that cannot be shared cheaply.
  ShardedDataplane(const util::Clock& clock, ServiceRegistry& registry,
                   size_t shards, DispatchPolicy policy,
                   Middlebox::Config config = Middlebox::Config{});

  void add_descriptor(const cookies::CookieDescriptor& descriptor);
  void revoke(cookies::CookieId id);

  /// Dispatch one packet to a shard and process it there.
  Verdict process(net::Packet& packet);

  /// Which shard `process` would pick for this packet.
  size_t shard_for(const net::Packet& packet) const;

  size_t shard_count() const { return shards_.size(); }
  DispatchPolicy policy() const { return policy_; }
  /// Materialized from the shard's telemetry cells (by value).
  ShardStats stats(size_t shard) const { return stats_[shard].snapshot(); }
  const Middlebox& shard(size_t i) const { return shards_[i]->middlebox; }

  /// Aggregate replay rejections across shards — the double-spend
  /// detector. Under kFlowHash a replayed cookie may *not* show up
  /// here (it verified "fresh" on another shard); under affinity it
  /// always does.
  uint64_t total_replays_detected() const;
  uint64_t total_verified() const;

 private:
  struct Shard {
    // Order matters: the verifier must outlive the middlebox.
    cookies::CookieVerifier verifier;
    Middlebox middlebox;

    Shard(const util::Clock& clock, ServiceRegistry& registry,
          Middlebox::Config config)
        : verifier(clock), middlebox(clock, verifier, registry, config) {}
  };

  size_t flow_shard(const net::Packet& packet) const;

  DispatchPolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Balancer-side CID steering state (descriptor affinity only):
  /// learned from handshakes and rotation markers as packets pass, so
  /// a connection's whole CID history steers to one shard.
  quic::CidAliasTable aliases_;
  /// deque: views are pinned (collectors hold their address).
  std::deque<telemetry::View<ShardStats>> stats_;
};

}  // namespace nnn::dataplane
