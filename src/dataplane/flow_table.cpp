#include "dataplane/flow_table.h"

#include <cassert>

namespace nnn::dataplane {

namespace {

/// Amortize idle expiry: run a sweep every this many touches.
constexpr uint64_t kExpirySweepInterval = 8192;

constexpr Error kOverloadError{ErrorDomain::kFlow, ErrorCode::kOverload,
                               "flow table at max_flows"};
constexpr Error kUnknownFlowError{ErrorDomain::kFlow, ErrorCode::kUnknownId,
                                  "flow unknown"};

}  // namespace

FlowTable::FlowTable(uint32_t sniff_window, util::Timestamp idle_timeout,
                     size_t max_flows)
    : sniff_window_(sniff_window),
      idle_timeout_(idle_timeout),
      max_flows_(max_flows),
      aliases_(quic::CidAliasConfig{.max_connections = 0}) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        stats_.collect(builder);
        builder.gauge("nnn_flows_active", "Flow-table entries resident",
                      {}, active_flows_.value());
      });
}

net::FlowKey FlowTable::canonical(const net::FlowKey& key) const {
  if (!key.is_cid()) return key;
  const uint64_t canon = aliases_.resolve(key.cid());
  return canon == key.cid() ? key : net::FlowKey::from_cid(canon);
}

std::optional<uint32_t> FlowTable::obtain(const net::FlowKey& key,
                                          bool& created,
                                          util::Timestamp now) {
  if (max_flows_ != 0 && index_.size() >= max_flows_) {
    // At capacity: the insert below may be a pure find (fine) or a
    // create (blocked). Probe first so finds never pay for fullness.
    if (index_.find(hash_key(key), index_matcher(key)) == nullptr) {
      // One forced sweep — idle flows should lose to live traffic
      // before any packet is refused an entry.
      expire_idle(now);
      if (index_.size() >= max_flows_) {
        created = false;
        return std::nullopt;
      }
    }
  }
  const auto [slot_entry, inserted] = index_.find_or_insert(
      hash_key(key), index_matcher(key), index_hasher(), [&] {
        uint32_t slot;
        if (!free_.empty()) {
          slot = free_.back();
          free_.pop_back();
        } else {
          pool_.emplace_back();
          slot = static_cast<uint32_t>(pool_.size() - 1);
        }
        Slot& s = pool_[slot];
        s.key = key;
        s.entry = FlowEntry{};
        s.live = true;
        return slot;
      });
  created = inserted;
  return *slot_entry;
}

Expected<FlowTable::Binding> FlowTable::bind(const net::FlowKey& key,
                                             uint32_t bytes,
                                             util::Timestamp now) {
  stats_.cell<&FlowTableStats::lookups>().inc();
  if (++touches_since_expiry_ >= kExpirySweepInterval) {
    touches_since_expiry_ = 0;
    expire_idle(now);
  }
  bool created = false;
  const std::optional<uint32_t> slot = obtain(canonical(key), created, now);
  if (!slot) {
    stats_.cell<&FlowTableStats::overloads>().inc();
    return unexpected(kOverloadError);
  }
  FlowEntry& entry = pool_[*slot].entry;
  if (created) {
    stats_.cell<&FlowTableStats::flows_created>().inc();
    active_flows_.set(static_cast<int64_t>(index_.size()));
  }
  ++entry.packets_seen;
  entry.bytes += bytes;
  entry.last_seen = now;
  if (entry.state == FlowState::kSniffing &&
      entry.packets_seen > sniff_window_) {
    entry.state = FlowState::kBestEffort;
  }
  if (entry.state == FlowState::kMapped && entry.mapping_expires != 0 &&
      now >= entry.mapping_expires) {
    // The burst/boost window closed; the flow reverts to best effort
    // (a fresh cookie can re-map it — the sniff window is over, so it
    // would need a new flow, matching how Boost's one-hour expiry
    // behaves for long-lived flows).
    entry.state = FlowState::kBestEffort;
    entry.service_data.clear();
    entry.mapping_expires = 0;
  }
  return Binding{&entry, created};
}

Expected<FlowTable::Binding> FlowTable::map_one(
    const net::FlowKey& key, const std::string& service_data,
    util::Timestamp now, util::Timestamp mapping_expires) {
  bool created = false;
  const std::optional<uint32_t> slot = obtain(canonical(key), created, now);
  if (!slot) {
    stats_.cell<&FlowTableStats::overloads>().inc();
    return unexpected(kOverloadError);
  }
  FlowEntry& entry = pool_[*slot].entry;
  if (created) stats_.cell<&FlowTableStats::flows_created>().inc();
  entry.state = FlowState::kMapped;
  entry.service_data = service_data;
  entry.last_seen = now;
  entry.mapping_expires = mapping_expires;
  return Binding{&entry, created};
}

Expected<FlowTable::Binding> FlowTable::map_flow(
    const net::FlowKey& key, const std::string& service_data,
    util::Timestamp now, bool include_reverse,
    util::Timestamp mapping_expires) {
  Expected<Binding> bound = map_one(key, service_data, now, mapping_expires);
  if (!bound) return bound;
  const net::FlowKey reverse = key.reversed();
  if (include_reverse && !(reverse == key)) {
    // The forward binding stands even if the reverse create is what
    // hits max_flows — fail-open per direction, like the adapters.
    map_one(reverse, service_data, now, mapping_expires);
  }
  active_flows_.set(static_cast<int64_t>(index_.size()));
  return bound;
}

Expected<const FlowEntry*> FlowTable::lookup(const net::FlowKey& key) const {
  const net::FlowKey canon = canonical(key);
  const uint32_t* slot = index_.find(hash_key(canon), index_matcher(canon));
  if (slot == nullptr) return unexpected(kUnknownFlowError);
  return const_cast<const FlowEntry*>(&pool_[*slot].entry);
}

Expected<uint64_t> FlowTable::add_alias(uint64_t fresh_cid,
                                        uint64_t existing_cid) {
  const uint64_t canon = aliases_.resolve(existing_cid);
  // The rotation only links if a live flow is actually keyed on the
  // resolved CID; a marker for a flow never seen (or already expired)
  // must not create alias state nothing owns.
  if (index_.find(hash_key(net::FlowKey::from_cid(canon)),
                  index_matcher(net::FlowKey::from_cid(canon))) == nullptr) {
    return unexpected(kUnknownFlowError);
  }
  // Lazily register the connection on its first rotation; bind() is
  // idempotent for a known canonical.
  aliases_.bind(canon, 0);
  const Expected<uint64_t> linked = aliases_.alias(fresh_cid, canon);
  if (linked) stats_.cell<&FlowTableStats::aliases_added>().inc();
  return linked;
}

FlowEntry& FlowTable::touch(const net::FiveTuple& tuple, uint32_t bytes,
                            util::Timestamp now) {
  Expected<Binding> bound = bind(net::FlowKey::from_tuple(tuple), bytes, now);
  assert(bound.has_value() && "touch() requires an unbounded FlowTable");
  return *bound.value().entry;
}

void FlowTable::map_flow(const net::FiveTuple& tuple,
                         const std::string& service_data,
                         util::Timestamp now, bool include_reverse,
                         util::Timestamp mapping_expires) {
  map_flow(net::FlowKey::from_tuple(tuple), service_data, now,
           include_reverse, mapping_expires);
}

const FlowEntry* FlowTable::find(const net::FiveTuple& tuple) const {
  const Expected<const FlowEntry*> found =
      lookup(net::FlowKey::from_tuple(tuple));
  return found ? found.value() : nullptr;
}

size_t FlowTable::expire_idle(util::Timestamp now) {
  const util::Timestamp cutoff = now - idle_timeout_;
  size_t evicted = 0;
  for (uint32_t slot = 0; slot < pool_.size(); ++slot) {
    Slot& s = pool_[slot];
    if (!s.live || s.entry.last_seen >= cutoff) continue;
    index_.erase(hash_key(s.key), index_matcher(s.key));
    if (s.key.is_cid()) {
      // The flow dies with aliases outstanding: drop the whole alias
      // set so no CID keeps resolving to a flow that no longer exists.
      aliases_.evict(s.key.cid());
    }
    s.live = false;
    s.entry.service_data.clear();
    free_.push_back(slot);
    ++evicted;
  }
  stats_.cell<&FlowTableStats::flows_expired>().inc(evicted);
  active_flows_.set(static_cast<int64_t>(index_.size()));
  return evicted;
}

size_t FlowTable::memory_bytes() const {
  size_t bytes = index_.memory_bytes() + pool_.size() * sizeof(Slot) +
                 free_.capacity() * sizeof(uint32_t);
  for (const Slot& s : pool_) bytes += s.entry.service_data.capacity();
  return bytes;
}

}  // namespace nnn::dataplane
