#include "dataplane/flow_table.h"

namespace nnn::dataplane {

namespace {

/// Amortize idle expiry: run a sweep every this many touches.
constexpr uint64_t kExpirySweepInterval = 8192;

}  // namespace

FlowTable::FlowTable(uint32_t sniff_window, util::Timestamp idle_timeout)
    : sniff_window_(sniff_window), idle_timeout_(idle_timeout) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        stats_.collect(builder);
        builder.gauge("nnn_flows_active", "Flow-table entries resident",
                      {}, active_flows_.value());
      });
}

FlowEntry& FlowTable::touch(const net::FiveTuple& tuple, uint32_t bytes,
                            util::Timestamp now) {
  stats_.cell<&FlowTableStats::lookups>().inc();
  if (++touches_since_expiry_ >= kExpirySweepInterval) {
    touches_since_expiry_ = 0;
    expire_idle(now);
  }
  auto [it, created] = table_.try_emplace(tuple);
  FlowEntry& entry = it->second;
  if (created) {
    stats_.cell<&FlowTableStats::flows_created>().inc();
    active_flows_.set(static_cast<int64_t>(table_.size()));
  }
  ++entry.packets_seen;
  entry.bytes += bytes;
  entry.last_seen = now;
  if (entry.state == FlowState::kSniffing &&
      entry.packets_seen > sniff_window_) {
    entry.state = FlowState::kBestEffort;
  }
  if (entry.state == FlowState::kMapped && entry.mapping_expires != 0 &&
      now >= entry.mapping_expires) {
    // The burst/boost window closed; the flow reverts to best effort
    // (a fresh cookie can re-map it — the sniff window is over, so it
    // would need a new flow, matching how Boost's one-hour expiry
    // behaves for long-lived flows).
    entry.state = FlowState::kBestEffort;
    entry.service_data.clear();
    entry.mapping_expires = 0;
  }
  return entry;
}

void FlowTable::map_flow(const net::FiveTuple& tuple,
                         const std::string& service_data,
                         util::Timestamp now, bool include_reverse,
                         util::Timestamp mapping_expires) {
  auto& entry = table_[tuple];
  entry.state = FlowState::kMapped;
  entry.service_data = service_data;
  entry.last_seen = now;
  entry.mapping_expires = mapping_expires;
  if (include_reverse) {
    auto& reverse = table_[tuple.reversed()];
    reverse.state = FlowState::kMapped;
    reverse.service_data = service_data;
    reverse.last_seen = now;
    reverse.mapping_expires = mapping_expires;
  }
  active_flows_.set(static_cast<int64_t>(table_.size()));
}

const FlowEntry* FlowTable::find(const net::FiveTuple& tuple) const {
  const auto it = table_.find(tuple);
  return it == table_.end() ? nullptr : &it->second;
}

size_t FlowTable::expire_idle(util::Timestamp now) {
  const util::Timestamp cutoff = now - idle_timeout_;
  size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.last_seen < cutoff) {
      it = table_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.cell<&FlowTableStats::flows_expired>().inc(evicted);
  active_flows_.set(static_cast<int64_t>(table_.size()));
  return evicted;
}

}  // namespace nnn::dataplane
