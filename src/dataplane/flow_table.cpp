#include "dataplane/flow_table.h"

namespace nnn::dataplane {

namespace {

/// Amortize idle expiry: run a sweep every this many touches.
constexpr uint64_t kExpirySweepInterval = 8192;

}  // namespace

FlowTable::FlowTable(uint32_t sniff_window, util::Timestamp idle_timeout)
    : sniff_window_(sniff_window), idle_timeout_(idle_timeout) {
  registration_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleBuilder& builder) {
        stats_.collect(builder);
        builder.gauge("nnn_flows_active", "Flow-table entries resident",
                      {}, active_flows_.value());
      });
}

uint32_t FlowTable::obtain(const net::FiveTuple& tuple, bool& created) {
  const auto [slot_entry, inserted] = index_.find_or_insert(
      hash_tuple(tuple), index_matcher(tuple), index_hasher(), [&] {
        uint32_t slot;
        if (!free_.empty()) {
          slot = free_.back();
          free_.pop_back();
        } else {
          pool_.emplace_back();
          slot = static_cast<uint32_t>(pool_.size() - 1);
        }
        Slot& s = pool_[slot];
        s.tuple = tuple;
        s.entry = FlowEntry{};
        s.live = true;
        return slot;
      });
  created = inserted;
  return *slot_entry;
}

FlowEntry& FlowTable::touch(const net::FiveTuple& tuple, uint32_t bytes,
                            util::Timestamp now) {
  stats_.cell<&FlowTableStats::lookups>().inc();
  if (++touches_since_expiry_ >= kExpirySweepInterval) {
    touches_since_expiry_ = 0;
    expire_idle(now);
  }
  bool created = false;
  FlowEntry& entry = pool_[obtain(tuple, created)].entry;
  if (created) {
    stats_.cell<&FlowTableStats::flows_created>().inc();
    active_flows_.set(static_cast<int64_t>(index_.size()));
  }
  ++entry.packets_seen;
  entry.bytes += bytes;
  entry.last_seen = now;
  if (entry.state == FlowState::kSniffing &&
      entry.packets_seen > sniff_window_) {
    entry.state = FlowState::kBestEffort;
  }
  if (entry.state == FlowState::kMapped && entry.mapping_expires != 0 &&
      now >= entry.mapping_expires) {
    // The burst/boost window closed; the flow reverts to best effort
    // (a fresh cookie can re-map it — the sniff window is over, so it
    // would need a new flow, matching how Boost's one-hour expiry
    // behaves for long-lived flows).
    entry.state = FlowState::kBestEffort;
    entry.service_data.clear();
    entry.mapping_expires = 0;
  }
  return entry;
}

void FlowTable::map_flow(const net::FiveTuple& tuple,
                         const std::string& service_data,
                         util::Timestamp now, bool include_reverse,
                         util::Timestamp mapping_expires) {
  bool created = false;
  FlowEntry& entry = pool_[obtain(tuple, created)].entry;
  entry.state = FlowState::kMapped;
  entry.service_data = service_data;
  entry.last_seen = now;
  entry.mapping_expires = mapping_expires;
  if (include_reverse) {
    FlowEntry& reverse = pool_[obtain(tuple.reversed(), created)].entry;
    reverse.state = FlowState::kMapped;
    reverse.service_data = service_data;
    reverse.last_seen = now;
    reverse.mapping_expires = mapping_expires;
  }
  active_flows_.set(static_cast<int64_t>(index_.size()));
}

const FlowEntry* FlowTable::find(const net::FiveTuple& tuple) const {
  const uint32_t* slot =
      index_.find(hash_tuple(tuple), index_matcher(tuple));
  return slot == nullptr ? nullptr : &pool_[*slot].entry;
}

size_t FlowTable::expire_idle(util::Timestamp now) {
  const util::Timestamp cutoff = now - idle_timeout_;
  size_t evicted = 0;
  for (uint32_t slot = 0; slot < pool_.size(); ++slot) {
    Slot& s = pool_[slot];
    if (!s.live || s.entry.last_seen >= cutoff) continue;
    index_.erase(hash_tuple(s.tuple), index_matcher(s.tuple));
    s.live = false;
    s.entry.service_data.clear();
    free_.push_back(slot);
    ++evicted;
  }
  stats_.cell<&FlowTableStats::flows_expired>().inc(evicted);
  active_flows_.set(static_cast<int64_t>(index_.size()));
  return evicted;
}

size_t FlowTable::memory_bytes() const {
  size_t bytes = index_.memory_bytes() + pool_.size() * sizeof(Slot) +
                 free_.capacity() * sizeof(uint32_t);
  for (const Slot& s : pool_) bytes += s.entry.service_data.capacity();
  return bytes;
}

}  // namespace nnn::dataplane
