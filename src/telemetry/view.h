// Typed views: legacy *Stats structs re-expressed over registry cells.
//
// The seed grew nine ad-hoc `*Stats` structs, each a bag of uint64
// fields with its own accessor shape. The redesign keeps those structs
// as the *wire format* of per-object accessors (every existing call
// site still receives the same struct, field for field) but moves the
// live state into telemetry::Counter cells owned by a View<S>:
//
//   struct MiddleboxStats { uint64_t packets; ... };
//   template <> struct ViewTraits<MiddleboxStats> {
//     static constexpr std::array fields{
//         ViewField<MiddleboxStats>{&MiddleboxStats::packets,
//                                   MetricType::kCounter,
//                                   "nnn_middlebox_packets_total",
//                                   "Packets processed", "", ""},
//         ...};
//   };
//
//   telemetry::View<MiddleboxStats> stats_;
//   stats_.cell<&MiddleboxStats::packets>().inc();   // hot path
//   MiddleboxStats stats() const { return stats_.snapshot(); }
//
// cell<&S::field>() resolves the member pointer to a cell index at
// compile time (consteval lookup over the traits table), so the hot
// path is exactly the relaxed store a hand-rolled atomic field would
// be — the view costs nothing at runtime; it only centralizes naming,
// export, and the legacy materialization.
//
// Views are pinned (non-copyable, non-movable): register_with() hands
// the registry a collector that captures `this`. Components therefore
// declare their View (and any Registration) LAST so collection can
// never observe a partially-destroyed owner. Dynamic collections of
// views use std::deque + emplace_back, which never relocates elements.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>

#include "telemetry/metrics.h"

namespace nnn::telemetry {

/// One legacy struct field bound to a metric family. `label_key` /
/// `label_value` optionally stamp a per-field label (e.g. several
/// `task_*` fields fanning into one family keyed by task=...); empty
/// means no extra label beyond the view's base set.
template <typename S>
struct ViewField {
  uint64_t S::* member;
  MetricType type;  // kCounter or kGauge
  std::string_view family;
  std::string_view help;
  std::string_view label_key;
  std::string_view label_value;
};

/// Specialized next to each legacy struct: a constexpr `fields` array
/// of ViewField<S> covering every member, in declaration order.
template <typename S>
struct ViewTraits;

template <typename S>
class View {
 public:
  static constexpr const auto& fields = ViewTraits<S>::fields;
  static constexpr size_t kFields = fields.size();

  View() = default;
  View(const View&) = delete;
  View& operator=(const View&) = delete;

  /// The live cell behind a struct field, resolved at compile time:
  /// `view.cell<&S::packets>().inc()`. Same single-writer contract as
  /// Counter.
  template <auto M>
  Counter& cell() noexcept {
    return cells_[index_of<M>()];
  }
  template <auto M>
  const Counter& cell() const noexcept {
    return cells_[index_of<M>()];
  }
  template <auto M>
  uint64_t value() const noexcept {
    return cell<M>().value();
  }

  /// Materialize the legacy struct, field for field, from the cells.
  S snapshot() const {
    S s{};
    for (size_t i = 0; i < kFields; ++i) {
      s.*(fields[i].member) = cells_[i].value();
    }
    return s;
  }

  /// Reset every cell (legacy reset_stats() paths).
  void reset() noexcept {
    for (auto& cell : cells_) cell.reset();
  }

  /// Append one sample per field, labeled base + the field's own
  /// label (if any). Usable directly or via register_with().
  void collect(SampleBuilder& builder, const LabelSet& base = {}) const {
    for (size_t i = 0; i < kFields; ++i) {
      const auto& field = fields[i];
      LabelSet labels = base;
      if (!field.label_key.empty()) {
        labels.add(field.label_key, field.label_value);
      }
      if (field.type == MetricType::kGauge) {
        builder.gauge(field.family, field.help, std::move(labels),
                      static_cast<int64_t>(cells_[i].value()));
      } else {
        builder.counter(field.family, field.help, std::move(labels),
                        cells_[i].value());
      }
    }
  }

  /// Register this view's collector; the base labels distinguish
  /// instances ({worker="2"}, {band="0"}, ...). The view must outlive
  /// nothing: its own Registration deregisters on destruction.
  void register_with(Registry& registry, LabelSet base = {}) {
    base_labels_ = std::move(base);
    registration_ = registry.add_collector(
        [this](SampleBuilder& builder) { collect(builder, base_labels_); });
  }
  void deregister() { registration_.release(); }

 private:
  template <auto M>
  static consteval size_t index_of() {
    for (size_t i = 0; i < kFields; ++i) {
      if (fields[i].member == M) return i;
    }
    throw "member is not listed in ViewTraits<S>::fields";
  }

  std::array<Counter, kFields> cells_{};
  LabelSet base_labels_;
  Registration registration_;  // last: released before cells_
};

/// Per-enum-value counters: one cell per status, replacing the
/// hand-mirrored `verified`/`replayed`/`malformed`/... field bundles
/// that had drifted out of sync across VerifierStats, MiddleboxStats,
/// and WorkerCounters. Indexed by the enum's underlying value.
template <typename E, size_t N>
class StatusCounters {
 public:
  static constexpr size_t kCount = N;

  /// Single-writer increment (see Counter::inc).
  void inc(E e, uint64_t n = 1) noexcept { cells_[index(e)].inc(n); }
  /// Multi-writer increment (fetch_add).
  void inc_shared(E e, uint64_t n = 1) noexcept {
    cells_[index(e)].add_shared(n);
  }
  uint64_t count(E e) const noexcept { return cells_[index(e)].value(); }
  uint64_t total() const noexcept {
    uint64_t sum = 0;
    for (const auto& cell : cells_) sum += cell.value();
    return sum;
  }
  void reset() noexcept {
    for (auto& cell : cells_) cell.reset();
  }
  Counter& cell(E e) noexcept { return cells_[index(e)]; }

  /// One sample per enum value, labeled `label_key=name(value)` on
  /// top of `base` — e.g. nnn_verify_total{status="replayed"}.
  template <typename NameFn>
  void collect(SampleBuilder& builder, std::string_view family,
               std::string_view help, NameFn&& name,
               std::string_view label_key = "status",
               const LabelSet& base = {}) const {
    for (size_t i = 0; i < N; ++i) {
      LabelSet labels = base;
      labels.add(label_key, name(static_cast<E>(i)));
      builder.counter(family, help, std::move(labels), cells_[i].value());
    }
  }

 private:
  static constexpr size_t index(E e) noexcept {
    return static_cast<size_t>(e);
  }
  std::array<Counter, N> cells_{};
};

}  // namespace nnn::telemetry
