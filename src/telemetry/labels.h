// Single header home for enum label names (telemetry satellite).
//
// Exporters stamp enum values onto metric samples as label strings
// (`nnn_verify_total{status="replayed"}`), once per sample per
// snapshot. Returning std::string from to_string() — what the seed did
// — allocates on every one of those stamps and scatters the name
// tables across five modules. Every overload here returns a
// std::string_view into a static literal instead, and lives in this
// one place so the label vocabulary of the metrics API is auditable at
// a glance (the §6 argument: counters a regulator reads must have
// stable, documented names).
//
// Only the enums are forward-declared (all have fixed underlying
// types), so this header is includable from the lowest layers —
// util::Logger routes its level counts through the registry without
// util growing a dependency on the modules that define the enums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nnn {
// Unified error taxonomy (util/error.h defines the enums and counts;
// PR 5). The exporter stamps these as nnn_errors_total{domain,code}.
enum class ErrorDomain : uint8_t;
enum class ErrorCode : uint8_t;
std::string_view to_string(ErrorDomain d);
std::string_view to_string(ErrorCode c);
}  // namespace nnn

namespace nnn::cookies {
enum class VerifyStatus : uint8_t;
/// Number of VerifyStatus values (StatusCounters sizing).
inline constexpr size_t kVerifyStatusCount = 8;
std::string_view to_string(VerifyStatus s);
}  // namespace nnn::cookies

namespace nnn::dataplane {
enum class DispatchPolicy : uint8_t;
inline constexpr size_t kDispatchPolicyCount = 2;
std::string_view to_string(DispatchPolicy p);

enum class HwDecision : uint8_t;
inline constexpr size_t kHwDecisionCount = 4;
std::string_view to_string(HwDecision d);
}  // namespace nnn::dataplane

namespace nnn::util {
enum class LogLevel;
inline constexpr size_t kLogLevelCount = 4;
std::string_view to_string(LogLevel level);
}  // namespace nnn::util

namespace nnn::server {
enum class AcquireError : uint8_t;
inline constexpr size_t kAcquireErrorCount = 5;
std::string_view to_string(AcquireError e);
}  // namespace nnn::server

namespace nnn::fault {
enum class FaultKind : uint8_t;
inline constexpr size_t kFaultKindCount = 11;
std::string_view to_string(FaultKind k);
}  // namespace nnn::fault

namespace nnn::netio {
enum class ConnState : uint8_t;
inline constexpr size_t kConnStateCount = 4;
std::string_view to_string(ConnState s);
}  // namespace nnn::netio

namespace nnn::audit {
enum class AuditVerdict : uint8_t;
inline constexpr size_t kAuditVerdictCount = 3;
std::string_view to_string(AuditVerdict v);
}  // namespace nnn::audit
