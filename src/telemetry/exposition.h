// Exporters: registry snapshots → Prometheus text / json::Value.
//
// Both render the same Snapshot, deterministically (families sorted by
// name, samples by label set — the golden-file tests diff the output
// byte for byte). Prometheus output follows text exposition format
// 0.0.4: # HELP / # TYPE per family, cumulative `le` buckets plus
// +Inf, _sum and _count for histograms. The JSON form mirrors the
// Snapshot structure for the repo's own tooling (regulator audits,
// the cookie server's /metrics.json route).
#pragma once

#include <string>

#include "json/json.h"
#include "telemetry/metrics.h"

namespace nnn::telemetry {

/// Prometheus text exposition format 0.0.4. Serve with content type
/// "text/plain; version=0.0.4; charset=utf-8".
std::string to_prometheus(const Snapshot& snapshot);

/// {"families": [{"name", "type", "help", "samples": [...]}]}.
/// Counter/gauge samples carry {"labels", "value"}; histograms carry
/// {"labels", "count", "sum", "buckets": [{"le", "count"}]} with
/// non-cumulative per-bucket counts. Note json numbers are doubles:
/// counters past 2^53 lose precision in this form (the Prometheus
/// exporter does not).
json::Value to_json(const Snapshot& snapshot);

}  // namespace nnn::telemetry
