// Process-wide metric registry with lock-free instruments.
//
// The paper's operational case (§5–§6) is that a cookie middlebox
// serving millions of users must be *auditable*: regulators and users
// need to see what traffic actually received which service. Before
// this subsystem the repo had nine disconnected `*Stats` structs with
// incompatible shapes and no single observation point. This module is
// the one place everything reports to:
//
//   instruments  — Counter / Gauge / Histogram cells owned by the
//                  component that mutates them. Writes follow the
//                  WorkerCounters discipline proven out in runtime/:
//                  each cell has exactly ONE writer thread, so every
//                  increment is a relaxed load+store (one or two
//                  cycles, no lock prefix, no contention — the <2%
//                  budget on the 718 ns SHA-NI verify path). Readers
//                  (exporters, snapshots) do relaxed loads from any
//                  thread, which is safe for monotonic uint64 cells.
//                  ShardedCounter covers the rare genuinely
//                  multi-writer case (the process-wide log counters)
//                  with per-thread-hashed padded cells and fetch_add.
//
//   registry     — components register a *collector* callback; an
//                  exporter asks the Registry for a Snapshot, which
//                  runs every collector under the registry mutex and
//                  merges samples into named families
//                  (`nnn_verify_total{status="replayed"}`). The hot
//                  path never touches the registry or its mutex —
//                  registration happens at construction, collection
//                  on the (cold) export path. Samples from different
//                  instances that share a family and label set are
//                  summed, so four workers' verifiers roll up into one
//                  process-wide `nnn_verify_total` series while each
//                  instance keeps its own cells for per-object
//                  accessors.
//
// Naming scheme: `nnn_<component>_<what>[_total]`, labels for
// enum-like dimensions (status=, worker=, band=, level=). Counters
// end in `_total`; gauges and histograms do not. See DESIGN.md
// §"Telemetry".
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nnn::telemetry {

inline constexpr size_t kTelemetryCacheLine = 64;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonic event count. SINGLE-WRITER: inc()/set() may be called
/// from one thread at a time (the owning component's mutator thread);
/// value() is safe from any thread concurrently. This is the same
/// contract as runtime::WorkerCounters and keeps the hot path at a
/// relaxed load+store instead of a locked RMW.
class Counter {
 public:
  void inc(uint64_t n = 1) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  /// Gauge-style decrement for cells exported as gauges (e.g. bytes
  /// currently queued in a QoS band). Same single-writer contract.
  void dec(uint64_t n = 1) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) - n,
             std::memory_order_relaxed);
  }
  /// Release-ordered increment: publishes every prior write by the
  /// owning thread to readers that pair with value_acquire(). Used by
  /// the worker pool's `processed` quiescence counter.
  void inc_release(uint64_t n = 1) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_release);
  }
  /// Multi-writer escape hatch (fetch_add). Correct from any thread;
  /// costs a locked RMW, so keep it off per-packet paths.
  void add_shared(uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

  uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  uint64_t value_acquire() const noexcept {
    return v_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time signed value (descriptor-table size, active flows).
/// Single-writer set/add/sub, any-thread reads, like Counter.
class Gauge {
 public:
  void set(int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n = 1) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  void sub(int64_t n = 1) noexcept { add(-n); }
  int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> v_{0};
};

/// Counter any thread may bump: per-thread-hashed, cache-line-padded
/// cells so concurrent writers (log calls from every worker plus the
/// dispatcher) almost never share a line, with fetch_add for the rare
/// collision. value() sums the cells.
class ShardedCounter {
 public:
  static constexpr size_t kShards = 8;

  void inc(uint64_t n = 1) noexcept {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t shard_index() noexcept;

  struct alignas(kTelemetryCacheLine) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Log-linear latency histogram (HdrHistogram-style bucketing): 8
/// linear sub-buckets per power-of-two octave, so relative bucket
/// error is bounded at ~12.5% across the whole uint64 range with a
/// fixed 496-cell table and O(1) index math (no search, no floats).
/// record() is SINGLE-WRITER like Counter; snapshots from other
/// threads are monotonic per-cell but not atomic across cells (a
/// concurrent record may appear in `count` one read before `sum` —
/// harmless for monitoring, documented for exactness).
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;  // 8
  static constexpr uint32_t kBuckets = 496;

  /// Bucket index for a value; total order preserved across buckets.
  static constexpr uint32_t bucket_index(uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<uint32_t>(v);
    const uint32_t shift =
        static_cast<uint32_t>(std::bit_width(v)) - kSubBits - 1;
    return shift * kSubBuckets + static_cast<uint32_t>(v >> shift);
  }

  /// Largest value that lands in bucket `i` (inclusive upper bound,
  /// the Prometheus `le` boundary).
  static constexpr uint64_t bucket_upper_bound(uint32_t i) noexcept {
    if (i < 2 * kSubBuckets) return i;
    const uint32_t shift = i / kSubBuckets - 1;
    return ((static_cast<uint64_t>(i % kSubBuckets) + kSubBuckets + 1)
            << shift) -
           1;
  }

  void record(uint64_t value) noexcept {
    const uint32_t i = bucket_index(value);
    buckets_[i].store(buckets_[i].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + value,
               std::memory_order_relaxed);
  }

  /// Total observations (sum over buckets, so it is always consistent
  /// with the bucket counts a concurrent reader sees).
  uint64_t count() const noexcept {
    uint64_t total = 0;
    for (const auto& bucket : buckets_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t bucket_count(uint32_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Interpolated quantile estimate (q in [0, 1]; q=0.5 -> p50).
  /// Walks the cumulative bucket counts to the bucket holding the
  /// q-th observation, then interpolates linearly across that
  /// bucket's value range — the standard log-linear-histogram
  /// estimator, so the result is exact for values < 2*kSubBuckets and
  /// within the bucket's relative width (<= 1/kSubBuckets) above
  /// that. The auditor's FCT summaries (p50/p95/p99) and the golden
  /// tests in tests/test_telemetry.cpp consume this. Returns 0 on an
  /// empty histogram. Concurrent-reader safe, same caveats as
  /// count(): exact at quiescence, approximate mid-write.
  uint64_t value_at_quantile(double q) const noexcept {
    uint64_t counts[kBuckets];
    uint64_t total = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based; q=0 means the minimum.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (seen + counts[i] < rank) {
        seen += counts[i];
        continue;
      }
      const uint64_t hi = bucket_upper_bound(i);
      const uint64_t lo = i == 0 ? 0 : bucket_upper_bound(i - 1) + 1;
      if (hi == lo) return hi;  // single-value bucket: exact
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(counts[i]);
      return lo + static_cast<uint64_t>(
                      static_cast<double>(hi - lo) * within + 0.5);
    }
    return bucket_upper_bound(kBuckets - 1);
  }

  void reset() noexcept {
    for (auto& bucket : buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

/// CLOCK_MONOTONIC in nanoseconds (what ScopedTimer feeds histograms).
uint64_t monotonic_nanos();

/// Global latency-timer switch. Counters are always on — they ARE the
/// stats now — but the two clock reads a ScopedTimer costs are
/// gateable so bench/ablation_telemetry can measure exactly what the
/// histograms add (and deployments that want the last 1% back can turn
/// them off).
bool timers_enabled();
void set_timers_enabled(bool on);

/// 1-in-N burst sampler for paths whose batches can degenerate to a
/// single packet (a closed-loop dispatcher trickles packets, so a
/// worker's ring burst is often size 1 and a per-burst timer would cost
/// two clock reads per *packet*). Owners time every full burst — the
/// reads amortize over the batch — and ask the stride whether to also
/// time this degenerate one. Single-writer, like Counter.
class SampleStride {
 public:
  /// every_n must be a power of two.
  explicit constexpr SampleStride(uint32_t every_n) : mask_(every_n - 1) {}
  bool next() {
    const uint32_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);
    return (seq & mask_) == 0;
  }

 private:
  const uint32_t mask_;
  std::atomic<uint32_t> seq_{0};
};

/// RAII batch timer: records elapsed nanoseconds into a histogram at
/// scope exit. Construction checks timers_enabled() once (a relaxed
/// load); a disabled timer never reads the clock. Placed around
/// *batches* (verify_batch, a worker's ring burst, a dispatcher pump
/// burst), not individual packets, so the two clock reads amortize to
/// ~1 ns per packet at batch 32. Pass `sampled = false` to skip this
/// burst (see SampleStride) — the histogram then holds a sample of
/// bursts, not a census, which is all a latency distribution needs.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, bool sampled = true)
      : hist_(sampled && timers_enabled() ? &hist : nullptr),
        start_(hist_ ? monotonic_nanos() : 0) {}
  ~ScopedTimer() {
    if (hist_) hist_->record(monotonic_nanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

// ---------------------------------------------------------------------------
// Samples, families, snapshots
// ---------------------------------------------------------------------------

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricType t);

/// Ordered label pairs. Kept sorted by key so equal label sets from
/// different collectors merge and exposition output is deterministic.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<
           std::pair<std::string_view, std::string_view>>
               kv);

  void add(std::string_view key, std::string_view value);
  bool empty() const { return kv_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return kv_;
  }
  /// True when every pair in `subset` appears in this set.
  bool contains_all(const LabelSet& subset) const;

  friend bool operator==(const LabelSet&, const LabelSet&) = default;
  friend auto operator<=>(const LabelSet&, const LabelSet&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Materialized histogram: per-bucket (inclusive upper bound,
/// non-cumulative count) for non-empty buckets only.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct Sample {
  LabelSet labels;
  uint64_t counter_value = 0;  // kCounter
  int64_t gauge_value = 0;     // kGauge
  HistogramData histogram;     // kHistogram
};

struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Sample> samples;  // sorted by labels

  const Sample* find(const LabelSet& labels) const;
};

/// Point-in-time view of every registered instrument, merged into
/// families and deterministically ordered (families by name, samples
/// by labels) — the input to both exporters and the golden tests.
struct Snapshot {
  std::vector<Family> families;

  const Family* find(std::string_view name) const;
  /// Sum of counter samples in `family` whose labels contain all of
  /// `labels` (empty = every sample). 0 when the family is absent.
  uint64_t counter_total(std::string_view name,
                         const LabelSet& labels = {}) const;
};

/// Passed to collectors during Registry::snapshot(). Collectors append
/// samples; the builder owns family bookkeeping and merge-by-labels.
class SampleBuilder {
 public:
  void counter(std::string_view family, std::string_view help,
               LabelSet labels, uint64_t value);
  void gauge(std::string_view family, std::string_view help,
             LabelSet labels, int64_t value);
  void histogram(std::string_view family, std::string_view help,
                 LabelSet labels, const Histogram& hist);

 private:
  friend class Registry;
  Family& family_for(std::string_view name, std::string_view help,
                     MetricType type);
  void merge(Family& family, Sample&& sample);

  std::map<std::string, Family, std::less<>> families_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class Registry;

/// RAII collector registration. Destroy (or release()) BEFORE the
/// cells the collector reads — in practice: declare the Registration
/// as the LAST member of the owning component, so it deregisters
/// first during destruction.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept;
  Registration& operator=(Registration&& other) noexcept;
  ~Registration();

  void release();
  bool active() const { return registry_ != nullptr; }

 private:
  friend class Registry;
  Registration(Registry* registry, uint64_t id)
      : registry_(registry), id_(id) {}

  Registry* registry_ = nullptr;
  uint64_t id_ = 0;
};

class Registry {
 public:
  using Collector = std::function<void(SampleBuilder&)>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every component registers with by
  /// default. Never destroyed (components with any storage duration
  /// may deregister safely at exit). Construction installs the
  /// util::Logger collector (`nnn_log_total{level=...}`).
  static Registry& global();

  /// Register a collector; runs on every snapshot() until the returned
  /// Registration is destroyed. Collectors must not register or
  /// deregister from inside a collection (the registry mutex is held).
  [[nodiscard]] Registration add_collector(Collector collector);

  /// Run every collector and merge the results. Safe from any thread,
  /// any time — instrument reads are relaxed atomic loads, so this
  /// races benignly with hot-path writers (monotonic per-cell).
  Snapshot snapshot() const;

  size_t collector_count() const;

 private:
  friend class Registration;
  void remove(uint64_t id);

  mutable std::mutex mutex_;
  std::vector<std::pair<uint64_t, Collector>> collectors_;
  uint64_t next_id_ = 1;
};

}  // namespace nnn::telemetry
