#include "telemetry/labels.h"

#include "audit/verdict.h"
#include "cookies/verifier.h"
#include "dataplane/hw_filter.h"
#include "dataplane/sharding.h"
#include "fault/plan.h"
#include "netio/conn_state.h"
#include "server/cookie_server.h"
#include "util/error.h"
#include "util/logging.h"

namespace nnn {

std::string_view to_string(ErrorDomain d) {
  switch (d) {
    case ErrorDomain::kNone:
      return "none";
    case ErrorDomain::kWire:
      return "wire";
    case ErrorDomain::kMessages:
      return "messages";
    case ErrorDomain::kCookie:
      return "cookie";
    case ErrorDomain::kVerify:
      return "verify";
    case ErrorDomain::kSync:
      return "sync";
    case ErrorDomain::kServer:
      return "server";
    case ErrorDomain::kFault:
      return "fault";
    case ErrorDomain::kNetio:
      return "netio";
    case ErrorDomain::kFlow:
      return "flow";
  }
  return "?";
}

std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kTruncated:
      return "truncated";
    case ErrorCode::kBadMagic:
      return "bad-magic";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported-version";
    case ErrorCode::kBadChecksum:
      return "bad-checksum";
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kUnknownType:
      return "unknown-type";
    case ErrorCode::kUnknownProtocol:
      return "unknown-protocol";
    case ErrorCode::kUnknownId:
      return "unknown-id";
    case ErrorCode::kBadSignature:
      return "bad-signature";
    case ErrorCode::kStaleTimestamp:
      return "stale-timestamp";
    case ErrorCode::kReplayed:
      return "replayed";
    case ErrorCode::kExpired:
      return "expired";
    case ErrorCode::kRevoked:
      return "revoked";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kOverload:
      return "overload";
    case ErrorCode::kStale:
      return "stale";
    case ErrorCode::kAuthRequired:
      return "auth-required";
    case ErrorCode::kBadCredentials:
      return "bad-credentials";
    case ErrorCode::kQuotaExceeded:
      return "quota-exceeded";
  }
  return "?";
}

std::string to_string(const Error& error) {
  std::string out;
  out.reserve(32 + error.detail.size());
  out += to_string(error.domain);
  out += '/';
  out += to_string(error.code);
  if (!error.detail.empty()) {
    out += " (";
    out += error.detail;
    out += ')';
  }
  return out;
}

}  // namespace nnn

namespace nnn::cookies {

std::string_view to_string(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk:
      return "ok";
    case VerifyStatus::kUnknownId:
      return "unknown-id";
    case VerifyStatus::kBadSignature:
      return "bad-signature";
    case VerifyStatus::kStaleTimestamp:
      return "stale-timestamp";
    case VerifyStatus::kReplayed:
      return "replayed";
    case VerifyStatus::kDescriptorExpired:
      return "descriptor-expired";
    case VerifyStatus::kDescriptorRevoked:
      return "descriptor-revoked";
    case VerifyStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

}  // namespace nnn::cookies

namespace nnn::dataplane {

std::string_view to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kFlowHash:
      return "flow-hash";
    case DispatchPolicy::kDescriptorAffinity:
      return "descriptor-affinity";
  }
  return "?";
}

std::string_view to_string(HwDecision d) {
  switch (d) {
    case HwDecision::kFastPath:
      return "fast-path";
    case HwDecision::kToSoftware:
      return "to-software";
    case HwDecision::kRejectUnknownId:
      return "reject-unknown-id";
    case HwDecision::kRejectStale:
      return "reject-stale";
  }
  return "?";
}

}  // namespace nnn::dataplane

namespace nnn::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace nnn::util

namespace nnn::server {

std::string_view to_string(AcquireError e) {
  switch (e) {
    case AcquireError::kUnknownService:
      return "unknown-service";
    case AcquireError::kAuthRequired:
      return "auth-required";
    case AcquireError::kBadCredentials:
      return "bad-credentials";
    case AcquireError::kQuotaExceeded:
      return "quota-exceeded";
    case AcquireError::kUnavailable:
      return "unavailable";
  }
  return "?";
}

}  // namespace nnn::server

namespace nnn::fault {

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossSpike:
      return "loss-spike";
    case FaultKind::kPause:
      return "pause";
    case FaultKind::kSyncOutage:
      return "sync-outage";
    case FaultKind::kClockSkew:
      return "clock-skew";
    case FaultKind::kQueuePressure:
      return "queue-pressure";
    case FaultKind::kAcceptStall:
      return "accept-stall";
    case FaultKind::kConnReset:
      return "conn-reset";
    case FaultKind::kPeerHalfOpen:
      return "peer-half-open";
    case FaultKind::kThrottleNonCookie:
      return "throttle-non-cookie";
    case FaultKind::kNatRebind:
      return "nat-rebind";
  }
  return "?";
}

}  // namespace nnn::fault

namespace nnn::netio {

std::string_view to_string(ConnState s) {
  switch (s) {
    case ConnState::kHandshake:
      return "handshake";
    case ConnState::kOpen:
      return "open";
    case ConnState::kDraining:
      return "draining";
    case ConnState::kClosed:
      return "closed";
  }
  return "?";
}

}  // namespace nnn::netio

namespace nnn::audit {

std::string_view to_string(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::kClean:
      return "clean";
    case AuditVerdict::kViolation:
      return "violation";
    case AuditVerdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

}  // namespace nnn::audit
