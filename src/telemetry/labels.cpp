#include "telemetry/labels.h"

#include "cookies/verifier.h"
#include "dataplane/hw_filter.h"
#include "dataplane/sharding.h"
#include "server/cookie_server.h"
#include "util/logging.h"

namespace nnn::cookies {

std::string_view to_string(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk:
      return "ok";
    case VerifyStatus::kUnknownId:
      return "unknown-id";
    case VerifyStatus::kBadSignature:
      return "bad-signature";
    case VerifyStatus::kStaleTimestamp:
      return "stale-timestamp";
    case VerifyStatus::kReplayed:
      return "replayed";
    case VerifyStatus::kDescriptorExpired:
      return "descriptor-expired";
    case VerifyStatus::kDescriptorRevoked:
      return "descriptor-revoked";
    case VerifyStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

}  // namespace nnn::cookies

namespace nnn::dataplane {

std::string_view to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kFlowHash:
      return "flow-hash";
    case DispatchPolicy::kDescriptorAffinity:
      return "descriptor-affinity";
  }
  return "?";
}

std::string_view to_string(HwDecision d) {
  switch (d) {
    case HwDecision::kFastPath:
      return "fast-path";
    case HwDecision::kToSoftware:
      return "to-software";
    case HwDecision::kRejectUnknownId:
      return "reject-unknown-id";
    case HwDecision::kRejectStale:
      return "reject-stale";
  }
  return "?";
}

}  // namespace nnn::dataplane

namespace nnn::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace nnn::util

namespace nnn::server {

std::string_view to_string(AcquireError e) {
  switch (e) {
    case AcquireError::kUnknownService:
      return "unknown-service";
    case AcquireError::kAuthRequired:
      return "auth-required";
    case AcquireError::kBadCredentials:
      return "bad-credentials";
    case AcquireError::kQuotaExceeded:
      return "quota-exceeded";
  }
  return "?";
}

}  // namespace nnn::server
