#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "telemetry/labels.h"
#include "util/error.h"
#include "util/logging.h"

namespace nnn::telemetry {

// ---------------------------------------------------------------------------
// ShardedCounter
// ---------------------------------------------------------------------------

size_t ShardedCounter::shard_index() noexcept {
  // One hash of the thread id, computed once per thread. Distinct
  // threads usually land on distinct cache lines; collisions only
  // cost a shared fetch_add.
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kShards;
  return shard;
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

uint64_t monotonic_nanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
std::atomic<bool> g_timers_enabled{true};
}  // namespace

bool timers_enabled() {
  return g_timers_enabled.load(std::memory_order_relaxed);
}

void set_timers_enabled(bool on) {
  g_timers_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Labels and samples
// ---------------------------------------------------------------------------

std::string_view to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        kv) {
  kv_.reserve(kv.size());
  for (const auto& [key, value] : kv) add(key, value);
}

void LabelSet::add(std::string_view key, std::string_view value) {
  auto pair = std::pair<std::string, std::string>(key, value);
  kv_.insert(std::lower_bound(kv_.begin(), kv_.end(), pair),
             std::move(pair));
}

bool LabelSet::contains_all(const LabelSet& subset) const {
  for (const auto& pair : subset.kv_) {
    if (!std::binary_search(kv_.begin(), kv_.end(), pair)) return false;
  }
  return true;
}

const Sample* Family::find(const LabelSet& labels) const {
  for (const auto& sample : samples) {
    if (sample.labels == labels) return &sample;
  }
  return nullptr;
}

const Family* Snapshot::find(std::string_view name) const {
  for (const auto& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

uint64_t Snapshot::counter_total(std::string_view name,
                                 const LabelSet& labels) const {
  const Family* family = find(name);
  if (!family) return 0;
  uint64_t total = 0;
  for (const auto& sample : family->samples) {
    if (sample.labels.contains_all(labels)) total += sample.counter_value;
  }
  return total;
}

// ---------------------------------------------------------------------------
// SampleBuilder
// ---------------------------------------------------------------------------

Family& SampleBuilder::family_for(std::string_view name,
                                  std::string_view help, MetricType type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.name = std::string(name);
    family.help = std::string(help);
    family.type = type;
    it = families_.emplace(family.name, std::move(family)).first;
  }
  return it->second;
}

void SampleBuilder::merge(Family& family, Sample&& sample) {
  // Instances sharing a family and label set sum into one series
  // (four workers' verifiers → one process-wide nnn_verify_total).
  for (auto& existing : family.samples) {
    if (existing.labels != sample.labels) continue;
    switch (family.type) {
      case MetricType::kCounter:
        existing.counter_value += sample.counter_value;
        break;
      case MetricType::kGauge:
        existing.gauge_value += sample.gauge_value;
        break;
      case MetricType::kHistogram: {
        existing.histogram.count += sample.histogram.count;
        existing.histogram.sum += sample.histogram.sum;
        // Both bucket lists are sorted by upper bound; merge-sum.
        std::vector<std::pair<uint64_t, uint64_t>> merged;
        merged.reserve(existing.histogram.buckets.size() +
                       sample.histogram.buckets.size());
        auto a = existing.histogram.buckets.begin();
        const auto a_end = existing.histogram.buckets.end();
        auto b = sample.histogram.buckets.begin();
        const auto b_end = sample.histogram.buckets.end();
        while (a != a_end || b != b_end) {
          if (b == b_end || (a != a_end && a->first < b->first)) {
            merged.push_back(*a++);
          } else if (a == a_end || b->first < a->first) {
            merged.push_back(*b++);
          } else {
            merged.emplace_back(a->first, a->second + b->second);
            ++a;
            ++b;
          }
        }
        existing.histogram.buckets = std::move(merged);
        break;
      }
    }
    return;
  }
  family.samples.push_back(std::move(sample));
}

void SampleBuilder::counter(std::string_view family, std::string_view help,
                            LabelSet labels, uint64_t value) {
  Sample sample;
  sample.labels = std::move(labels);
  sample.counter_value = value;
  merge(family_for(family, help, MetricType::kCounter), std::move(sample));
}

void SampleBuilder::gauge(std::string_view family, std::string_view help,
                          LabelSet labels, int64_t value) {
  Sample sample;
  sample.labels = std::move(labels);
  sample.gauge_value = value;
  merge(family_for(family, help, MetricType::kGauge), std::move(sample));
}

void SampleBuilder::histogram(std::string_view family,
                              std::string_view help, LabelSet labels,
                              const Histogram& hist) {
  Sample sample;
  sample.labels = std::move(labels);
  uint64_t count = 0;
  for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t n = hist.bucket_count(i);
    if (n == 0) continue;
    count += n;
    sample.histogram.buckets.emplace_back(Histogram::bucket_upper_bound(i),
                                          n);
  }
  // Count derived from the same bucket reads, so count == Σ buckets
  // even while a writer races the snapshot.
  sample.histogram.count = count;
  sample.histogram.sum = hist.sum();
  merge(family_for(family, help, MetricType::kHistogram),
        std::move(sample));
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

Registration::Registration(Registration&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

Registration& Registration::operator=(Registration&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Registration::~Registration() {
  release();
}

void Registration::release() {
  if (registry_ != nullptr) {
    registry_->remove(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registration Registry::add_collector(Collector collector) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return Registration(this, id);
}

void Registry::remove(uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(collectors_,
                [id](const auto& entry) { return entry.first == id; });
}

size_t Registry::collector_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return collectors_.size();
}

Snapshot Registry::snapshot() const {
  SampleBuilder builder;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, collector] : collectors_) {
      collector(builder);
    }
  }
  Snapshot snapshot;
  snapshot.families.reserve(builder.families_.size());
  for (auto& [name, family] : builder.families_) {
    std::sort(family.samples.begin(), family.samples.end(),
              [](const Sample& a, const Sample& b) {
                return a.labels < b.labels;
              });
    snapshot.families.push_back(std::move(family));
  }
  return snapshot;
}

namespace {

// Exports util::Logger's level/component tallies. The logger counts
// BEFORE its level filter, so warns a bench-quiet kError threshold
// suppressed still show here — the "silent fail-open" audit signal.
void collect_log_counts(SampleBuilder& builder) {
  static constexpr std::string_view kLevelHelp =
      "Log events by level, counted before level filtering";
  static constexpr std::string_view kComponentHelp =
      "Log events by component and level, counted before level filtering";
  const auto& logger = util::Logger::instance();
  for (size_t i = 0; i < util::Logger::kLevels; ++i) {
    const auto level = static_cast<util::LogLevel>(i);
    builder.counter("nnn_log_total", kLevelHelp,
                    LabelSet{{"level", util::to_string(level)}},
                    logger.count(level));
  }
  logger.visit_component_counts(
      [&builder](std::string_view component,
                 const util::Logger::LevelCounts& counts) {
        for (size_t i = 0; i < util::Logger::kLevels; ++i) {
          if (counts[i] == 0) continue;
          const auto level = static_cast<util::LogLevel>(i);
          builder.counter(
              "nnn_log_component_total", kComponentHelp,
              LabelSet{{"component", component},
                       {"level", util::to_string(level)}},
              counts[i]);
        }
      });
}

// Non-zero cells of the process-wide error tally (util/error.h).
// Sparse on purpose: the domain x code matrix is mostly empty and the
// zero cells carry no audit signal, unlike per-status counters.
void collect_error_tally(SampleBuilder& builder) {
  static constexpr std::string_view kHelp =
      "Errors raised, by subsystem domain and shared error code";
  ErrorTally::instance().visit(
      [&builder](ErrorDomain domain, ErrorCode code, uint64_t n) {
        builder.counter("nnn_errors_total", kHelp,
                        LabelSet{{"domain", to_string(domain)},
                                 {"code", to_string(code)}},
                        n);
      });
}

}  // namespace

Registry& Registry::global() {
  // Leaked on purpose: components of any storage duration may hold a
  // Registration, and deregistering against a destroyed registry at
  // exit would be undefined. The logger collector rides along for the
  // life of the process.
  static Registry* instance = [] {
    auto* registry = new Registry();
    static Registration log_registration =
        registry->add_collector(collect_log_counts);
    static Registration error_registration =
        registry->add_collector(collect_error_tally);
    return registry;
  }();
  return *instance;
}

}  // namespace nnn::telemetry
