#include "telemetry/exposition.h"

#include <string_view>

namespace nnn::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view text,
                    bool escape_quotes) {
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (escape_quotes) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
}

/// `{key="value",...}` — or nothing when there are no labels and no
/// extra pair. `extra_key`/`extra_value` append one more pair (the
/// histogram `le` bound) after the sample's own labels.
void append_labels(std::string& out, const LabelSet& labels,
                   std::string_view extra_key = {},
                   std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels.pairs()) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value, /*escape_quotes=*/true);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped(out, extra_value, /*escape_quotes=*/true);
    out += '"';
  }
  out += '}';
}

void append_histogram(std::string& out, const Family& family,
                      const Sample& sample) {
  uint64_t cumulative = 0;
  for (const auto& [upper, count] : sample.histogram.buckets) {
    cumulative += count;
    out += family.name;
    out += "_bucket";
    append_labels(out, sample.labels, "le", std::to_string(upper));
    out += ' ';
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += family.name;
  out += "_bucket";
  append_labels(out, sample.labels, "le", "+Inf");
  out += ' ';
  out += std::to_string(sample.histogram.count);
  out += '\n';
  out += family.name;
  out += "_sum";
  append_labels(out, sample.labels);
  out += ' ';
  out += std::to_string(sample.histogram.sum);
  out += '\n';
  out += family.name;
  out += "_count";
  append_labels(out, sample.labels);
  out += ' ';
  out += std::to_string(sample.histogram.count);
  out += '\n';
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const Family& family : snapshot.families) {
    out += "# HELP ";
    out += family.name;
    out += ' ';
    append_escaped(out, family.help, /*escape_quotes=*/false);
    out += '\n';
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += to_string(family.type);
    out += '\n';
    for (const Sample& sample : family.samples) {
      if (family.type == MetricType::kHistogram) {
        append_histogram(out, family, sample);
        continue;
      }
      out += family.name;
      append_labels(out, sample.labels);
      out += ' ';
      out += family.type == MetricType::kGauge
                 ? std::to_string(sample.gauge_value)
                 : std::to_string(sample.counter_value);
      out += '\n';
    }
  }
  return out;
}

json::Value to_json(const Snapshot& snapshot) {
  json::Array families;
  families.reserve(snapshot.families.size());
  for (const Family& family : snapshot.families) {
    json::Array samples;
    samples.reserve(family.samples.size());
    for (const Sample& sample : family.samples) {
      json::Object labels;
      for (const auto& [key, value] : sample.labels.pairs()) {
        labels[key] = value;
      }
      json::Object entry;
      entry["labels"] = std::move(labels);
      switch (family.type) {
        case MetricType::kCounter:
          entry["value"] = sample.counter_value;
          break;
        case MetricType::kGauge:
          entry["value"] = sample.gauge_value;
          break;
        case MetricType::kHistogram: {
          json::Array buckets;
          buckets.reserve(sample.histogram.buckets.size());
          for (const auto& [upper, count] : sample.histogram.buckets) {
            json::Object bucket;
            bucket["le"] = upper;
            bucket["count"] = count;
            buckets.push_back(std::move(bucket));
          }
          entry["count"] = sample.histogram.count;
          entry["sum"] = sample.histogram.sum;
          entry["buckets"] = std::move(buckets);
          break;
        }
      }
      samples.push_back(std::move(entry));
    }
    json::Object fam;
    fam["name"] = family.name;
    fam["type"] = to_string(family.type);
    fam["help"] = family.help;
    fam["samples"] = std::move(samples);
    families.push_back(std::move(fam));
  }
  json::Object root;
  root["families"] = std::move(families);
  return json::Value(std::move(root));
}

}  // namespace nnn::telemetry
