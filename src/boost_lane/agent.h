// The Boost agent (§5.1) — the paper's Chrome extension.
//
// Users express preferences two ways:
//   - "Boost a tab. All traffic from/to a specific tab is boosted.
//      The user initiates this once per tab, and it lasts until she
//      closes the tab (or after an hour)."
//   - "Always Boost a website. ... The setting is remembered."
// The agent acquires a boost cookie descriptor from the well-known
// server (JSON API), then, for every outgoing request whose browser
// context matches a preference, mints a cookie and inserts it — HTTP
// header for plain traffic, TLS ClientHello extension for HTTPS.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "boost_lane/browser.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/packet.h"
#include "server/json_api.h"
#include "util/clock.h"

namespace nnn::boost_lane {

class BoostAgent {
 public:
  /// A boost preference (tab or site) expires after an hour (§5.1).
  static constexpr util::Timestamp kBoostDuration = 3600LL * util::kSecond;

  /// `api` is the well-known server endpoint; `user` identifies this
  /// household/client to it.
  BoostAgent(const util::Clock& clock, server::JsonApi& api,
             std::string user, uint64_t rng_seed);

  /// User clicks "boost this tab".
  bool boost_tab(TabId tab);
  /// User clicks "always boost <domain>".
  bool always_boost(std::string domain);
  void remove_always_boost(const std::string& domain);
  /// User stops boosting a tab (closing the tab does this too).
  void unboost_tab(TabId tab);

  bool tab_boosted(TabId tab) const;
  bool site_boosted(const std::string& domain) const;

  /// Should this browser flow be boosted right now?
  bool should_boost(const BrowserFlow& flow) const;

  /// Intercept an outgoing request packet of `flow` and insert a boost
  /// cookie when a preference matches. Returns true when a cookie was
  /// inserted. (The HTTPS path is the TLS ClientHello extension; the
  /// HTTP path is the X-Network-Cookie header.)
  bool process_request(const BrowserFlow& flow, net::Packet& packet);

  /// True once the agent holds a usable (unexpired) descriptor.
  bool has_descriptor() const;
  const std::optional<cookies::CookieDescriptor>& descriptor() const {
    return descriptor_;
  }

  /// Number of cookies inserted so far.
  uint64_t cookies_inserted() const { return cookies_inserted_; }

 private:
  /// Acquire (or renew) the descriptor through the JSON API.
  bool ensure_descriptor();

  const util::Clock& clock_;
  server::JsonApi& api_;
  std::string user_;
  uint64_t rng_seed_;
  std::optional<cookies::CookieDescriptor> descriptor_;
  std::optional<cookies::CookieGenerator> generator_;
  std::map<TabId, util::Timestamp> boosted_tabs_;  // tab -> expiry
  std::map<std::string, bool> boosted_sites_;      // "always boost"
  uint64_t cookies_inserted_ = 0;
};

}  // namespace nnn::boost_lane
