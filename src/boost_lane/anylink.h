// AnyLink: the cloud-based, proxy-mode slow lane (§5, §4.6).
//
// "Interested readers can access sample code and try a cloud-based
// version of Boost which provides slow (instead of fast) lanes at
// http://anylink.stanford.edu." And §4.6: "cookies can also operate in
// proxy mode, i.e., co-located with a web proxy through which clients
// send their traffic ... AnyLink operates in proxy mode to emulate
// slower links for application developers."
//
// The proxy terminates client traffic, looks up the cookie, and maps
// the flow onto an emulated-link profile (rate + latency). Developers
// use it to test an app against, say, a 2G profile, selected per flow
// with a cookie rather than per host.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "net/packet.h"
#include "util/clock.h"

namespace nnn::boost_lane {

/// An emulated link profile (what the slow lane slows you to).
struct LinkProfile {
  std::string name;      // "2G", "3G", "dsl"
  double rate_bps = 0;
  util::Timestamp extra_latency = 0;
};

class AnyLinkProxy {
 public:
  AnyLinkProxy(const util::Clock& clock, cookies::CookieVerifier& verifier);

  /// Register a profile and the service_data tag selecting it.
  void add_profile(const std::string& service_data, LinkProfile profile);

  /// Result of pushing one packet through the proxy: the profile to
  /// emulate (nullopt -> unshaped pass-through).
  std::optional<LinkProfile> process(net::Packet& packet);

  dataplane::MiddleboxStats stats() const { return middlebox_.stats(); }

 private:
  dataplane::ServiceRegistry registry_;
  dataplane::Middlebox middlebox_;
  std::map<std::string, LinkProfile> profiles_;
};

}  // namespace nnn::boost_lane
