// WAN capacity estimation (§5.2).
//
// "To provision the path for boosted traffic we ... throttle other
// traffic to ensure certain capacity for boosted traffic through the
// last-mile connection. The actual throttling rate depends on the
// capacity of the WAN connection which we estimate using periodic
// active tests."
//
// CapacityProbe is that active test: it injects a short back-to-back
// burst of probe packets into a link and estimates the bottleneck rate
// from their arrival spacing (classic packet-train dispersion). The
// BoostDaemon uses the estimate to set its throttle rate as a fraction
// of measured capacity instead of a hard-coded constant.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/clock.h"

namespace nnn::boost_lane {

class CapacityProbe {
 public:
  struct Config {
    uint32_t probe_packets = 10;
    uint32_t probe_size_bytes = 1200;
    /// Flow identity of probe traffic (so receivers can recognize it).
    uint16_t probe_port = 7;  // echo
  };

  using EstimateFn = std::function<void(double bps)>;

  CapacityProbe(sim::EventLoop& loop, Config config);

  /// Launch one probe train into `send` (the path under test). The
  /// destination must loop probe packets back into on_probe_arrival().
  /// `done` fires with the dispersion estimate.
  void run(const std::function<void(net::Packet)>& send,
           EstimateFn done);

  /// Feed one arriving probe packet (receiver side).
  void on_probe_arrival(const net::Packet& packet);

  /// Last completed estimate, if any.
  std::optional<double> last_estimate_bps() const { return estimate_; }

 private:
  void finish();

  sim::EventLoop& loop_;
  Config config_;
  EstimateFn done_;
  std::vector<util::Timestamp> arrivals_;
  std::optional<double> estimate_;
  uint64_t probe_generation_ = 0;
};

}  // namespace nnn::boost_lane
