// The Boost daemon on the home AP (§5.2).
//
// "We implement a python-based daemon on the WiFi router which sniffs
// traffic, looks up cookies and enforces the desired QoS service. Our
// daemon sniffs the first 3 incoming packets for each flow; if it
// detects a cookie, it tries to match the cookie against a known
// descriptor and verifies its integrity. If this is successful, it
// adds this and the reverse flow to the fast lane ... To provision the
// path for boosted traffic we i) use the high-bandwidth wireless WMM
// queue, and ii) throttle other traffic to ensure certain capacity for
// boosted traffic through the last-mile connection."
//
// The daemon composes a Middlebox (sniff/verify/map) with the QoS plan
// (band assignment + throttle of the best-effort band) and the
// last-one-wins conflict policy for multiple boosting clients.
#pragma once

#include <optional>
#include <string>

#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "net/packet.h"
#include "sim/link.h"
#include "util/clock.h"

namespace nnn::boost_lane {

/// Band plan on the AP's links.
inline constexpr size_t kFastLaneBand = 0;
inline constexpr size_t kBestEffortBand = 1;

class BoostDaemon {
 public:
  struct Config {
    /// Estimated WAN capacity (the paper runs "periodic active tests"
    /// to estimate it; here the topology tells us).
    double wan_capacity_bps = 6e6;
    /// Rate the best-effort band is throttled to while a boost is
    /// active (Fig. 5b: 6 Mb/s link, non-boosted throttled to 1 Mb/s).
    double throttle_bps = 1e6;
    /// Honor cookies arriving mid-flow (application-assisted bursts).
    bool mid_flow_cookies = false;
  };

  BoostDaemon(const util::Clock& clock, cookies::CookieVerifier& verifier,
              Config config);

  /// Attach the WAN links whose band shapers this daemon manages.
  /// Either may be null (uplink-only deployments).
  void attach_links(sim::Link* downlink, sim::Link* uplink);

  /// Process a packet crossing the AP. Returns the QoS band it should
  /// travel in. Activates/refreshes the throttle when a boost mapping
  /// is (still) in effect.
  size_t classify(net::Packet& packet);

  /// Recalibrate from a capacity estimate (§5.2: "the actual
  /// throttling rate depends on the capacity of the WAN connection
  /// which we estimate using periodic active tests"). The throttle
  /// keeps the paper's 6:1 capacity:throttle proportion and is
  /// re-applied immediately if currently active.
  void set_capacity(double wan_capacity_bps);

  double wan_capacity_bps() const { return config_.wan_capacity_bps; }
  double throttle_bps() const { return config_.throttle_bps; }

  /// Conflict policy: "To resolve conflicts when multiple clients want
  /// to boost within a household, we have a last one wins policy."
  /// Called when a client acquires a boost; any previous client's
  /// descriptor is revoked from the verifier.
  void boost_granted(const std::string& client,
                     cookies::CookieId descriptor_id);

  const std::string& active_boost_client() const { return active_client_; }
  bool throttle_active() const { return throttle_active_; }
  dataplane::MiddleboxStats stats() const { return middlebox_.stats(); }
  dataplane::Middlebox& middlebox() { return middlebox_; }

 private:
  void set_throttle(bool active);

  Config config_;
  cookies::CookieVerifier& verifier_;
  dataplane::ServiceRegistry registry_;
  dataplane::Middlebox middlebox_;
  sim::Link* downlink_ = nullptr;
  sim::Link* uplink_ = nullptr;
  std::string active_client_;
  std::optional<cookies::CookieId> active_descriptor_;
  bool throttle_active_ = false;
};

}  // namespace nnn::boost_lane
