#include "boost_lane/capacity_probe.h"

#include <algorithm>

namespace nnn::boost_lane {

CapacityProbe::CapacityProbe(sim::EventLoop& loop, Config config)
    : loop_(loop), config_(config) {}

void CapacityProbe::run(const std::function<void(net::Packet)>& send,
                        EstimateFn done) {
  done_ = std::move(done);
  arrivals_.clear();
  ++probe_generation_;
  // A back-to-back train: all packets enter the path at once; the
  // bottleneck serializes them and their arrival spacing reveals its
  // rate.
  for (uint32_t i = 0; i < config_.probe_packets; ++i) {
    net::Packet probe;
    probe.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 1);
    probe.tuple.dst_ip = net::IpAddress::v4(198, 51, 100, 100);
    probe.tuple.src_port = config_.probe_port;
    probe.tuple.dst_port = config_.probe_port;
    probe.tuple.proto = net::L4Proto::kUdp;
    probe.wire_size = config_.probe_size_bytes;
    probe.seq = i;
    send(probe);
  }
  // Safety valve: if fewer than two probes ever arrive (loss), report
  // nothing after a generous deadline.
  const uint64_t generation = probe_generation_;
  loop_.after(5 * util::kSecond, [this, generation] {
    if (generation == probe_generation_ && arrivals_.size() >= 2 &&
        !estimate_) {
      finish();
    }
  });
}

void CapacityProbe::on_probe_arrival(const net::Packet& packet) {
  if (packet.tuple.dst_port != config_.probe_port) return;
  arrivals_.push_back(loop_.now());
  if (arrivals_.size() == config_.probe_packets) finish();
}

void CapacityProbe::finish() {
  if (arrivals_.size() < 2) return;
  // Dispersion estimate: (n-1) packets' worth of bits over the spread
  // between first and last arrival.
  const double spread_sec =
      static_cast<double>(arrivals_.back() - arrivals_.front()) /
      util::kSecond;
  if (spread_sec <= 0) return;
  const double bits = static_cast<double>(arrivals_.size() - 1) *
                      config_.probe_size_bytes * 8.0;
  estimate_ = bits / spread_sec;
  if (done_) done_(*estimate_);
}

}  // namespace nnn::boost_lane
