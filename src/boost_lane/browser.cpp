#include "boost_lane/browser.h"

#include <algorithm>

namespace nnn::boost_lane {

Browser::Browser(util::Rng& rng, net::IpAddress client_ip)
    : rng_(rng), generator_(rng, client_ip) {}

TabId Browser::open_tab() {
  const TabId tab = next_tab_++;
  open_tabs_.push_back(tab);
  return tab;
}

void Browser::close_tab(TabId tab) {
  std::erase(open_tabs_, tab);
}

bool Browser::tab_open(TabId tab) const {
  return std::find(open_tabs_.begin(), open_tabs_.end(), tab) !=
         open_tabs_.end();
}

TabPageLoad Browser::navigate(TabId tab,
                              const workload::WebsiteProfile& site) {
  TabPageLoad load;
  load.tab = tab;
  load.domain = site.domain;
  workload::PageLoad page = generator_.generate(site);
  load.total_packets = page.total_packets;
  load.flows.reserve(page.flows.size());

  // A slice of the load's packets travels in flows the extension
  // cannot see behind a tab (DNS lookups, prefetch). Peel whole flows
  // off until ~kUnattributableShare of packets is untagged.
  const uint32_t untagged_budget = static_cast<uint32_t>(
      page.total_packets * kUnattributableShare);
  uint32_t untagged = 0;
  // Shuffle so the unattributable flows are not biased to one origin.
  rng_.shuffle(page.flows);
  for (auto& flow : page.flows) {
    BrowserFlow bf;
    const bool can_untag =
        untagged + flow.packets <= untagged_budget;
    if (can_untag) {
      untagged += flow.packets;
      bf.tab = std::nullopt;
      bf.address_bar_domain.clear();
    } else {
      bf.tab = tab;
      bf.address_bar_domain = site.domain;
    }
    bf.flow = std::move(flow);
    load.flows.push_back(std::move(bf));
  }
  return load;
}

}  // namespace nnn::boost_lane
