#include "boost_lane/daemon.h"

namespace nnn::boost_lane {

BoostDaemon::BoostDaemon(const util::Clock& clock,
                         cookies::CookieVerifier& verifier, Config config)
    : config_(config),
      verifier_(verifier),
      middlebox_(clock, verifier, registry_, [&config] {
        dataplane::Middlebox::Config middlebox_config;
        middlebox_config.mid_flow_cookies = config.mid_flow_cookies;
        return middlebox_config;
      }()) {
  // The Boost service maps verified cookies into the fast-lane band.
  registry_.bind("Boost", dataplane::PriorityAction{kFastLaneBand});
}

void BoostDaemon::attach_links(sim::Link* downlink, sim::Link* uplink) {
  downlink_ = downlink;
  uplink_ = uplink;
}

size_t BoostDaemon::classify(net::Packet& packet) {
  const dataplane::Verdict verdict = middlebox_.process(packet);
  if (verdict.mapped_now) {
    // A fresh boost mapping: make sure the throttle protects it.
    set_throttle(true);
  }
  if (verdict.action) {
    if (const auto* priority =
            std::get_if<dataplane::PriorityAction>(&*verdict.action)) {
      return priority->band;
    }
  }
  return kBestEffortBand;
}

void BoostDaemon::set_capacity(double wan_capacity_bps) {
  config_.wan_capacity_bps = wan_capacity_bps;
  config_.throttle_bps = wan_capacity_bps / 6.0;
  if (throttle_active_) {
    // Re-apply the shapers at the new rate.
    throttle_active_ = false;
    set_throttle(true);
  }
}

void BoostDaemon::boost_granted(const std::string& client,
                                cookies::CookieId descriptor_id) {
  if (!active_client_.empty() && active_client_ != client &&
      active_descriptor_) {
    // Last one wins: the previous household member's boost is revoked.
    verifier_.revoke(*active_descriptor_);
  }
  active_client_ = client;
  active_descriptor_ = descriptor_id;
}

void BoostDaemon::set_throttle(bool active) {
  if (active == throttle_active_) return;
  throttle_active_ = active;
  for (sim::Link* link : {downlink_, uplink_}) {
    if (!link) continue;
    if (active) {
      link->set_band_shaper(kBestEffortBand, config_.throttle_bps);
    } else {
      link->clear_band_shaper(kBestEffortBand);
    }
  }
}

}  // namespace nnn::boost_lane
