#include "boost_lane/anylink.h"

namespace nnn::boost_lane {

AnyLinkProxy::AnyLinkProxy(const util::Clock& clock,
                           cookies::CookieVerifier& verifier)
    : middlebox_(clock, verifier, registry_) {}

void AnyLinkProxy::add_profile(const std::string& service_data,
                               LinkProfile profile) {
  registry_.bind(service_data,
                 dataplane::RateLimitAction{profile.rate_bps, 0});
  profiles_[service_data] = std::move(profile);
}

std::optional<LinkProfile> AnyLinkProxy::process(net::Packet& packet) {
  const dataplane::Verdict verdict = middlebox_.process(packet);
  if (verdict.service_data.empty()) return std::nullopt;
  const auto it = profiles_.find(verdict.service_data);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

}  // namespace nnn::boost_lane
