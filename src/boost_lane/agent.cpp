#include "boost_lane/agent.h"

#include "util/logging.h"

namespace nnn::boost_lane {

BoostAgent::BoostAgent(const util::Clock& clock, server::JsonApi& api,
                       std::string user, uint64_t rng_seed)
    : clock_(clock), api_(api), user_(std::move(user)),
      rng_seed_(rng_seed) {}

bool BoostAgent::ensure_descriptor() {
  if (descriptor_ && !descriptor_->expired(clock_.now())) return true;
  json::Object request;
  request["method"] = "acquire";
  request["service"] = "Boost";
  request["user"] = user_;
  const json::Value response = api_.handle(json::Value(std::move(request)));
  if (!response.get_bool("ok")) {
    util::log_warn_tagged("boost-agent", "{}: acquire failed: {}", user_,
                          response.get_string("error"));
    return false;
  }
  const json::Value* descriptor_json = response.find("descriptor");
  if (!descriptor_json) return false;
  auto descriptor = cookies::CookieDescriptor::from_json(*descriptor_json);
  if (!descriptor) return false;
  descriptor_ = std::move(*descriptor);
  generator_.emplace(*descriptor_, clock_, rng_seed_++);
  return true;
}

bool BoostAgent::boost_tab(TabId tab) {
  if (!ensure_descriptor()) return false;
  boosted_tabs_[tab] = clock_.now() + kBoostDuration;
  return true;
}

bool BoostAgent::always_boost(std::string domain) {
  if (!ensure_descriptor()) return false;
  boosted_sites_[std::move(domain)] = true;
  return true;
}

void BoostAgent::remove_always_boost(const std::string& domain) {
  boosted_sites_.erase(domain);
}

void BoostAgent::unboost_tab(TabId tab) {
  boosted_tabs_.erase(tab);
}

bool BoostAgent::tab_boosted(TabId tab) const {
  const auto it = boosted_tabs_.find(tab);
  return it != boosted_tabs_.end() && it->second > clock_.now();
}

bool BoostAgent::site_boosted(const std::string& domain) const {
  return boosted_sites_.contains(domain);
}

bool BoostAgent::should_boost(const BrowserFlow& flow) const {
  if (!flow.tab) return false;  // DNS/prefetch: no tab context
  if (tab_boosted(*flow.tab)) return true;
  return !flow.address_bar_domain.empty() &&
         site_boosted(flow.address_bar_domain);
}

bool BoostAgent::process_request(const BrowserFlow& flow,
                                 net::Packet& packet) {
  if (!should_boost(flow)) return false;
  if (!ensure_descriptor() || !generator_) return false;
  const cookies::Cookie cookie = generator_->generate();
  const cookies::Transport transport =
      flow.flow.https ? cookies::Transport::kTlsExtension
                      : cookies::Transport::kHttpHeader;
  if (!cookies::attach(packet, cookie, transport)) return false;
  ++cookies_inserted_;
  return true;
}

bool BoostAgent::has_descriptor() const {
  return descriptor_ && !descriptor_->expired(clock_.now());
}

}  // namespace nnn::boost_lane
