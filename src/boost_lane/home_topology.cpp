#include "boost_lane/home_topology.h"

#include <stdexcept>

namespace nnn::boost_lane {

HomeTopology::HomeTopology(sim::EventLoop& loop, Config config)
    : loop_(loop),
      config_(config),
      verifier_(loop.clock()),
      daemon_(loop.clock(), verifier_, config.daemon) {
  uplink_ = std::make_unique<sim::Link>(
      loop_,
      sim::Link::Config{.rate_bps = config_.wan_bps,
                   .prop_delay = config_.wan_delay,
                   .bands = 2,
                   .band_capacity_bytes = config_.queue_bytes},
      [this](net::Packet p) { route_wan(std::move(p)); });
  downlink_ = std::make_unique<sim::Link>(
      loop_,
      sim::Link::Config{.rate_bps = config_.wan_bps,
                   .prop_delay = config_.wan_delay,
                   .bands = 2,
                   .band_capacity_bytes = config_.queue_bytes},
      [this](net::Packet p) { route_home(std::move(p)); });
  daemon_.attach_links(downlink_.get(), uplink_.get());
}

sim::Host& HomeTopology::add_home_host(const std::string& name) {
  if (home_hosts_.size() >= 200) {
    throw std::length_error("HomeTopology: too many home hosts");
  }
  const auto address = net::IpAddress::v4(
      192, 168, 1, static_cast<uint8_t>(10 + home_hosts_.size()));
  auto host = std::make_unique<sim::Host>(address, name);
  host->set_uplink([this](net::Packet p) {
    const size_t band = daemon_.classify(p);
    uplink_->send(std::move(p), band);
  });
  home_hosts_.push_back(std::move(host));
  return *home_hosts_.back();
}

sim::Host& HomeTopology::add_server(const std::string& name) {
  if (servers_.size() >= 200) {
    throw std::length_error("HomeTopology: too many servers");
  }
  const auto address = net::IpAddress::v4(
      198, 51, 100, static_cast<uint8_t>(1 + servers_.size()));
  auto host = std::make_unique<sim::Host>(address, name);
  host->set_uplink([this](net::Packet p) {
    const size_t band = daemon_.classify(p);
    downlink_->send(std::move(p), band);
  });
  servers_.push_back(std::move(host));
  return *servers_.back();
}

cookies::CookieGenerator HomeTopology::install_boost_descriptor(
    cookies::CookieId id, uint64_t seed) {
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = id;
  descriptor.key.assign(32, static_cast<uint8_t>(id * 5 + 3));
  descriptor.service_data = "Boost";
  verifier_.add_descriptor(descriptor);
  return cookies::CookieGenerator(descriptor, loop_.clock(), seed);
}

void HomeTopology::route_home(net::Packet packet) {
  for (auto& host : home_hosts_) {
    if (host->address() == packet.tuple.dst_ip) {
      host->receive(packet);
      return;
    }
  }
}

void HomeTopology::route_wan(net::Packet packet) {
  for (auto& host : servers_) {
    if (host->address() == packet.tuple.dst_ip) {
      host->receive(packet);
      return;
    }
  }
}

}  // namespace nnn::boost_lane
