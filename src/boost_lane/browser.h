// Browser model: tabs, address bar, per-tab flow attribution.
//
// §5.1 explains why the browser is the right vantage point: "what is
// simple and meaningful for the user (e.g., a webpage...) can be very
// complex for the network to detect" — the browser knows which tab
// generated each of cnn.com's 255 flows while the network only sees
// flows. This model captures exactly that metadata: each page load is
// tied to a tab, every generated flow remembers its tab and the
// address-bar domain, and a small share of traffic (DNS, prefetch) is
// *not* attributable to a tab — the reason the paper's agent "misses
// DNS requests and traffic prefetched by Chrome" and boosts >90%
// rather than 100% (Fig. 6a).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/page_load.h"
#include "workload/websites.h"

namespace nnn::boost_lane {

using TabId = uint32_t;

/// A flow as the browser sees it: the network flow plus the browser
/// context DPI can never recover.
struct BrowserFlow {
  workload::GeneratedFlow flow;
  std::optional<TabId> tab;       // nullopt: DNS/prefetch, no tab
  std::string address_bar_domain; // domain of the owning tab ("" if none)
};

struct TabPageLoad {
  TabId tab = 0;
  std::string domain;
  std::vector<BrowserFlow> flows;
  uint32_t total_packets = 0;
};

class Browser {
 public:
  /// Fraction of a page load's packets carried by flows the extension
  /// cannot attribute to the tab (DNS, speculative prefetch).
  static constexpr double kUnattributableShare = 0.06;

  Browser(util::Rng& rng, net::IpAddress client_ip);

  /// Open a tab (returns its id).
  TabId open_tab();
  void close_tab(TabId tab);
  bool tab_open(TabId tab) const;

  /// Navigate `tab` to `site`, producing the page load's flows with
  /// browser attribution.
  TabPageLoad navigate(TabId tab, const workload::WebsiteProfile& site);

 private:
  util::Rng& rng_;
  workload::PageLoadGenerator generator_;
  std::vector<TabId> open_tabs_;
  TabId next_tab_ = 1;
};

}  // namespace nnn::boost_lane
