// Canonical home-network topology (§5's deployment setting).
//
// Wires up the pieces every Boost experiment needs: home hosts behind
// an AP, a WAN bottleneck in both directions, WAN-side servers, and
// the Boost daemon classifying every packet that crosses the AP
// (single box, both directions, §4.5). Examples and experiments build
// one of these instead of hand-wiring hosts and links.
//
//   [home hosts] --UP--> (daemon) --uplink--> [servers]
//   [servers]  --DOWN--> (daemon) --downlink--> [home hosts]
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "boost_lane/daemon.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "net/ip.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"

namespace nnn::boost_lane {

class HomeTopology {
 public:
  struct Config {
    double wan_bps = 6e6;
    util::Timestamp wan_delay = 15 * util::kMillisecond;
    uint32_t queue_bytes = 96 * 1024;
    BoostDaemon::Config daemon;
  };

  /// The loop must outlive the topology.
  HomeTopology(sim::EventLoop& loop, Config config);

  /// Add a LAN-side host (192.168.1.x). Its uplink routes through the
  /// daemon onto the WAN uplink.
  sim::Host& add_home_host(const std::string& name);

  /// Add a WAN-side server (198.51.100.x). Its "uplink" is the
  /// downlink toward the home, also classified by the daemon.
  sim::Host& add_server(const std::string& name);

  BoostDaemon& daemon() { return daemon_; }
  cookies::CookieVerifier& verifier() { return verifier_; }
  sim::Link& uplink() { return *uplink_; }
  sim::Link& downlink() { return *downlink_; }
  sim::EventLoop& loop() { return loop_; }

  /// Install a Boost descriptor into the home's verifier and return a
  /// generator for it (test/ example convenience).
  cookies::CookieGenerator install_boost_descriptor(cookies::CookieId id,
                                                    uint64_t seed);

 private:
  void route_home(net::Packet packet);
  void route_wan(net::Packet packet);

  sim::EventLoop& loop_;
  Config config_;
  cookies::CookieVerifier verifier_;
  BoostDaemon daemon_;
  std::unique_ptr<sim::Link> uplink_;
  std::unique_ptr<sim::Link> downlink_;
  std::vector<std::unique_ptr<sim::Host>> home_hosts_;
  std::vector<std::unique_ptr<sim::Host>> servers_;
};

}  // namespace nnn::boost_lane
