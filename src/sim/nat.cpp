#include "sim/nat.h"

namespace nnn::sim {

Nat::Nat(net::IpAddress public_ip, uint16_t first_port)
    : public_ip_(public_ip), next_port_(first_port) {}

void Nat::translate_outbound(net::Packet& packet) {
  const Endpoint inside{packet.tuple.src_ip, packet.tuple.src_port,
                        packet.tuple.proto};
  auto it = forward_.find(inside);
  if (it == forward_.end()) {
    const uint16_t port = next_port_++;
    it = forward_.emplace(inside, port).first;
    reverse_.emplace(port, inside);
  }
  packet.tuple.src_ip = public_ip_;
  packet.tuple.src_port = it->second;
}

bool Nat::translate_inbound(net::Packet& packet) const {
  if (packet.tuple.dst_ip != public_ip_) return false;
  const auto it = reverse_.find(packet.tuple.dst_port);
  if (it == reverse_.end()) return false;
  packet.tuple.dst_ip = it->second.ip;
  packet.tuple.dst_port = it->second.port;
  return true;
}

}  // namespace nnn::sim
